"""Tests for repro.util.float_cmp."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.float_cmp import (
    clamp_nonnegative,
    feq,
    fge,
    fgt,
    fle,
    flt,
    is_zero,
)

finite = st.floats(allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12)


class TestFeq:
    def test_exact_equal(self):
        assert feq(1.0, 1.0)

    def test_tiny_difference_is_equal(self):
        assert feq(1.0, 1.0 + 1e-12)

    def test_large_scale_relative(self):
        assert feq(1e9, 1e9 * (1 + 1e-12))

    def test_clearly_different(self):
        assert not feq(1.0, 1.001)

    def test_near_zero(self):
        assert feq(0.0, 1e-12)
        assert not feq(0.0, 1e-6)


class TestOrderingPredicates:
    def test_fle_strictly_less(self):
        assert fle(1.0, 2.0)

    def test_fle_equal_within_tolerance(self):
        assert fle(1.0 + 1e-12, 1.0)

    def test_fle_greater(self):
        assert not fle(1.1, 1.0)

    def test_fge_mirrors_fle(self):
        assert fge(2.0, 1.0)
        assert fge(1.0, 1.0 + 1e-12)
        assert not fge(1.0, 1.1)

    def test_flt_excludes_near_equal(self):
        assert flt(1.0, 2.0)
        assert not flt(1.0, 1.0 + 1e-12)

    def test_fgt_excludes_near_equal(self):
        assert fgt(2.0, 1.0)
        assert not fgt(1.0 + 1e-12, 1.0)

    @given(a=finite, b=finite)
    def test_flt_and_fge_are_complements(self, a, b):
        assert flt(a, b) != fge(a, b)

    @given(a=finite, b=finite)
    def test_fgt_and_fle_are_complements(self, a, b):
        assert fgt(a, b) != fle(a, b)


class TestIsZero:
    def test_zero(self):
        assert is_zero(0.0)

    def test_tiny(self):
        assert is_zero(1e-12)
        assert is_zero(-1e-12)

    def test_not_zero(self):
        assert not is_zero(1e-3)


class TestClampNonnegative:
    def test_positive_passthrough(self):
        assert clamp_nonnegative(5.0) == 5.0

    def test_zero_passthrough(self):
        assert clamp_nonnegative(0.0) == 0.0

    def test_rounding_residue_clamped(self):
        assert clamp_nonnegative(-1e-12) == 0.0

    def test_genuinely_negative_raises(self):
        with pytest.raises(ValueError):
            clamp_nonnegative(-0.5)
