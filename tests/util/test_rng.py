"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_is_fine(self):
        assert spawn_generators(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent_streams(self):
        gens = spawn_generators(123, 3)
        draws = [g.integers(0, 2**31, size=4).tolist() for g in gens]
        assert draws[0] != draws[1] != draws[2]

    def test_reproducible_from_same_seed(self):
        a = [g.integers(0, 2**31, size=4).tolist() for g in spawn_generators(9, 3)]
        b = [g.integers(0, 2**31, size=4).tolist() for g in spawn_generators(9, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        gens = spawn_generators(np.random.default_rng(5), 2)
        assert len(gens) == 2
        assert all(isinstance(g, np.random.Generator) for g in gens)
