"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_is_fine(self):
        assert spawn_generators(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent_streams(self):
        gens = spawn_generators(123, 3)
        draws = [g.integers(0, 2**31, size=4).tolist() for g in gens]
        assert draws[0] != draws[1] != draws[2]

    def test_reproducible_from_same_seed(self):
        a = [g.integers(0, 2**31, size=4).tolist() for g in spawn_generators(9, 3)]
        b = [g.integers(0, 2**31, size=4).tolist() for g in spawn_generators(9, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        gens = spawn_generators(np.random.default_rng(5), 2)
        assert len(gens) == 2
        assert all(isinstance(g, np.random.Generator) for g in gens)


class TestSpawnGenerator:
    """The O(1) single-child spawn must be bit-identical to spawn_generators."""

    def test_matches_spawn_generators_every_index(self):
        bulk = [
            g.integers(0, 2**31, size=8).tolist() for g in spawn_generators(123, 7)
        ]
        single = [
            spawn_generator(123, i).integers(0, 2**31, size=8).tolist()
            for i in range(7)
        ]
        assert single == bulk

    def test_pinned_draws(self):
        # Regression pins: these exact streams back the experiment cells;
        # any change here silently re-rolls every published sweep.
        g = spawn_generator(7, 5)
        assert g.integers(0, 2**31, size=4).tolist() == [
            1029472635,
            1348834135,
            484674692,
            1606065939,
        ]
        u = spawn_generator(2021, 0)
        assert [x.hex() for x in u.uniform(0, 1, size=3).tolist()] == [
            "0x1.0735a2d7678e0p-2",
            "0x1.e27f06e6fc115p-1",
            "0x1.c44d9df0684e0p-5",
        ]

    def test_matches_from_seed_sequence_root(self):
        root = np.random.SeedSequence(99)
        bulk = spawn_generators(root, 3)[2].integers(0, 2**31, size=4).tolist()
        single = (
            spawn_generator(np.random.SeedSequence(99), 2)
            .integers(0, 2**31, size=4)
            .tolist()
        )
        assert single == bulk

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            spawn_generator(0, -1)
