"""Tests for repro.util.search.binary_search_min."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.search import binary_search_min


class TestBasics:
    def test_threshold_found(self):
        result = binary_search_min(lambda x: x >= 3.7, 0.0, 10.0, eps=1e-9)
        assert math.isclose(result, 3.7, rel_tol=1e-6)

    def test_result_is_feasible(self):
        result = binary_search_min(lambda x: x >= 3.7, 0.0, 10.0, eps=1e-3)
        assert result >= 3.7

    def test_lo_already_feasible(self):
        assert binary_search_min(lambda x: True, 2.0, 10.0) == 2.0

    def test_grows_hi_when_needed(self):
        result = binary_search_min(lambda x: x >= 1000.0, 0.0, 1.0, eps=1e-6)
        assert result >= 1000.0
        assert math.isclose(result, 1000.0, rel_tol=1e-4)

    def test_infeasible_everywhere_raises(self):
        with pytest.raises(RuntimeError):
            binary_search_min(lambda x: False, 0.0, 1.0, max_grow=10)


class TestHint:
    @staticmethod
    def _counted(calls, threshold):
        def feasible(x):
            calls.append(x)
            return x >= threshold

        return feasible

    def test_good_hint_reduces_predicate_calls(self):
        # Without a hint the bracket must be grown geometrically from
        # 1.0 to past 900; a caller seeding hi from a nearby previous
        # solve skips the whole growth phase.
        base_calls, hint_calls = [], []
        base = binary_search_min(self._counted(base_calls, 900.0), 0.0, 1.0, eps=1e-6)
        hinted = binary_search_min(
            self._counted(hint_calls, 900.0), 0.0, 1.0, eps=1e-6, hint=1000.0
        )
        assert base >= 900.0 and hinted >= 900.0
        assert len(hint_calls) < len(base_calls)

    def test_underestimating_hint_still_correct(self):
        result = binary_search_min(lambda x: x >= 50.0, 0.0, 1.0, eps=1e-6, hint=2.0)
        assert result >= 50.0
        assert math.isclose(result, 50.0, rel_tol=1e-4)

    def test_hint_not_above_lo_is_ignored(self):
        assert binary_search_min(lambda x: True, 2.0, 10.0, hint=1.0) == 2.0


class TestValidation:
    def test_negative_lo_rejected(self):
        with pytest.raises(ValueError):
            binary_search_min(lambda x: True, -1.0, 1.0)

    def test_inverted_bracket_rejected(self):
        with pytest.raises(ValueError):
            binary_search_min(lambda x: True, 5.0, 1.0)

    def test_nonpositive_eps_rejected(self):
        with pytest.raises(ValueError):
            binary_search_min(lambda x: True, 0.0, 1.0, eps=0.0)


class TestProperties:
    @given(
        threshold=st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
        eps=st.floats(min_value=1e-9, max_value=1e-2, allow_nan=False),
    )
    def test_always_feasible_and_close(self, threshold, eps):
        result = binary_search_min(lambda x: x >= threshold, 0.0, 1.0, eps=eps)
        assert result >= threshold
        # Bracket width guarantee: within eps * max(1, result) of the optimum.
        assert result - threshold <= eps * max(1.0, result) + 1e-12

    @given(threshold=st.floats(min_value=0.01, max_value=100.0, allow_nan=False))
    def test_counts_calls_logarithmically(self, threshold):
        calls = []

        def feasible(x):
            calls.append(x)
            return x >= threshold

        binary_search_min(feasible, 0.0, 200.0, eps=1e-6)
        # log2(200 / (1e-6 * 200)) ~ 20 plus constant slack.
        assert len(calls) < 60
