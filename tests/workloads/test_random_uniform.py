"""Tests for the random/CCR instance generator (§VI-A)."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)


class TestPaperPlatform:
    def test_shape(self):
        p = paper_random_platform()
        assert p.n_edge == 20
        assert p.n_cloud == 20
        assert sorted(set(p.edge_speeds)) == [0.1, 0.5]
        assert p.edge_speeds.count(0.1) == 10


class TestConfig:
    def test_defaults(self):
        cfg = RandomInstanceConfig()
        assert cfg.mean_work == pytest.approx(10.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_jobs=-1),
            dict(ccr=-0.5),
            dict(load=0.0),
            dict(work_lo=0.0),
            dict(work_lo=5.0, work_hi=1.0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ModelError):
            RandomInstanceConfig(**kwargs)


class TestGeneration:
    def test_size_and_platform(self):
        inst = generate_random_instance(RandomInstanceConfig(n_jobs=30), seed=0)
        assert inst.n_jobs == 30
        assert inst.platform.n_cloud == 20

    def test_reproducible(self):
        cfg = RandomInstanceConfig(n_jobs=25, ccr=2.0)
        a = generate_random_instance(cfg, seed=5)
        b = generate_random_instance(cfg, seed=5)
        assert a.jobs == b.jobs

    def test_different_seeds_differ(self):
        cfg = RandomInstanceConfig(n_jobs=25)
        a = generate_random_instance(cfg, seed=1)
        b = generate_random_instance(cfg, seed=2)
        assert a.jobs != b.jobs

    def test_work_range(self):
        cfg = RandomInstanceConfig(n_jobs=500, work_lo=2.0, work_hi=4.0)
        inst = generate_random_instance(cfg, seed=0)
        assert (inst.work >= 2.0).all()
        assert (inst.work <= 4.0).all()

    @pytest.mark.parametrize("ccr", [0.1, 1.0, 10.0])
    def test_ccr_controls_comm_ratio(self, ccr):
        cfg = RandomInstanceConfig(n_jobs=3000, ccr=ccr)
        inst = generate_random_instance(cfg, seed=0)
        realized = (inst.up + inst.dn).mean() / inst.work.mean()
        assert realized == pytest.approx(ccr, rel=0.1)

    def test_zero_ccr_means_no_comms(self):
        cfg = RandomInstanceConfig(n_jobs=50, ccr=0.0)
        inst = generate_random_instance(cfg, seed=0)
        assert (inst.up == 0).all()
        assert (inst.dn == 0).all()

    def test_origins_cover_platform(self):
        cfg = RandomInstanceConfig(n_jobs=2000)
        inst = generate_random_instance(cfg, seed=0)
        assert set(np.unique(inst.origin)) == set(range(20))

    def test_load_controls_release_horizon(self):
        slow = generate_random_instance(
            RandomInstanceConfig(n_jobs=500, load=0.05), seed=0
        )
        fast = generate_random_instance(
            RandomInstanceConfig(n_jobs=500, load=0.5), seed=0
        )
        assert slow.release.max() > 5 * fast.release.max()

    def test_custom_platform(self, two_tier_platform):
        inst = generate_random_instance(
            RandomInstanceConfig(n_jobs=10), platform=two_tier_platform, seed=0
        )
        assert inst.platform is two_tier_platform
        assert (inst.origin < 2).all()

    def test_zero_jobs(self):
        inst = generate_random_instance(RandomInstanceConfig(n_jobs=0), seed=0)
        assert inst.n_jobs == 0
