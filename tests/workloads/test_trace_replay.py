"""Tests for CSV trace loading/saving."""

import pytest

from repro.core.errors import ModelError
from repro.core.platform import Platform
from repro.workloads.random_uniform import RandomInstanceConfig, generate_random_instance
from repro.workloads.trace_replay import jobs_from_rows, load_trace, save_trace


@pytest.fixture
def platform() -> Platform:
    return Platform.create([0.5, 0.25], n_cloud=2)


class TestJobsFromRows:
    def test_full_rows(self):
        rows = [
            {"origin": "0", "work": "4.0", "release": "1.0", "up": "0.5", "dn": "0.25"}
        ]
        (job,) = jobs_from_rows(rows)
        assert (job.origin, job.work, job.release, job.up, job.dn) == (0, 4.0, 1.0, 0.5, 0.25)

    def test_optional_columns_default(self):
        (job,) = jobs_from_rows([{"origin": "1", "work": "2.0"}])
        assert job.release == 0.0 and job.up == 0.0 and job.dn == 0.0

    def test_rows_sorted_by_release(self):
        rows = [
            {"origin": "0", "work": "1.0", "release": "5.0"},
            {"origin": "0", "work": "1.0", "release": "2.0"},
        ]
        jobs = jobs_from_rows(rows)
        assert jobs[0].release == 2.0

    def test_missing_column_reports_line(self):
        with pytest.raises(ModelError, match="line 2"):
            jobs_from_rows([{"work": "1.0"}])

    def test_bad_value_reports_line(self):
        with pytest.raises(ModelError, match="line 3"):
            jobs_from_rows(
                [{"origin": "0", "work": "1.0"}, {"origin": "0", "work": "abc"}]
            )

    def test_invalid_job_reports_line(self):
        # Job's own model validation (negative work/comm times) must
        # come back pinned to the offending trace line, not engine-deep.
        with pytest.raises(ModelError, match="line 3.*work must be positive"):
            jobs_from_rows(
                [{"origin": "0", "work": "1.0"}, {"origin": "0", "work": "-2.0"}]
            )
        with pytest.raises(ModelError, match="line 2.*non-negative"):
            jobs_from_rows([{"origin": "0", "work": "1.0", "up": "-1.0"}])


class TestFileRoundTrip:
    def test_save_and_load(self, platform, tmp_path):
        inst = generate_random_instance(
            RandomInstanceConfig(n_jobs=8), platform=platform, seed=1
        )
        path = tmp_path / "trace.csv"
        save_trace(inst, path)
        restored = load_trace(path, platform)
        assert sorted(restored.jobs, key=lambda j: (j.release, j.origin)) == sorted(
            inst.jobs, key=lambda j: (j.release, j.origin)
        )

    def test_load_hand_written(self, platform, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("origin,work,release,up,dn\n0,4.0,0.0,1.0,1.0\n1,2.5,3.1,0.5,0.5\n")
        inst = load_trace(path, platform)
        assert inst.n_jobs == 2
        assert inst.jobs[1].work == 2.5

    def test_extra_columns_ignored(self, platform, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("origin,work,notes\n0,1.0,hello\n")
        inst = load_trace(path, platform)
        assert inst.n_jobs == 1

    def test_missing_required_column(self, platform, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("origin,release\n0,1.0\n")
        with pytest.raises(ModelError, match="missing required"):
            load_trace(path, platform)

    def test_empty_file(self, platform, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("")
        with pytest.raises(ModelError, match="empty"):
            load_trace(path, platform)

    def test_origin_validated_against_platform(self, platform, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("origin,work\n9,1.0\n")
        with pytest.raises(ModelError):
            load_trace(path, platform)
