"""Tests for the Poisson/bursty arrival generators."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.platform import Platform
from repro.workloads.arrivals import (
    ArrivalConfig,
    generate_bursty_instance,
    generate_poisson_instance,
)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [dict(n_jobs=-1), dict(ccr=-1.0), dict(rate_per_unit=0.0), dict(work_lo=0.0)],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ModelError):
            ArrivalConfig(**kwargs)


class TestPoisson:
    def test_exact_job_count(self):
        inst = generate_poisson_instance(ArrivalConfig(n_jobs=37), seed=0)
        assert inst.n_jobs == 37

    def test_sorted_releases(self):
        inst = generate_poisson_instance(ArrivalConfig(n_jobs=50), seed=1)
        assert (np.diff(inst.release) >= 0).all()

    def test_reproducible(self):
        cfg = ArrivalConfig(n_jobs=20)
        assert (
            generate_poisson_instance(cfg, seed=2).jobs
            == generate_poisson_instance(cfg, seed=2).jobs
        )

    def test_rate_controls_density(self):
        slow = generate_poisson_instance(ArrivalConfig(n_jobs=200, rate_per_unit=0.01), seed=3)
        fast = generate_poisson_instance(ArrivalConfig(n_jobs=200, rate_per_unit=1.0), seed=3)
        assert fast.release.max() < slow.release.max()

    def test_interarrivals_look_exponential(self):
        # Pooled across 20 units the process has rate 20 * r; the mean
        # inter-arrival should be close to 1 / (20 r).
        r = 0.05
        inst = generate_poisson_instance(
            ArrivalConfig(n_jobs=3000, rate_per_unit=r), seed=4
        )
        gaps = np.diff(np.sort(inst.release))
        assert gaps.mean() == pytest.approx(1.0 / (20 * r), rel=0.15)

    def test_custom_platform(self):
        platform = Platform.create([1.0], n_cloud=1)
        inst = generate_poisson_instance(
            ArrivalConfig(n_jobs=10), platform=platform, seed=0
        )
        assert (inst.origin == 0).all()

    def test_zero_jobs(self):
        assert generate_poisson_instance(ArrivalConfig(n_jobs=0), seed=0).n_jobs == 0


class TestBursty:
    def test_exact_job_count(self):
        inst = generate_bursty_instance(ArrivalConfig(n_jobs=40), seed=0)
        assert inst.n_jobs == 40

    def test_parameter_validation(self):
        cfg = ArrivalConfig(n_jobs=10)
        with pytest.raises(ModelError):
            generate_bursty_instance(cfg, burst_factor=0.5, seed=0)
        with pytest.raises(ModelError):
            generate_bursty_instance(cfg, on_fraction=0.0, seed=0)
        with pytest.raises(ModelError):
            generate_bursty_instance(cfg, cycle=-1.0, seed=0)

    def test_bursts_concentrate_arrivals(self):
        cycle = 100.0
        on_fraction = 0.2
        inst = generate_bursty_instance(
            ArrivalConfig(n_jobs=2000, rate_per_unit=0.2),
            burst_factor=20.0,
            on_fraction=on_fraction,
            cycle=cycle,
            seed=1,
        )
        phases = inst.release % cycle
        in_burst = (phases < on_fraction * cycle).mean()
        # Far more than the 20% a uniform spread would give.
        assert in_burst > 0.5

    def test_reproducible(self):
        cfg = ArrivalConfig(n_jobs=25)
        a = generate_bursty_instance(cfg, seed=5)
        b = generate_bursty_instance(cfg, seed=5)
        assert a.jobs == b.jobs

    def test_zero_jobs(self):
        assert generate_bursty_instance(ArrivalConfig(n_jobs=0), seed=0).n_jobs == 0


class TestSchedulability:
    @pytest.mark.parametrize("generator", [generate_poisson_instance, generate_bursty_instance])
    def test_instances_run_end_to_end(self, generator):
        from repro.core.validation import validate_schedule
        from repro.schedulers.registry import make_scheduler
        from repro.sim.engine import simulate

        inst = generator(ArrivalConfig(n_jobs=30), seed=7)
        result = simulate(inst, make_scheduler("ssf-edf"))
        assert validate_schedule(result.schedule) == []
