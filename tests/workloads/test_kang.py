"""Tests for the Kang instance generator (§VI-A, after [24])."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.workloads.kang import (
    CHANNEL_MEAN_UPLINK,
    DEVICE_SPEED,
    KANG_MEAN_WORK,
    Channel,
    Device,
    EdgeUnitType,
    KangConfig,
    draw_edge_types,
    generate_kang_instance,
    kang_platform,
)


class TestEdgeUnitType:
    def test_speeds(self):
        assert EdgeUnitType(Device.GPU, Channel.WIFI).speed == pytest.approx(6 / 11)
        assert EdgeUnitType(Device.CPU, Channel.WIFI).speed == pytest.approx(6 / 37)

    def test_uplink_means(self):
        assert EdgeUnitType(Device.GPU, Channel.WIFI).mean_uplink == 95.0
        assert EdgeUnitType(Device.GPU, Channel.LTE).mean_uplink == 180.0
        assert EdgeUnitType(Device.GPU, Channel.THREE_G).mean_uplink == 870.0

    def test_constants_match_paper(self):
        assert CHANNEL_MEAN_UPLINK == {"wifi": 95.0, "lte": 180.0, "3g": 870.0}
        assert DEVICE_SPEED["gpu"] == pytest.approx(6 / 11)
        assert DEVICE_SPEED["cpu"] == pytest.approx(6 / 37)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [dict(n_jobs=-1), dict(n_edge=0), dict(n_cloud=-1), dict(load=0.0)],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ModelError):
            KangConfig(**kwargs)


class TestGeneration:
    def test_shape(self):
        inst = generate_kang_instance(KangConfig(n_jobs=40, n_edge=6, n_cloud=3), seed=0)
        assert inst.n_jobs == 40
        assert inst.platform.n_edge == 6
        assert inst.platform.n_cloud == 3

    def test_downlink_always_zero(self):
        inst = generate_kang_instance(KangConfig(n_jobs=50), seed=1)
        assert (inst.dn == 0).all()

    def test_all_positive(self):
        inst = generate_kang_instance(KangConfig(n_jobs=200), seed=2)
        assert (inst.work > 0).all()
        assert (inst.up > 0).all()

    def test_work_distribution(self):
        inst = generate_kang_instance(KangConfig(n_jobs=4000), seed=3)
        assert inst.work.mean() == pytest.approx(KANG_MEAN_WORK, rel=0.05)
        assert inst.work.std() == pytest.approx(KANG_MEAN_WORK * 0.25, rel=0.1)

    def test_uplink_tracks_channel(self):
        types = [
            EdgeUnitType(Device.GPU, Channel.WIFI),
            EdgeUnitType(Device.GPU, Channel.THREE_G),
        ]
        inst = generate_kang_instance(
            KangConfig(n_jobs=2000, n_edge=2, n_cloud=1), types=types, seed=4
        )
        wifi_up = inst.up[inst.origin == 0]
        g3_up = inst.up[inst.origin == 1]
        assert wifi_up.mean() == pytest.approx(95.0, rel=0.1)
        assert g3_up.mean() == pytest.approx(870.0, rel=0.1)

    def test_platform_speeds_follow_types(self):
        types = [
            EdgeUnitType(Device.GPU, Channel.WIFI),
            EdgeUnitType(Device.CPU, Channel.LTE),
        ]
        platform = kang_platform(types, 2)
        assert platform.edge_speeds == pytest.approx((6 / 11, 6 / 37))

    def test_type_count_mismatch_rejected(self):
        types = [EdgeUnitType(Device.GPU, Channel.WIFI)]
        with pytest.raises(ModelError):
            generate_kang_instance(KangConfig(n_jobs=5, n_edge=3), types=types, seed=0)

    def test_reproducible(self):
        cfg = KangConfig(n_jobs=30)
        assert (
            generate_kang_instance(cfg, seed=9).jobs
            == generate_kang_instance(cfg, seed=9).jobs
        )

    def test_draw_edge_types_reproducible(self):
        rng = np.random.default_rng(0)
        a = draw_edge_types(10, np.random.default_rng(7))
        b = draw_edge_types(10, np.random.default_rng(7))
        assert a == b
        assert len(a) == 10
