"""Tests for instance statistics."""

import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.workloads.random_uniform import RandomInstanceConfig, generate_random_instance
from repro.workloads.stats import describe_instance


class TestDescribeInstance:
    def test_empty_rejected(self):
        platform = Platform.create([1.0])
        with pytest.raises(ModelError):
            describe_instance(Instance.create(platform, []))

    def test_hand_computed(self):
        platform = Platform.create([0.5], n_cloud=1)  # aggregate speed 1.5
        jobs = [
            Job(origin=0, work=2.0, release=0.0, up=1.0, dn=1.0),  # edge 4, cloud 4
            Job(origin=0, work=4.0, release=2.0, up=0.0, dn=0.0),  # edge 8, cloud 4
        ]
        stats = describe_instance(Instance.create(platform, jobs))
        assert stats.n_jobs == 2
        assert stats.mean_work == 3.0
        assert stats.mean_comm == 1.0
        assert stats.realized_ccr == pytest.approx(1 / 3)
        assert stats.realized_load == pytest.approx(6.0 / (2.0 * 1.5))
        assert stats.delta == pytest.approx(1.0)  # min_times both 4
        assert stats.cloud_faster_fraction == 0.5
        assert stats.release_span == 2.0

    def test_zero_span_load_inf(self):
        platform = Platform.create([1.0])
        stats = describe_instance(
            Instance.create(platform, [Job(origin=0, work=1.0)])
        )
        assert stats.realized_load == float("inf")

    @pytest.mark.parametrize("ccr", [0.1, 1.0, 5.0])
    def test_generator_hits_target_ccr(self, ccr):
        inst = generate_random_instance(
            RandomInstanceConfig(n_jobs=2000, ccr=ccr), seed=0
        )
        stats = describe_instance(inst)
        assert stats.realized_ccr == pytest.approx(ccr, rel=0.1)

    @pytest.mark.parametrize("load", [0.05, 0.5])
    def test_generator_hits_target_load(self, load):
        inst = generate_random_instance(
            RandomInstanceConfig(n_jobs=2000, load=load), seed=1
        )
        stats = describe_instance(inst)
        # max release is drawn uniformly; the realized span undershoots
        # the horizon slightly, so allow a loose band.
        assert stats.realized_load == pytest.approx(load, rel=0.2)

    def test_str(self):
        inst = generate_random_instance(RandomInstanceConfig(n_jobs=10), seed=0)
        text = str(describe_instance(inst))
        assert "CCR" in text and "delta" in text
