"""Tests for load-controlled release dates."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.platform import Platform
from repro.workloads.release import (
    aggregated_speed,
    draw_release_dates,
    max_release_date,
)


@pytest.fixture
def platform() -> Platform:
    return Platform.create([0.1] * 10 + [0.5] * 10, n_cloud=20)


class TestAggregatedSpeed:
    def test_paper_platform(self, platform):
        assert aggregated_speed(platform) == pytest.approx(1.0 + 5.0 + 20.0)

    def test_cloudless(self):
        assert aggregated_speed(Platform.create([0.5, 0.5])) == pytest.approx(1.0)


class TestMaxReleaseDate:
    def test_formula(self, platform):
        # sum(w) / (load * aggregated speed).
        works = [26.0] * 10  # total 260; speed 26 -> ratio 10
        assert max_release_date(works, platform, 1.0) == pytest.approx(10.0)
        assert max_release_date(works, platform, 0.1) == pytest.approx(100.0)

    def test_lower_load_stretches_horizon(self, platform):
        works = [5.0] * 4
        assert max_release_date(works, platform, 0.05) == pytest.approx(
            max_release_date(works, platform, 0.5) * 10
        )

    def test_bad_load(self, platform):
        with pytest.raises(ModelError):
            max_release_date([1.0], platform, 0.0)


class TestDrawReleaseDates:
    def test_within_horizon(self, platform):
        works = [10.0] * 50
        horizon = max_release_date(works, platform, 0.05)
        releases = draw_release_dates(works, platform, 0.05, seed=3)
        assert len(releases) == 50
        assert (releases >= 0).all()
        assert (releases <= horizon).all()

    def test_reproducible(self, platform):
        works = [10.0] * 20
        a = draw_release_dates(works, platform, 0.1, seed=11)
        b = draw_release_dates(works, platform, 0.1, seed=11)
        assert np.array_equal(a, b)

    def test_roughly_uniform(self, platform):
        works = [10.0] * 2000
        horizon = max_release_date(works, platform, 0.05)
        releases = draw_release_dates(works, platform, 0.05, seed=1)
        assert releases.mean() == pytest.approx(horizon / 2, rel=0.1)
