"""Tests for repro.core.instance."""

import numpy as np
import pytest
from hypothesis import given

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from tests.conftest import instances


@pytest.fixture
def small_instance() -> Instance:
    platform = Platform.create([0.5, 0.25], n_cloud=2)
    jobs = [
        Job(origin=0, work=2.0, release=0.0, up=1.0, dn=1.0),
        Job(origin=1, work=4.0, release=1.0, up=0.5, dn=0.5),
    ]
    return Instance.create(platform, jobs)


class TestDerivedArrays:
    def test_lengths(self, small_instance):
        assert small_instance.n_jobs == 2
        assert len(small_instance) == 2
        for name in ("origin", "work", "release", "up", "dn", "edge_time",
                     "best_cloud_time", "min_time"):
            assert len(getattr(small_instance, name)) == 2

    def test_edge_time(self, small_instance):
        # w/s per origin speed: 2/0.5 = 4; 4/0.25 = 16.
        assert small_instance.edge_time.tolist() == [4.0, 16.0]

    def test_best_cloud_time(self, small_instance):
        # up + w + dn with speed-1 cloud.
        assert small_instance.best_cloud_time.tolist() == [4.0, 5.0]

    def test_min_time(self, small_instance):
        assert small_instance.min_time.tolist() == [4.0, 5.0]

    def test_min_time_without_cloud(self):
        platform = Platform.create([0.5])
        inst = Instance.create(platform, [Job(origin=0, work=2.0, up=1.0, dn=1.0)])
        assert inst.best_cloud_time[0] == np.inf
        assert inst.min_time[0] == 4.0

    def test_heterogeneous_cloud_uses_fastest(self):
        platform = Platform.create([0.1], cloud_speeds=[1.0, 2.0])
        inst = Instance.create(platform, [Job(origin=0, work=4.0, up=1.0, dn=1.0)])
        assert inst.best_cloud_time[0] == pytest.approx(1.0 + 2.0 + 1.0)

    def test_arrays_read_only(self, small_instance):
        with pytest.raises(ValueError):
            small_instance.work[0] = 99.0


class TestValidation:
    def test_origin_out_of_range(self):
        platform = Platform.create([0.5])
        with pytest.raises(ModelError, match="job 0"):
            Instance.create(platform, [Job(origin=1, work=1.0)])


class TestTimeOn:
    def test_on_origin_edge(self, small_instance):
        assert small_instance.time_on(0, edge(0)) == 4.0

    def test_on_wrong_edge_rejected(self, small_instance):
        with pytest.raises(ModelError):
            small_instance.time_on(0, edge(1))

    def test_on_cloud(self, small_instance):
        assert small_instance.time_on(1, cloud(0)) == 5.0


class TestDelta:
    def test_delta(self, small_instance):
        assert small_instance.delta() == pytest.approx(5.0 / 4.0)

    def test_delta_empty_rejected(self):
        platform = Platform.create([0.5])
        inst = Instance.create(platform, [])
        with pytest.raises(ModelError):
            inst.delta()

    @given(inst=instances())
    def test_delta_at_least_one(self, inst):
        assert inst.delta() >= 1.0 - 1e-12


class TestRestriction:
    def test_restricted_to(self, small_instance):
        sub = small_instance.restricted_to([1])
        assert sub.n_jobs == 1
        assert sub.jobs[0] == small_instance.jobs[1]
        assert sub.platform is small_instance.platform


class TestProperties:
    @given(inst=instances())
    def test_min_time_is_min_of_both(self, inst):
        assert (inst.min_time <= inst.edge_time + 1e-12).all()
        assert (inst.min_time <= inst.best_cloud_time + 1e-12).all()
        both = np.minimum(inst.edge_time, inst.best_cloud_time)
        assert np.allclose(inst.min_time, both)

    @given(inst=instances())
    def test_min_time_positive(self, inst):
        assert (inst.min_time > 0).all()
