"""Tests for repro.core.metrics."""

import pytest

from repro.core.errors import ScheduleError
from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.job import Job
from repro.core.metrics import (
    average_stretch,
    flow_times,
    max_flow_time,
    max_stretch,
    stretch_of_completion,
    stretches,
    total_flow_time,
    utilization,
)
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.core.schedule import Schedule


@pytest.fixture
def done_schedule() -> Schedule:
    """Two jobs: J0 on edge (min_time 2), J1 on cloud (min_time 4)."""
    platform = Platform.create([0.5], n_cloud=1)
    inst = Instance.create(
        platform,
        [
            Job(origin=0, work=1.0, release=0.0),          # edge time 2, cloud 1
            Job(origin=0, work=2.0, release=1.0, up=1.0, dn=1.0),  # edge 4, cloud 4
        ],
    )
    s = Schedule(inst)
    s.new_attempt(0, edge(0))
    s.add_execution(0, Interval(0, 2))
    s.set_completion(0, 2.0)
    s.new_attempt(1, cloud(0))
    s.add_uplink(1, Interval(1, 2))
    s.add_execution(1, Interval(2, 4))
    s.add_downlink(1, Interval(4, 7))  # delayed downlink end at 7
    s.set_completion(1, 7.0)
    return s


class TestStretch:
    def test_stretches(self, done_schedule):
        # J0: min_time = min(2, 1) = 1 -> (2-0)/1 = 2.
        # J1: min_time = min(4, 4) = 4 -> (7-1)/4 = 1.5.
        assert stretches(done_schedule).tolist() == [2.0, 1.5]

    def test_max_stretch(self, done_schedule):
        assert max_stretch(done_schedule) == 2.0

    def test_average_stretch(self, done_schedule):
        assert average_stretch(done_schedule) == pytest.approx(1.75)

    def test_incomplete_rejected(self, done_schedule):
        done_schedule.job_schedules[1].completion = None
        with pytest.raises(ScheduleError):
            stretches(done_schedule)

    def test_stretch_of_completion(self, done_schedule):
        inst = done_schedule.instance
        assert stretch_of_completion(inst, 0, 3.0) == 3.0


class TestFlow:
    def test_flow_times(self, done_schedule):
        assert flow_times(done_schedule).tolist() == [2.0, 6.0]

    def test_max_flow(self, done_schedule):
        assert max_flow_time(done_schedule) == 6.0

    def test_total_flow(self, done_schedule):
        assert total_flow_time(done_schedule) == 8.0


class TestUtilization:
    def test_report(self, done_schedule):
        rep = utilization(done_schedule)
        assert rep.makespan == 7.0
        assert rep.edge_busy[0] == pytest.approx(2.0 / 7.0)
        assert rep.cloud_busy[0] == pytest.approx(2.0 / 7.0)
        assert rep.edge_jobs == 1
        assert rep.cloud_jobs == 1
        assert rep.cloud_fraction == 0.5
        assert rep.reexecutions == 0

    def test_reexecution_count(self, done_schedule):
        done_schedule.job_schedules[0].attempts.insert(
            0, done_schedule.job_schedules[0].attempts[0].copy()
        )
        assert utilization(done_schedule).reexecutions == 1

    def test_empty_schedule(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(platform, [])
        rep = utilization(Schedule(inst))
        assert rep.cloud_fraction == 0.0
        assert rep.makespan == 0.0
