"""Tests for repro.core.job."""

import pytest
from hypothesis import given

from repro.core.errors import ModelError
from repro.core.job import Job
from tests.conftest import comm_amounts, time_amounts


class TestConstruction:
    def test_minimal(self):
        job = Job(origin=0, work=2.0)
        assert job.release == 0.0
        assert job.up == 0.0
        assert job.dn == 0.0

    def test_full(self):
        job = Job(origin=3, work=2.0, release=1.0, up=0.5, dn=0.25)
        assert (job.origin, job.work, job.release, job.up, job.dn) == (3, 2.0, 1.0, 0.5, 0.25)

    def test_immutable(self):
        job = Job(origin=0, work=1.0)
        with pytest.raises(AttributeError):
            job.work = 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(origin=-1, work=1.0),
            dict(origin=0, work=0.0),
            dict(origin=0, work=-1.0),
            dict(origin=0, work=1.0, release=-0.1),
            dict(origin=0, work=1.0, up=-1.0),
            dict(origin=0, work=1.0, dn=-1.0),
            dict(origin=0, work=float("nan")),
            dict(origin=0, work=float("inf")),
            dict(origin=0, work=1.0, release=float("inf")),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ModelError):
            Job(**kwargs)


class TestTimes:
    def test_edge_time_scales_with_speed(self):
        job = Job(origin=0, work=3.0)
        assert job.edge_time(1.0) == 3.0
        assert job.edge_time(0.5) == 6.0
        assert job.edge_time(1 / 3) == pytest.approx(9.0)

    def test_cloud_time_includes_transfers(self):
        job = Job(origin=0, work=4.0, up=2.0, dn=1.0)
        assert job.cloud_time() == 7.0

    def test_cloud_time_with_speed(self):
        job = Job(origin=0, work=4.0, up=2.0, dn=1.0)
        assert job.cloud_time(2.0) == 5.0

    def test_zero_speed_rejected(self):
        job = Job(origin=0, work=1.0)
        with pytest.raises(ModelError):
            job.edge_time(0.0)
        with pytest.raises(ModelError):
            job.cloud_time(0.0)

    @given(work=time_amounts, up=comm_amounts, dn=comm_amounts)
    def test_cloud_time_at_speed_one_is_sum(self, work, up, dn):
        job = Job(origin=0, work=work, up=up, dn=dn)
        assert job.cloud_time(1.0) == pytest.approx(up + work + dn)

    @given(work=time_amounts)
    def test_slower_edge_never_faster(self, work):
        job = Job(origin=0, work=work)
        assert job.edge_time(0.3) >= job.edge_time(0.9)
