"""Tests for the independent schedule validator (Section III-B constraints)."""

import pytest

from repro.core.errors import ScheduleError
from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.core.schedule import Schedule
from repro.core.validation import assert_valid_schedule, validate_schedule


@pytest.fixture
def platform() -> Platform:
    return Platform.create([0.5, 0.5], n_cloud=2)


def make_instance(platform, jobs):
    return Instance.create(platform, jobs)


def valid_cloud_schedule(instance) -> Schedule:
    """Job 0 up 0-1, exec 1-3, dn 3-4 on cloud 0."""
    s = Schedule(instance)
    s.new_attempt(0, cloud(0))
    s.add_uplink(0, Interval(0, 1))
    s.add_execution(0, Interval(1, 3))
    s.add_downlink(0, Interval(3, 4))
    s.set_completion(0, 4.0)
    return s


class TestValidSchedules:
    def test_edge_execution(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=1.0)])
        s = Schedule(inst)
        s.new_attempt(0, edge(0))
        s.add_execution(0, Interval(0, 2))  # speed 0.5 -> needs 2 time units
        s.set_completion(0, 2.0)
        assert validate_schedule(s) == []

    def test_cloud_execution(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=2.0, up=1.0, dn=1.0)])
        assert validate_schedule(valid_cloud_schedule(inst)) == []

    def test_preempted_execution(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=1.0), Job(origin=0, work=1.0)])
        s = Schedule(inst)
        s.new_attempt(0, edge(0))
        s.add_execution(0, Interval(0, 1))
        s.add_execution(0, Interval(3, 4))
        s.set_completion(0, 4.0)
        s.new_attempt(1, edge(0))
        s.add_execution(1, Interval(1, 3))
        s.set_completion(1, 3.0)
        assert validate_schedule(s) == []

    def test_abandoned_attempt_then_reexecution(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=2.0, up=1.0, dn=1.0)])
        s = Schedule(inst)
        s.new_attempt(0, cloud(0))
        s.add_uplink(0, Interval(0, 0.5))  # partial uplink, abandoned
        s.new_attempt(0, edge(0))
        s.add_execution(0, Interval(0.5, 4.5))
        s.set_completion(0, 4.5)
        assert validate_schedule(s) == []

    def test_zero_downlink_job(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=1.0, up=1.0, dn=0.0)])
        s = Schedule(inst)
        s.new_attempt(0, cloud(0))
        s.add_uplink(0, Interval(0, 1))
        s.add_execution(0, Interval(1, 2))
        s.set_completion(0, 2.0)
        assert validate_schedule(s) == []


class TestViolations:
    def test_missing_job(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=1.0)])
        s = Schedule(inst)
        errs = validate_schedule(s)
        assert any("never scheduled" in e for e in errs)

    def test_incomplete_ok_when_not_required(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=1.0)])
        s = Schedule(inst)
        assert validate_schedule(s, require_complete=False) == []

    def test_wrong_edge_unit(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=1.0)])
        s = Schedule(inst)
        s.new_attempt(0, edge(1))
        s.add_execution(0, Interval(0, 2))
        s.set_completion(0, 2.0)
        errs = validate_schedule(s)
        assert any("migration" in e for e in errs)

    def test_start_before_release(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=1.0, release=5.0)])
        s = Schedule(inst)
        s.new_attempt(0, edge(0))
        s.add_execution(0, Interval(0, 2))
        s.set_completion(0, 2.0)
        errs = validate_schedule(s)
        assert any("before release" in e for e in errs)

    def test_insufficient_execution(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=2.0)])
        s = Schedule(inst)
        s.new_attempt(0, edge(0))
        s.add_execution(0, Interval(0, 1))  # needs 4 at speed 0.5
        s.set_completion(0, 1.0)
        errs = validate_schedule(s)
        assert any("final attempt execution amount" in e for e in errs)

    def test_excess_execution(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=1.0)])
        s = Schedule(inst)
        s.new_attempt(0, edge(0))
        s.add_execution(0, Interval(0, 10))
        s.set_completion(0, 10.0)
        errs = validate_schedule(s)
        assert any("exceeds required" in e for e in errs)

    def test_compute_before_uplink_done(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=2.0, up=2.0, dn=1.0)])
        s = Schedule(inst)
        s.new_attempt(0, cloud(0))
        s.add_uplink(0, Interval(0, 2))
        s.add_execution(0, Interval(1.5, 3.5))  # overlaps the uplink
        s.add_downlink(0, Interval(3.5, 4.5))
        s.set_completion(0, 4.5)
        errs = validate_schedule(s)
        assert any("before its uplink completes" in e for e in errs)

    def test_downlink_before_compute_done(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=2.0, up=1.0, dn=1.0)])
        s = Schedule(inst)
        s.new_attempt(0, cloud(0))
        s.add_uplink(0, Interval(0, 1))
        s.add_execution(0, Interval(1, 3))
        s.add_downlink(0, Interval(2.5, 3.5))
        s.set_completion(0, 3.5)
        errs = validate_schedule(s)
        assert any("downlink starts before" in e for e in errs)

    def test_edge_attempt_with_comms(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=1.0, up=1.0, dn=1.0)])
        s = Schedule(inst)
        s.new_attempt(0, edge(0))
        s.add_uplink(0, Interval(0, 1))
        s.add_execution(0, Interval(1, 3))
        s.set_completion(0, 3.0)
        errs = validate_schedule(s)
        assert any("must not communicate" in e for e in errs)

    def test_compute_overlap_on_processor(self, platform):
        inst = make_instance(
            platform, [Job(origin=0, work=1.0), Job(origin=0, work=1.0)]
        )
        s = Schedule(inst)
        for i in range(2):
            s.new_attempt(i, edge(0))
            s.add_execution(i, Interval(0, 2))
            s.set_completion(i, 2.0)
        errs = validate_schedule(s)
        assert any("compute on edge[0]" in e for e in errs)

    def test_one_port_uplink_violation(self, platform):
        # Two jobs from the same edge unit upload in parallel to two
        # different clouds: the shared *send* port forbids it.
        jobs = [Job(origin=0, work=1.0, up=2.0, dn=0.0) for _ in range(2)]
        inst = make_instance(platform, jobs)
        s = Schedule(inst)
        for i, k in enumerate((0, 1)):
            s.new_attempt(i, cloud(k))
            s.add_uplink(i, Interval(0, 2))
            s.add_execution(i, Interval(2, 3))
            s.set_completion(i, 3.0)
        errs = validate_schedule(s)
        assert any("send port" in e for e in errs)

    def test_one_port_cloud_receive_violation(self, platform):
        # Two jobs from different edge units upload to the same cloud
        # in parallel: the cloud's receive port forbids it.
        jobs = [Job(origin=0, work=1.0, up=2.0), Job(origin=1, work=1.0, up=2.0)]
        inst = make_instance(platform, jobs)
        s = Schedule(inst)
        for i in range(2):
            s.new_attempt(i, cloud(0))
            s.add_uplink(i, Interval(0, 2))
            s.add_execution(i, Interval(2 + i, 3 + i))
            s.set_completion(i, 3 + i)
        errs = validate_schedule(s)
        assert any("receive port" in e for e in errs)

    def test_full_duplex_send_and_receive_allowed(self, platform):
        # One edge unit sends job 0's uplink while receiving job 1's
        # downlink at the same moment: legal under full duplex.
        jobs = [
            Job(origin=0, work=1.0, up=2.0, dn=0.0),
            Job(origin=0, work=1.0, up=0.0, dn=2.0),
        ]
        inst = make_instance(platform, jobs)
        s = Schedule(inst)
        s.new_attempt(0, cloud(0))
        s.add_uplink(0, Interval(1, 3))
        s.add_execution(0, Interval(3, 4))
        s.set_completion(0, 4.0)
        s.new_attempt(1, cloud(1))
        s.add_execution(1, Interval(0, 1))
        s.add_downlink(1, Interval(1, 3))
        s.set_completion(1, 3.0)
        assert validate_schedule(s) == []

    def test_completion_mismatch(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=1.0)])
        s = Schedule(inst)
        s.new_attempt(0, edge(0))
        s.add_execution(0, Interval(0, 2))
        s.set_completion(0, 7.0)
        errs = validate_schedule(s)
        assert any("completion" in e for e in errs)

    def test_nonexistent_cloud(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=1.0)])
        s = Schedule(inst)
        s.new_attempt(0, cloud(9))
        s.set_completion(0, 1.0)
        errs = validate_schedule(s)
        assert any("nonexistent" in e for e in errs)


class TestAssertHelper:
    def test_raises_with_all_violations(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=1.0)])
        s = Schedule(inst)
        with pytest.raises(ScheduleError, match="never scheduled"):
            assert_valid_schedule(s)

    def test_passes_for_valid(self, platform):
        inst = make_instance(platform, [Job(origin=0, work=2.0, up=1.0, dn=1.0)])
        assert_valid_schedule(valid_cloud_schedule(inst))
