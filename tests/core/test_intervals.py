"""Tests for repro.core.intervals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import Interval, IntervalSet, intervals_disjoint, precedes


def ivs(*pairs):
    return [Interval(a, b) for a, b in pairs]


class TestInterval:
    def test_length(self):
        assert Interval(1.0, 3.5).length == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(1.0, 1.0)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_overlap_positive(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))

    def test_touching_does_not_overlap(self):
        assert not Interval(0, 2).overlaps(Interval(2, 4))

    def test_disjoint(self):
        assert not Interval(0, 1).overlaps(Interval(2, 3))

    def test_containment_counts_as_overlap(self):
        assert Interval(0, 10).overlaps(Interval(4, 5))

    def test_contains_time_half_open(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains_time(1.0)
        assert iv.contains_time(1.5)
        assert not iv.contains_time(2.0)
        assert not iv.contains_time(0.5)

    def test_ordering(self):
        assert Interval(0, 1) < Interval(1, 2)


class TestIntervalSet:
    def test_empty(self):
        s = IntervalSet()
        assert len(s) == 0
        assert not s
        assert s.total_length() == 0.0
        assert s.min_start() == float("inf")
        assert s.max_end() == float("-inf")

    def test_add_in_order(self):
        s = IntervalSet()
        s.add(Interval(0, 1))
        s.add(Interval(2, 3))
        assert s.total_length() == 2.0
        assert s.min_start() == 0.0
        assert s.max_end() == 3.0

    def test_adjacent_merged(self):
        s = IntervalSet()
        s.add(Interval(0, 1))
        s.add(Interval(1, 2))
        assert len(s) == 1
        assert s.intervals[0] == Interval(0, 2)

    def test_no_merge_mode(self):
        s = IntervalSet(merge_adjacent=False)
        s.add(Interval(0, 1))
        s.add(Interval(1, 2))
        assert len(s) == 2

    def test_overlap_rejected(self):
        s = IntervalSet()
        s.add(Interval(0, 2))
        with pytest.raises(ValueError):
            s.add(Interval(1, 3))

    def test_out_of_order_add(self):
        s = IntervalSet()
        s.add(Interval(4, 5))
        s.add(Interval(0, 1))
        assert [iv.start for iv in s] == [0, 4]

    def test_out_of_order_overlap_rejected(self):
        s = IntervalSet()
        s.add(Interval(4, 6))
        with pytest.raises(ValueError):
            s.add(Interval(3, 5))

    def test_constructor_sorts(self):
        s = IntervalSet(ivs((4, 5), (0, 1), (2, 3)))
        assert [iv.start for iv in s] == [0, 2, 4]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0.1, max_value=5, allow_nan=False),
            ),
            max_size=10,
        )
    )
    def test_total_length_is_sum_when_spread(self, raw):
        # Spread intervals far apart so they never overlap or touch.
        intervals = [
            Interval(1000.0 * i + start, 1000.0 * i + start + length)
            for i, (start, length) in enumerate(raw)
        ]
        s = IntervalSet(intervals)
        assert s.total_length() == pytest.approx(sum(iv.length for iv in intervals))


class TestDisjointCheck:
    def test_disjoint_lists(self):
        assert intervals_disjoint(ivs((0, 1), (4, 5)), ivs((2, 3), (6, 7)))

    def test_overlapping_lists(self):
        assert not intervals_disjoint(ivs((0, 3)), ivs((2, 4)))

    def test_touching_is_disjoint(self):
        assert intervals_disjoint(ivs((0, 2)), ivs((2, 4)))

    def test_empty_is_disjoint(self):
        assert intervals_disjoint([], ivs((0, 1)))


class TestPrecedes:
    def test_clear_precedence(self):
        assert precedes(IntervalSet(ivs((0, 1))), IntervalSet(ivs((2, 3))))

    def test_touching_precedence(self):
        assert precedes(IntervalSet(ivs((0, 2))), IntervalSet(ivs((2, 3))))

    def test_violation(self):
        assert not precedes(IntervalSet(ivs((0, 3))), IntervalSet(ivs((2, 4))))

    def test_empty_sets_trivially_precede(self):
        assert precedes(IntervalSet(), IntervalSet(ivs((0, 1))))
        assert precedes(IntervalSet(ivs((0, 1))), IntervalSet())
