"""Tests for repro.core.platform and repro.core.resources."""

import pytest

from repro.core.errors import ModelError
from repro.core.platform import Platform, uniform_cloud_platform
from repro.core.resources import Resource, ResourceKind, cloud, edge


class TestResource:
    def test_edge_helper(self):
        r = edge(2)
        assert r.kind is ResourceKind.EDGE
        assert r.index == 2
        assert r.is_edge and not r.is_cloud

    def test_cloud_helper(self):
        r = cloud(0)
        assert r.is_cloud and not r.is_edge

    def test_equality_and_hash(self):
        assert edge(1) == edge(1)
        assert edge(1) != cloud(1)
        assert len({edge(1), edge(1), cloud(1)}) == 2

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            edge(-1)

    def test_kind_type_checked(self):
        with pytest.raises(TypeError):
            Resource("edge", 0)

    def test_str(self):
        assert str(edge(3)) == "edge[3]"
        assert str(cloud(0)) == "cloud[0]"


class TestPlatform:
    def test_create_homogeneous_cloud(self):
        p = Platform.create([0.5, 0.1], n_cloud=3)
        assert p.n_edge == 2
        assert p.n_cloud == 3
        assert p.cloud_speeds == (1.0, 1.0, 1.0)

    def test_create_heterogeneous_cloud(self):
        p = Platform.create([0.5], cloud_speeds=[1.0, 2.0])
        assert p.cloud_speeds == (1.0, 2.0)

    def test_create_cloudless(self):
        p = Platform.create([1.0])
        assert p.n_cloud == 0

    def test_mismatched_cloud_spec_rejected(self):
        with pytest.raises(ModelError):
            Platform.create([1.0], n_cloud=2, cloud_speeds=[1.0])

    def test_no_edge_rejected(self):
        with pytest.raises(ModelError):
            Platform.create([], n_cloud=1)

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(ModelError):
            Platform.create([0.0], n_cloud=1)
        with pytest.raises(ModelError):
            Platform.create([0.5], cloud_speeds=[-1.0])

    def test_negative_cloud_count_rejected(self):
        with pytest.raises(ModelError):
            Platform.create([1.0], n_cloud=-1)

    def test_edge_speed_above_one_rejected(self):
        # The model normalizes edge speeds to the cloud's: s_j in (0, 1].
        with pytest.raises(ModelError, match=r"s_1 must lie in \(0, 1\]"):
            Platform.create([0.5, 1.5], n_cloud=1)
        Platform.create([1.0], n_cloud=1)  # the boundary itself is legal

    def test_nonfinite_speeds_rejected(self):
        with pytest.raises(ModelError):
            Platform.create([float("nan")], n_cloud=1)
        with pytest.raises(ModelError, match="finite"):
            Platform.create([0.5], cloud_speeds=[float("inf")])
        with pytest.raises(ModelError, match="finite"):
            Platform.create([0.5], cloud_speeds=[float("nan")])

    def test_speed_lookup(self):
        p = Platform.create([0.5, 0.1], cloud_speeds=[2.0])
        assert p.speed(edge(0)) == 0.5
        assert p.speed(edge(1)) == 0.1
        assert p.speed(cloud(0)) == 2.0

    def test_speed_out_of_range(self):
        p = Platform.create([0.5], n_cloud=1)
        with pytest.raises(ModelError):
            p.speed(edge(1))
        with pytest.raises(ModelError):
            p.speed(cloud(1))

    def test_resources_enumeration(self):
        p = Platform.create([0.5, 0.1], n_cloud=1)
        rs = list(p.resources())
        assert rs == [edge(0), edge(1), cloud(0)]
        assert list(p.cloud_resources()) == [cloud(0)]

    def test_validate_origin(self):
        p = Platform.create([0.5], n_cloud=0)
        p.validate_origin(0)
        with pytest.raises(ModelError):
            p.validate_origin(1)
        with pytest.raises(ModelError):
            p.validate_origin(-1)

    def test_uniform_helper(self):
        p = uniform_cloud_platform([0.1], 4)
        assert p.n_cloud == 4
        assert set(p.cloud_speeds) == {1.0}

    def test_immutable(self):
        p = Platform.create([0.5], n_cloud=1)
        with pytest.raises(AttributeError):
            p.edge_speeds = (1.0,)
