"""Tests for repro.core.schedule."""

import pytest

from repro.core.errors import ScheduleError
from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.core.schedule import Attempt, JobSchedule, Schedule


@pytest.fixture
def instance() -> Instance:
    platform = Platform.create([0.5], n_cloud=1)
    return Instance.create(
        platform,
        [Job(origin=0, work=1.0), Job(origin=0, work=2.0, up=1.0, dn=1.0)],
    )


class TestBuilding:
    def test_new_attempt_and_intervals(self, instance):
        s = Schedule(instance)
        s.new_attempt(0, edge(0))
        s.add_execution(0, Interval(0, 2))
        s.set_completion(0, 2.0)
        js = s.job_schedules[0]
        assert js.allocation == edge(0)
        assert js.completed
        assert js.completion == 2.0

    def test_cloud_attempt_phases(self, instance):
        s = Schedule(instance)
        s.new_attempt(1, cloud(0))
        s.add_uplink(1, Interval(0, 1))
        s.add_execution(1, Interval(1, 3))
        s.add_downlink(1, Interval(3, 4))
        a = s.job_schedules[1].final_attempt
        assert a.uplink.total_length() == 1.0
        assert a.execution.total_length() == 2.0
        assert a.downlink.total_length() == 1.0

    def test_reexecution_opens_second_attempt(self, instance):
        s = Schedule(instance)
        s.new_attempt(0, cloud(0))
        s.new_attempt(0, edge(0))
        js = s.job_schedules[0]
        assert len(js.attempts) == 2
        assert js.allocation == edge(0)

    def test_final_attempt_without_any_raises(self, instance):
        s = Schedule(instance)
        with pytest.raises(ScheduleError):
            _ = s.job_schedules[0].final_attempt

    def test_all_completed(self, instance):
        s = Schedule(instance)
        assert not s.all_completed
        for i in range(2):
            s.new_attempt(i, edge(0))
            s.set_completion(i, 1.0 + i)
        assert s.all_completed

    def test_makespan(self, instance):
        s = Schedule(instance)
        s.new_attempt(0, edge(0))
        s.set_completion(0, 5.0)
        assert s.makespan() == 5.0

    def test_makespan_empty(self, instance):
        assert Schedule(instance).makespan() == 0.0


class TestConstructionValidation:
    def test_mismatched_key_rejected(self, instance):
        with pytest.raises(ScheduleError):
            Schedule(instance, {0: JobSchedule(1)})

    def test_out_of_range_key_rejected(self, instance):
        with pytest.raises(ScheduleError):
            Schedule(instance, {7: JobSchedule(7)})


class TestAttemptCopy:
    def test_copy_is_independent(self):
        a = Attempt(edge(0))
        a.execution.add(Interval(0, 1))
        b = a.copy()
        b.execution.add(Interval(2, 3))
        assert a.execution.total_length() == 1.0
        assert b.execution.total_length() == 2.0
