"""Tests for the experiment runner and aggregation."""

import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.experiments.config import ExperimentSpec, SchedulerSpec, SweepPoint
from repro.experiments.runner import aggregate, run_cell, run_experiment
from repro.sim.availability import CloudAvailability
from repro.sim.hooks import EngineHooks, register_hook
from repro.util.rng import spawn_generator, spawn_generators


def tiny_instance(rng):
    platform = Platform.create([0.5], n_cloud=1)
    n = 4
    jobs = [
        Job(
            origin=0,
            work=float(rng.uniform(1, 3)),
            release=float(rng.uniform(0, 5)),
            up=1.0,
            dn=1.0,
        )
        for _ in range(n)
    ]
    return Instance.create(platform, jobs)


def tiny_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="tiny",
        x_label="x",
        points=(SweepPoint(x=1.0, make_instance=tiny_instance),),
        schedulers=(SchedulerSpec.named("srpt"), SchedulerSpec.named("greedy")),
        n_reps=3,
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestSpecValidation:
    def test_needs_points(self):
        with pytest.raises(ModelError):
            tiny_spec(points=())

    def test_needs_schedulers(self):
        with pytest.raises(ModelError):
            tiny_spec(schedulers=())

    def test_needs_positive_reps(self):
        with pytest.raises(ModelError):
            tiny_spec(n_reps=0)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ModelError):
            tiny_spec(schedulers=(SchedulerSpec.named("srpt"), SchedulerSpec.named("srpt")))


class TestRun:
    def test_row_count(self):
        rows = run_experiment(tiny_spec())
        assert len(rows) == 1 * 3 * 2  # points x reps x schedulers

    def test_rows_carry_metadata(self):
        rows = run_experiment(tiny_spec())
        assert {r.scheduler for r in rows} == {"srpt", "greedy"}
        assert all(r.experiment == "tiny" for r in rows)
        assert all(r.x == 1.0 for r in rows)
        assert all(r.max_stretch >= 1.0 - 1e-9 for r in rows)

    def test_reproducible(self):
        a = run_experiment(tiny_spec())
        b = run_experiment(tiny_spec())
        assert [r.max_stretch for r in a] == [r.max_stretch for r in b]

    def test_seed_changes_results(self):
        a = run_experiment(tiny_spec(seed=1))
        b = run_experiment(tiny_spec(seed=2))
        assert [r.max_stretch for r in a] != [r.max_stretch for r in b]

    def test_paired_instances_across_schedulers(self):
        # Both schedulers must see the same instance in each rep: their
        # event counts differ but n_events >= jobs' 3 events each.
        rows = run_experiment(tiny_spec())
        by_rep = {}
        for r in rows:
            by_rep.setdefault(r.rep, []).append(r)
        assert all(len(group) == 2 for group in by_rep.values())

    def test_availability_factory_used(self):
        calls = []

        def make_availability(instance, rng):
            calls.append(instance)
            return CloudAvailability.always_available()

        spec = tiny_spec(
            points=(
                SweepPoint(
                    x=1.0,
                    make_instance=tiny_instance,
                    make_availability=make_availability,
                ),
            )
        )
        run_experiment(spec)
        assert len(calls) == spec.n_reps

    def test_as_dict_roundtrip(self):
        rows = run_experiment(tiny_spec(n_reps=1))
        d = rows[0].as_dict()
        assert d["experiment"] == "tiny"
        assert "max_stretch" in d

    def test_pinned_cell_results(self):
        # Regression pin for the O(1) per-cell RNG derivation: run_cell
        # must keep drawing the exact streams the bulk-spawn runner drew
        # (spawn_generator(seed, i) == spawn_generators(seed, n)[i]), so
        # these literal results must never change.
        rows = run_experiment(tiny_spec())
        got = [(r.scheduler, r.rep, r.max_stretch.hex(), r.n_events) for r in rows]
        assert got == [
            ("srpt", 0, "0x1.dcc8fbaf5d4a4p+0", 16),
            ("greedy", 0, "0x1.950939cd41bfep+0", 16),
            ("srpt", 1, "0x1.b33819b9e76c0p+0", 16),
            ("greedy", 1, "0x1.ce619ba978c0dp+0", 14),
            ("srpt", 2, "0x1.83cfa22ffbf31p+0", 16),
            ("greedy", 2, "0x1.0bbd0f2f253acp+0", 16),
        ]

    def test_cell_rng_matches_bulk_spawn(self):
        # The cell at flat index i must see the stream bulk-spawn child i saw.
        spec = tiny_spec()
        n = len(spec.points) * spec.n_reps
        for i in range(n):
            a = spawn_generator(spec.seed, i).integers(0, 2**31, size=6).tolist()
            b = spawn_generators(spec.seed, n)[i].integers(0, 2**31, size=6).tolist()
            assert a == b

    def test_instrument_hooks_observe_runs(self):
        seen: list[int] = []

        class _Probe(EngineHooks):
            """Counts completed jobs per instrumented run."""

            def __init__(self):
                self.n = 0
                seen.append(id(self))

            def on_complete(self, job, time):
                self.n += 1

        register_hook("test-runner-probe", _Probe)
        spec = tiny_spec(n_reps=1)
        run_cell(spec, 0, 0, instrument=["test-runner-probe"])
        # One fresh hook per scheduler run.
        assert len(seen) == len(spec.schedulers)


class TestAggregate:
    def test_group_stats(self):
        rows = run_experiment(tiny_spec())
        agg = aggregate(rows)
        assert len(agg) == 2
        for a in agg:
            assert a.n == 3
            assert a.max_stretch_mean >= 1.0 - 1e-9
            assert a.max_stretch_std >= 0.0

    def test_single_rep_std_zero(self):
        rows = run_experiment(tiny_spec(n_reps=1))
        agg = aggregate(rows)
        assert all(a.max_stretch_std == 0.0 for a in agg)

    def test_empty(self):
        assert aggregate([]) == []

    def test_preserves_first_seen_order(self):
        rows = run_experiment(tiny_spec())
        agg = aggregate(rows)
        assert [a.scheduler for a in agg] == ["srpt", "greedy"]


class TestTelemetry:
    def test_uninstrumented_rows_have_none(self):
        rows = run_experiment(tiny_spec(n_reps=1))
        assert all(r.telemetry is None for r in rows)
        assert all(a.telemetry is None for a in aggregate(rows))

    def test_telemetry_excluded_from_csv_dict(self):
        rows = run_experiment(tiny_spec(n_reps=1), instrument=["jobstats"])
        assert rows[0].telemetry is not None
        assert "telemetry" not in rows[0].as_dict()

    def test_aggregate_merges_reps(self):
        spec = tiny_spec(n_reps=3)
        rows = run_experiment(spec, instrument=["jobstats"])
        agg = aggregate(rows)
        for a in agg:
            assert a.telemetry is not None
            assert a.telemetry["n_runs"] == 3
            completed = a.telemetry["metrics"]["jobs.completed"]
            # The counter sums across reps: 4 jobs per rep.
            assert completed["value"] == 12.0
