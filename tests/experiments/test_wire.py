"""Tests for the compact IPC wire format of the parallel harness."""

import pickle

import pytest

from repro.core.errors import ModelError
from repro.experiments.cli import build_spec
from repro.experiments.runner import run_cell
from repro.experiments.wire import (
    WIRE_VERSION,
    decode_rows,
    encode_rows,
    pack_rows,
    unpack_rows,
)
from repro.obs.monitors import DEFAULT_TELEMETRY_HOOKS


def _rows(instrument=None):
    spec = build_spec("ablation_alpha", n_reps=1, n_jobs=8, seed=11)
    return run_cell(spec, 0, 0, instrument=instrument)


class TestRoundTrip:
    def test_plain_rows_round_trip_exactly(self):
        rows = _rows()
        assert decode_rows(encode_rows(rows)) == rows

    def test_instrumented_rows_round_trip_exactly(self):
        # Telemetry dicts (nested metric maps, float lists) must come
        # back equal — this is what rides the pool in production sweeps.
        rows = _rows(instrument=DEFAULT_TELEMETRY_HOOKS)
        assert any(r.telemetry is not None for r in rows)
        decoded = decode_rows(encode_rows(rows))
        assert decoded == rows
        for a, b in zip(decoded, rows):
            assert a.telemetry == b.telemetry

    def test_traced_rows_round_trip_exactly(self):
        rows = _rows(instrument=("tracing",))
        assert any(r.trace is not None for r in rows)
        assert decode_rows(encode_rows(rows)) == rows

    def test_empty_cell(self):
        assert decode_rows(encode_rows([])) == []

    def test_packed_blob_round_trips_exactly(self):
        rows = _rows(instrument=DEFAULT_TELEMETRY_HOOKS)
        blob = pack_rows(rows)
        assert isinstance(blob, bytes)
        assert unpack_rows(blob) == rows


class TestCompression:
    def test_packing_shrinks_instrumented_payload(self):
        # The whole point: the deflated wire blob must be materially
        # smaller than pickling the raw dataclasses (telemetry floats
        # dominate; deflate crushes them ~7x).
        rows = _rows(instrument=DEFAULT_TELEMETRY_HOOKS)
        raw = len(pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL))
        assert len(pack_rows(rows)) < raw / 4


class TestVersionGuard:
    def test_version_mismatch_rejected(self):
        payload = encode_rows(_rows())
        stale = (WIRE_VERSION + 1,) + payload[1:]
        with pytest.raises(ModelError, match="wire version"):
            decode_rows(stale)
