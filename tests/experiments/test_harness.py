"""Tests for the sweep-harness throughput layers.

Warm worker state (scheduler/hook reuse) must be invisible in the
results; group-committed checkpoints must keep the kill/--resume
round-trip; and the ``harness.*`` self-telemetry must report exact
counter values (CI pins ceilings on these).
"""

import io
import json
import os

import pytest

from repro.core.errors import ModelError
from repro.experiments import cli
from repro.experiments.checkpoint import CheckpointStore
from repro.experiments.cli import build_spec
from repro.experiments.config import ExperimentSpec, SchedulerSpec, SweepPoint
from repro.experiments.parallel import (
    run_named_experiment_parallel,
    run_named_experiment_resilient,
)
from repro.experiments.runner import WarmState, run_cell, run_experiment
from repro.obs.harness import HarnessStats, ProgressReporter, _spearman
from repro.obs.monitors import DEFAULT_TELEMETRY_HOOKS
from repro.workloads.random_uniform import RandomInstanceConfig, generate_random_instance


def _tiny_instance(rng):
    return generate_random_instance(RandomInstanceConfig(n_jobs=6), seed=rng)


def _mixed_spec(n_reps=2, seed=0):
    """Reusable and non-reusable roster entries plus two points."""
    return ExperimentSpec(
        name="warm_mixed",
        x_label="x",
        points=(
            SweepPoint(x=1.0, make_instance=_tiny_instance, cost_hint=2.0),
            SweepPoint(x=2.0, make_instance=_tiny_instance, cost_hint=1.0),
        ),
        schedulers=(
            SchedulerSpec.named("srpt"),
            SchedulerSpec.named("random"),
            SchedulerSpec.named("ssf-edf"),
        ),
        n_reps=n_reps,
        seed=seed,
    )


cli._BUILDERS.setdefault(
    "test_warm_mixed", lambda n_reps=2, seed=0: _mixed_spec(n_reps, seed)
)


def full_rows_json(rows):
    """Rows incl. telemetry as canonical JSON, wall-clock excluded."""
    return json.dumps(
        [
            {
                **r.as_dict(),
                "wall_time": None,
                "telemetry": r.telemetry,
                "trace": r.trace,
            }
            for r in rows
        ],
        sort_keys=True,
    )


class TestWarmState:
    def test_warm_rows_byte_identical_to_cold(self):
        spec = _mixed_spec()
        warm = WarmState()
        cold_rows, warm_rows = [], []
        for p in range(len(spec.points)):
            for rep in range(spec.n_reps):
                cold_rows.extend(
                    run_cell(spec, p, rep, instrument=DEFAULT_TELEMETRY_HOOKS)
                )
                warm_rows.extend(
                    run_cell(
                        spec, p, rep, instrument=DEFAULT_TELEMETRY_HOOKS, warm=warm
                    )
                )
        assert full_rows_json(warm_rows) == full_rows_json(cold_rows)

    def test_warm_reuses_reusable_schedulers_only(self):
        spec = _mixed_spec()
        warm = WarmState()
        rng = object()  # factories of reusable entries must ignore it

        srpt_a = warm.scheduler_for(0, spec.schedulers[0], rng)
        srpt_b = warm.scheduler_for(0, spec.schedulers[0], rng)
        assert srpt_a is srpt_b  # cached

        import numpy as np

        real_rng = np.random.default_rng(0)
        rand_a = warm.scheduler_for(1, spec.schedulers[1], real_rng)
        rand_b = warm.scheduler_for(1, spec.schedulers[1], real_rng)
        assert rand_a is not rand_b  # rebuilt every run

    def test_random_is_flagged_non_reusable(self):
        assert SchedulerSpec.named("random").reusable is False
        assert SchedulerSpec.named("srpt").reusable is True
        assert SchedulerSpec.named("ssf-edf").reusable is True

    def test_warm_hooks_reset_between_runs(self):
        warm = WarmState()
        hooks_a = warm.hooks_for(("util",))
        hooks_a[0]._segments.append((0.0, 1.0, 1, 0, 0, 0))
        hooks_b = warm.hooks_for(("util",))
        assert hooks_b[0] is hooks_a[0]  # same object...
        assert hooks_b[0]._segments == []  # ...fresh state

    def test_instance_builds_counted_once_per_cell(self):
        spec = _mixed_spec(n_reps=3)
        warm = WarmState()
        for p in range(2):
            for rep in range(3):
                run_cell(spec, p, rep, warm=warm)
        assert warm.instance_builds == 6  # == n_points * n_reps


class TestPooledIdentity:
    def test_serial_pooled_resumed_byte_identical(self, tmp_path):
        serial = run_experiment(_mixed_spec(), instrument=DEFAULT_TELEMETRY_HOOKS)
        pooled = run_named_experiment_parallel(
            "test_warm_mixed", n_workers=2, instrument=DEFAULT_TELEMETRY_HOOKS
        )
        assert full_rows_json(pooled) == full_rows_json(serial)

        path = str(tmp_path / "cells.jsonl")
        first = run_named_experiment_resilient(
            "test_warm_mixed",
            n_workers=2,
            instrument=DEFAULT_TELEMETRY_HOOKS,
            checkpoint_path=path,
            checkpoint_group=3,
        )
        assert full_rows_json(first.rows) == full_rows_json(serial)
        resumed = run_named_experiment_resilient(
            "test_warm_mixed",
            n_workers=2,
            instrument=DEFAULT_TELEMETRY_HOOKS,
            checkpoint_path=path,
            resume=True,
            checkpoint_group=3,
        )
        assert resumed.n_from_checkpoint == 4
        assert resumed.n_executed == 0
        assert full_rows_json(resumed.rows) == full_rows_json(serial)


class TestGroupCommit:
    def _store(self, tmp_path, group_size, name="gc"):
        path = str(tmp_path / f"{name}.jsonl")
        spec = _mixed_spec(n_reps=4)
        rows = {
            rep: run_cell(spec, 0, rep) for rep in range(4)
        }
        store = CheckpointStore(
            path,
            experiment="test_warm_mixed",
            overrides={},
            group_size=group_size,
        )
        store.start(fresh=True)
        return path, rows, store

    def test_uncommitted_group_tail_is_lost_not_torn(self, tmp_path):
        # 4 appends at group size 3: one commit of 3, one record still
        # buffered.  A kill here (simulated by abandoning the store
        # without close) loses exactly the buffered record and the file
        # stays valid.
        path, rows, store = self._store(tmp_path, group_size=3)
        for rep, cell_rows in rows.items():
            store.append(0, rep, cell_rows)
        store._fh.close()  # kill: buffered record never committed
        reread = CheckpointStore(path, experiment="test_warm_mixed", overrides={})
        assert sorted(reread.load_completed()) == [(0, 0), (0, 1), (0, 2)]

    def test_close_commits_the_remainder(self, tmp_path):
        path, rows, store = self._store(tmp_path, group_size=3, name="gc2")
        for rep, cell_rows in rows.items():
            store.append(0, rep, cell_rows)
        store.close()
        reread = CheckpointStore(path, experiment="test_warm_mixed", overrides={})
        assert len(reread.load_completed()) == 4

    def test_group_size_one_commits_immediately(self, tmp_path):
        path, rows, store = self._store(tmp_path, group_size=1, name="gc3")
        store.append(0, 0, rows[0])
        with open(path) as fh:
            kinds = [json.loads(line)["kind"] for line in fh]
        assert kinds == ["header", "cell"]
        store.close()

    def test_group_size_validated(self, tmp_path):
        with pytest.raises(ModelError, match="group_size"):
            CheckpointStore(
                str(tmp_path / "bad.jsonl"),
                experiment="x",
                overrides={},
                group_size=0,
            )
        with pytest.raises(ModelError, match="checkpoint_group"):
            run_named_experiment_resilient("test_warm_mixed", checkpoint_group=0)


class TestRetryBackoffIdentity:
    def test_flaky_cell_with_backoff_matches_serial(self, tmp_path, monkeypatch):
        # Re-runs after a backoff pause must produce the same bytes the
        # cell would have produced on a clean first attempt.
        monkeypatch.setenv(
            "REPRO_TEST_RESILIENT_MARKER", str(tmp_path / "flaky.marker")
        )
        import tests.experiments.test_resilient as res

        outcome = run_named_experiment_resilient(
            "test_res_flaky",
            n_workers=2,
            on_error="retry",
            retry_backoff=0.05,
        )
        assert outcome.quarantined == []
        # The marker now exists, so a serial run reproduces cleanly.
        serial = run_experiment(
            build_spec("test_res_flaky", n_reps=None, n_jobs=None, seed=None)
        )
        assert res.row_key(outcome.rows) == res.row_key(serial)


class TestHarnessStats:
    def test_exact_counters_on_a_pooled_sweep(self):
        stats = HarnessStats()
        rows = run_named_experiment_parallel(
            "test_warm_mixed",
            n_workers=2,
            instrument=DEFAULT_TELEMETRY_HOOKS,
            stats=stats,
        )
        n_cells = 4  # 2 points x 2 reps
        assert stats.cells == n_cells
        # Warm-path ceilings CI pins: every cell builds exactly one
        # instance; each worker builds the spec at most once; the pool
        # never dies on a healthy sweep.
        assert stats.instance_builds == n_cells
        assert 1 <= stats.spec_builds <= stats.n_workers
        assert stats.pool_rebuilds == 0
        # Deflated instrumented cells stay well under the raw ~22 KB.
        assert 0 < stats.pickle_bytes / stats.cells < 8000
        assert stats.elapsed_s > 0
        assert len(rows) == n_cells * 3

    def test_inline_sweep_counters(self):
        stats = HarnessStats()
        run_named_experiment_parallel("test_warm_mixed", n_workers=1, stats=stats)
        assert stats.n_workers == 1
        assert stats.window == 1
        assert stats.cells == 4
        assert stats.instance_builds == 4
        assert stats.pickle_bytes == 0  # nothing crossed a pipe

    def test_telemetry_snapshot_shape(self):
        stats = HarnessStats(n_workers=2, window=4, elapsed_s=2.0)
        stats.record_cell(cost=2.0, wall_s=1.0, payload_bytes=100)
        stats.record_cell(cost=1.0, wall_s=0.5, payload_bytes=50)
        snap = stats.to_telemetry().to_dict()
        metrics = snap["metrics"]
        assert metrics["harness.cells"]["value"] == 2
        assert metrics["harness.pickle.bytes"]["value"] == 150
        assert metrics["harness.cells_per_sec"]["sum"] == pytest.approx(1.0)
        # busy_frac: 1.5s of cell wall over 2 workers * 2s elapsed.
        assert metrics["harness.busy_frac"]["sum"] == pytest.approx(0.375)
        assert metrics["harness.dispatch.rank_corr"]["sum"] == pytest.approx(1.0)

    def test_spearman_basics(self):
        assert _spearman([1.0, 2.0, 3.0], [10.0, 20.0, 30.0]) == pytest.approx(1.0)
        assert _spearman([1.0, 2.0, 3.0], [3.0, 2.0, 1.0]) == pytest.approx(-1.0)
        assert _spearman([1.0, 1.0], [1.0, 2.0]) is None  # constant side
        assert _spearman([1.0], [1.0]) is None


class TestProgressReporter:
    def test_prints_rate_and_eta_lines(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            "demo", 3, enabled=True, min_interval_s=0.0, stream=stream
        )
        for _ in range(3):
            reporter.cell_done()
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert "[demo] 3/3 cells" in lines[-1]
        assert "cells/s" in lines[-1]

    def test_disabled_reporter_is_silent(self):
        stream = io.StringIO()
        reporter = ProgressReporter("demo", 2, enabled=False, stream=stream)
        reporter.cell_done()
        reporter.cell_done()
        assert stream.getvalue() == ""


class TestCliProgressFlag:
    def test_progress_writes_stderr_not_rows(self, tmp_path, capsys):
        csv_plain = str(tmp_path / "plain.csv")
        csv_progress = str(tmp_path / "progress.csv")
        assert cli.main(["test_warm_mixed", "--quiet", "--csv", csv_plain]) == 0
        capsys.readouterr()
        assert (
            cli.main(
                ["test_warm_mixed", "--quiet", "--progress", "--csv", csv_progress]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "cells" in err

        def stable(path):
            # Drop the wall-time column (machine noise), keep the rest.
            import csv as csvmod

            with open(path) as fh:
                rows = list(csvmod.DictReader(fh))
            for row in rows:
                row.pop("wall_time", None)
            return rows

        assert stable(csv_progress) == stable(csv_plain)
