"""Tests for the repro-simulate CLI."""

import json

import pytest

from repro.io.json_format import instance_to_dict, load_schedule
from repro.simulate_cli import main
from repro.workloads.random_uniform import RandomInstanceConfig, generate_random_instance


@pytest.fixture
def instance_file(tmp_path):
    inst = generate_random_instance(RandomInstanceConfig(n_jobs=5), seed=1)
    path = tmp_path / "inst.json"
    path.write_text(json.dumps(instance_to_dict(inst)))
    return str(path)


class TestMain:
    def test_load_and_simulate(self, instance_file, capsys):
        rc = main([instance_file, "--policy", "srpt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "max-stretch:" in out
        assert "validated:    OK" in out

    def test_generate_random(self, capsys):
        rc = main(["--generate", "random", "--n-jobs", "5", "--policy", "greedy"])
        assert rc == 0
        assert "greedy" in capsys.readouterr().out

    def test_generate_kang(self, capsys):
        rc = main(["--generate", "kang", "--n-jobs", "5", "--policy", "ssf-edf"])
        assert rc == 0

    def test_gantt_flag(self, instance_file, capsys):
        main([instance_file, "--gantt", "--width", "40"])
        out = capsys.readouterr().out
        assert "jobs:" in out
        assert "|" in out

    def test_breakdown_flag(self, instance_file, capsys):
        main([instance_file, "--breakdown"])
        out = capsys.readouterr().out
        assert "wait%" in out

    def test_save_schedule(self, instance_file, tmp_path, capsys):
        target = tmp_path / "sched.json"
        rc = main([instance_file, "--save-schedule", str(target)])
        assert rc == 0
        schedule = load_schedule(target)
        assert schedule.all_completed

    def test_random_policy_seeded(self, instance_file, capsys):
        rc = main([instance_file, "--policy", "random", "--seed", "3"])
        assert rc == 0

    def test_missing_input_rejected(self):
        with pytest.raises(SystemExit):
            main(["--policy", "srpt"])

    def test_fairness_flag(self, instance_file, capsys):
        rc = main([instance_file, "--fairness"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Jain" in out
        assert "tail ratio" in out

    def test_svg_gantt_flag(self, instance_file, tmp_path, capsys):
        import xml.etree.ElementTree as ET

        target = tmp_path / "gantt.svg"
        rc = main([instance_file, "--svg-gantt", str(target)])
        assert rc == 0
        ET.parse(target)

    def test_instrument_prints_utilization(self, instance_file, capsys):
        rc = main([instance_file, "--policy", "srpt", "--instrument", "util"])
        assert rc == 0
        assert "utilization:" in capsys.readouterr().out

    def test_telemetry_out_writes_one_record(self, instance_file, tmp_path, capsys):
        from repro.obs.sinks import read_telemetry_jsonl

        target = tmp_path / "tel.jsonl"
        rc = main(
            [instance_file, "--policy", "srpt", "--telemetry-out", str(target)]
        )
        assert rc == 0
        (record,) = read_telemetry_jsonl(str(target))
        assert record["experiment"] == "simulate"
        assert record["scheduler"] == "srpt"
        assert record["x"] is None and record["n"] == 1
        # --telemetry-out implies the default telemetry hooks.
        assert "jobs.stretch" in record["telemetry"]["metrics"]

    def test_trace_out_writes_readable_trace(self, tmp_path, capsys):
        from repro.obs.tracing import read_trace_jsonl

        target = tmp_path / "run.trace.jsonl"
        chrome = tmp_path / "run.chrome.json"
        rc = main(
            [
                "--generate", "random", "--n-jobs", "10",
                "--policy", "ssf-edf",
                "--trace-out", str(target),
                "--trace-chrome", str(chrome),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace written to" in out and "Chrome trace written to" in out
        payload = read_trace_jsonl(str(target))
        assert payload["n_jobs"] == 10
        # Every non-empty decision carries provenance; only the empty
        # "no live jobs" decisions legitimately lack one.
        assert any(d["provenance"] is not None for d in payload["decisions"])
        for d in payload["decisions"]:
            if d["provenance"] is None:
                assert d["n_assignments"] == 0
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]

    def test_watermark_prints_argmax(self, instance_file, capsys):
        rc = main([instance_file, "--policy", "srpt", "--watermark"])
        assert rc == 0
        assert "argmax: job " in capsys.readouterr().out

    def test_fault_injection_flags(self, capsys):
        rc = main(
            [
                "--generate", "random", "--n-jobs", "20",
                "--policy", "ssf-edf",
                "--fault-mtbf", "50", "--fault-seed", "3",
            ]
        )
        out = capsys.readouterr().out
        # The faulty schedule must still validate against the model.
        assert rc == 0
        assert "validated:    OK" in out
        assert "faults:" in out and "crashes" in out

    def test_fault_runs_reproduce(self, capsys):
        argv = [
            "--generate", "random", "--n-jobs", "15",
            "--policy", "greedy", "--fault-mtbf", "40",
        ]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first

    def test_mttr_requires_mtbf(self, instance_file):
        with pytest.raises(SystemExit):
            main([instance_file, "--fault-mttr", "2.0"])
