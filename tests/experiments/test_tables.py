"""Tests for table rendering and CSV export."""

from repro.experiments.runner import AggregateRow, ResultRow
from repro.experiments.tables import (
    format_series_table,
    format_timing_table,
    rows_to_csv,
)


def agg_row(x, scheduler, mean, std=0.1, n=3):
    return AggregateRow(
        experiment="e",
        x=x,
        scheduler=scheduler,
        n=n,
        max_stretch_mean=mean,
        max_stretch_std=std,
        avg_stretch_mean=mean / 2,
        wall_time_mean=0.01,
        reexec_mean=0.0,
    )


def result_row(x=1.0, scheduler="srpt", rep=0):
    return ResultRow(
        experiment="e",
        x=x,
        scheduler=scheduler,
        rep=rep,
        max_stretch=2.0,
        avg_stretch=1.5,
        makespan=10.0,
        wall_time=0.01,
        n_events=12,
        n_reexecutions=0,
    )


class TestSeriesTable:
    def test_layout(self):
        agg = [agg_row(0.1, "srpt", 1.5), agg_row(0.1, "greedy", 2.5),
               agg_row(1.0, "srpt", 1.8), agg_row(1.0, "greedy", 2.1)]
        text = format_series_table(agg, x_label="CCR")
        lines = text.splitlines()
        assert lines[0].split()[0] == "CCR"
        assert "srpt" in lines[0] and "greedy" in lines[0]
        assert len(lines) == 4  # header + rule + 2 x-values

    def test_values_present(self):
        text = format_series_table([agg_row(0.5, "srpt", 1.234)])
        assert "1.234" in text
        assert "±0.10" in text

    def test_missing_cell_dash(self):
        agg = [agg_row(0.1, "srpt", 1.5), agg_row(1.0, "greedy", 2.0)]
        assert "-" in format_series_table(agg)

    def test_single_rep_no_spread(self):
        text = format_series_table([agg_row(0.5, "srpt", 1.2, n=1)])
        assert "±" not in text

    def test_empty(self):
        assert format_series_table([]) == "(no data)"


class TestTimingTable:
    def test_contains_seconds(self):
        text = format_timing_table([agg_row(0.5, "srpt", 1.2)])
        assert "0.0100" in text

    def test_empty(self):
        assert format_timing_table([]) == "(no data)"


class TestCsv:
    def test_header_and_rows(self):
        text = rows_to_csv([result_row(), result_row(rep=1)])
        lines = text.strip().splitlines()
        assert lines[0].startswith("experiment,x,scheduler,rep")
        assert len(lines) == 3

    def test_empty(self):
        assert rows_to_csv([]) == ""
