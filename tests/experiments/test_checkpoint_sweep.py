"""Checkpointed experiment sweeps: roster wiring, determinism, backoff.

The degradation study's checkpoint variant must add its roster entries
without perturbing the baseline columns, produce bit-identical rows
serially and across a process pool, and surface abandoned jobs in an
explicit column.  The harness-side retry backoff is pure arithmetic and
is pinned exactly.
"""

import pytest

from repro.experiments.cli import build_spec
from repro.experiments.parallel import (
    MAX_BACKOFF_S,
    _backoff_delay,
    run_named_experiment_parallel,
)
from repro.experiments.runner import run_experiment

_CKPT_KW = dict(
    n_reps=1,
    n_jobs=10,
    seed=6,
    failure_aware=True,
    checkpoint_interval=1.0,
    checkpoint_cost=0.05,
    retry_budget=4,
)


def row_key(rows):
    return [
        (r.x, r.scheduler, r.rep, r.max_stretch, r.n_events, r.n_abandoned)
        for r in rows
    ]


class TestCheckpointRoster:
    def test_checkpoint_variant_appends_labeled_entries(self):
        base = build_spec(
            "degradation_mtbf", n_reps=1, n_jobs=10, seed=6, failure_aware=True
        )
        ckpt = build_spec("degradation_mtbf", **_CKPT_KW)
        names = [s.label for s in ckpt.schedulers]
        assert names[: len(base.schedulers)] == [s.label for s in base.schedulers]
        assert names[-2:] == ["ssf-edf-fa+ckpt", "ssf-edf-fa-rework+ckpt"]

    def test_baseline_columns_unperturbed_by_checkpoint_entries(self):
        base_rows = run_experiment(
            build_spec(
                "degradation_mtbf", n_reps=1, n_jobs=10, seed=6, failure_aware=True
            )
        )
        ckpt_rows = run_experiment(build_spec("degradation_mtbf", **_CKPT_KW))
        base_labels = {r.scheduler for r in base_rows}
        shared = [r for r in ckpt_rows if r.scheduler in base_labels]
        assert row_key(shared) == row_key(base_rows)

    def test_abandoned_jobs_column_present(self):
        rows = run_experiment(build_spec("degradation_mtbf", **_CKPT_KW))
        assert all(hasattr(r, "n_abandoned") for r in rows)
        # Baseline (budget-less) entries never abandon.
        assert all(
            r.n_abandoned == 0 for r in rows if not r.scheduler.endswith("+ckpt")
        )


class TestSerialParallelIdentity:
    def test_checkpointed_sweep_bit_identical_across_pool(self):
        serial = run_experiment(build_spec("degradation_mtbf", **_CKPT_KW))
        pooled = run_named_experiment_parallel(
            "degradation_mtbf", n_workers=2, **_CKPT_KW
        )
        assert row_key(serial) == row_key(pooled)

    def test_fault_groups_ride_the_overrides(self):
        kw = dict(n_reps=1, n_jobs=10, seed=6, fault_groups="edge:0-4;link:0-4")
        serial = run_experiment(build_spec("degradation_mtbf", **kw))
        pooled = run_named_experiment_parallel("degradation_mtbf", n_workers=2, **kw)
        assert row_key(serial) == row_key(pooled)
        # The grouped realization must actually differ from independent.
        independent = run_experiment(
            build_spec("degradation_mtbf", n_reps=1, n_jobs=10, seed=6)
        )
        assert row_key(serial) != row_key(independent)


class TestBackoffArithmetic:
    def test_exponential_schedule(self):
        assert _backoff_delay(1.0, 1) == 1.0
        assert _backoff_delay(1.0, 2) == 2.0
        assert _backoff_delay(1.0, 3) == 4.0
        assert _backoff_delay(0.5, 4) == 4.0

    def test_zero_base_disables(self):
        for attempt in (1, 5, 20):
            assert _backoff_delay(0.0, attempt) == 0.0

    def test_capped_at_max(self):
        assert _backoff_delay(1.0, 50) == MAX_BACKOFF_S
        assert _backoff_delay(10.0, 3, cap=15.0) == 15.0
