"""Tests for the crash-safe sweep harness.

Covers the cell timeout guard, the fail/skip/retry policies, the JSONL
checkpoint (torn tails, header pinning) with --resume, and survival of
a worker process dying mid-sweep (a real SIGKILL).  Builders register
at module level so forked pool workers inherit them by name.
"""

import json
import os
import signal
import time

import pytest

from repro.core.errors import CellTimeoutError, ModelError
from repro.experiments import cli
from repro.experiments.checkpoint import CheckpointStore
from repro.experiments.config import ExperimentSpec, SchedulerSpec, SweepPoint
from repro.experiments.parallel import (
    run_named_experiment_parallel,
    run_named_experiment_resilient,
)
from repro.experiments.runner import run_experiment
from repro.workloads.random_uniform import RandomInstanceConfig, generate_random_instance

_MARKER_ENV = "REPRO_TEST_RESILIENT_MARKER"


def _tiny_instance(rng):
    return generate_random_instance(RandomInstanceConfig(n_jobs=6), seed=rng)


def _tiny_point(make_instance=_tiny_instance):
    return SweepPoint(x=1.0, make_instance=make_instance)


def _sleepy_instance(rng):
    time.sleep(5.0)
    return _tiny_instance(rng)  # pragma: no cover - the alarm fires first


def _flaky_instance(rng):
    """Fails on the first call, succeeds forever after (marker file)."""
    marker = os.environ[_MARKER_ENV]
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("tried")
        raise RuntimeError("flaky first attempt")
    return _tiny_instance(rng)


def _kill_once_instance(rng):
    """SIGKILLs its own process on the first call only (marker file)."""
    marker = os.environ[_MARKER_ENV]
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("killed")
        os.kill(os.getpid(), signal.SIGKILL)
    return _tiny_instance(rng)


def _exploding_instance(rng):
    raise RuntimeError("always fails")


def _spec_of(make_instance, name, n_reps=2, seed=0):
    return ExperimentSpec(
        name=name,
        x_label="x",
        points=(_tiny_point(make_instance),),
        schedulers=(SchedulerSpec.named("srpt"),),
        n_reps=n_reps,
        seed=seed,
    )


cli._BUILDERS.setdefault(
    "test_res_ok", lambda n_reps=3, seed=0: _spec_of(_tiny_instance, "ok", n_reps, seed)
)
cli._BUILDERS.setdefault(
    "test_res_sleepy",
    lambda n_reps=1, seed=0: _spec_of(_sleepy_instance, "sleepy", n_reps, seed),
)
cli._BUILDERS.setdefault(
    "test_res_flaky",
    lambda n_reps=1, seed=0: _spec_of(_flaky_instance, "flaky", n_reps, seed),
)
cli._BUILDERS.setdefault(
    "test_res_kill",
    lambda n_reps=2, seed=0: _spec_of(_kill_once_instance, "kill", n_reps, seed),
)
cli._BUILDERS.setdefault(
    "test_res_boom",
    lambda n_reps=2, seed=0: _spec_of(_exploding_instance, "boom", n_reps, seed),
)


def row_key(rows):
    return [(r.x, r.scheduler, r.rep, r.max_stretch, r.n_events) for r in rows]


class TestResilientMatchesSerial:
    def test_rows_identical_to_fast_paths(self):
        outcome = run_named_experiment_resilient("test_res_ok", n_workers=1)
        fast = run_named_experiment_parallel("test_res_ok", n_workers=1)
        assert row_key(outcome.rows) == row_key(fast)
        assert outcome.quarantined == []
        assert outcome.n_executed == 3
        assert outcome.n_from_checkpoint == 0

    def test_input_validation(self):
        with pytest.raises(ModelError, match="on_error"):
            run_named_experiment_resilient("test_res_ok", on_error="explode")
        with pytest.raises(ModelError, match="max_retries"):
            run_named_experiment_resilient("test_res_ok", max_retries=-1)
        with pytest.raises(ModelError, match="checkpoint_path"):
            run_named_experiment_resilient("test_res_ok", resume=True)
        with pytest.raises(ModelError, match="unknown experiment"):
            run_named_experiment_resilient("no_such_thing")


@pytest.mark.skipif(not hasattr(signal, "SIGALRM"), reason="needs SIGALRM")
class TestTimeout:
    def test_timeout_fails_fast(self):
        with pytest.raises(ModelError, match="CellTimeoutError") as info:
            run_named_experiment_resilient(
                "test_res_sleepy", n_workers=1, timeout_s=0.2
            )
        assert isinstance(info.value.__cause__, CellTimeoutError)

    def test_timeout_skip_quarantines(self):
        outcome = run_named_experiment_resilient(
            "test_res_sleepy", n_workers=1, timeout_s=0.2, on_error="skip"
        )
        assert outcome.rows == []
        [q] = outcome.quarantined
        assert (q.point, q.rep, q.attempts) == (0, 0, 1)
        assert "CellTimeoutError" in q.error


class TestRetryPolicy:
    def test_retry_recovers_flaky_cell(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_MARKER_ENV, str(tmp_path / "flaky.marker"))
        outcome = run_named_experiment_resilient(
            "test_res_flaky", n_workers=1, on_error="retry", max_retries=2
        )
        assert outcome.quarantined == []
        assert len(outcome.rows) == 1

    def test_retry_budget_exhausted_quarantines(self):
        outcome = run_named_experiment_resilient(
            "test_res_boom", n_workers=1, on_error="retry", max_retries=1
        )
        assert outcome.rows == []
        assert [(q.point, q.rep) for q in outcome.quarantined] == [(0, 0), (0, 1)]
        assert all(q.attempts == 2 for q in outcome.quarantined)
        assert "always fails" in outcome.quarantined[0].error

    def test_fail_policy_chains_original_error(self):
        with pytest.raises(ModelError, match=r"cell \(point=0, rep=\d\)") as info:
            run_named_experiment_resilient("test_res_boom", n_workers=1)
        assert isinstance(info.value.__cause__, RuntimeError)


class TestCheckpointResume:
    def test_resume_skips_completed_cells(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")
        full = run_named_experiment_resilient(
            "test_res_ok", n_workers=1, checkpoint_path=path
        )
        assert full.n_executed == 3
        resumed = run_named_experiment_resilient(
            "test_res_ok", n_workers=1, checkpoint_path=path, resume=True
        )
        assert resumed.n_executed == 0
        assert resumed.n_from_checkpoint == 3
        assert row_key(resumed.rows) == row_key(full.rows)

    def test_partial_checkpoint_with_torn_tail(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")
        full = run_named_experiment_resilient(
            "test_res_ok", n_workers=1, checkpoint_path=path
        )
        with open(path) as fh:
            lines = fh.readlines()
        # Keep the header + first cell, then a torn (half-written) record.
        with open(path, "w") as fh:
            fh.writelines(lines[:2])
            fh.write(lines[2][: len(lines[2]) // 2])
        resumed = run_named_experiment_resilient(
            "test_res_ok", n_workers=1, checkpoint_path=path, resume=True
        )
        assert resumed.n_from_checkpoint == 1
        assert resumed.n_executed == 2
        assert row_key(resumed.rows) == row_key(full.rows)
        # The repaired file now holds every cell, cleanly terminated.
        store = CheckpointStore(path, experiment="test_res_ok", overrides=_OVERRIDES)
        assert len(store.load_completed()) == 3

    def test_mismatched_header_refused(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")
        run_named_experiment_resilient("test_res_ok", n_workers=1, checkpoint_path=path)
        with pytest.raises(ModelError, match="overrides"):
            run_named_experiment_resilient(
                "test_res_ok", n_workers=1, seed=99, checkpoint_path=path, resume=True
            )
        other = CheckpointStore(path, experiment="other_exp", overrides=_OVERRIDES)
        with pytest.raises(ModelError, match="belongs to experiment"):
            other.load_completed()

    def test_corrupt_line_rejected(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")
        run_named_experiment_resilient("test_res_ok", n_workers=1, checkpoint_path=path)
        with open(path, "a") as fh:
            fh.write("not json\n")
        store = CheckpointStore(path, experiment="test_res_ok", overrides=_OVERRIDES)
        with pytest.raises(ModelError, match="corrupt checkpoint"):
            store.load_completed()

    def test_fresh_start_truncates(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")
        run_named_experiment_resilient("test_res_ok", n_workers=1, checkpoint_path=path)
        run_named_experiment_resilient(
            "test_res_ok", n_workers=1, checkpoint_path=path, resume=False
        )
        with open(path) as fh:
            records = [json.loads(line) for line in fh]
        # One header + exactly one record per cell: no stale duplicates.
        assert [r["kind"] for r in records] == ["header"] + ["cell"] * 3


_OVERRIDES = {"n_reps": None, "n_jobs": None, "seed": None}


class TestWorkerDeath:
    def test_sigkilled_worker_does_not_lose_the_sweep(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_MARKER_ENV, str(tmp_path / "kill.marker"))
        path = str(tmp_path / "cells.jsonl")
        outcome = run_named_experiment_resilient(
            "test_res_kill",
            n_workers=2,
            on_error="retry",
            checkpoint_path=path,
        )
        assert outcome.quarantined == []
        assert len(outcome.rows) == 2
        # Both cells made it to disk despite the pool dying once.
        store = CheckpointStore(path, experiment="test_res_kill", overrides=_OVERRIDES)
        assert len(store.load_completed()) == 2

    def test_worker_death_under_fail_policy_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_MARKER_ENV, str(tmp_path / "kill2.marker"))
        with pytest.raises(ModelError, match="worker process died"):
            run_named_experiment_resilient("test_res_kill", n_workers=2)


class TestCliIntegration:
    def test_cli_checkpoint_resume_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "cells.jsonl")
        argv = ["test_res_ok", "--workers", "1", "--checkpoint", path]
        assert cli.main(argv) == 0
        first = capsys.readouterr().out
        assert cli.main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        # Wall-clock columns differ; the stretch table must not.
        assert first.split("scheduling time")[0] == second.split("scheduling time")[0]

    def test_cli_quarantine_exit_code(self, capsys):
        code = cli.main(["test_res_boom", "--workers", "1", "--on-cell-error", "skip"])
        assert code == 3
        err = capsys.readouterr().err
        assert "quarantined cells" in err

    def test_cli_flag_validation(self):
        with pytest.raises(SystemExit):
            cli.main(["test_res_ok", "--resume"])
        with pytest.raises(SystemExit):
            cli.main(["all", "--checkpoint", "/tmp/nope.jsonl"])
