"""The degradation experiment and fault telemetry across process pools.

The invariant that matters: with faults injected, a sweep's rows —
fault telemetry included — are sha256-identical whether cells run
serially, in a process pool, or through the resilient harness.
"""

import hashlib
import json

from repro.experiments.cli import build_spec
from repro.experiments.parallel import (
    run_named_experiment_parallel,
    run_named_experiment_resilient,
)
from repro.experiments.runner import run_experiment
from repro.obs.monitors import DEFAULT_TELEMETRY_HOOKS

_KW = dict(n_reps=1, n_jobs=12, seed=5)


def digest(rows):
    """Canonical digest of rows, wall-clock (nondeterministic) excluded."""
    payload = [
        {**r.as_dict(), "wall_time": None, "telemetry": r.telemetry} for r in rows
    ]
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class TestDegradationSweep:
    def test_spec_injects_faults_at_every_point(self):
        spec = build_spec("degradation_mtbf", **_KW)
        assert all(p.make_faults is not None for p in spec.points)
        assert spec.x_label == "MTBF"

    def test_serial_pool_and_resilient_are_sha256_identical(self):
        spec = build_spec("degradation_mtbf", **_KW)
        serial = run_experiment(spec, instrument=DEFAULT_TELEMETRY_HOOKS)
        pooled = run_named_experiment_parallel(
            "degradation_mtbf", n_workers=2, instrument=DEFAULT_TELEMETRY_HOOKS, **_KW
        )
        resilient = run_named_experiment_resilient(
            "degradation_mtbf",
            n_workers=2,
            instrument=DEFAULT_TELEMETRY_HOOKS,
            on_error="retry",
            **_KW,
        )
        assert digest(serial) == digest(pooled) == digest(resilient.rows)

    def test_failure_aware_roster_is_pool_identical(self):
        # Adding ssf-edf-fa (and fault correlation) must not perturb the
        # shared instance/fault streams, and the extended sweep stays
        # sha256-identical between the serial and pooled runners.
        kw = dict(failure_aware=True, correlation=2, **_KW)
        spec = build_spec("degradation_mtbf", **kw)
        assert any(s.label == "ssf-edf-fa" for s in spec.schedulers)
        assert any(s.label == "srpt-fa" for s in spec.schedulers)
        assert any(s.label == "fcfs-fa" for s in spec.schedulers)
        serial = run_experiment(spec, instrument=DEFAULT_TELEMETRY_HOOKS)
        pooled = run_named_experiment_parallel(
            "degradation_mtbf", n_workers=2, instrument=DEFAULT_TELEMETRY_HOOKS, **kw
        )
        assert digest(serial) == digest(pooled)
        # The baseline columns are byte-for-byte the vanilla sweep's.
        base = run_experiment(
            build_spec("degradation_mtbf", **_KW), instrument=DEFAULT_TELEMETRY_HOOKS
        )
        fa_subset = [
            r
            for r in run_experiment(
                build_spec("degradation_mtbf", failure_aware=True, **_KW),
                instrument=DEFAULT_TELEMETRY_HOOKS,
            )
            if r.scheduler not in ("ssf-edf-fa", "srpt-fa", "fcfs-fa")
        ]
        assert digest(base) == digest(fa_subset)

    def test_faults_actually_bite(self):
        spec = build_spec("degradation_mtbf", **_KW)
        rows = run_experiment(spec, instrument=("faults",))
        crashes = sum(
            r.telemetry["metrics"]["faults.crashes"]["value"] for r in rows
        )
        assert crashes > 0
