"""Tests for the repro-experiments CLI."""

import pytest

from repro.experiments.cli import _BUILDERS, build_spec, main


class TestBuildSpec:
    def test_all_experiments_buildable(self):
        for name in _BUILDERS:
            spec = build_spec(name, n_reps=1, n_jobs=10, seed=1)
            assert spec.n_reps == 1

    def test_n_jobs_override_for_kang_sweeps(self):
        spec = build_spec("fig2c", n_reps=1, n_jobs=15, seed=None)
        assert [p.x for p in spec.points] == [15]

    def test_defaults_kept_without_overrides(self):
        spec = build_spec("fig2a", n_reps=None, n_jobs=None, seed=None)
        assert spec.n_reps == 10


class TestMain:
    def test_runs_one_experiment(self, capsys):
        rc = main(["ablation_greedy_guard", "--reps", "1", "--n-jobs", "8", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ablation_greedy_guard" in out
        assert "max-stretch" in out
        assert "scheduling time" in out

    def test_csv_output(self, tmp_path, capsys):
        target = tmp_path / "rows.csv"
        rc = main(
            ["ablation_alpha", "--reps", "1", "--n-jobs", "8", "--quiet", "--csv", str(target)]
        )
        assert rc == 0
        content = target.read_text()
        assert content.startswith("experiment,")
        assert "ablation_alpha" in content

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_progress_written_to_stderr(self, capsys):
        main(["ablation_alpha", "--reps", "1", "--n-jobs", "6"])
        err = capsys.readouterr().err
        assert "rep=1/1" in err

    def test_telemetry_out_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.obs.sinks import read_telemetry_jsonl

        target = tmp_path / "tel.jsonl"
        rc = main(
            [
                "ablation_alpha",
                "--reps",
                "1",
                "--n-jobs",
                "6",
                "--quiet",
                "--telemetry-out",
                str(target),
            ]
        )
        assert rc == 0
        records = read_telemetry_jsonl(str(target))
        spec = build_spec("ablation_alpha", n_reps=1, n_jobs=6, seed=None)
        assert len(records) == len(spec.points) * len(spec.schedulers)
        metrics = records[0]["telemetry"]["metrics"]
        # The default telemetry hooks are implied by --telemetry-out.
        assert "util.edge.busy_frac" in metrics
        assert "queue.depth" in metrics
        assert "jobs.stretch" in metrics
        assert "reexec.aborted_attempts" in metrics
        assert "telemetry written to" in capsys.readouterr().err
