"""Tests for the cost-aware dispatch model of the parallel harness."""

import pytest

from repro.core.errors import ModelError
from repro.experiments.config import ExperimentSpec, SchedulerSpec, SweepPoint
from repro.experiments.dispatch import (
    WINDOW_PER_CORE,
    dispatch_order,
    effective_window,
    predict_cell_cost,
    usable_cores,
)
from repro.workloads.random_uniform import RandomInstanceConfig, generate_random_instance


def _instance(rng):
    return generate_random_instance(RandomInstanceConfig(n_jobs=4), seed=rng)


def _spec(hints, n_reps=2, n_schedulers=1):
    names = ("srpt", "greedy", "ssf-edf")[:n_schedulers]
    return ExperimentSpec(
        name="dispatch_spec",
        x_label="x",
        points=tuple(
            SweepPoint(x=float(i), make_instance=_instance, cost_hint=h)
            for i, h in enumerate(hints)
        ),
        schedulers=tuple(SchedulerSpec.named(n) for n in names),
        n_reps=n_reps,
    )


class TestPredictCellCost:
    def test_uniform_without_hints(self):
        spec = _spec([None, None])
        assert predict_cell_cost(spec, 0) == predict_cell_cost(spec, 1)

    def test_hint_orders_points(self):
        spec = _spec([1.0, 5.0, 2.0])
        costs = [predict_cell_cost(spec, i) for i in range(3)]
        assert costs[1] > costs[2] > costs[0]

    def test_cost_scales_with_roster_size(self):
        # A cell runs every roster entry, so a bigger roster means a
        # proportionally more expensive cell.
        one = predict_cell_cost(_spec([2.0], n_schedulers=1), 0)
        three = predict_cell_cost(_spec([2.0], n_schedulers=3), 0)
        assert three == pytest.approx(3 * one)

    def test_degenerate_hint_falls_back_to_uniform(self):
        spec = _spec([0.0, None])
        assert predict_cell_cost(spec, 0) == predict_cell_cost(spec, 1)


class TestDispatchOrder:
    def test_covers_every_cell_exactly_once(self):
        spec = _spec([None, None, None], n_reps=3)
        order = dispatch_order(spec)
        assert sorted(order) == [(p, r) for p in range(3) for r in range(3)]

    def test_expensive_points_first(self):
        spec = _spec([1.0, 9.0, 3.0], n_reps=2)
        order = dispatch_order(spec)
        points = [p for p, _ in order]
        assert points == [1, 1, 2, 2, 0, 0]

    def test_deterministic_tiebreak_is_serial_order(self):
        # Uniform costs: dispatch order IS serial order, so the fast
        # path degenerates gracefully.
        spec = _spec([None, None], n_reps=2)
        assert dispatch_order(spec) == [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestEffectiveWindow:
    def test_bounded_by_workers_and_cores(self):
        assert effective_window(1, usable=8) == WINDOW_PER_CORE
        assert effective_window(4, usable=2) == 2 * WINDOW_PER_CORE
        assert effective_window(4, usable=16) == 4 * WINDOW_PER_CORE

    def test_at_least_one(self):
        assert effective_window(1, usable=1) >= 1

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ModelError, match="n_workers"):
            effective_window(0)

    def test_usable_cores_positive(self):
        assert usable_cores() >= 1
