"""Tracing through the experiments stack: rows, pools, checkpoints, CLI."""

import json

from repro.experiments.checkpoint import row_from_dict, row_to_dict
from repro.experiments.cli import _write_traces, main
from repro.experiments.config import ExperimentSpec, SchedulerSpec, SweepPoint
from repro.experiments.parallel import run_named_experiment_parallel
from repro.experiments.runner import run_cell, run_experiment
from repro.obs.tracing import read_trace_jsonl, write_trace_jsonl
from tests.experiments.test_runner import tiny_instance


def tiny_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="tiny",
        x_label="x",
        points=(SweepPoint(x=1.0, make_instance=tiny_instance),),
        schedulers=(SchedulerSpec.named("srpt"), SchedulerSpec.named("ssf-edf")),
        n_reps=2,
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestResultRowTrace:
    def test_run_cell_attaches_trace_when_instrumented(self):
        rows = run_cell(tiny_spec(), 0, 0, instrument=("tracing",))
        assert all(r.trace is not None for r in rows)
        assert all(r.trace["n_jobs"] == 4 for r in rows)
        # ssf-edf rows carry provenance; srpt rows carry null provenance.
        by_sched = {r.scheduler: r.trace for r in rows}
        assert any(
            d["provenance"] is not None for d in by_sched["ssf-edf"]["decisions"]
        )
        assert all(d["provenance"] is None for d in by_sched["srpt"]["decisions"])

    def test_trace_none_without_instrument(self):
        rows = run_cell(tiny_spec(), 0, 0)
        assert all(r.trace is None for r in rows)

    def test_as_dict_excludes_trace(self):
        (row, *_) = run_cell(tiny_spec(), 0, 0, instrument=("tracing",))
        d = row.as_dict()
        assert "trace" not in d and "telemetry" not in d

    def test_checkpoint_roundtrip_preserves_trace(self):
        (row, *_) = run_cell(tiny_spec(), 0, 0, instrument=("tracing",))
        back = row_from_dict(json.loads(json.dumps(row_to_dict(row))))
        assert back == row
        assert back.trace == row.trace


class TestSerialParallelIdentity:
    def test_trace_bytes_identical(self, tmp_path):
        # The acceptance bar: the same cell's trace JSONL is
        # byte-identical whether the cell ran serially or in a pool.
        # A named experiment, so the parallel path can rebuild it.
        from repro.experiments.cli import build_spec

        spec = build_spec("ablation_alpha", n_reps=1, n_jobs=25, seed=None)
        serial_rows = run_experiment(spec, instrument=("tracing",))
        parallel_rows = run_named_experiment_parallel(
            "ablation_alpha",
            n_workers=2,
            n_reps=1,
            n_jobs=25,
            instrument=("tracing",),
        )
        assert len(serial_rows) == len(parallel_rows)
        for s_row, p_row in zip(serial_rows, parallel_rows):
            a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
            write_trace_jsonl(str(a), s_row.trace)
            write_trace_jsonl(str(b), p_row.trace)
            assert a.read_bytes() == b.read_bytes()


class TestWriteTraces:
    def test_deterministic_filenames_and_content(self, tmp_path):
        rows = run_cell(tiny_spec(), 0, 0, instrument=("tracing",))
        out = tmp_path / "traces"
        assert _write_traces(str(out), rows) == len(rows)
        names = sorted(p.name for p in out.iterdir())
        assert names == [
            "tiny_x1_rep0_srpt.trace.jsonl",
            "tiny_x1_rep0_ssf-edf.trace.jsonl",
        ]
        payload = read_trace_jsonl(str(out / names[0]))
        assert payload["n_jobs"] == 4

    def test_untraced_rows_skipped(self, tmp_path):
        rows = run_cell(tiny_spec(), 0, 0)
        assert _write_traces(str(tmp_path / "traces"), rows) == 0

    def test_labels_sanitized(self, tmp_path):
        from repro.schedulers.registry import make_scheduler

        spec = tiny_spec(
            schedulers=(
                SchedulerSpec("ssf edf (α=2)", lambda rng: make_scheduler("ssf-edf")),
            )
        )
        rows = run_cell(spec, 0, 0, instrument=("tracing",))
        out = tmp_path / "traces"
        _write_traces(str(out), rows)
        (path,) = out.iterdir()
        assert " " not in path.name and "(" not in path.name


class TestCliTraceOut:
    def test_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "traces"
        rc = main(
            [
                "ablation_alpha",
                "--reps",
                "1",
                "--n-jobs",
                "20",
                "--trace-out",
                str(out),
                "--quiet",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "trace file(s) written to" in captured.err
        files = sorted(out.iterdir())
        assert files, "no trace files written"
        payload = read_trace_jsonl(str(files[0]))
        assert payload["n_jobs"] == 20
