"""Tests for the SVG series plots."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.errors import ModelError
from repro.experiments.runner import AggregateRow
from repro.experiments.svgplot import render_series_svg, save_series_svg


def agg_row(x, scheduler, mean, std=0.1):
    return AggregateRow(
        experiment="e",
        x=x,
        scheduler=scheduler,
        n=3,
        max_stretch_mean=mean,
        max_stretch_std=std,
        avg_stretch_mean=mean / 2,
        wall_time_mean=0.01,
        reexec_mean=0.0,
    )


@pytest.fixture
def sample():
    return [
        agg_row(0.1, "srpt", 1.5),
        agg_row(1.0, "srpt", 1.8),
        agg_row(10.0, "srpt", 2.2),
        agg_row(0.1, "ssf-edf", 1.3),
        agg_row(1.0, "ssf-edf", 1.5),
        agg_row(10.0, "ssf-edf", 1.9),
    ]


class TestRender:
    def test_valid_xml(self, sample):
        svg = render_series_svg(sample, title="fig", x_label="CCR")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_polyline_per_series(self, sample):
        svg = render_series_svg(sample)
        assert svg.count("<polyline") == 2

    def test_legend_labels(self, sample):
        svg = render_series_svg(sample)
        assert "srpt" in svg and "ssf-edf" in svg

    def test_std_whiskers_drawn(self, sample):
        with_std = render_series_svg(sample, show_std=True)
        without = render_series_svg(sample, show_std=False)
        assert with_std.count("<line") > without.count("<line")

    def test_log_x(self, sample):
        svg = render_series_svg(sample, log_x=True)
        ET.fromstring(svg)  # still valid

    def test_title_escaped(self, sample):
        svg = render_series_svg(sample, title="a < b & c")
        assert "a &lt; b &amp; c" in svg

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            render_series_svg([])

    def test_single_point(self):
        svg = render_series_svg([agg_row(1.0, "srpt", 2.0)])
        ET.fromstring(svg)


class TestSave:
    def test_file_written(self, sample, tmp_path):
        path = tmp_path / "fig.svg"
        save_series_svg(sample, path, title="t")
        content = path.read_text()
        assert content.startswith("<svg")
        ET.fromstring(content)
