"""Tests for the parallel experiment runner.

Correctness means one thing here: bit-identical rows to the serial
runner, regardless of worker count or cell execution order (this
container is single-core, so speedups are asserted nowhere).
"""

import json

import pytest

from repro.core.errors import ModelError
from repro.experiments import cli
from repro.obs.monitors import DEFAULT_TELEMETRY_HOOKS
from repro.experiments.cli import build_spec
from repro.experiments.config import ExperimentSpec, SchedulerSpec, SweepPoint
from repro.experiments.parallel import run_named_experiment_parallel
from repro.experiments.runner import run_cell, run_experiment


def row_key(rows):
    return [(r.x, r.scheduler, r.rep, r.max_stretch, r.n_events) for r in rows]


def _exploding_instance(rng):
    """Instance factory that always fails (for error-propagation tests)."""
    raise RuntimeError("synthetic instance failure")


def _exploding_spec(n_reps=2, seed=0):
    """A well-formed spec whose every cell raises at instance build time."""
    return ExperimentSpec(
        name="exploding",
        x_label="x",
        points=(SweepPoint(x=1.0, make_instance=_exploding_instance),),
        schedulers=(SchedulerSpec.named("srpt"),),
        n_reps=n_reps,
        seed=seed,
    )


# Module-level registration: worker processes are forked from the test
# process, so they inherit this builder and can rebuild the spec by name.
cli._BUILDERS.setdefault("test_exploding", _exploding_spec)


class TestRunCell:
    def test_cells_independent_of_execution_order(self):
        spec = build_spec("ablation_alpha", n_reps=3, n_jobs=8, seed=2)
        forward = [run_cell(spec, 0, rep) for rep in range(3)]
        backward = [run_cell(spec, 0, rep) for rep in reversed(range(3))]
        assert row_key([r for cell in forward for r in cell]) == row_key(
            [r for cell in reversed(backward) for r in cell]
        )

    def test_serial_runner_is_cells_in_order(self):
        spec = build_spec("ablation_alpha", n_reps=2, n_jobs=8, seed=3)
        serial = run_experiment(spec)
        cells = [
            r
            for p in range(len(spec.points))
            for rep in range(spec.n_reps)
            for r in run_cell(spec, p, rep)
        ]
        assert row_key(serial) == row_key(cells)


class TestParallel:
    def test_single_worker_matches_serial(self):
        spec = build_spec("ablation_greedy_guard", n_reps=2, n_jobs=8, seed=4)
        serial = run_experiment(spec)
        parallel = run_named_experiment_parallel(
            "ablation_greedy_guard", n_workers=1, n_reps=2, n_jobs=8, seed=4
        )
        assert row_key(serial) == row_key(parallel)

    def test_two_workers_match_serial(self):
        spec = build_spec("ablation_alpha", n_reps=2, n_jobs=8, seed=5)
        serial = run_experiment(spec)
        parallel = run_named_experiment_parallel(
            "ablation_alpha", n_workers=2, n_reps=2, n_jobs=8, seed=5
        )
        assert row_key(serial) == row_key(parallel)

    def test_unknown_name_rejected(self):
        with pytest.raises(ModelError, match="unknown experiment"):
            run_named_experiment_parallel("nope", n_workers=1)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ModelError):
            run_named_experiment_parallel("ablation_alpha", n_workers=0)

    def test_chunked_map_matches_serial(self):
        # Enough cells that the computed chunksize exceeds 1, so the
        # batched pool.map path is actually exercised.
        spec = build_spec("fig2a", n_reps=3, n_jobs=6, seed=11)
        assert len(spec.points) * spec.n_reps >= 16
        serial = run_experiment(spec)
        parallel = run_named_experiment_parallel(
            "fig2a", n_workers=2, n_reps=3, n_jobs=6, seed=11
        )
        assert row_key(serial) == row_key(parallel)

    def test_instrument_names_cross_process_boundary(self):
        serial = run_experiment(
            build_spec("ablation_greedy_guard", n_reps=2, n_jobs=8, seed=4)
        )
        parallel = run_named_experiment_parallel(
            "ablation_greedy_guard",
            n_workers=2,
            n_reps=2,
            n_jobs=8,
            seed=4,
            instrument=("watermark", "profile"),
        )
        # Observational hooks never perturb results.
        assert row_key(serial) == row_key(parallel)


class TestTelemetryDeterminism:
    """Telemetry must survive the process pool bit-for-bit."""

    @staticmethod
    def telemetry_json(rows):
        """Canonical JSON of every row's telemetry, in row order."""
        return [
            json.dumps(r.telemetry, sort_keys=True, separators=(",", ":")) for r in rows
        ]

    def test_serial_and_parallel_telemetry_byte_identical(self):
        spec = build_spec("ablation_alpha", n_reps=2, n_jobs=8, seed=6)
        serial = run_experiment(spec, instrument=DEFAULT_TELEMETRY_HOOKS)
        parallel = run_named_experiment_parallel(
            "ablation_alpha",
            n_workers=2,
            n_reps=2,
            n_jobs=8,
            seed=6,
            instrument=DEFAULT_TELEMETRY_HOOKS,
        )
        assert row_key(serial) == row_key(parallel)
        serial_json = self.telemetry_json(serial)
        assert serial_json == self.telemetry_json(parallel)
        assert all(blob != "null" for blob in serial_json)

    def test_uninstrumented_rows_carry_no_telemetry(self):
        rows = run_named_experiment_parallel(
            "ablation_alpha", n_workers=2, n_reps=1, n_jobs=8, seed=6
        )
        assert all(r.telemetry is None for r in rows)


class TestErrorPropagation:
    """A raising cell must surface a clear error naming the cell."""

    def test_serial_worker_path(self):
        with pytest.raises(ModelError, match=r"'test_exploding' cell \(point=0, rep=0\)"):
            run_named_experiment_parallel("test_exploding", n_workers=1, n_reps=2)

    def test_across_process_pool(self):
        with pytest.raises(
            ModelError,
            match=r"cell \(point=0, rep=\d\) failed: "
            r"RuntimeError: synthetic instance failure",
        ):
            run_named_experiment_parallel("test_exploding", n_workers=2, n_reps=2)
