"""Smoke tests for the figure/ablation specs (tiny parameters)."""

import pytest

from repro.experiments.ablations import (
    ablation_alpha,
    ablation_availability,
    ablation_eps,
    ablation_greedy_guard,
    ablation_hetero_cloud,
    ablation_reexec,
)
from repro.experiments.exec_time import (
    exec_time_vs_ccr,
    exec_time_vs_load,
    exec_time_vs_n,
)
from repro.experiments.figures import fig2a, fig2b, fig2c, fig2d
from repro.experiments.runner import aggregate, run_experiment


class TestSpecShapes:
    def test_fig2a_schedulers(self):
        spec = fig2a()
        assert [s.label for s in spec.schedulers] == [
            "edge-only",
            "greedy",
            "srpt",
            "ssf-edf",
        ]
        assert [p.x for p in spec.points] == [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0]

    def test_fig2b_excludes_edge_only(self):
        spec = fig2b()
        assert "edge-only" not in [s.label for s in spec.schedulers]

    def test_fig2cd_differ_by_edge_count(self):
        assert fig2c().name == "fig2c"
        assert fig2d().name == "fig2d"

    def test_parameter_overrides(self):
        spec = fig2a(n_jobs=10, n_reps=2, ccrs=(1.0,))
        assert spec.n_reps == 2
        assert len(spec.points) == 1


class TestTinyRuns:
    """Each figure runs end-to-end at toy scale and yields sane numbers."""

    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (fig2a, dict(n_jobs=12, n_reps=2, ccrs=(0.5, 5.0))),
            (fig2b, dict(n_jobs=12, n_reps=2, loads=(0.1, 1.0))),
            (fig2c, dict(n_jobs_values=(12,), n_reps=2)),
            (fig2d, dict(n_jobs_values=(12,), n_reps=2)),
        ],
    )
    def test_figures_run(self, builder, kwargs):
        rows = run_experiment(builder(**kwargs))
        assert rows
        assert all(r.max_stretch >= 1.0 - 1e-9 for r in rows)
        agg = aggregate(rows)
        assert all(a.n == 2 for a in agg)

    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (exec_time_vs_n, dict(n_values=(10,), n_reps=1)),
            (exec_time_vs_load, dict(loads=(0.5,), n_jobs=10, n_reps=1)),
            (exec_time_vs_ccr, dict(ccrs=(1.0,), n_jobs=10, n_reps=1)),
        ],
    )
    def test_exec_time_specs_run(self, builder, kwargs):
        rows = run_experiment(builder(**kwargs))
        assert all(r.wall_time > 0 for r in rows)

    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (ablation_alpha, dict(n_jobs=10, n_reps=1, alphas=(1.0, 2.0))),
            (ablation_eps, dict(n_jobs=10, n_reps=1, eps_values=(1e-1, 1e-3))),
            (ablation_greedy_guard, dict(n_jobs=10, n_reps=1)),
            (ablation_reexec, dict(n_jobs=10, n_reps=1, loads=(0.5,))),
            (ablation_hetero_cloud, dict(n_jobs=10, n_reps=1)),
            (ablation_availability, dict(n_jobs=10, n_reps=1, busy_fractions=(0.0, 0.5))),
        ],
    )
    def test_ablations_run(self, builder, kwargs):
        rows = run_experiment(builder(**kwargs))
        assert rows
        assert all(r.max_stretch >= 1.0 - 1e-9 for r in rows)

    def test_availability_hurts_when_cloud_attractive(self):
        spec = ablation_availability(
            n_jobs=30, n_reps=3, busy_fractions=(0.0, 0.75), ccr=0.1
        )
        agg = aggregate(run_experiment(spec))
        ssf = {a.x: a.max_stretch_mean for a in agg if a.scheduler == "ssf-edf"}
        assert ssf[0.75] >= ssf[0.0] - 1e-6
