"""Tests for repro.sim.view: the estimates the heuristics rely on."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.sim.availability import CloudAvailability
from repro.sim.state import SimState
from repro.sim.view import SimulationView


@pytest.fixture
def setup():
    platform = Platform.create([0.5, 0.25], cloud_speeds=[1.0, 2.0])
    inst = Instance.create(
        platform,
        [
            Job(origin=0, work=2.0, release=0.0, up=1.0, dn=1.0),
            Job(origin=1, work=4.0, release=0.0, up=0.5, dn=0.5),
        ],
    )
    state = SimState(inst)
    view = SimulationView(state, CloudAvailability.always_available())
    return inst, state, view


class TestScalarEstimates:
    def test_duration_on_edge_fresh(self, setup):
        _, _, view = setup
        assert view.duration_on(0, edge(0)) == pytest.approx(4.0)  # 2 / 0.5

    def test_duration_on_cloud_fresh(self, setup):
        _, _, view = setup
        assert view.duration_on(0, cloud(0)) == pytest.approx(4.0)  # 1 + 2 + 1
        assert view.duration_on(0, cloud(1)) == pytest.approx(3.0)  # speed 2

    def test_duration_keeps_progress_on_current_resource(self, setup):
        _, state, view = setup
        state.assign(0, cloud(0))
        state.rem_up[0] = 0.0
        state.rem_work[0] = 0.5
        assert view.duration_on(0, cloud(0)) == pytest.approx(0.0 + 0.5 + 1.0)
        # Other resources see a fresh re-execution.
        assert view.duration_on(0, cloud(1)) == pytest.approx(1.0 + 1.0 + 1.0)
        assert view.duration_on(0, edge(0)) == pytest.approx(4.0)

    def test_wrong_edge_rejected(self, setup):
        _, _, view = setup
        with pytest.raises(ModelError):
            view.duration_on(0, edge(1))

    def test_completion_and_stretch(self, setup):
        _, state, view = setup
        state.now = 2.0
        # J0 min_time = min(edge 4, best cloud 1 + 2/2 + 1 = 3) = 3;
        # completing on cloud(1) at 2 + 3 = 5.
        assert view.completion_est(0, cloud(1)) == pytest.approx(5.0)
        assert view.stretch_est(0, cloud(1)) == pytest.approx(5.0 / 3.0)


class TestVectorizedEstimates:
    def test_matrix_matches_scalars(self, setup):
        inst, state, view = setup
        state.assign(0, cloud(0))
        state.rem_work[0] = 1.0
        jobs = np.array([0, 1])
        matrix = view.durations_matrix(jobs)
        assert matrix.shape == (2, 3)
        for row, i in enumerate(jobs):
            assert matrix[row, 0] == pytest.approx(view.duration_on(int(i), edge(inst.jobs[int(i)].origin)))
            for k in range(2):
                assert matrix[row, 1 + k] == pytest.approx(view.duration_on(int(i), cloud(k)))

    def test_stretch_matrix(self, setup):
        inst, state, view = setup
        state.now = 1.0
        jobs = np.array([0, 1])
        sm = view.stretch_matrix(jobs)
        dm = view.durations_matrix(jobs)
        expected = (state.now + dm - inst.release[jobs][:, None]) / inst.min_time[jobs][:, None]
        assert np.allclose(sm, expected)

    def test_current_columns(self, setup):
        _, state, view = setup
        jobs = np.array([0, 1])
        assert view.current_columns(jobs).tolist() == [-1, -1]
        state.assign(0, edge(0))
        state.assign(1, cloud(1))
        assert view.current_columns(jobs).tolist() == [0, 2]

    def test_live_jobs_forwarded(self, setup):
        _, state, view = setup
        assert view.live_jobs().tolist() == [0, 1]
        state.finish(0, 1.0)
        assert view.live_jobs().tolist() == [1]

    def test_min_time(self, setup):
        inst, _, view = setup
        assert view.min_time(1) == pytest.approx(float(inst.min_time[1]))
