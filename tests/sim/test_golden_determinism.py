"""Golden determinism: the layered engine is bit-identical to the seed engine.

``tests/data/golden_engine.json`` was captured from the pre-refactor
scalar engine (one ``Engine.run()`` monolith).  Every case pins the
sha256 of the raw completion array bytes plus the exact float bits
(``float.hex()``) of the stretch metrics and the event/decision/
re-execution counters — any deviation in event ordering, grant order,
progress arithmetic or tolerance handling shows up here.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.faults.model import FaultClassParams, exponential_fault_trace
from repro.schedulers.registry import make_scheduler
from repro.sim.availability import periodic_unavailability
from repro.sim.engine import simulate
from repro.workloads.kang import KangConfig, generate_kang_instance
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)

_GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "golden_engine.json"


def _load_cases() -> list[dict]:
    with open(_GOLDEN_PATH) as f:
        return json.load(f)["cases"]


def _renewal_faults(inst, seed, mtbf, mttr):
    """The fault trace of the capture script (all three classes failing)."""
    params = FaultClassParams(mtbf=mtbf, mttr=mttr)
    return exponential_fault_trace(
        n_edge=inst.platform.n_edge,
        n_cloud=inst.platform.n_cloud,
        horizon=float(inst.release.max() + inst.min_time.sum()),
        seed=seed,
        edge=params,
        cloud=params,
        link=params,
    )


def _instances():
    """Rebuild every golden instance exactly as the capture script did.

    Each tag maps to ``(instance, availability, faults, record_trace)``.
    """
    tags = {}
    for seed in (20210101, 20210102, 20210103):
        for load in (0.05, 0.5, 2.0):
            tags[f"rand-n200-s{seed}-l{load}"] = (
                generate_random_instance(
                    RandomInstanceConfig(n_jobs=200, ccr=1.0, load=load),
                    platform=paper_random_platform(),
                    seed=seed,
                ),
                None,
                None,
                False,
            )
    tags["kang-n60"] = (
        generate_kang_instance(KangConfig(n_jobs=60, load=0.1), seed=7),
        None,
        None,
        False,
    )
    inst = generate_random_instance(
        RandomInstanceConfig(n_jobs=80, ccr=1.0, load=0.3),
        platform=paper_random_platform(),
        seed=424242,
    )
    tags["avail-n80"] = (
        inst,
        periodic_unavailability(
            inst.platform.n_cloud, period=5.0, busy_fraction=0.3, horizon=200.0
        ),
        None,
        False,
    )
    tags["traced-n50"] = (
        generate_random_instance(
            RandomInstanceConfig(n_jobs=50, ccr=1.0, load=0.5),
            platform=paper_random_platform(),
            seed=99,
        ),
        None,
        None,
        True,
    )
    inst_f = generate_random_instance(
        RandomInstanceConfig(n_jobs=80, ccr=1.0, load=1.0),
        platform=paper_random_platform(),
        seed=31,
    )
    tags["faulted-n80"] = (inst_f, None, _renewal_faults(inst_f, 17, 40.0, 4.0), False)
    inst_fw = generate_random_instance(
        RandomInstanceConfig(n_jobs=60, ccr=1.0, load=0.8),
        platform=paper_random_platform(),
        seed=55,
    )
    tags["faultwin-n60"] = (
        inst_fw,
        periodic_unavailability(
            inst_fw.platform.n_cloud, period=8.0, busy_fraction=0.25, horizon=300.0
        ),
        _renewal_faults(inst_fw, 23, 60.0, 5.0),
        False,
    )
    return tags


_CASES = _load_cases()
_INSTANCES = _instances()


@pytest.mark.parametrize(
    "case", _CASES, ids=[f"{c['tag']}-{c['policy']}" for c in _CASES]
)
def test_bit_identical_to_seed_engine(case):
    """Completion bytes, stretch bits and counters match the seed engine."""
    inst, availability, faults, trace = _INSTANCES[case["tag"]]
    policy = case["policy"]
    scheduler = (
        make_scheduler(policy, seed=123) if policy == "random" else make_scheduler(policy)
    )
    result = simulate(
        inst, scheduler, availability=availability, faults=faults, record_trace=trace
    )
    assert hashlib.sha256(result.completion.tobytes()).hexdigest() == case["completion_sha256"]
    assert result.max_stretch.hex() == case["max_stretch"]
    assert result.average_stretch.hex() == case["avg_stretch"]
    assert result.n_events == case["n_events"]
    assert result.n_decisions == case["n_decisions"]
    assert result.n_reexecutions == case["n_reexecutions"]
