"""Tests for cloud availability windows (the §VII extension)."""

import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud
from repro.core.validation import validate_schedule
from repro.offline.list_scheduler import FixedPolicyScheduler
from repro.sim.availability import (
    CloudAvailability,
    periodic_unavailability,
    random_unavailability,
)
from repro.sim.engine import simulate


class TestCloudAvailability:
    def test_always_available(self):
        av = CloudAvailability.always_available()
        assert av.is_available(0, 0.0)
        assert av.next_boundary(0.0) == float("inf")
        assert av.available_until(0, 5.0) == float("inf")

    def test_window_lookup(self):
        av = CloudAvailability({0: (Interval(2, 4), Interval(6, 8))})
        assert av.is_available(0, 1.0)
        assert not av.is_available(0, 2.0)
        assert not av.is_available(0, 3.9)
        assert av.is_available(0, 4.0)  # half-open window
        assert av.is_available(0, 5.0)
        assert not av.is_available(0, 7.0)
        assert av.is_available(1, 3.0)  # other processors unaffected

    def test_next_boundary(self):
        av = CloudAvailability({0: (Interval(2, 4),), 1: (Interval(3, 5),)})
        assert av.next_boundary(0.0) == 2.0
        assert av.next_boundary(2.0) == 3.0
        assert av.next_boundary(4.5) == 5.0
        assert av.next_boundary(5.0) == float("inf")

    def test_available_until(self):
        av = CloudAvailability({0: (Interval(2, 4),)})
        assert av.available_until(0, 0.0) == 2.0
        assert av.available_until(0, 2.5) == 2.5  # currently down
        assert av.available_until(0, 4.0) == float("inf")

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ModelError):
            CloudAvailability({0: (Interval(0, 3), Interval(2, 4))})

    def test_negative_index_rejected(self):
        with pytest.raises(ModelError):
            CloudAvailability({-1: (Interval(0, 1),)})


class TestBoundarySemantics:
    """Exact behavior at window edges (windows are half-open [start, end))."""

    def test_next_boundary_exactly_at_edge_is_strict(self):
        av = CloudAvailability({0: (Interval(2, 4),)})
        # Querying exactly at a boundary returns the *next* one, never
        # the boundary itself (boundaries are strictly-after events).
        assert av.next_boundary(2.0) == 4.0
        assert av.next_boundary(4.0) == float("inf")

    def test_available_until_exactly_at_window_start(self):
        av = CloudAvailability({0: (Interval(2, 4),)})
        # t == start is inside the half-open window: currently down.
        assert not av.is_available(0, 2.0)
        assert av.available_until(0, 2.0) == 2.0

    def test_available_until_exactly_at_window_end(self):
        av = CloudAvailability({0: (Interval(2, 4), Interval(6, 8))})
        # t == end is available again; the horizon is the next start.
        assert av.is_available(0, 4.0)
        assert av.available_until(0, 4.0) == 6.0

    def test_adjacent_windows_back_to_back(self):
        av = CloudAvailability({0: (Interval(2, 4), Interval(4, 6))})
        # The shared edge belongs to the second window: still down.
        assert not av.is_available(0, 4.0)
        assert av.available_until(0, 4.0) == 4.0
        assert av.is_available(0, 6.0)


class TestGenerators:
    def test_periodic(self):
        av = periodic_unavailability(2, period=10.0, busy_fraction=0.3, horizon=25.0, stagger=False)
        assert not av.is_available(0, 1.0)
        assert av.is_available(0, 5.0)
        assert not av.is_available(0, 11.0)
        assert not av.is_available(1, 1.0)

    def test_periodic_stagger_offsets(self):
        av = periodic_unavailability(2, period=10.0, busy_fraction=0.2, horizon=10.0)
        # Processor 1's slot starts at 5.0.
        assert av.is_available(1, 1.0)
        assert not av.is_available(1, 5.5)

    def test_zero_fraction_is_always_on(self):
        av = periodic_unavailability(2, period=10.0, busy_fraction=0.0, horizon=50.0)
        assert av.windows == {}

    def test_bad_fraction_rejected(self):
        with pytest.raises(ModelError):
            periodic_unavailability(1, period=10.0, busy_fraction=1.0, horizon=10.0)

    def test_random_reproducible(self):
        a = random_unavailability(2, rate=0.1, mean_duration=5.0, horizon=100.0, seed=7)
        b = random_unavailability(2, rate=0.1, mean_duration=5.0, horizon=100.0, seed=7)
        assert a.windows.keys() == b.windows.keys()
        for k in a.windows:
            assert a.windows[k] == b.windows[k]

    def test_random_zero_rate(self):
        av = random_unavailability(2, rate=0.0, mean_duration=5.0, horizon=100.0, seed=1)
        assert av.windows == {}

    def test_random_windows_positive_sorted_disjoint(self):
        # Property sweep: no seed may produce a zero-length window or an
        # out-of-order pair (Interval itself rejects zero length, so the
        # generator must guard degenerate duration draws).
        for seed in range(25):
            av = random_unavailability(
                3, rate=0.5, mean_duration=1e-9, horizon=50.0, seed=seed
            )
            for ivs in av.windows.values():
                for iv in ivs:
                    assert iv.end > iv.start
                for a, b in zip(ivs, ivs[1:]):
                    assert b.start >= a.end

    def test_periodic_phase_alignment(self):
        # Staggered offsets are k * period / n_cloud; every subsequent
        # busy slot of processor k starts exactly one period later.
        n_cloud, period, frac = 4, 8.0, 0.25
        av = periodic_unavailability(
            n_cloud, period=period, busy_fraction=frac, horizon=40.0
        )
        for k in range(n_cloud):
            phase = k * period / n_cloud
            for i, iv in enumerate(av.windows[k]):
                assert iv.start == pytest.approx(phase + i * period)
                assert iv.length == pytest.approx(frac * period)


class TestEngineIntegration:
    def test_compute_pauses_during_window(self):
        platform = Platform.create([1.0], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=4.0, up=1.0, dn=1.0)])
        # Cloud down during [2, 5): exec 1-2, pause, exec 5-8, dn 8-9.
        av = CloudAvailability({0: (Interval(2.0, 5.0),)})
        result = simulate(inst, FixedPolicyScheduler([cloud(0)], [0]), availability=av)
        assert result.completion[0] == pytest.approx(9.0)
        assert validate_schedule(result.schedule) == []

    def test_communication_unaffected_by_window(self):
        platform = Platform.create([1.0], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=1.0, up=4.0, dn=0.0)])
        av = CloudAvailability({0: (Interval(0.0, 3.0),)})
        result = simulate(inst, FixedPolicyScheduler([cloud(0)], [0]), availability=av)
        # Uplink 0-4 proceeds through the window; compute 4-5.
        assert result.completion[0] == pytest.approx(5.0)

    def test_window_before_start_delays_compute(self):
        platform = Platform.create([1.0], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=1.0, up=0.0, dn=0.0)])
        av = CloudAvailability({0: (Interval(0.0, 10.0),)})
        result = simulate(inst, FixedPolicyScheduler([cloud(0)], [0]), availability=av)
        assert result.completion[0] == pytest.approx(11.0)
