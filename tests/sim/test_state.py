"""Tests for repro.sim.state."""

import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.sim.state import ALLOC_CLOUD, ALLOC_EDGE, ALLOC_NONE, Phase, SimState


@pytest.fixture
def state() -> SimState:
    platform = Platform.create([0.5], n_cloud=2)
    inst = Instance.create(
        platform,
        [
            Job(origin=0, work=2.0, release=0.0, up=1.0, dn=1.0),
            Job(origin=0, work=1.0, release=5.0, up=0.0, dn=0.0),
        ],
    )
    return SimState(inst)


class TestInitialState:
    def test_remaining_amounts(self, state):
        assert state.rem_up.tolist() == [1.0, 0.0]
        assert state.rem_work.tolist() == [2.0, 1.0]
        assert state.rem_dn.tolist() == [1.0, 0.0]

    def test_nothing_allocated(self, state):
        assert (state.alloc_kind == ALLOC_NONE).all()
        assert state.allocation(0) is None

    def test_live_jobs_respects_release(self, state):
        assert state.live_jobs().tolist() == [0]
        state.now = 5.0
        assert state.live_jobs().tolist() == [0, 1]


class TestAssignment:
    def test_first_assignment_is_new_attempt(self, state):
        assert state.assign(0, cloud(1)) is True
        assert state.alloc_kind[0] == ALLOC_CLOUD
        assert state.alloc_index[0] == 1
        assert state.attempts[0] == 1

    def test_same_resource_is_noop(self, state):
        state.assign(0, cloud(1))
        state.rem_work[0] = 0.7
        assert state.assign(0, cloud(1)) is False
        assert state.rem_work[0] == 0.7
        assert state.attempts[0] == 1

    def test_reassignment_resets_progress(self, state):
        state.assign(0, cloud(1))
        state.rem_up[0] = 0.0
        state.rem_work[0] = 0.3
        assert state.assign(0, edge(0)) is True
        assert state.rem_up[0] == 1.0
        assert state.rem_work[0] == 2.0
        assert state.rem_dn[0] == 1.0
        assert state.alloc_kind[0] == ALLOC_EDGE
        assert state.attempts[0] == 2

    def test_cloud_to_other_cloud_resets(self, state):
        state.assign(0, cloud(0))
        state.rem_up[0] = 0.0
        assert state.assign(0, cloud(1)) is True
        assert state.rem_up[0] == 1.0


class TestPhase:
    def test_edge_is_compute(self, state):
        state.assign(0, edge(0))
        assert state.phase(0) is Phase.COMPUTE

    def test_cloud_progression(self, state):
        state.assign(0, cloud(0))
        assert state.phase(0) is Phase.UPLINK
        state.rem_up[0] = 0.0
        assert state.phase(0) is Phase.COMPUTE
        state.rem_work[0] = 0.0
        assert state.phase(0) is Phase.DOWNLINK

    def test_zero_uplink_skipped(self, state):
        state.assign(1, cloud(0))
        assert state.phase(1) is Phase.COMPUTE

    def test_done(self, state):
        state.assign(0, edge(0))
        state.finish(0, 3.0)
        assert state.phase(0) is Phase.DONE
        assert state.completion[0] == 3.0
        assert state.done[0]
        assert 0 not in state.live_jobs().tolist()
