"""Differential testing: event engine vs the naive quantized reference.

The two simulators share no code; on random instances with the same
fixed policy their completion times must agree within a few time
quanta (each phase transition in the reference can lag by up to one
quantum, and lags ripple through resource waits — the tolerance is
scaled accordingly).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.offline.list_scheduler import FixedPolicyScheduler
from repro.sim.engine import simulate
from repro.sim.reference import simulate_reference


def run_both(instance, allocation, priority, dt=0.005):
    engine = simulate(
        instance, FixedPolicyScheduler(allocation, priority), record_trace=False
    )
    reference = simulate_reference(instance, allocation, priority, dt=dt)
    return engine, reference


class TestKnownCases:
    def test_single_edge_job(self):
        platform = Platform.create([0.5], n_cloud=0)
        inst = Instance.create(platform, [Job(origin=0, work=1.0)])
        engine, ref = run_both(inst, [edge(0)], [0], dt=0.001)
        assert ref.completion[0] == pytest.approx(engine.completion[0], abs=0.01)

    def test_single_cloud_job(self):
        platform = Platform.create([0.5], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=2.0, up=1.0, dn=0.5)])
        engine, ref = run_both(inst, [cloud(0)], [0], dt=0.001)
        assert ref.completion[0] == pytest.approx(engine.completion[0], abs=0.01)

    def test_zero_downlink(self):
        platform = Platform.create([0.5], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=1.0, up=0.5, dn=0.0)])
        engine, ref = run_both(inst, [cloud(0)], [0], dt=0.001)
        assert ref.completion[0] == pytest.approx(engine.completion[0], abs=0.01)

    def test_contended_edge(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(
            platform, [Job(origin=0, work=1.0), Job(origin=0, work=2.0)]
        )
        engine, ref = run_both(inst, [edge(0), edge(0)], [0, 1], dt=0.001)
        assert np.allclose(ref.completion, engine.completion, atol=0.02)

    def test_contended_ports(self):
        platform = Platform.create([1.0], n_cloud=2)
        jobs = [Job(origin=0, work=0.5, up=1.0, dn=0.5) for _ in range(2)]
        inst = Instance.create(platform, jobs)
        engine, ref = run_both(inst, [cloud(0), cloud(1)], [0, 1], dt=0.001)
        assert np.allclose(ref.completion, engine.completion, atol=0.05)


class TestValidation:
    def test_bad_policy_rejected(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(platform, [Job(origin=0, work=1.0)])
        with pytest.raises(ModelError):
            simulate_reference(inst, [edge(0)], [0, 0])
        with pytest.raises(ModelError):
            simulate_reference(inst, [edge(0)], [0], dt=0.0)

    def test_step_guard(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(platform, [Job(origin=0, work=100.0)])
        with pytest.raises(ModelError, match="steps"):
            simulate_reference(inst, [edge(0)], [0], dt=0.001, max_steps=100)


class TestDifferentialProperty:
    @given(data=st.data())
    @settings(deadline=None, max_examples=20)
    def test_engine_matches_reference(self, data):
        n_edge = data.draw(st.integers(1, 2))
        n_cloud = data.draw(st.integers(0, 2))
        speeds = [
            data.draw(st.floats(min_value=0.2, max_value=1.0, allow_nan=False))
            for _ in range(n_edge)
        ]
        platform = Platform.create(speeds, n_cloud=n_cloud)
        n = data.draw(st.integers(1, 4))
        jobs = []
        for _ in range(n):
            jobs.append(
                Job(
                    origin=data.draw(st.integers(0, n_edge - 1)),
                    work=data.draw(st.floats(min_value=0.2, max_value=5.0, allow_nan=False)),
                    release=data.draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False)),
                    up=data.draw(st.sampled_from([0.0, 0.5, 1.5])),
                    dn=data.draw(st.sampled_from([0.0, 0.5, 1.5])),
                )
            )
        inst = Instance.create(platform, jobs)
        allocation = []
        for job in jobs:
            options = [edge(job.origin)] + [cloud(k) for k in range(n_cloud)]
            allocation.append(data.draw(st.sampled_from(options)))
        priority = list(data.draw(st.permutations(range(n))))

        dt = 0.01
        engine, ref = run_both(inst, allocation, priority, dt=dt)
        # Each of <= 3 phases per job may lag a quantum, and lags ripple
        # through waits: allow a generous linear-in-n tolerance.
        tol = dt * (10 + 10 * n)
        assert np.allclose(ref.completion, engine.completion, atol=tol), (
            f"engine={engine.completion}, reference={ref.completion}"
        )
