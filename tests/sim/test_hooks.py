"""Tests for the pluggable engine instrumentation layer."""

import pytest

from repro.core.errors import ModelError
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.sim.hooks import (
    EngineHooks,
    EventCounter,
    HookSet,
    StepTimingProfiler,
    StretchWatermarkMonitor,
    make_hooks,
    register_hook,
)
from repro.workloads.random_uniform import RandomInstanceConfig, generate_random_instance


def small_instance(n=12, seed=3):
    return generate_random_instance(
        RandomInstanceConfig(n_jobs=n, ccr=1.0, load=0.5), seed=seed
    )


class TestHookSet:
    def test_prebinds_only_overridden_callbacks(self):
        class OnlyStep(EngineHooks):
            """Overrides on_step alone."""

            def on_step(self, t0, t1, active):
                pass

        hs = HookSet([OnlyStep()])
        assert hs.has_step and not hs.has_assign and not hs.has_complete
        assert hs.step and not hs.decision and not hs.events

    def test_empty_set_has_no_flags(self):
        hs = HookSet([])
        assert not (hs.has_step or hs.has_assign or hs.has_complete)


class TestEventCounter:
    def test_counter_matches_result_fields(self):
        inst = small_instance()
        counter = EventCounter()
        result = simulate(inst, make_scheduler("srpt"), hooks=[counter])
        # The engine's own tallies are themselves a hook; an extra
        # counter registered from outside must agree with them exactly.
        assert counter.n_events == result.n_events
        assert counter.n_decisions == result.n_decisions


class TestStepTimingProfiler:
    def test_counts_every_step(self):
        inst = small_instance()
        profiler = StepTimingProfiler()
        result = simulate(inst, make_scheduler("fcfs"), hooks=[profiler])
        report = profiler.report()
        assert report.n_steps == len(profiler.step_times) > 0
        # One timed step per decision that advanced time.
        assert report.n_steps <= result.n_decisions
        assert report.total_s >= report.max_s >= report.mean_s >= 0.0
        assert report.max_s >= report.p99_s >= report.p50_s >= 0.0
        assert "steps" in str(report)
        assert "p50" in str(report) and "p99" in str(report)

    def test_empty_report(self):
        report = StepTimingProfiler().report()
        assert report.n_steps == 0
        assert report.total_s == report.mean_s == report.max_s == 0.0
        assert report.p50_s == report.p99_s == 0.0

    def test_finish_flushes_final_step(self):
        # A decision opens a timed step; without on_step or on_finish it
        # would be dropped.  on_finish must flush it.
        profiler = StepTimingProfiler()
        profiler.on_decision(0.0, None)
        assert profiler.report().n_steps == 0
        profiler.on_finish(None)
        assert profiler.report().n_steps == 1

    def test_finish_does_not_double_count(self):
        profiler = StepTimingProfiler()
        profiler.on_decision(0.0, None)
        profiler.on_step(0.0, 1.0, [])
        profiler.on_finish(None)
        assert profiler.report().n_steps == 1

    def test_percentiles_nearest_rank(self):
        profiler = StepTimingProfiler()
        profiler.step_times.extend(float(i) for i in range(1, 101))
        report = profiler.report()
        assert report.p50_s == 50.0
        assert report.p99_s == 99.0
        assert report.max_s == 100.0


class TestStretchWatermarkMonitor:
    def test_final_watermark_is_max_stretch(self):
        inst = small_instance(n=20, seed=11)
        monitor = StretchWatermarkMonitor()
        result = simulate(inst, make_scheduler("ssf-edf"), hooks=[monitor])
        assert monitor.watermark == pytest.approx(result.max_stretch, rel=1e-12)

    def test_argmax_job_names_the_max_stretch_job(self):
        inst = small_instance(n=20, seed=11)
        monitor = StretchWatermarkMonitor()
        result = simulate(inst, make_scheduler("ssf-edf"), hooks=[monitor])
        assert monitor.argmax_job == int(result.stretches().argmax())

    def test_argmax_job_defaults_to_minus_one(self):
        assert StretchWatermarkMonitor().argmax_job == -1

    def test_history_is_increasing(self):
        inst = small_instance(n=20, seed=5)
        monitor = StretchWatermarkMonitor()
        simulate(inst, make_scheduler("srpt"), hooks=[monitor])
        stretches = [s.stretch for s in monitor.history]
        times = [s.time for s in monitor.history]
        assert stretches == sorted(stretches)
        assert times == sorted(times)
        assert monitor.history[-1].stretch == monitor.watermark


class TestCustomHooks:
    def test_all_callbacks_fire(self):
        calls = {k: 0 for k in ("start", "decision", "assign", "step", "events", "complete", "finish")}

        class Spy(EngineHooks):
            """Counts every callback invocation."""

            def on_start(self, view):
                calls["start"] += 1

            def on_decision(self, now, decision):
                calls["decision"] += 1

            def on_assign(self, job, resource, now):
                calls["assign"] += 1

            def on_step(self, t0, t1, active):
                calls["step"] += 1

            def on_events(self, events):
                calls["events"] += 1

            def on_complete(self, job, time):
                calls["complete"] += 1

            def on_finish(self, result):
                calls["finish"] += 1

        inst = small_instance()
        result = simulate(inst, make_scheduler("greedy"), hooks=[Spy()])
        assert calls["start"] == 1
        assert calls["finish"] == 1
        assert calls["decision"] == result.n_decisions
        assert calls["complete"] == inst.n_jobs
        assert calls["assign"] >= inst.n_jobs
        assert calls["step"] > 0
        assert calls["events"] > 0

    def test_hooks_do_not_perturb_results(self):
        inst = small_instance(n=15, seed=9)
        plain = simulate(inst, make_scheduler("srpt"))
        hooked = simulate(
            inst,
            make_scheduler("srpt"),
            hooks=[StepTimingProfiler(), StretchWatermarkMonitor()],
        )
        assert plain.max_stretch == hooked.max_stretch
        assert plain.n_events == hooked.n_events
        assert plain.n_decisions == hooked.n_decisions


class TestRegistry:
    def test_builtin_names(self):
        hooks = make_hooks(["counter", "profile", "watermark"])
        assert isinstance(hooks[0], EventCounter)
        assert isinstance(hooks[1], StepTimingProfiler)
        assert isinstance(hooks[2], StretchWatermarkMonitor)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ModelError, match="'counter' is already registered"):
            register_hook("counter", EventCounter)

    def test_single_name_string(self):
        (hook,) = make_hooks("profile")
        assert isinstance(hook, StepTimingProfiler)

    def test_none_and_empty(self):
        assert make_hooks(None) == []
        assert make_hooks([]) == []

    def test_unknown_name_raises(self):
        with pytest.raises(ModelError, match="unknown hook 'nope'"):
            make_hooks(["nope"])

    def test_register_custom(self):
        class Custom(EngineHooks):
            """Marker hook for the registry test."""

        register_hook("test-custom-hook", Custom)
        (hook,) = make_hooks(["test-custom-hook"])
        assert isinstance(hook, Custom)
