"""Checkpoint/restart execution model: commit math and abort boundaries.

Hand-crafted scenarios pin the durable-progress semantics exactly —
when a commit lands, what a fault-killed attempt resumes from, and how
the retry budget retires jobs — and byte-identity tests guarantee the
opt-in extension leaves the historical engine untouched when disabled.
"""

import hashlib
import math

import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.validation import validate_schedule
from repro.faults import FaultClassParams, FaultTrace, exponential_fault_trace
from repro.schedulers.registry import make_scheduler
from repro.sim.checkpoint import CheckpointPolicy, young_daly_interval
from repro.sim.engine import simulate
from repro.sim.events import EventKind
from repro.sim.hooks import EngineHooks
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)


def edge_instance(work=10.0):
    platform = Platform.create([1.0], n_cloud=0)
    return Instance.create(platform, [Job(origin=0, work=work)])


def cloud_instance():
    platform = Platform.create([0.1], n_cloud=1)
    return Instance.create(platform, [Job(origin=0, work=10.0, up=1.0, dn=1.0)])


class EventRecorder(EngineHooks):
    """Collect the engine's event stream for commit/abandon assertions."""

    def __init__(self):
        self.events = []

    def on_events(self, events):
        self.events.extend(events)

    def of_kind(self, kind):
        return [ev for ev in self.events if ev.kind is kind]


class TestPolicyValidation:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ModelError):
            CheckpointPolicy(interval=0.0)
        with pytest.raises(ModelError):
            CheckpointPolicy(interval=-1.0)

    def test_rejects_negative_cost_and_tiny_budget(self):
        with pytest.raises(ModelError):
            CheckpointPolicy(interval=1.0, commit_cost=-0.5)
        with pytest.raises(ModelError):
            CheckpointPolicy(retry_budget=0)

    def test_enablement_properties(self):
        assert not CheckpointPolicy().checkpoints_enabled
        assert CheckpointPolicy(interval=2.0).checkpoints_enabled
        assert CheckpointPolicy(phase_boundaries=True).checkpoints_enabled
        assert CheckpointPolicy(retry_budget=3).degradation_enabled
        assert not CheckpointPolicy(interval=2.0).degradation_enabled


class TestCommitMath:
    def test_periodic_commits_with_overhead(self):
        # work=10, interval=4, cost=1 on a speed-1 edge unit: commits
        # at progress 4 and 8 burn one unit each -> completion 12.
        hooks = EventRecorder()
        result = simulate(
            edge_instance(),
            make_scheduler("edge-only"),
            checkpoint=CheckpointPolicy(interval=4.0, commit_cost=1.0),
            hooks=[hooks],
        )
        assert result.completion[0] == pytest.approx(12.0)
        assert len(hooks.of_kind(EventKind.CHECKPOINT_COMMITTED)) == 2

    def test_zero_cost_commits_do_not_change_completion(self):
        hooks = EventRecorder()
        result = simulate(
            edge_instance(),
            make_scheduler("edge-only"),
            checkpoint=CheckpointPolicy(interval=4.0),
            hooks=[hooks],
        )
        assert result.completion[0] == pytest.approx(10.0)
        assert len(hooks.of_kind(EventKind.CHECKPOINT_COMMITTED)) == 2

    def test_phase_boundary_commit_on_uplink(self):
        # Cloud job: uplink [0,1) commits at the phase boundary; a
        # fault-free run is otherwise unchanged.
        hooks = EventRecorder()
        result = simulate(
            cloud_instance(),
            make_scheduler("cloud-only"),
            checkpoint=CheckpointPolicy(phase_boundaries=True),
            hooks=[hooks],
        )
        assert result.completion[0] == pytest.approx(12.0)
        commits = hooks.of_kind(EventKind.CHECKPOINT_COMMITTED)
        assert len(commits) == 1
        assert commits[0].time == pytest.approx(1.0)


class TestAbortBoundaries:
    def test_crash_restores_committed_watermark_not_zero(self):
        # Commits at t=4 (progress 4) and t=8; crash at t=5 loses only
        # the single uncommitted unit: resume at 6 with 6 remaining.
        faults = FaultTrace(edge_down={0: (Interval(5.0, 6.0),)})
        result = simulate(
            edge_instance(),
            make_scheduler("edge-only"),
            faults=faults,
            checkpoint=CheckpointPolicy(interval=4.0),
        )
        assert result.completion[0] == pytest.approx(12.0)
        # Without checkpointing the same crash costs the full prefix.
        base = simulate(edge_instance(), make_scheduler("edge-only"), faults=faults)
        assert base.completion[0] == pytest.approx(16.0)

    def test_crash_exactly_at_commit_instant_is_durable(self):
        # The commit at t=4 is processed before the fault boundary at
        # the same instant (half-open windows): the watermark survives.
        faults = FaultTrace(edge_down={0: (Interval(4.0, 5.0),)})
        result = simulate(
            edge_instance(),
            make_scheduler("edge-only"),
            faults=faults,
            checkpoint=CheckpointPolicy(interval=4.0),
        )
        # Resume at 5 with 6 remaining -> completion 11.
        assert result.completion[0] == pytest.approx(11.0)

    def test_abort_during_commit_overhead_loses_the_commit(self):
        # With cost=1 the first commit spans [4,5); a crash at 4.5 kills
        # it before it becomes durable, so the attempt restarts from
        # scratch at 5.5 and re-pays both commits: 5.5 + 10 + 2 = 17.5.
        faults = FaultTrace(edge_down={0: (Interval(4.5, 5.5),)})
        hooks = EventRecorder()
        result = simulate(
            edge_instance(),
            make_scheduler("edge-only"),
            faults=faults,
            checkpoint=CheckpointPolicy(interval=4.0, commit_cost=1.0),
            hooks=[hooks],
        )
        assert result.completion[0] == pytest.approx(17.5)
        assert len(hooks.of_kind(EventKind.CHECKPOINT_COMMITTED)) == 2

    def test_phase_boundary_commit_spares_completed_uplink(self):
        # Historical behaviour (test_faults): the t=5 cloud crash loses
        # the staged upload and completion lands at 18.  With the
        # uplink committed at its phase boundary only compute restarts:
        # resume at 6, compute [6,16), downlink [16,17).
        faults = FaultTrace(cloud_down={0: (Interval(5.0, 6.0),)})
        result = simulate(
            cloud_instance(),
            make_scheduler("cloud-only"),
            faults=faults,
            checkpoint=CheckpointPolicy(phase_boundaries=True),
        )
        assert result.completion[0] == pytest.approx(17.0)

    def test_checkpointed_schedule_passes_relaxed_validation(self):
        faults = FaultTrace(edge_down={0: (Interval(5.0, 6.0),)})
        result = simulate(
            edge_instance(),
            make_scheduler("edge-only"),
            faults=faults,
            checkpoint=CheckpointPolicy(interval=4.0),
            record_trace=True,
        )
        # The strict amount checks rightly reject a resumed attempt...
        assert validate_schedule(result.schedule) != []
        # ...while the checkpoint-aware mode accepts it.
        assert validate_schedule(result.schedule, checkpointing=True) == []


class TestRetryBudget:
    def _crashy_faults(self):
        # Kill the first two attempts: [2,3) and [5,6) both land inside
        # a running attempt of the 10-unit job.
        return FaultTrace(edge_down={0: (Interval(2.0, 3.0), Interval(5.0, 6.0))})

    def test_budget_exhaustion_abandons_the_job(self):
        hooks = EventRecorder()
        result = simulate(
            edge_instance(),
            make_scheduler("edge-only"),
            faults=self._crashy_faults(),
            checkpoint=CheckpointPolicy(retry_budget=2),
            hooks=[hooks],
        )
        assert result.n_abandoned == 1
        assert math.isnan(result.completion[0])
        abandoned = hooks.of_kind(EventKind.JOB_ABANDONED)
        assert [ev.job for ev in abandoned] == [0]
        # Every job abandoned: the objective degrades to inf, makespan 0.
        assert result.max_stretch == float("inf")
        assert result.makespan == 0.0

    def test_sufficient_budget_completes(self):
        result = simulate(
            edge_instance(),
            make_scheduler("edge-only"),
            faults=self._crashy_faults(),
            checkpoint=CheckpointPolicy(retry_budget=3),
        )
        assert result.n_abandoned == 0
        assert result.completion[0] == pytest.approx(16.0)

    def test_abandoned_jobs_excluded_from_metrics(self):
        platform = Platform.create([1.0, 1.0], n_cloud=0)
        instance = Instance.create(
            platform,
            [Job(origin=0, work=10.0), Job(origin=1, work=4.0)],
        )
        faults = FaultTrace(
            edge_down={0: (Interval(2.0, 3.0), Interval(5.0, 6.0))}
        )
        result = simulate(
            instance,
            make_scheduler("edge-only"),
            faults=faults,
            checkpoint=CheckpointPolicy(retry_budget=2),
        )
        assert result.n_abandoned == 1
        # Job 1 completed normally; the metrics ignore the NaN row.
        assert result.completion[1] == pytest.approx(4.0)
        assert result.max_stretch == pytest.approx(1.0)
        assert result.makespan == pytest.approx(4.0)


class TestDisabledPathByteIdentity:
    """Checkpointing off => literally the historical engine."""

    CASES = [(20210101, 0.5), (20210102, 2.0)]

    def _run(self, seed, load, policy, **kwargs):
        instance = generate_random_instance(
            RandomInstanceConfig(n_jobs=60, ccr=1.0, load=load),
            platform=paper_random_platform(),
            seed=seed,
        )
        faults = exponential_fault_trace(
            n_edge=instance.platform.n_edge,
            n_cloud=instance.platform.n_cloud,
            horizon=float(instance.release.max() + instance.min_time.sum()),
            seed=seed,
            edge=FaultClassParams(mtbf=40.0, mttr=4.0),
            cloud=FaultClassParams(mtbf=40.0, mttr=4.0),
            link=FaultClassParams(mtbf=40.0, mttr=4.0),
        )
        result = simulate(instance, make_scheduler(policy), faults=faults, **kwargs)
        return (
            hashlib.sha256(result.completion.tobytes()).hexdigest(),
            result.n_events,
            result.n_decisions,
        )

    @pytest.mark.parametrize("seed,load", CASES)
    @pytest.mark.parametrize("policy", ["greedy", "ssf-edf"])
    def test_checkpoint_none_is_byte_identical(self, seed, load, policy):
        assert self._run(seed, load, policy) == self._run(
            seed, load, policy, checkpoint=None
        )

    @pytest.mark.parametrize("seed,load", CASES)
    def test_noop_policy_is_byte_identical(self, seed, load):
        # A policy with no commits and no budget must not perturb the run.
        assert self._run(seed, load, "ssf-edf") == self._run(
            seed, load, "ssf-edf", checkpoint=CheckpointPolicy()
        )


class TestYoungDaly:
    """``auto_interval``: the Young/Daly optimum derived at run binding."""

    def test_formula_pins_textbook_value(self):
        # sqrt(2 * mtbf * cost): both pins are exact in IEEE-754.
        assert young_daly_interval(100.0, 0.5) == 10.0
        assert young_daly_interval(50.0, 1.0) == 10.0

    def test_formula_rejects_degenerate_inputs(self):
        for mtbf in (0.0, -1.0, math.inf, math.nan):
            with pytest.raises(ModelError):
                young_daly_interval(mtbf, 1.0)
        with pytest.raises(ModelError):
            young_daly_interval(100.0, 0.0)

    def test_auto_policy_validation(self):
        with pytest.raises(ModelError):
            CheckpointPolicy(interval=2.0, commit_cost=1.0, auto_interval=True)
        with pytest.raises(ModelError):
            CheckpointPolicy(commit_cost=0.0, auto_interval=True)
        policy = CheckpointPolicy(commit_cost=0.5, auto_interval=True)
        assert policy.interval is None
        assert policy.checkpoints_enabled

    def test_resolved_for_uses_most_fragile_compute_domain(self):
        # Link MTBF is far smaller than either compute domain, but link
        # outages never kill committed compute progress: the interval
        # must come from min(edge, cloud) = 100 -> sqrt(2*100*0.5) = 10.
        trace = exponential_fault_trace(
            n_edge=1,
            n_cloud=1,
            horizon=50.0,
            seed=7,
            edge=FaultClassParams(mtbf=100.0, mttr=1.0),
            cloud=FaultClassParams(mtbf=400.0, mttr=1.0),
            link=FaultClassParams(mtbf=1.0, mttr=0.1),
        )
        policy = CheckpointPolicy(commit_cost=0.5, auto_interval=True)
        resolved = policy.resolved_for(trace.rates)
        assert resolved.interval == 10.0
        assert not resolved.auto_interval
        assert resolved.commit_cost == 0.5

    def test_resolved_without_rates_disables_periodic_rule(self):
        # Hand-built traces carry no rates: nothing for periodic commits
        # to protect, but phase boundaries and the budget are unaffected.
        policy = CheckpointPolicy(
            commit_cost=0.5, auto_interval=True, phase_boundaries=True, retry_budget=3
        )
        resolved = policy.resolved_for(None)
        assert resolved.interval is None
        assert not resolved.auto_interval
        assert resolved.checkpoints_enabled
        assert resolved.degradation_enabled
        concrete = CheckpointPolicy(interval=2.0, commit_cost=0.5)
        assert concrete.resolved_for(None) is concrete

    def test_engine_auto_matches_explicit_interval(self):
        # An auto policy must be byte-identical to spelling out the
        # derived interval by hand.
        instance = generate_random_instance(
            RandomInstanceConfig(n_jobs=40, ccr=1.0, load=1.0),
            platform=paper_random_platform(),
            seed=20210610,
        )
        faults = exponential_fault_trace(
            n_edge=instance.platform.n_edge,
            n_cloud=instance.platform.n_cloud,
            horizon=float(instance.release.max() + instance.min_time.sum()),
            seed=20210610,
            edge=FaultClassParams(mtbf=40.0, mttr=4.0),
            cloud=FaultClassParams(mtbf=40.0, mttr=4.0),
            link=FaultClassParams(mtbf=40.0, mttr=4.0),
        )

        def run(policy):
            result = simulate(
                instance, make_scheduler("ssf-edf-fa"), faults=faults, checkpoint=policy
            )
            return (
                hashlib.sha256(result.completion.tobytes()).hexdigest(),
                result.n_events,
                result.n_decisions,
                result.n_reexecutions,
            )

        auto = run(CheckpointPolicy(commit_cost=0.5, auto_interval=True))
        explicit = run(
            CheckpointPolicy(interval=young_daly_interval(40.0, 0.5), commit_cost=0.5)
        )
        assert auto == explicit
