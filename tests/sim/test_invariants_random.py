"""Randomized (fixed-seed) model-invariant checks via the hooks API.

An :class:`InvariantAuditor` hook watches every engine step of a
simulation and checks, from the outside, the physical rules of the
model (paper §III): one-port full-duplex exclusivity, exclusive compute
slots, no migration within an attempt, and re-execution restarting work
from scratch.  Running it over randomized instances with pinned seeds
exercises decision shapes no hand-written scenario covers.
"""

import pytest

from repro.core.resources import ResourceKind
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.sim.hooks import EngineHooks
from repro.sim.state import Phase
from repro.workloads.random_uniform import RandomInstanceConfig, generate_random_instance


class InvariantAuditor(EngineHooks):
    """Checks model invariants from on_assign/on_step/on_complete alone."""

    def __init__(self, instance):
        self.instance = instance
        #: job -> (kind, index) of the current attempt.
        self.where: dict[int, tuple] = {}
        #: job -> number of attempts opened so far.
        self.attempts: dict[int, int] = {}
        #: job -> work progress (speed * time) of the *current* attempt.
        self.progress: dict[int, float] = {}
        self.violations: list[str] = []
        self.n_reassignments = 0

    def on_assign(self, job, resource, now):
        """Track attempt openings; a changed resource is a re-execution."""
        key = (resource.kind, resource.index)
        prev = self.where.get(job)
        if prev is not None and prev != key:
            self.n_reassignments += 1
        self.where[job] = key
        self.attempts[job] = self.attempts.get(job, 0) + 1
        # Every new attempt starts from zero progress (no migration:
        # progress never transfers between resources).
        self.progress[job] = 0.0

    def on_step(self, t0, t1, active):
        """Check per-step exclusivity and accumulate work progress."""
        dt = t1 - t0
        compute_slots = set()
        edge_send = set()
        edge_recv = set()
        cloud_recv = set()
        cloud_send = set()
        for job, phase, rate in active:
            kind, index = self.where[job]
            origin = int(self.instance.origin[job])
            if phase is Phase.COMPUTE:
                if (kind, index) in compute_slots:
                    self.violations.append(
                        f"t={t0}: two jobs computing on {kind.value}[{index}]"
                    )
                compute_slots.add((kind, index))
                self.progress[job] += rate * dt
            elif phase is Phase.UPLINK:
                if kind is not ResourceKind.CLOUD:
                    self.violations.append(f"t={t0}: uplink of edge-allocated job {job}")
                if origin in edge_send:
                    self.violations.append(f"t={t0}: edge[{origin}] sends twice")
                if index in cloud_recv:
                    self.violations.append(f"t={t0}: cloud[{index}] receives twice")
                edge_send.add(origin)
                cloud_recv.add(index)
            elif phase is Phase.DOWNLINK:
                if index in cloud_send:
                    self.violations.append(f"t={t0}: cloud[{index}] sends twice")
                if origin in edge_recv:
                    self.violations.append(f"t={t0}: edge[{origin}] receives twice")
                cloud_send.add(index)
                edge_recv.add(origin)

    def on_complete(self, job, time):
        """A completed job must have done its full work in its last attempt."""
        work = float(self.instance.work[job])
        kind, index = self.where[job]
        speed = (
            float(self.instance.platform.edge_speeds[index])
            if kind is ResourceKind.EDGE
            else float(self.instance.platform.cloud_speeds[index])
        )
        # Progress accumulates as speed * time; the last attempt alone
        # must cover the whole work amount — earlier attempts were wiped.
        if self.progress[job] < work - max(1.0, work) * 1e-6:
            self.violations.append(
                f"job {job} completed with only {self.progress[job]:.6f} "
                f"of {work:.6f} work in its final attempt"
            )


CASES = [
    ("srpt", 0.5, 101),
    ("srpt", 2.0, 102),
    ("ssf-edf", 0.5, 103),
    ("ssf-edf", 2.0, 104),
    ("greedy", 1.0, 105),
    ("fcfs", 2.0, 106),
    ("random", 1.0, 107),
]


@pytest.mark.parametrize("policy,load,seed", CASES)
def test_random_instances_respect_model_invariants(policy, load, seed):
    instance = generate_random_instance(
        RandomInstanceConfig(n_jobs=40, ccr=1.0, load=load), seed=seed
    )
    auditor = InvariantAuditor(instance)
    scheduler = (
        make_scheduler(policy, seed=seed) if policy == "random" else make_scheduler(policy)
    )
    result = simulate(instance, scheduler, hooks=[auditor])

    assert auditor.violations == []
    # Every job completed exactly once and opened at least one attempt.
    assert set(auditor.attempts) == set(range(instance.n_jobs))
    # The auditor's reassignment count is exactly the engine's
    # re-execution tally: moving a job wipes it and restarts.
    assert auditor.n_reassignments == result.n_reexecutions
