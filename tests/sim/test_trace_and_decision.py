"""Tests for repro.sim.trace, repro.sim.decision, repro.sim.events."""

import pytest

from repro.core.errors import DecisionError, SimulationError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.sim.decision import Assignment, Decision
from repro.sim.events import (
    Event,
    EventKind,
    availability_change,
    compute_done,
    downlink_done,
    job_done,
    release,
    uplink_done,
)
from repro.sim.state import Phase
from repro.sim.trace import NullRecorder, TraceRecorder


@pytest.fixture
def instance() -> Instance:
    platform = Platform.create([1.0], n_cloud=1)
    return Instance.create(platform, [Job(origin=0, work=2.0, up=1.0, dn=1.0)])


class TestDecision:
    def test_of_builder(self):
        d = Decision.of([(0, edge(0)), (1, cloud(0))])
        assert len(d) == 2
        assert d.assignments[0] == Assignment(0, edge(0))

    def test_add_appends_lowest_priority(self):
        d = Decision()
        d.add(3, cloud(0))
        d.add(1, edge(0))
        assert [a.job for a in d] == [3, 1]

    def test_duplicate_detected(self):
        d = Decision.of([(0, edge(0)), (0, cloud(0))])
        with pytest.raises(DecisionError):
            d.check_well_formed()

    def test_empty_is_falsy(self):
        assert not Decision()
        assert Decision.of([(0, edge(0))])


class TestEvents:
    def test_constructors(self):
        assert release(1.0, 3).kind is EventKind.RELEASE
        assert uplink_done(1.0, 3).kind is EventKind.UPLINK_DONE
        assert compute_done(1.0, 3).kind is EventKind.COMPUTE_DONE
        assert downlink_done(1.0, 3).kind is EventKind.DOWNLINK_DONE
        assert job_done(1.0, 3).kind is EventKind.JOB_DONE
        assert availability_change(1.0).job is None

    def test_immutability(self):
        e = release(1.0, 0)
        with pytest.raises(AttributeError):
            e.time = 2.0

    def test_carries_time_and_job(self):
        e = compute_done(4.5, 7)
        assert e.time == 4.5 and e.job == 7


class TestTraceRecorder:
    def test_records_attempt_and_phases(self, instance):
        rec = TraceRecorder(instance)
        rec.new_attempt(0, cloud(0))
        rec.record(0, Phase.UPLINK, 0.0, 1.0)
        rec.record(0, Phase.COMPUTE, 1.0, 3.0)
        rec.record(0, Phase.DOWNLINK, 3.0, 4.0)
        rec.complete(0, 4.0)
        schedule = rec.build()
        attempt = schedule.job_schedules[0].final_attempt
        assert attempt.uplink.total_length() == 1.0
        assert attempt.execution.total_length() == 2.0
        assert attempt.downlink.total_length() == 1.0
        assert schedule.job_schedules[0].completion == 4.0

    def test_zero_length_segments_dropped(self, instance):
        rec = TraceRecorder(instance)
        rec.new_attempt(0, edge(0))
        rec.record(0, Phase.COMPUTE, 1.0, 1.0)
        assert len(rec.build().job_schedules[0].final_attempt.execution) == 0

    def test_contiguous_segments_merged(self, instance):
        rec = TraceRecorder(instance)
        rec.new_attempt(0, edge(0))
        rec.record(0, Phase.COMPUTE, 0.0, 1.0)
        rec.record(0, Phase.COMPUTE, 1.0, 2.0)
        execution = rec.build().job_schedules[0].final_attempt.execution
        assert len(execution) == 1
        assert execution.total_length() == 2.0

    def test_activity_before_attempt_rejected(self, instance):
        rec = TraceRecorder(instance)
        with pytest.raises(SimulationError):
            rec.record(0, Phase.COMPUTE, 0.0, 1.0)

    def test_second_attempt_separates_intervals(self, instance):
        rec = TraceRecorder(instance)
        rec.new_attempt(0, edge(0))
        rec.record(0, Phase.COMPUTE, 0.0, 1.0)
        rec.new_attempt(0, cloud(0))
        rec.record(0, Phase.UPLINK, 1.0, 2.0)
        schedule = rec.build()
        js = schedule.job_schedules[0]
        assert len(js.attempts) == 2
        assert js.attempts[0].execution.total_length() == 1.0
        assert js.attempts[1].uplink.total_length() == 1.0


class TestNullRecorder:
    def test_all_noops(self):
        rec = NullRecorder()
        rec.new_attempt(0, edge(0))
        rec.record(0, Phase.COMPUTE, 0.0, 1.0)
        rec.complete(0, 1.0)
        assert rec.build() is None
