"""Tests for the discrete-event engine: model semantics end to end."""

import numpy as np
import pytest

from repro.core.errors import DecisionError, SimulationError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.core.validation import validate_schedule
from repro.offline.list_scheduler import FixedPolicyScheduler
from repro.schedulers.base import BaseScheduler
from repro.sim.decision import Decision
from repro.sim.engine import simulate
from repro.sim.events import EventKind


def run_fixed(instance, allocation, priority=None, **kwargs):
    priority = priority if priority is not None else list(range(instance.n_jobs))
    return simulate(instance, FixedPolicyScheduler(allocation, priority), **kwargs)


class TestSingleJob:
    def test_edge_execution_time(self):
        platform = Platform.create([0.25], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=2.0)])
        result = run_fixed(inst, [edge(0)])
        assert result.completion[0] == pytest.approx(8.0)
        assert result.max_stretch == pytest.approx(8.0 / min(8.0, 2.0 + 0.0))

    def test_cloud_execution_time(self):
        platform = Platform.create([0.25], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=2.0, up=1.5, dn=0.5)])
        result = run_fixed(inst, [cloud(0)])
        assert result.completion[0] == pytest.approx(4.0)

    def test_release_date_delays_start(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(platform, [Job(origin=0, work=2.0, release=10.0)])
        result = run_fixed(inst, [edge(0)])
        assert result.completion[0] == pytest.approx(12.0)
        assert result.max_stretch == pytest.approx(1.0)

    def test_zero_length_comms_skipped(self):
        platform = Platform.create([1.0], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=3.0, up=0.0, dn=0.0)])
        result = run_fixed(inst, [cloud(0)])
        assert result.completion[0] == pytest.approx(3.0)

    def test_zero_downlink_completes_despite_busy_receive_port(self):
        # J0's long downlink occupies edge[0]'s receive port; J1 has
        # dn=0 and must complete exactly at its compute end anyway (a
        # zero-length transfer needs no port).
        platform = Platform.create([1.0], n_cloud=2)
        jobs = [
            Job(origin=0, work=0.5, up=0.5, dn=10.0),
            Job(origin=0, work=1.0, up=1.0, dn=0.0),
        ]
        inst = Instance.create(platform, jobs)
        result = run_fixed(inst, [cloud(0), cloud(1)], priority=[0, 1])
        # J0: up 0-0.5, exec 0.5-1, dn 1-11. J1: up 0.5-1.5, exec 1.5-2.5.
        assert result.completion[1] == pytest.approx(2.5)
        assert result.completion[0] == pytest.approx(11.0)

    def test_heterogeneous_cloud_speed(self):
        platform = Platform.create([1.0], cloud_speeds=[4.0])
        inst = Instance.create(platform, [Job(origin=0, work=4.0, up=1.0, dn=1.0)])
        result = run_fixed(inst, [cloud(0)])
        assert result.completion[0] == pytest.approx(1.0 + 1.0 + 1.0)


class TestExclusivityAndPorts:
    def test_edge_compute_serialized(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(
            platform, [Job(origin=0, work=2.0), Job(origin=0, work=2.0)]
        )
        result = run_fixed(inst, [edge(0), edge(0)])
        assert sorted(result.completion.tolist()) == pytest.approx([2.0, 4.0])

    def test_uplinks_from_same_edge_serialized(self):
        platform = Platform.create([1.0], n_cloud=2)
        jobs = [Job(origin=0, work=0.1, up=2.0, dn=0.0) for _ in range(2)]
        inst = Instance.create(platform, jobs)
        result = run_fixed(inst, [cloud(0), cloud(1)])
        # Second uplink must wait for the first despite distinct clouds.
        assert max(result.completion) == pytest.approx(4.1)

    def test_uplinks_to_same_cloud_serialized(self):
        platform = Platform.create([1.0, 1.0], n_cloud=1)
        jobs = [Job(origin=0, work=0.1, up=2.0), Job(origin=1, work=0.1, up=2.0)]
        inst = Instance.create(platform, jobs)
        result = run_fixed(inst, [cloud(0), cloud(0)])
        # J0: up 0-2, exec 2-2.1; J1: up 2-4 (receive port), exec 4-4.1.
        assert max(result.completion) == pytest.approx(4.1)

    def test_independent_pairs_in_parallel(self):
        platform = Platform.create([1.0, 1.0], n_cloud=2)
        jobs = [Job(origin=0, work=1.0, up=2.0), Job(origin=1, work=1.0, up=2.0)]
        inst = Instance.create(platform, jobs)
        result = run_fixed(inst, [cloud(0), cloud(1)])
        assert result.completion.tolist() == pytest.approx([3.0, 3.0])

    def test_full_duplex_overlap(self):
        # Same edge unit: one job uploading while another downloads.
        platform = Platform.create([1.0], n_cloud=2)
        jobs = [
            Job(origin=0, work=0.5, up=1.0, dn=4.0),
            Job(origin=0, work=0.5, up=2.0, dn=1.0),
        ]
        inst = Instance.create(platform, jobs)
        result = run_fixed(inst, [cloud(0), cloud(1)])
        # J0: up 0-1, exec 1-1.5, dn 1.5-5.5. J1: up 1-3 (send port
        # freed at 1), exec 3-3.5, dn 3.5-4.5 overlapping J0's dn? No -
        # same edge receive port, so J1's dn waits until 5.5.
        assert result.completion[0] == pytest.approx(5.5)
        assert result.completion[1] == pytest.approx(6.5)

    def test_compute_overlaps_communication(self):
        # Cloud computes one job while receiving the next one's uplink.
        platform = Platform.create([1.0], n_cloud=1)
        jobs = [
            Job(origin=0, work=4.0, up=1.0, dn=0.0),
            Job(origin=0, work=1.0, up=2.0, dn=0.0),
        ]
        inst = Instance.create(platform, jobs)
        result = run_fixed(inst, [cloud(0), cloud(0)])
        # J0 up 0-1 exec 1-5; J1 up 1-3, exec 5-6.
        assert result.completion[0] == pytest.approx(5.0)
        assert result.completion[1] == pytest.approx(6.0)


class TestPreemptionAndReexecution:
    def test_priority_preempts_on_release(self):
        # A long job starts; a short higher-priority job released later
        # preempts it; the long job resumes (progress kept).
        platform = Platform.create([1.0], n_cloud=0)
        jobs = [Job(origin=0, work=10.0), Job(origin=0, work=1.0, release=2.0)]
        inst = Instance.create(platform, jobs)
        result = run_fixed(inst, [edge(0), edge(0)], priority=[1, 0])
        assert result.completion[1] == pytest.approx(3.0)
        assert result.completion[0] == pytest.approx(11.0)
        # Preemption is not a re-execution.
        assert result.n_reexecutions == 0
        errs = validate_schedule(result.schedule)
        assert errs == []

    def test_reexecution_loses_progress(self):
        # A scheduler that flips the job to the cloud after the first event.
        platform = Platform.create([1.0], n_cloud=1)
        jobs = [Job(origin=0, work=4.0, up=1.0, dn=1.0), Job(origin=0, work=1.0, release=1.0)]
        inst = Instance.create(platform, jobs)

        class Flipper(BaseScheduler):
            name = "flipper"

            def decide(self, view, events):
                d = Decision()
                live = set(view.live_jobs().tolist())
                if view.now < 1.0:
                    if 0 in live:
                        d.add(0, edge(0))  # start on edge
                else:
                    if 1 in live:
                        d.add(1, edge(0))
                    if 0 in live:
                        d.add(0, cloud(0))  # restart on the cloud
                return d

        result = simulate(inst, Flipper())
        # J0 ran 0-1 on edge (lost), then up 1-2, exec 2-6, dn 6-7.
        assert result.completion[0] == pytest.approx(7.0)
        assert result.n_reexecutions == 1
        assert validate_schedule(result.schedule) == []


class TestEngineGuards:
    def test_deadlock_detected(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(platform, [Job(origin=0, work=1.0)])

        class Idler(BaseScheduler):
            name = "idler"

            def decide(self, view, events):
                return Decision()

        with pytest.raises(SimulationError, match="deadlock"):
            simulate(inst, Idler())

    def test_unreleased_job_rejected(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(
            platform, [Job(origin=0, work=1.0), Job(origin=0, work=1.0, release=99.0)]
        )

        class Eager(BaseScheduler):
            name = "eager"

            def decide(self, view, events):
                d = Decision()
                d.add(1, edge(0))
                return d

        with pytest.raises(DecisionError, match="not released"):
            simulate(inst, Eager())

    def test_wrong_edge_rejected(self):
        platform = Platform.create([1.0, 1.0], n_cloud=0)
        inst = Instance.create(platform, [Job(origin=0, work=1.0)])
        with pytest.raises(DecisionError, match="originates"):
            run_fixed(inst, [edge(1)])

    def test_bad_cloud_rejected(self):
        platform = Platform.create([1.0], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=1.0)])
        with pytest.raises(DecisionError, match="no such cloud"):
            run_fixed(inst, [cloud(5)])

    def test_duplicate_assignment_rejected(self):
        platform = Platform.create([1.0], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=1.0)])

        class Duplicator(BaseScheduler):
            name = "dup"

            def decide(self, view, events):
                d = Decision()
                d.add(0, edge(0))
                d.add(0, cloud(0))
                return d

        with pytest.raises(DecisionError, match="twice"):
            simulate(inst, Duplicator())

    def test_max_steps_guard(self):
        platform = Platform.create([1.0], n_cloud=0)
        jobs = [Job(origin=0, work=1.0, release=float(i)) for i in range(6)]
        inst = Instance.create(platform, jobs)
        with pytest.raises(SimulationError, match="steps"):
            run_fixed(inst, [edge(0)] * 6, max_steps=2)

    def test_empty_instance(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(platform, [])
        result = simulate(inst, FixedPolicyScheduler([], []))
        assert result.max_stretch == 0.0
        assert result.n_events == 0


class TestEventsAndResult:
    def test_event_counts_edge_job(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(platform, [Job(origin=0, work=1.0)])
        result = run_fixed(inst, [edge(0)])
        # release + compute_done + job_done.
        assert result.n_events == 3

    def test_event_counts_cloud_job(self):
        platform = Platform.create([1.0], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=1.0, up=1.0, dn=1.0)])
        result = run_fixed(inst, [cloud(0)])
        # release + uplink_done + compute_done + downlink_done + job_done.
        assert result.n_events == 5

    def test_scheduler_sees_release_events(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(
            platform, [Job(origin=0, work=1.0), Job(origin=0, work=1.0, release=5.0)]
        )
        seen = []

        class Recorder(BaseScheduler):
            name = "recorder"

            def decide(self, view, events):
                seen.extend(e.kind for e in events)
                d = Decision()
                for i in view.live_jobs():
                    d.add(int(i), edge(0))
                return d

        simulate(inst, Recorder())
        assert seen.count(EventKind.RELEASE) == 2
        assert EventKind.JOB_DONE in seen

    def test_result_metrics(self):
        platform = Platform.create([0.5], n_cloud=0)
        inst = Instance.create(
            platform, [Job(origin=0, work=1.0), Job(origin=0, work=1.0)]
        )
        result = run_fixed(inst, [edge(0), edge(0)])
        assert result.makespan == pytest.approx(4.0)
        assert result.average_stretch == pytest.approx((1.0 + 2.0) / 2)
        assert result.scheduler_name == "fixed-policy"
        assert result.wall_time > 0

    def test_no_trace_mode(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(platform, [Job(origin=0, work=1.0)])
        result = run_fixed(inst, [edge(0)], record_trace=False)
        assert result.schedule is None
        assert result.max_stretch == pytest.approx(1.0)

    def test_simultaneous_releases_processed_together(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(
            platform,
            [Job(origin=0, work=1.0, release=2.0), Job(origin=0, work=1.0, release=2.0)],
        )
        result = run_fixed(inst, [edge(0), edge(0)])
        assert sorted(result.completion.tolist()) == pytest.approx([3.0, 4.0])
