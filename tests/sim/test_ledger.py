"""Unit tests for the resource ledger (grant/release/exhausted)."""

from repro.core.platform import Platform
from repro.sim.ledger import ACT_COMPUTE, ACT_DOWNLINK, ACT_UPLINK, ResourceLedger


def ledger(n_edge=2, n_cloud=2):
    return ResourceLedger(Platform.create([0.5] * n_edge, n_cloud=n_cloud))


class TestGrants:
    def test_edge_compute_exclusive(self):
        led = ledger()
        assert led.grant_edge_compute(0)
        assert not led.grant_edge_compute(0)
        assert led.grant_edge_compute(1)

    def test_cloud_compute_exclusive(self):
        led = ledger()
        assert led.grant_cloud_compute(1)
        assert not led.grant_cloud_compute(1)
        assert led.grant_cloud_compute(0)

    def test_uplink_claims_port_pair(self):
        led = ledger()
        assert led.grant_uplink(0, 0)
        # Edge 0's send port is taken: no other uplink can leave edge 0.
        assert not led.grant_uplink(0, 1)
        # Cloud 0's receive port is taken: nothing else can arrive there.
        assert not led.grant_uplink(1, 0)
        # A disjoint pair is still free.
        assert led.grant_uplink(1, 1)

    def test_downlink_claims_port_pair(self):
        led = ledger()
        assert led.grant_downlink(0, 0)
        assert not led.grant_downlink(0, 1)
        assert not led.grant_downlink(1, 0)
        assert led.grant_downlink(1, 1)

    def test_full_duplex_up_and_down_coexist(self):
        # One-port FULL-duplex: the same edge unit may send and receive
        # simultaneously, and a cloud processor may receive and send.
        led = ledger(n_edge=1, n_cloud=1)
        assert led.grant_uplink(0, 0)
        assert led.grant_downlink(0, 0)

    def test_compute_independent_of_ports(self):
        led = ledger(n_edge=1, n_cloud=1)
        assert led.grant_uplink(0, 0)
        assert led.grant_edge_compute(0)
        assert led.grant_cloud_compute(0)


class TestRelease:
    def test_release_edge_compute(self):
        led = ledger()
        led.grant_edge_compute(0)
        led.release(ACT_COMPUTE, 0, -1)
        assert led.grant_edge_compute(0)

    def test_release_cloud_compute(self):
        led = ledger()
        led.grant_cloud_compute(1)
        led.release(ACT_COMPUTE, 0, 1)
        assert led.grant_cloud_compute(1)

    def test_release_uplink_returns_both_sides(self):
        led = ledger()
        led.grant_uplink(0, 1)
        led.release(ACT_UPLINK, 0, 1)
        assert led.grant_uplink(0, 1)

    def test_release_downlink_returns_both_sides(self):
        led = ledger()
        led.grant_downlink(1, 0)
        led.release(ACT_DOWNLINK, 0, 1)
        assert led.grant_downlink(1, 0)

    def test_begin_round_resets_everything(self):
        led = ledger(n_edge=1, n_cloud=1)
        led.grant_edge_compute(0)
        led.grant_cloud_compute(0)
        led.grant_uplink(0, 0)
        led.grant_downlink(0, 0)
        led.begin_round()
        assert led.grant_edge_compute(0)
        assert led.grant_cloud_compute(0)
        assert led.grant_uplink(0, 0)
        assert led.grant_downlink(0, 0)


class TestExhausted:
    def test_fresh_ledger_not_exhausted(self):
        assert not ledger().exhausted

    def test_exhausted_when_everything_taken(self):
        led = ledger(n_edge=1, n_cloud=1)
        led.grant_edge_compute(0)
        led.grant_cloud_compute(0)
        led.grant_uplink(0, 0)
        led.grant_downlink(0, 0)
        assert led.exhausted

    def test_one_sided_port_exhaustion_suffices(self):
        # All compute taken; the single cloud processor's receive and
        # send ports are both busy, so no communication can be granted
        # even though edge unit 1 still has both of its ports free.
        led = ledger(n_edge=2, n_cloud=1)
        led.grant_edge_compute(0)
        led.grant_edge_compute(1)
        led.grant_cloud_compute(0)
        led.grant_uplink(0, 0)
        led.grant_downlink(0, 0)
        assert led.exhausted

    def test_free_compute_means_not_exhausted(self):
        led = ledger(n_edge=1, n_cloud=1)
        led.grant_cloud_compute(0)
        led.grant_uplink(0, 0)
        led.grant_downlink(0, 0)
        assert not led.exhausted

    def test_release_clears_exhaustion(self):
        led = ledger(n_edge=1, n_cloud=1)
        led.grant_edge_compute(0)
        led.grant_cloud_compute(0)
        led.grant_uplink(0, 0)
        led.grant_downlink(0, 0)
        assert led.exhausted
        led.release(ACT_COMPUTE, 0, -1)
        assert not led.exhausted
