"""Engine integration of fault traces: abort semantics and invariants.

Hand-crafted scenarios pin the re-execution rule exactly (when an
attempt dies, what survives, and when work resumes); randomized runs
check the physical invariant that nothing executes on a dead resource
and that faulty schedules still pass the full model validator.
"""

import hashlib

import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.validation import validate_schedule
from repro.faults import FaultClassParams, FaultTrace, exponential_fault_trace
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.sim.hooks import EngineHooks
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)


def edge_instance(work=10.0):
    platform = Platform.create([1.0], n_cloud=0)
    return Instance.create(platform, [Job(origin=0, work=work)])


def cloud_instance():
    platform = Platform.create([0.1], n_cloud=1)
    return Instance.create(platform, [Job(origin=0, work=10.0, up=1.0, dn=1.0)])


class AbortRecorder(EngineHooks):
    def __init__(self):
        self.aborts = []
        self.assigns = []

    def on_abort(self, job, time):
        self.aborts.append((job, time))

    def on_assign(self, job, resource, now):
        self.assigns.append((job, resource, now))


class TestAbortSemantics:
    def test_edge_crash_restarts_work_from_scratch(self):
        faults = FaultTrace(edge_down={0: (Interval(2.0, 3.0),)})
        hooks = AbortRecorder()
        result = simulate(
            edge_instance(), make_scheduler("edge-only"), faults=faults, hooks=[hooks]
        )
        # 2 units of work lost at the crash; resume at recovery (t=3).
        assert result.completion[0] == pytest.approx(13.0)
        assert result.n_reexecutions == 1
        assert hooks.aborts == [(0, 2.0)]

    def test_crash_exactly_at_completion_is_not_an_abort(self):
        # The job finishes at t=10; a crash starting there kills nothing.
        faults = FaultTrace(edge_down={0: (Interval(10.0, 11.0),)})
        result = simulate(edge_instance(), make_scheduler("edge-only"), faults=faults)
        assert result.completion[0] == pytest.approx(10.0)
        assert result.n_reexecutions == 0

    def test_cloud_crash_aborts_regardless_of_phase(self):
        # Uplink [0,1), compute [1,11): the crash at t=5 hits mid-compute
        # and the whole attempt (staged data included) is lost.
        faults = FaultTrace(cloud_down={0: (Interval(5.0, 6.0),)})
        hooks = AbortRecorder()
        result = simulate(
            cloud_instance(), make_scheduler("cloud-only"), faults=faults, hooks=[hooks]
        )
        assert hooks.aborts == [(0, 5.0)]
        # Restart at recovery: up [6,7), compute [7,17), down [17,18).
        assert result.completion[0] == pytest.approx(18.0)

    def test_link_outage_aborts_inflight_uplink(self):
        faults = FaultTrace(link_down={0: (Interval(0.5, 2.0),)})
        hooks = AbortRecorder()
        result = simulate(
            cloud_instance(), make_scheduler("cloud-only"), faults=faults, hooks=[hooks]
        )
        assert hooks.aborts == [(0, 0.5)]
        # Uplink restarts once the link returns: up [2,3), compute
        # [3,13), down [13,14).
        assert result.completion[0] == pytest.approx(14.0)

    def test_link_outage_spares_cloud_compute(self):
        # Outage [2,20) covers the whole compute phase [1,11): the
        # attempt survives and only the downlink waits for the link.
        faults = FaultTrace(link_down={0: (Interval(2.0, 20.0),)})
        hooks = AbortRecorder()
        result = simulate(
            cloud_instance(), make_scheduler("cloud-only"), faults=faults, hooks=[hooks]
        )
        assert hooks.aborts == []
        assert result.n_reexecutions == 0
        assert result.completion[0] == pytest.approx(21.0)

    def test_down_resource_not_allocated(self):
        # Edge 0 is down from the start; nothing may start on it until
        # t=4 even though the job is released at 0.
        faults = FaultTrace(edge_down={0: (Interval(0.0, 4.0),)})
        result = simulate(edge_instance(), make_scheduler("edge-only"), faults=faults)
        assert result.completion[0] == pytest.approx(14.0)
        assert result.n_reexecutions == 0


class TestDeterminismAndIdentity:
    CASES = [(20210101, 0.5), (20210102, 2.0)]

    def _instance(self, seed, load):
        return generate_random_instance(
            RandomInstanceConfig(n_jobs=60, ccr=1.0, load=load),
            platform=paper_random_platform(),
            seed=seed,
        )

    @pytest.mark.parametrize("seed,load", CASES)
    def test_empty_trace_is_byte_identical_to_no_trace(self, seed, load):
        instance = self._instance(seed, load)
        for name in ("fcfs", "greedy", "ssf-edf"):
            base = simulate(instance, make_scheduler(name))
            empty = simulate(instance, make_scheduler(name), faults=FaultTrace.none())
            assert base.completion.tobytes() == empty.completion.tobytes()
            assert base.n_events == empty.n_events
            assert base.n_decisions == empty.n_decisions

    @pytest.mark.parametrize("seed,load", CASES)
    def test_faulty_run_replays_byte_identically(self, seed, load):
        instance = self._instance(seed, load)
        faults = exponential_fault_trace(
            n_edge=instance.platform.n_edge,
            n_cloud=instance.platform.n_cloud,
            horizon=float(instance.release.max() + instance.min_time.sum()),
            seed=seed,
            edge=FaultClassParams(mtbf=40.0, mttr=4.0),
            cloud=FaultClassParams(mtbf=40.0, mttr=4.0),
            link=FaultClassParams(mtbf=40.0, mttr=4.0),
        )
        digests = {
            hashlib.sha256(
                simulate(instance, make_scheduler("ssf-edf"), faults=faults)
                .completion.tobytes()
            ).hexdigest()
            for _ in range(2)
        }
        assert len(digests) == 1


def _assert_never_on_dead_resource(schedule, faults):
    """No execution/transfer interval may overlap its resource's downtime."""
    for js in schedule.iter_job_schedules():
        origin = schedule.instance.jobs[js.job_id].origin
        for attempt in js.attempts:
            res = attempt.resource
            down = (
                faults.edge_down.get(res.index, ())
                if res.is_edge
                else faults.cloud_down.get(res.index, ())
            )
            for iv in attempt.execution:
                for d in down:
                    assert not iv.overlaps(d), (
                        f"job {js.job_id} executed {iv} on {res} during downtime {d}"
                    )
            # Transfers need the origin's link and edge unit alive, and
            # (being cloud-attempt phases) the cloud processor too.
            blockers = (
                faults.link_down.get(origin, ())
                + faults.edge_down.get(origin, ())
                + (faults.cloud_down.get(res.index, ()) if not res.is_edge else ())
            )
            for ivset in (attempt.uplink, attempt.downlink):
                for iv in ivset:
                    for d in blockers:
                        assert not iv.overlaps(d), (
                            f"job {js.job_id} transfer {iv} during outage {d}"
                        )


class TestRandomizedFaultInvariants:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    @pytest.mark.parametrize("policy", ["fcfs", "greedy", "ssf-edf"])
    def test_valid_schedule_and_no_work_on_dead_resources(self, seed, policy):
        instance = generate_random_instance(
            RandomInstanceConfig(n_jobs=40, ccr=1.0, load=0.5),
            platform=paper_random_platform(),
            seed=seed,
        )
        faults = exponential_fault_trace(
            n_edge=instance.platform.n_edge,
            n_cloud=instance.platform.n_cloud,
            horizon=float(instance.release.max() + instance.min_time.sum()),
            seed=seed + 1000,
            edge=FaultClassParams(mtbf=30.0, mttr=3.0),
            cloud=FaultClassParams(mtbf=30.0, mttr=3.0),
            link=FaultClassParams(mtbf=30.0, mttr=3.0),
        )
        assert not faults.is_empty  # the scenario must actually inject
        result = simulate(
            instance, make_scheduler(policy), faults=faults, record_trace=True
        )
        assert validate_schedule(result.schedule) == []
        _assert_never_on_dead_resource(result.schedule, faults)
