"""Numerical robustness of the engine: extreme scales and mixtures."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.validation import validate_schedule
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate


class TestExtremeScales:
    def test_tiny_jobs(self):
        platform = Platform.create([0.5], n_cloud=1)
        jobs = [
            Job(origin=0, work=1e-6, release=i * 1e-6, up=1e-6, dn=1e-6)
            for i in range(5)
        ]
        inst = Instance.create(platform, jobs)
        result = simulate(inst, make_scheduler("ssf-edf"))
        assert validate_schedule(result.schedule) == []
        assert (result.stretches() >= 1.0 - 1e-6).all()

    def test_huge_jobs(self):
        platform = Platform.create([0.5], n_cloud=1)
        jobs = [
            Job(origin=0, work=1e9, release=i * 1e8, up=1e8, dn=1e8) for i in range(4)
        ]
        inst = Instance.create(platform, jobs)
        result = simulate(inst, make_scheduler("srpt"))
        assert validate_schedule(result.schedule) == []
        assert np.isfinite(result.completion).all()

    def test_mixed_magnitudes(self):
        # A millisecond job next to a megasecond job: the stretch
        # denominator spans 9 orders of magnitude.
        platform = Platform.create([1.0], n_cloud=1)
        jobs = [
            Job(origin=0, work=1e-3, release=0.0),
            Job(origin=0, work=1e6, release=0.0, up=1e3, dn=1e3),
            Job(origin=0, work=1e-3, release=1e5),
        ]
        inst = Instance.create(platform, jobs)
        for name in ("greedy", "srpt", "ssf-edf"):
            result = simulate(inst, make_scheduler(name))
            assert validate_schedule(result.schedule) == [], name
            assert (result.stretches() >= 1.0 - 1e-6).all(), name

    def test_many_equal_jobs_no_tolerance_drift(self):
        # 60 identical jobs through one processor: completion times are
        # exact multiples despite repeated float decrements.
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(platform, [Job(origin=0, work=0.1) for _ in range(60)])
        result = simulate(inst, make_scheduler("fcfs"))
        expected = np.arange(1, 61) * 0.1
        assert np.allclose(np.sort(result.completion), expected, rtol=1e-9, atol=1e-9)

    def test_release_times_with_float_noise(self):
        # Releases that differ by one ulp-scale epsilon must not create
        # zero-length steps.
        platform = Platform.create([1.0], n_cloud=0)
        base = 1.0
        jobs = [
            Job(origin=0, work=1.0, release=base),
            Job(origin=0, work=1.0, release=base + 1e-12),
            Job(origin=0, work=1.0, release=base + 2e-12),
        ]
        inst = Instance.create(platform, jobs)
        result = simulate(inst, make_scheduler("fcfs"))
        assert validate_schedule(result.schedule) == []

    def test_slow_edge_fast_cloud_ratio(self):
        # Speed ratio of 10^4 between edge and cloud.
        platform = Platform.create([1e-4], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=1.0, up=0.1, dn=0.1)])
        result = simulate(inst, make_scheduler("srpt"))
        assert result.completion[0] == pytest.approx(1.2)
