"""Combined engine scenarios: interactions the unit tests cover separately.

Each test hand-computes the full timeline of a small scenario where
several model rules interact (ports + preemption + re-execution +
availability + heterogeneous clouds), pinning the engine's semantics.
"""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.core.validation import validate_schedule
from repro.offline.list_scheduler import FixedPolicyScheduler
from repro.sim.availability import CloudAvailability
from repro.sim.engine import simulate


def run_fixed(instance, allocation, priority, **kwargs):
    return simulate(instance, FixedPolicyScheduler(allocation, priority), **kwargs)


class TestPipelining:
    def test_three_job_cloud_pipeline(self):
        """Three cloud jobs from one edge unit: uplinks serialize on the
        send port, computations pipeline behind them, downlinks
        serialize on the receive port — classic software pipeline."""
        platform = Platform.create([1.0], n_cloud=1)
        jobs = [Job(origin=0, work=1.0, up=1.0, dn=1.0) for _ in range(3)]
        inst = Instance.create(platform, jobs)
        r = run_fixed(inst, [cloud(0)] * 3, [0, 1, 2])
        # ups 0-1, 1-2, 2-3; execs 1-2, 2-3, 3-4; dns 2-3, 3-4, 4-5.
        assert r.completion.tolist() == pytest.approx([3.0, 4.0, 5.0])
        assert validate_schedule(r.schedule) == []

    def test_pipeline_with_two_clouds_bottlenecked_by_port(self):
        """Two clouds don't help when the shared uplink port is the
        bottleneck."""
        platform = Platform.create([1.0], n_cloud=2)
        jobs = [Job(origin=0, work=0.1, up=2.0, dn=0.0) for _ in range(3)]
        inst = Instance.create(platform, jobs)
        r = run_fixed(inst, [cloud(0), cloud(1), cloud(0)], [0, 1, 2])
        # Uplinks strictly serialized: 0-2, 2-4, 4-6.
        assert sorted(r.completion.tolist()) == pytest.approx([2.1, 4.1, 6.1])


class TestPreemptionChains:
    def test_nested_preemption(self):
        """J2 preempts J1 which preempted J0; all resume in LIFO order."""
        platform = Platform.create([1.0], n_cloud=0)
        jobs = [
            Job(origin=0, work=10.0, release=0.0),
            Job(origin=0, work=4.0, release=1.0),
            Job(origin=0, work=1.0, release=2.0),
        ]
        inst = Instance.create(platform, jobs)
        r = run_fixed(inst, [edge(0)] * 3, [2, 1, 0])
        # J0 runs 0-1; J1 1-2; J2 2-3; J1 3-6; J0 6-15.
        assert r.completion.tolist() == pytest.approx([15.0, 6.0, 3.0])
        assert r.n_reexecutions == 0
        # Preemption splits J0's execution into two intervals.
        execs = r.schedule.job_schedules[0].final_attempt.execution
        assert len(execs) == 2

    def test_communication_preemption(self):
        """A higher-priority uplink preempts a lower-priority one on the
        shared send port; the preempted transfer resumes, not restarts."""
        platform = Platform.create([1.0], n_cloud=2)
        jobs = [
            Job(origin=0, work=0.1, up=10.0, dn=0.0, release=0.0),
            Job(origin=0, work=0.1, up=1.0, dn=0.0, release=2.0),
        ]
        inst = Instance.create(platform, jobs)
        r = run_fixed(inst, [cloud(0), cloud(1)], [1, 0])
        # J0 up 0-2 (paused) 3-11; J1 up 2-3.
        assert r.completion[1] == pytest.approx(3.1)
        assert r.completion[0] == pytest.approx(11.1)
        ups = r.schedule.job_schedules[0].final_attempt.uplink
        assert len(ups) == 2
        assert ups.total_length() == pytest.approx(10.0)
        assert r.n_reexecutions == 0


class TestHeterogeneousCloudContention:
    def test_fast_cloud_contended_slow_cloud_idle(self):
        platform = Platform.create([0.01], cloud_speeds=[2.0, 0.5])
        jobs = [Job(origin=0, work=4.0, up=0.0, dn=0.0) for _ in range(2)]
        inst = Instance.create(platform, jobs)
        # Both on the fast cloud: serialized, 2 then 4.
        r_fast = run_fixed(inst, [cloud(0), cloud(0)], [0, 1])
        assert sorted(r_fast.completion.tolist()) == pytest.approx([2.0, 4.0])
        # Split: 2 on fast, 8 on slow - parallel but slower for J1.
        r_split = run_fixed(inst, [cloud(0), cloud(1)], [0, 1])
        assert r_split.completion.tolist() == pytest.approx([2.0, 8.0])


class TestAvailabilityInteractions:
    def test_window_mid_compute_with_preemption(self):
        """The cloud disappears mid-compute while a second job's uplink
        is in flight; computation pauses, the uplink continues."""
        platform = Platform.create([1.0], n_cloud=1)
        jobs = [
            Job(origin=0, work=4.0, up=1.0, dn=0.0),
            Job(origin=0, work=1.0, up=6.0, dn=0.0),
        ]
        inst = Instance.create(platform, jobs)
        availability = CloudAvailability({0: (Interval(3.0, 5.0),)})
        r = run_fixed(inst, [cloud(0), cloud(0)], [0, 1], availability=availability)
        # J0: up 0-1, exec 1-3 pause 3-5 exec 5-7. J1: up 1-7, exec 7-8.
        assert r.completion[0] == pytest.approx(7.0)
        assert r.completion[1] == pytest.approx(8.0)
        assert validate_schedule(r.schedule) == []

    def test_schedulers_are_availability_blind(self):
        """Documented design limit: duration estimates ignore windows.
        SRPT picks the cloud (estimate 3 < edge 4) and then sits out
        the 100-unit blackout rather than restarting on the edge — the
        window only exists for the engine, not for the estimates."""
        from repro.schedulers.srpt import SrptScheduler

        platform = Platform.create([0.5], n_cloud=1)
        jobs = [Job(origin=0, work=2.0, up=0.5, dn=0.5)]
        inst = Instance.create(platform, jobs)
        availability = CloudAvailability({0: (Interval(0.0, 100.0),)})
        r = simulate(inst, SrptScheduler(), availability=availability)
        assert validate_schedule(r.schedule) == []
        # up 0-0.5, compute waits for the window end: 100-102, dn 102-102.5.
        assert r.completion[0] == pytest.approx(102.5)


class TestMetricIdentities:
    def test_stretch_is_flow_over_min_time(self, figure1_instance):
        from repro.core.metrics import flow_times, stretches
        from repro.schedulers.registry import make_scheduler

        r = simulate(figure1_instance, make_scheduler("srpt"))
        flows = flow_times(r.schedule)
        s = stretches(r.schedule)
        assert np.allclose(s, flows / figure1_instance.min_time)

    def test_busy_time_bounded_by_makespan(self, figure1_instance):
        from repro.core.metrics import utilization
        from repro.schedulers.registry import make_scheduler

        r = simulate(figure1_instance, make_scheduler("greedy"))
        rep = utilization(r.schedule)
        assert all(0 <= b <= 1 + 1e-9 for b in rep.edge_busy)
        assert all(0 <= b <= 1 + 1e-9 for b in rep.cloud_busy)
