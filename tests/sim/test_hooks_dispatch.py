"""Dispatch guarantees of the engine's hook protocol.

Pins the contracts instrumentation relies on: callback order within one
engine step (decision → assign → step → complete/abort → events), abort
interleaving at fault boundaries, and — the hot-path guarantee — that a
run with no step hooks does zero per-activity Python work building the
``active`` list.
"""

import pytest

from repro.faults import FaultClassParams, exponential_fault_trace
from repro.sim import engine as engine_mod
from repro.sim.engine import simulate
from repro.sim.hooks import EngineHooks, HookSet
from repro.schedulers.registry import make_scheduler
from repro.workloads.random_uniform import RandomInstanceConfig, generate_random_instance


def small_instance(n=15, seed=4):
    return generate_random_instance(
        RandomInstanceConfig(n_jobs=n, ccr=1.0, load=0.8), seed=seed
    )


class RecordingHooks(EngineHooks):
    """Log the name of every callback in arrival order."""

    def __init__(self):
        self.log = []

    def on_start(self, view):
        self.log.append("start")

    def on_decision(self, now, decision):
        self.log.append("decision")

    def on_assign(self, job, resource, now):
        self.log.append("assign")

    def on_step(self, t0, t1, active):
        self.log.append("step")

    def on_events(self, events):
        self.log.append("events")

    def on_abort(self, job, time):
        self.log.append("abort")

    def on_complete(self, job, time):
        self.log.append("complete")

    def on_finish(self, result):
        self.log.append("finish")


def cycles(log):
    """Split the log into per-decision cycles (decision .. events)."""
    assert log[0] == "start"
    assert log[1] == "events"  # the initial release batch
    assert log[-1] == "finish"
    body = log[2:-1]
    out = []
    current = None
    for name in body:
        if name == "decision":
            if current is not None:
                out.append(current)
            current = ["decision"]
        else:
            assert current is not None, f"{name!r} before the first decision"
            current.append(name)
    if current is not None:
        out.append(current)
    return out


#: Dispatch order within one engine step.
_RANK = {"decision": 0, "assign": 1, "step": 2, "complete": 3, "abort": 3, "events": 4}


class TestDispatchOrder:
    def test_decision_assign_step_events_order(self):
        spy = RecordingHooks()
        simulate(small_instance(), make_scheduler("ssf-edf"), hooks=[spy])
        for cycle in cycles(spy.log):
            ranks = [_RANK[name] for name in cycle]
            assert ranks == sorted(ranks), f"out-of-order cycle: {cycle}"
            # Exactly one step and one closing events batch per cycle.
            assert cycle.count("step") == 1
            assert cycle.count("events") == 1 and cycle[-1] == "events"

    def test_abort_interleaving_under_faults(self):
        inst = small_instance(n=25, seed=13)
        params = FaultClassParams(mtbf=40.0, mttr=5.0)
        faults = exponential_fault_trace(
            n_edge=inst.platform.n_edge,
            n_cloud=inst.platform.n_cloud,
            horizon=float(inst.release.max() + inst.min_time.sum()),
            seed=5,
            edge=params,
            cloud=params,
            link=params,
        )
        spy = RecordingHooks()
        simulate(inst, make_scheduler("ssf-edf-fa"), faults=faults, hooks=[spy])
        assert "abort" in spy.log, "fault trace produced no aborts"
        for cycle in cycles(spy.log):
            ranks = [_RANK[name] for name in cycle]
            assert ranks == sorted(ranks), f"out-of-order cycle: {cycle}"
            # Aborts are delivered inside the step that hit the fault
            # boundary, strictly before that step's events batch.
            if "abort" in cycle:
                assert cycle.index("abort") < cycle.index("events")


class _CountingPhaseMap(dict):
    """A ``_ACT_PHASE`` stand-in that counts per-activity lookups."""

    lookups = 0

    def __getitem__(self, key):
        _CountingPhaseMap.lookups += 1
        return super().__getitem__(key)


class TestZeroWorkWithoutStepHooks:
    def test_no_step_hook_means_no_per_activity_lookups(self, monkeypatch):
        counting = _CountingPhaseMap(engine_mod._ACT_PHASE)
        monkeypatch.setattr(engine_mod, "_ACT_PHASE", counting)

        class NoStep(EngineHooks):
            """Overrides everything except on_step."""

            def on_decision(self, now, decision):
                pass

            def on_complete(self, job, time):
                pass

        _CountingPhaseMap.lookups = 0
        simulate(
            small_instance(),
            make_scheduler("ssf-edf"),
            record_trace=False,
            hooks=[NoStep()],
        )
        assert _CountingPhaseMap.lookups == 0

        class WithStep(NoStep):
            """Adds on_step: the active list must now be built."""

            def on_step(self, t0, t1, active):
                pass

        simulate(
            small_instance(),
            make_scheduler("ssf-edf"),
            record_trace=False,
            hooks=[WithStep()],
        )
        assert _CountingPhaseMap.lookups > 0


class TestWantsProvenance:
    def test_flag_defaults_off(self):
        assert HookSet([RecordingHooks()]).wants_provenance is False
        assert HookSet([]).wants_provenance is False

    def test_flag_set_by_declaring_hook(self):
        class Wants(EngineHooks):
            """Declares the provenance requirement."""

            wants_decision_provenance = True

        assert HookSet([RecordingHooks(), Wants()]).wants_provenance is True

    def test_engine_ignores_schedulers_without_set_provenance(self):
        class Wants(EngineHooks):
            """Declares the provenance requirement."""

            wants_decision_provenance = True

        # srpt has no set_provenance; the run must not crash.
        result = simulate(small_instance(n=8), make_scheduler("srpt"), hooks=[Wants()])
        assert result.completion.size == 8
