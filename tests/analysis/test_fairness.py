"""Tests for fairness metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.fairness import (
    FairnessReport,
    fairness_report,
    gini_coefficient,
    jain_index,
)
from repro.core.errors import ModelError

positive_vectors = st.lists(
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False), min_size=1, max_size=30
).map(np.asarray)


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index(np.array([2.0, 2.0, 2.0])) == pytest.approx(1.0)

    def test_single_user_hog(self):
        # One of n gets everything: index = 1/n.
        assert jain_index(np.array([1.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_known_value(self):
        assert jain_index(np.array([1.0, 3.0])) == pytest.approx(16 / 20)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            jain_index(np.array([]))

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            jain_index(np.array([-1.0, 2.0]))

    @given(values=positive_vectors)
    def test_bounds(self, values):
        idx = jain_index(values)
        assert 1.0 / len(values) - 1e-9 <= idx <= 1.0 + 1e-9

    @given(values=positive_vectors, scale=st.floats(min_value=0.1, max_value=10))
    def test_scale_invariant(self, values, scale):
        assert jain_index(values * scale) == pytest.approx(jain_index(values))


class TestGini:
    def test_equal_is_zero(self):
        assert gini_coefficient(np.array([5.0, 5.0, 5.0])) == pytest.approx(0.0)

    def test_one_hog(self):
        # One of n holds everything: gini = (n-1)/n.
        assert gini_coefficient(np.array([0.0, 0.0, 0.0, 8.0])) == pytest.approx(0.75)

    def test_all_zero(self):
        assert gini_coefficient(np.zeros(3)) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            gini_coefficient(np.array([]))

    @given(values=positive_vectors)
    def test_bounds(self, values):
        g = gini_coefficient(values)
        assert -1e-9 <= g < 1.0

    @given(values=positive_vectors)
    def test_permutation_invariant(self, values):
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(values)
        assert gini_coefficient(shuffled) == pytest.approx(gini_coefficient(values))


class TestFairnessReport:
    def test_fields(self):
        report = fairness_report(np.array([1.0, 1.0, 2.0, 4.0]))
        assert report.n_jobs == 4
        assert report.max == 4.0
        assert report.mean == 2.0
        assert report.median == pytest.approx(1.5)
        assert report.p90 >= report.median
        assert report.p99 >= report.p90
        assert 0 < report.jain <= 1
        assert report.tail_ratio == pytest.approx(report.p99 / report.median)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            fairness_report(np.array([]))

    def test_on_simulated_schedule(self, figure1_instance):
        from repro.schedulers.registry import make_scheduler
        from repro.sim.engine import simulate

        result = simulate(figure1_instance, make_scheduler("ssf-edf"))
        report = fairness_report(result.stretches())
        assert report.max == pytest.approx(result.max_stretch)
        assert report.mean == pytest.approx(result.average_stretch)
