"""Tests for time breakdowns and system timelines."""

import pytest

from repro.analysis.timeline import all_breakdowns, job_breakdown, system_timeline
from repro.core.errors import ScheduleError
from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.core.schedule import Schedule


@pytest.fixture
def schedule_with_wait() -> Schedule:
    """J0: released 0, up 1-2, exec 3-5, dn 6-7 (waits 0-1, 2-3, 5-6)."""
    platform = Platform.create([1.0], n_cloud=1)
    inst = Instance.create(platform, [Job(origin=0, work=2.0, up=1.0, dn=1.0)])
    s = Schedule(inst)
    s.new_attempt(0, cloud(0))
    s.add_uplink(0, Interval(1, 2))
    s.add_execution(0, Interval(3, 5))
    s.add_downlink(0, Interval(6, 7))
    s.set_completion(0, 7.0)
    return s


class TestJobBreakdown:
    def test_components(self, schedule_with_wait):
        b = job_breakdown(schedule_with_wait, 0)
        assert b.response == 7.0
        assert b.communication == 2.0
        assert b.execution == 2.0
        assert b.lost == 0.0
        assert b.waiting == pytest.approx(3.0)
        assert b.waiting_fraction == pytest.approx(3.0 / 7.0)

    def test_lost_time_from_abandoned_attempt(self):
        platform = Platform.create([1.0], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=2.0, up=1.0, dn=1.0)])
        s = Schedule(inst)
        s.new_attempt(0, edge(0))
        s.add_execution(0, Interval(0, 1))  # abandoned edge start
        s.new_attempt(0, cloud(0))
        s.add_uplink(0, Interval(1, 2))
        s.add_execution(0, Interval(2, 4))
        s.add_downlink(0, Interval(4, 5))
        s.set_completion(0, 5.0)
        b = job_breakdown(s, 0)
        assert b.lost == 1.0
        assert b.waiting == pytest.approx(0.0)

    def test_incomplete_job_rejected(self, schedule_with_wait):
        schedule_with_wait.job_schedules[0].completion = None
        with pytest.raises(ScheduleError):
            job_breakdown(schedule_with_wait, 0)

    def test_all_breakdowns_order(self, schedule_with_wait):
        bs = all_breakdowns(schedule_with_wait)
        assert [b.job for b in bs] == [0]


class TestSystemTimeline:
    def test_counts(self, schedule_with_wait):
        tl = system_timeline(schedule_with_wait, n_samples=71)
        assert tl.peak_in_system == 1
        # Executing during [3, 5): about 2/7 of the samples.
        frac_exec = tl.executing.sum() / len(tl.times)
        assert frac_exec == pytest.approx(2 / 7, abs=0.05)
        # Communicating during [1,2) and [6,7).
        frac_comm = tl.communicating.sum() / len(tl.times)
        assert frac_comm == pytest.approx(2 / 7, abs=0.05)

    def test_in_system_window(self, schedule_with_wait):
        tl = system_timeline(schedule_with_wait, n_samples=100)
        # The job is in the system from release (0) until completion (7),
        # which spans the whole makespan here.
        assert (tl.in_system[:-1] == 1).all()

    def test_empty_schedule(self):
        platform = Platform.create([1.0])
        inst = Instance.create(platform, [])
        tl = system_timeline(Schedule(inst))
        assert tl.peak_in_system == 0

    def test_two_overlapping_jobs(self):
        platform = Platform.create([1.0, 1.0])
        inst = Instance.create(
            platform,
            [Job(origin=0, work=4.0), Job(origin=1, work=4.0, release=2.0)],
        )
        s = Schedule(inst)
        s.new_attempt(0, edge(0))
        s.add_execution(0, Interval(0, 4))
        s.set_completion(0, 4.0)
        s.new_attempt(1, edge(1))
        s.add_execution(1, Interval(2, 6))
        s.set_completion(1, 6.0)
        tl = system_timeline(s, n_samples=120)
        assert tl.peak_in_system == 2
        assert tl.executing.max() == 2
