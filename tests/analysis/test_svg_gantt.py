"""Tests for the SVG Gantt renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg_gantt import job_color, render_gantt_svg, save_gantt_svg
from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.core.schedule import Schedule
from repro.offline.list_scheduler import FixedPolicyScheduler
from repro.sim.engine import simulate


@pytest.fixture
def run():
    platform = Platform.create([1.0], n_cloud=1)
    inst = Instance.create(
        platform,
        [Job(origin=0, work=4.0), Job(origin=0, work=2.0, up=1.0, dn=1.0)],
    )
    return simulate(inst, FixedPolicyScheduler([edge(0), cloud(0)], [0, 1]))


class TestRender:
    def test_valid_xml(self, run):
        ET.fromstring(render_gantt_svg(run.schedule))

    def test_execution_boxes_present(self, run):
        svg = render_gantt_svg(run.schedule)
        assert svg.count("<rect") >= 1 + 4  # background + activity boxes

    def test_tooltips_carry_intervals(self, run):
        svg = render_gantt_svg(run.schedule)
        assert "<title>J0: [0, 4)</title>" in svg

    def test_comm_lanes_toggle(self, run):
        with_comm = render_gantt_svg(run.schedule, show_comm=True)
        without = render_gantt_svg(run.schedule, show_comm=False)
        assert "up" in with_comm
        assert "up" not in without

    def test_labels_escaped(self, run):
        svg = render_gantt_svg(run.schedule)
        assert "&lt;dn" in svg
        ET.fromstring(svg)

    def test_empty_rejected(self):
        platform = Platform.create([1.0])
        inst = Instance.create(platform, [])
        with pytest.raises(ModelError):
            render_gantt_svg(Schedule(inst))

    def test_job_color_stable(self):
        assert job_color(0) == job_color(0)
        assert job_color(0) != job_color(1)


class TestSave:
    def test_file_written(self, run, tmp_path):
        path = tmp_path / "gantt.svg"
        save_gantt_svg(run.schedule, path)
        ET.parse(path)
