"""Tests for empirical competitiveness analysis."""

import numpy as np
import pytest

from repro.analysis.competitive import empirical_competitive_ratios
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform


def factory(rng: np.random.Generator) -> Instance:
    platform = Platform.create([0.5, 0.25], n_cloud=2)
    jobs = [
        Job(
            origin=int(rng.integers(0, 2)),
            work=float(rng.uniform(1, 5)),
            release=float(rng.uniform(0, 10)),
            up=float(rng.uniform(0, 2)),
            dn=float(rng.uniform(0, 2)),
        )
        for _ in range(6)
    ]
    return Instance.create(platform, jobs)


class TestEmpiricalRatios:
    def test_ratios_at_least_one(self):
        summaries = empirical_competitive_ratios(
            factory, ["srpt", "ssf-edf"], n_instances=6, seed=3
        )
        for s in summaries:
            assert s.n_instances == 6
            assert s.mean_ratio >= 1.0 - 1e-6
            assert s.max_ratio >= s.median_ratio >= 1.0 - 1e-6

    def test_mean_between_median_extremes(self):
        (s,) = empirical_competitive_ratios(factory, ["srpt"], n_instances=8, seed=1)
        assert s.mean_ratio <= s.max_ratio + 1e-12

    def test_reproducible(self):
        a = empirical_competitive_ratios(factory, ["greedy"], n_instances=5, seed=9)
        b = empirical_competitive_ratios(factory, ["greedy"], n_instances=5, seed=9)
        assert a[0].mean_ratio == b[0].mean_ratio

    def test_paired_instances(self):
        # ssf-edf should rarely lose to fcfs when both see the same
        # instances; with pairing the comparison is exact per-instance.
        summaries = empirical_competitive_ratios(
            factory, ["fcfs", "ssf-edf"], n_instances=10, seed=4
        )
        by_name = {s.scheduler: s for s in summaries}
        assert by_name["ssf-edf"].mean_ratio <= by_name["fcfs"].mean_ratio + 0.5

    def test_str_rendering(self):
        (s,) = empirical_competitive_ratios(factory, ["srpt"], n_instances=3, seed=2)
        text = str(s)
        assert "srpt" in text and "worst" in text
