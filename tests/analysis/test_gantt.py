"""Tests for the ASCII Gantt renderer."""

import pytest

from repro.analysis.gantt import job_symbol, render_gantt
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.core.schedule import Schedule
from repro.offline.list_scheduler import FixedPolicyScheduler
from repro.sim.engine import simulate


class TestJobSymbol:
    def test_digits_then_letters(self):
        assert job_symbol(0) == "0"
        assert job_symbol(9) == "9"
        assert job_symbol(10) == "A"

    def test_wraps_around(self):
        assert job_symbol(62) == job_symbol(0)


class TestRenderGantt:
    @pytest.fixture
    def simple_run(self):
        platform = Platform.create([1.0], n_cloud=1)
        inst = Instance.create(
            platform,
            [Job(origin=0, work=4.0), Job(origin=0, work=2.0, up=1.0, dn=1.0)],
        )
        return simulate(inst, FixedPolicyScheduler([edge(0), cloud(0)], [0, 1]))

    def test_lanes_present(self, simple_run):
        text = render_gantt(simple_run.schedule, width=40)
        assert "edge[0]" in text
        assert "cloud[0]" in text
        assert "edge[0] up>" in text
        assert "cloud[0] dn<" in text

    def test_symbols_drawn(self, simple_run):
        text = render_gantt(simple_run.schedule, width=40)
        assert "0" in text and "1" in text

    def test_legend(self, simple_run):
        text = render_gantt(simple_run.schedule, width=40)
        assert "0=J0" in text
        assert "1=J1" in text

    def test_no_legend_mode(self, simple_run):
        text = render_gantt(simple_run.schedule, width=40, show_legend=False)
        assert "jobs:" not in text

    def test_no_comm_mode(self, simple_run):
        text = render_gantt(simple_run.schedule, width=40, show_comm=False)
        assert "up>" not in text

    def test_edge_lane_occupancy(self, simple_run):
        # Job 0 occupies edge[0] for the full makespan (0-4 of 0-4).
        text = render_gantt(simple_run.schedule, width=40, show_legend=False)
        edge_line = next(l for l in text.splitlines() if l.startswith("edge[0] "))
        cells = edge_line.split("|")[1]
        assert cells.count("0") == 40

    def test_width_validation(self, simple_run):
        with pytest.raises(ValueError):
            render_gantt(simple_run.schedule, width=3)

    def test_empty_schedule(self):
        platform = Platform.create([1.0])
        inst = Instance.create(platform, [])
        assert render_gantt(Schedule(inst)) == "(empty schedule)"

    def test_figure1_preemption_visible(self, figure1_instance):
        run = simulate(
            figure1_instance,
            FixedPolicyScheduler(
                [edge(0), cloud(0), cloud(0), edge(0), cloud(0), edge(0)],
                [0, 5, 1, 2, 4, 3],
            ),
        )
        text = render_gantt(run.schedule, width=66, show_comm=False, show_legend=False)
        edge_line = next(l for l in text.splitlines() if l.startswith("edge[0] "))
        cells = edge_line.split("|")[1]
        # J4 (symbol 3) split around J6 (symbol 5): pattern 3...5...3.
        first3 = cells.index("3")
        five = cells.index("5")
        assert first3 < five < cells.rindex("3")
