"""Tests for the causal run tracer and its exporters."""

import hashlib
import json

import pytest

from repro.core.errors import ModelError
from repro.faults import FaultClassParams, exponential_fault_trace
from repro.obs.tracing import (
    TRACE_SCHEMA,
    RunTracer,
    chrome_trace_events,
    collect_trace,
    read_trace_jsonl,
    validate_trace_payload,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.sim.hooks import make_hooks
from repro.workloads.random_uniform import RandomInstanceConfig, generate_random_instance


def small_instance(n=20, seed=7, load=0.8):
    return generate_random_instance(
        RandomInstanceConfig(n_jobs=n, ccr=1.0, load=load), seed=seed
    )


def renewal_faults(inst, seed=5, mtbf=40.0, mttr=5.0):
    params = FaultClassParams(mtbf=mtbf, mttr=mttr)
    return exponential_fault_trace(
        n_edge=inst.platform.n_edge,
        n_cloud=inst.platform.n_cloud,
        horizon=float(inst.release.max() + inst.min_time.sum()),
        seed=seed,
        edge=params,
        cloud=params,
        link=params,
    )


def traced_run(inst, scheduler="ssf-edf", faults=None):
    tracer = RunTracer()
    result = simulate(inst, make_scheduler(scheduler), faults=faults, hooks=[tracer])
    return result, tracer.payload()


class TestJobSpans:
    def test_every_job_has_a_completed_span(self):
        result, payload = traced_run(small_instance())
        assert payload["schema"] == TRACE_SCHEMA
        assert len(payload["jobs"]) == payload["n_jobs"] == result.instance.n_jobs
        for job in payload["jobs"]:
            assert job["completion"] is not None
            assert job["attempts"], f"job {job['job']} has no attempts"
            last = job["attempts"][-1]
            assert last["outcome"] == "completed"
            assert last["end"] == job["completion"]

    def test_stretch_equals_result_exactly(self):
        # Float equality, not approx: the tracer reconstructs stretch
        # with the same (C - r) / min_time arithmetic as the result.
        result, payload = traced_run(small_instance())
        stretches = result.stretches()
        for job in payload["jobs"]:
            assert job["stretch"] == float(stretches[job["job"]])
        assert payload["max_stretch"] == result.max_stretch
        assert payload["makespan"] == result.makespan

    def test_segments_lie_inside_their_attempt(self):
        _, payload = traced_run(small_instance())
        for job in payload["jobs"]:
            for attempt in job["attempts"]:
                for name, t0, t1 in attempt["segments"]:
                    assert name in ("uplink", "compute", "downlink")
                    assert attempt["start"] <= t0 < t1
                    assert attempt["end"] is None or t1 <= attempt["end"] + 1e-9

    def test_fault_aborts_are_blamed(self):
        inst = small_instance(n=25, seed=13)
        result, payload = traced_run(
            inst, scheduler="ssf-edf-fa", faults=renewal_faults(inst)
        )
        aborted = [
            a
            for job in payload["jobs"]
            for a in job["attempts"]
            if a["outcome"] == "aborted"
        ]
        assert aborted, "fault trace produced no aborts; pick a harsher seed"
        assert result.n_reexecutions > 0
        for attempt in aborted:
            assert attempt["aborted_by"] is not None
        # Every abort also appears in the event stream with its job.
        abort_events = [e for e in payload["events"] if e["event"] == "attempt_aborted"]
        assert len(abort_events) == len(aborted)

    def test_faulted_stretch_still_exact(self):
        inst = small_instance(n=25, seed=13)
        result, payload = traced_run(
            inst, scheduler="ssf-edf-fa", faults=renewal_faults(inst)
        )
        stretches = result.stretches()
        for job in payload["jobs"]:
            assert job["stretch"] == float(stretches[job["job"]])


class TestDecisionProvenance:
    def test_ssf_edf_attaches_provenance(self):
        _, payload = traced_run(small_instance())
        assert payload["decisions"]
        provs = [d["provenance"] for d in payload["decisions"]]
        assert all(p is not None for p in provs)
        paths = {p["path"] for p in provs}
        assert paths <= {"rebuild", "probe_adoption", "replay"}
        with_probes = [p for p in provs if p["probes"]]
        assert with_probes, "no decision recorded binary-search probes"
        rejected = [
            probe
            for p in with_probes
            for probe in p["probes"]
            if not probe["feasible"]
        ]
        assert rejected, "no probe was ever rejected"
        for probe in rejected:
            v = probe["violator"]
            assert v["completion"] > v["deadline"]

    def test_placement_explanations_cover_live_jobs(self):
        _, payload = traced_run(small_instance())
        for d in payload["decisions"]:
            prov = d["provenance"]
            if prov["path"] == "replay" or prov["placements"] is None:
                continue
            for row in prov["placements"]:
                assert row["kind"] in ("edge", "cloud")
                assert row["completion"] > 0.0

    def test_floor_reports_only_in_failure_aware_mode(self):
        inst = small_instance(n=25, seed=13)
        _, plain = traced_run(inst, scheduler="ssf-edf")
        assert all(d["provenance"]["floors"] == [] for d in plain["decisions"])
        _, fa = traced_run(
            inst, scheduler="ssf-edf-fa", faults=renewal_faults(inst)
        )
        floored = [
            f for d in fa["decisions"] for f in d["provenance"]["floors"]
        ]
        assert floored, "faulted fa run never reported a capacity floor"
        for f in floored:
            assert f["kind"] in ("edge", "cloud", "link")
            assert f["reason"] in ("down", "link_down", "co_tenant")
            assert f["floor"] > 0.0

    def test_schedulers_without_capability_trace_fine(self):
        _, payload = traced_run(small_instance(), scheduler="srpt")
        assert payload["decisions"]
        assert all(d["provenance"] is None for d in payload["decisions"])


class TestZeroCostWhenDisabled:
    def test_untraced_run_is_bit_identical(self):
        inst = small_instance(n=30, seed=3)
        plain = simulate(inst, make_scheduler("ssf-edf"))
        traced = simulate(inst, make_scheduler("ssf-edf"), hooks=[RunTracer()])
        assert (
            hashlib.sha256(plain.completion.tobytes()).hexdigest()
            == hashlib.sha256(traced.completion.tobytes()).hexdigest()
        )
        assert plain.scheduler_stats == traced.scheduler_stats

    def test_provenance_off_without_tracer(self):
        inst = small_instance()
        sched = make_scheduler("ssf-edf")
        simulate(inst, sched)
        assert sched._provenance is False
        assert sched._pending_prov is None

    def test_provenance_resets_on_scheduler_reuse(self):
        # The same scheduler object run traced then untraced must not
        # keep paying for provenance on the second run.
        inst = small_instance()
        sched = make_scheduler("ssf-edf")
        simulate(inst, sched, hooks=[RunTracer()])
        assert sched._provenance is True
        simulate(inst, sched)
        assert sched._provenance is False


class TestJsonlRoundtrip:
    def test_write_read_json_equal(self, tmp_path):
        _, payload = traced_run(small_instance())
        path = tmp_path / "run.trace.jsonl"
        n_lines = write_trace_jsonl(str(path), payload)
        assert n_lines == 1 + len(payload["jobs"]) + len(payload["decisions"]) + len(
            payload["events"]
        )
        back = read_trace_jsonl(str(path))
        assert json.loads(json.dumps(back)) == json.loads(json.dumps(payload))

    def test_rewrite_byte_stable(self, tmp_path):
        _, payload = traced_run(small_instance())
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_trace_jsonl(str(a), payload)
        write_trace_jsonl(str(b), read_trace_jsonl(str(a)))
        assert a.read_bytes() == b.read_bytes()

    def test_identical_runs_identical_bytes(self, tmp_path):
        inst = small_instance(n=25, seed=13)
        faults = renewal_faults(inst)
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _, p1 = traced_run(inst, scheduler="ssf-edf-fa", faults=faults)
        _, p2 = traced_run(inst, scheduler="ssf-edf-fa", faults=faults)
        write_trace_jsonl(str(a), p1)
        write_trace_jsonl(str(b), p2)
        assert a.read_bytes() == b.read_bytes()

    def test_bad_lines_raise_with_position(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("{nope\n")
        with pytest.raises(ModelError, match=r"t\.jsonl:1: not valid JSON"):
            read_trace_jsonl(str(path))
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(ModelError, match="unknown trace record kind"):
            read_trace_jsonl(str(path))
        path.write_text('{"kind": "job", "job": 0}\n')
        with pytest.raises(ModelError, match="no trace header"):
            read_trace_jsonl(str(path))
        path.write_text('{"kind": "header", "schema": "repro.trace/99"}\n')
        with pytest.raises(ModelError, match="unknown trace schema"):
            read_trace_jsonl(str(path))

    def test_validate_rejects_bad_payloads(self):
        with pytest.raises(ModelError, match="must be an object"):
            validate_trace_payload([])
        with pytest.raises(ModelError, match="unknown trace schema"):
            validate_trace_payload({"schema": "other"})
        _, payload = traced_run(small_instance(n=5))
        broken = dict(payload)
        broken["jobs"] = payload["jobs"][:-1]
        with pytest.raises(ModelError, match="lists 4 jobs but n_jobs=5"):
            validate_trace_payload(broken)


class TestChromeExport:
    def test_shape_and_counts(self, tmp_path):
        _, payload = traced_run(small_instance())
        path = tmp_path / "chrome.json"
        n_events = write_chrome_trace(str(path), payload)
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert len(doc["traceEvents"]) == n_events
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "i"}
        # Every X event lives in the jobs or resources process and has
        # non-negative duration.
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                assert e["pid"] in (1, 2)
                assert e["dur"] >= 0.0

    def test_durations_match_segments(self):
        _, payload = traced_run(small_instance(n=6, seed=1))
        events = chrome_trace_events(payload)
        job0 = payload["jobs"][0]
        segs = [s for a in job0["attempts"] for s in a["segments"]]
        xs = [e for e in events if e["ph"] == "X" and e["pid"] == 1 and e["tid"] == 0]
        assert len(xs) == len(segs)
        for (name, t0, t1), e in zip(segs, xs):
            assert e["name"] == name
            assert e["ts"] == pytest.approx(t0 * 1e6)
            assert e["dur"] == pytest.approx((t1 - t0) * 1e6)

    def test_fault_transitions_become_instants(self):
        inst = small_instance(n=25, seed=13)
        _, payload = traced_run(
            inst, scheduler="ssf-edf-fa", faults=renewal_faults(inst)
        )
        events = chrome_trace_events(payload)
        names = {e["name"] for e in events if e["ph"] == "i" and e["pid"] == 2}
        assert names & {"resource_down", "link_down"}


class TestCollectAndRegistry:
    def test_collect_trace_finds_tracer(self):
        inst = small_instance(n=5)
        hooks = make_hooks(["tracing"])
        assert isinstance(hooks[0], RunTracer)
        simulate(inst, make_scheduler("srpt"), hooks=hooks)
        payload = collect_trace(hooks)
        assert payload is not None and payload["n_jobs"] == 5

    def test_collect_trace_none_without_tracer(self):
        assert collect_trace([]) is None
        assert collect_trace(make_hooks(["counter"])) is None

    def test_payload_before_finish_raises(self):
        with pytest.raises(ModelError, match="before the run finished"):
            RunTracer().payload()
