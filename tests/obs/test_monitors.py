"""Tests for the ship-with telemetry monitors.

The invariants here are cross-checks against the engine's own results:
utilization integrals must agree with their timelines, job statistics
with the completion array, re-execution accounting with the engine's
attempt counters — and identical runs must produce byte-identical
telemetry JSON.
"""

import pytest

from repro.obs.monitors import (
    DEFAULT_TELEMETRY_HOOKS,
    TIMELINE_BINS,
    JobStatsMonitor,
    QueueDepthMonitor,
    ReexecutionAccountant,
    UtilizationMonitor,
    _bin_time_weighted,
)
from repro.obs.telemetry import collect_telemetry
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.sim.hooks import make_hooks
from repro.workloads.random_uniform import RandomInstanceConfig, generate_random_instance


def run_instrumented(policy="srpt", n=15, seed=7, load=0.5):
    instance = generate_random_instance(
        RandomInstanceConfig(n_jobs=n, ccr=1.0, load=load), seed=seed
    )
    hooks = make_hooks(DEFAULT_TELEMETRY_HOOKS)
    result = simulate(instance, make_scheduler(policy), hooks=hooks)
    return result, collect_telemetry(hooks)


class TestBinTimeWeighted:
    def test_constant_signal_fills_all_bins(self):
        bins = _bin_time_weighted([(0.0, 10.0, 2.0)], 10.0, 5)
        assert bins == pytest.approx([2.0] * 5)

    def test_partial_overlap_apportioned(self):
        # Value 4 over the first half of a 2-bin horizon.
        bins = _bin_time_weighted([(0.0, 1.0, 4.0)], 2.0, 2)
        assert bins == pytest.approx([4.0, 0.0])

    def test_piece_spanning_bins(self):
        bins = _bin_time_weighted([(0.5, 1.5, 1.0)], 2.0, 2)
        assert bins == pytest.approx([0.5, 0.5])

    def test_zero_horizon(self):
        assert _bin_time_weighted([(0.0, 1.0, 1.0)], 0.0, 3) == [0.0, 0.0, 0.0]


class TestUtilizationMonitor:
    def test_fractions_and_timelines_consistent(self):
        result, telemetry = run_instrumented()
        metrics = telemetry.metrics
        horizon = metrics.gauge("util.horizon").value
        assert horizon == pytest.approx(result.makespan)
        for name in ("edge", "cloud", "uplink", "downlink"):
            frac = metrics.gauge(f"util.{name}.busy_frac").value
            assert 0.0 <= frac <= 1.0 + 1e-12
            timeline = metrics.series(f"util.{name}.timeline").values
            assert len(timeline) == TIMELINE_BINS
            assert all(-1e-12 <= v <= 1.0 + 1e-9 for v in timeline)
            # The timeline integrates to the same busy fraction.
            assert sum(timeline) / TIMELINE_BINS == pytest.approx(frac, abs=1e-9)

    def test_busy_platform_has_nonzero_utilization(self):
        _, telemetry = run_instrumented(policy="fcfs", n=25, load=1.0)
        total = sum(
            telemetry.metrics.gauge(f"util.{n}.busy_frac").value
            for n in ("edge", "cloud", "uplink", "downlink")
        )
        assert total > 0.0


class TestQueueDepthMonitor:
    def test_depth_statistics(self):
        _, telemetry = run_instrumented(policy="fcfs", n=25, load=1.0)
        metrics = telemetry.metrics
        mean = metrics.gauge("queue.depth.mean").value
        peak = metrics.gauge("queue.depth.max").value
        assert 0.0 <= mean <= peak
        hist = metrics.histogram("queue.depth")
        assert hist.total > 0.0  # time-weighted: total observed time
        assert hist.mean == pytest.approx(mean, abs=1e-9)
        timeline = metrics.series("queue.timeline").values
        assert len(timeline) == TIMELINE_BINS
        assert all(v >= -1e-12 for v in timeline)


class TestJobStatsMonitor:
    def test_distributions_match_result(self):
        result, telemetry = run_instrumented(n=20, seed=3)
        metrics = telemetry.metrics
        stretch = metrics.histogram("jobs.stretch")
        assert stretch.total == result.instance.n_jobs
        assert stretch.mean == pytest.approx(result.average_stretch, rel=1e-12)
        assert metrics.gauge("jobs.max_stretch").value == pytest.approx(
            result.max_stretch, rel=1e-12
        )
        assert metrics.counter("jobs.completed").value == result.instance.n_jobs
        wait = metrics.histogram("jobs.wait_ratio")
        assert wait.total == result.instance.n_jobs
        assert wait.mean == pytest.approx(result.average_stretch - 1.0, abs=1e-9)


class TestReexecutionAccountant:
    def test_aborts_match_engine_reexecutions(self):
        result, telemetry = run_instrumented(policy="srpt", n=25, seed=11, load=1.0)
        metrics = telemetry.metrics
        aborts = metrics.counter("reexec.aborted_attempts").value
        assert aborts == result.n_reexecutions
        wasted = (
            metrics.counter("reexec.wasted_uplink").value
            + metrics.counter("reexec.wasted_work").value
            + metrics.counter("reexec.wasted_downlink").value
        )
        assert wasted >= 0.0
        hist = metrics.histogram("reexec.wasted_per_attempt")
        assert hist.total == aborts
        assert hist.sum == pytest.approx(wasted, rel=1e-12, abs=1e-12)

    def test_no_reexecution_without_aborts(self):
        # srpt-norestart never aborts an attempt: zero aborts, zero waste.
        result, telemetry = run_instrumented(policy="srpt-norestart", n=10, seed=2)
        assert result.n_reexecutions == 0
        assert telemetry.metrics.counter("reexec.aborted_attempts").value == 0.0


class TestStretchArgmaxMonitor:
    def test_exports_argmax_job_metric(self):
        instance = generate_random_instance(
            RandomInstanceConfig(n_jobs=20, ccr=1.0, load=0.8), seed=11
        )
        hooks = make_hooks(["stretch"])
        result = simulate(instance, make_scheduler("ssf-edf"), hooks=hooks)
        telemetry = collect_telemetry(hooks)
        metrics = telemetry.metrics
        assert metrics.gauge("stretch.watermark").value == pytest.approx(
            result.max_stretch, rel=1e-12
        )
        assert metrics.gauge("stretch.argmax_job").value == float(
            result.stretches().argmax()
        )

    def test_not_in_default_hooks(self):
        # Deliberately opt-in: default telemetry output stays
        # byte-identical to builds without the stretch monitor.
        assert "stretch" not in DEFAULT_TELEMETRY_HOOKS


class TestDeterminism:
    def test_identical_runs_identical_json(self):
        _, a = run_instrumented(policy="ssf-edf", n=18, seed=13)
        _, b = run_instrumented(policy="ssf-edf", n=18, seed=13)
        assert a.to_json() == b.to_json()

    def test_monitors_do_not_perturb_results(self):
        instance = generate_random_instance(
            RandomInstanceConfig(n_jobs=15, ccr=1.0, load=0.5), seed=7
        )
        plain = simulate(instance, make_scheduler("srpt"))
        hooked = simulate(
            instance,
            make_scheduler("srpt"),
            hooks=[
                UtilizationMonitor(),
                QueueDepthMonitor(),
                JobStatsMonitor(),
                ReexecutionAccountant(),
            ],
        )
        assert plain.max_stretch == hooked.max_stretch
        assert plain.n_events == hooked.n_events
        assert plain.n_decisions == hooked.n_decisions
