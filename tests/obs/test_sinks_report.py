"""Tests for the telemetry JSONL sink and the report CLI."""

import json

import pytest

from repro.core.errors import ModelError
from repro.obs.report import format_report, format_report_csv, main
from repro.obs.sinks import (
    TELEMETRY_SCHEMA,
    merge_records,
    read_telemetry_jsonl,
    read_telemetry_jsonl_report,
    record_to_json,
    telemetry_record,
    validate_record,
    write_telemetry_jsonl,
)
from repro.obs.telemetry import RunTelemetry


def make_telemetry(counter=1.0, gauge=None):
    """A small snapshot with one counter and optionally one gauge."""
    t = RunTelemetry()
    t.metrics.counter("jobs.completed").inc(counter)
    if gauge is not None:
        t.metrics.gauge("util.edge.busy_frac").set(gauge)
    return t


class TestRecords:
    def test_build_and_validate(self):
        record = telemetry_record(
            experiment="fig2a", scheduler="SSF-EDF", telemetry=make_telemetry(), x=200, n=3
        )
        assert record["schema"] == TELEMETRY_SCHEMA
        assert record["x"] == 200.0
        assert validate_record(record) is record

    def test_accepts_snapshot_dict(self):
        record = telemetry_record(
            experiment="e", scheduler="s", telemetry=make_telemetry().to_dict()
        )
        assert record["n"] == 1 and record["x"] is None

    def test_rejects_bad_shapes(self):
        good = telemetry_record(experiment="e", scheduler="s", telemetry=make_telemetry())
        with pytest.raises(ModelError, match="must be an object"):
            validate_record([good])
        with pytest.raises(ModelError, match="unknown telemetry schema"):
            validate_record({**good, "schema": "repro.telemetry/99"})
        with pytest.raises(ModelError, match="'experiment'"):
            validate_record({**good, "experiment": ""})
        with pytest.raises(ModelError, match="'x'"):
            validate_record({**good, "x": "left"})
        with pytest.raises(ModelError, match="'n'"):
            validate_record({**good, "n": 0})
        with pytest.raises(ModelError):
            validate_record({**good, "telemetry": {"version": 1}})

    def test_record_to_json_canonical(self):
        record = telemetry_record(experiment="e", scheduler="s", telemetry=make_telemetry())
        blob = record_to_json(record)
        assert blob == json.dumps(json.loads(blob), sort_keys=True, separators=(",", ":"))


class TestJsonlRoundtrip:
    def test_write_read_rewrite_byte_stable(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        records = [
            telemetry_record(
                experiment="fig2a", scheduler="SRPT", telemetry=make_telemetry(2, 0.5), x=1.0
            ),
            telemetry_record(
                experiment="fig2a", scheduler="SRPT", telemetry=make_telemetry(3, 0.7), x=2.0
            ),
        ]
        assert write_telemetry_jsonl(str(path), records) == 2
        first = path.read_bytes()
        back = read_telemetry_jsonl(str(path))
        assert back == records
        write_telemetry_jsonl(str(path), back)
        assert path.read_bytes() == first

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        record = telemetry_record(experiment="e", scheduler="s", telemetry=make_telemetry())
        path.write_text("\n" + record_to_json(record) + "\n\n")
        assert read_telemetry_jsonl(str(path)) == [record]

    def test_bad_json_names_line(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        record = telemetry_record(experiment="e", scheduler="s", telemetry=make_telemetry())
        path.write_text(record_to_json(record) + "\n{nope\n")
        with pytest.raises(ModelError, match=r"tel\.jsonl:2: not valid JSON"):
            read_telemetry_jsonl(str(path))

    def test_bad_record_names_line(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        path.write_text('{"schema": "other"}\n')
        with pytest.raises(ModelError, match=r"tel\.jsonl:1: unknown telemetry schema"):
            read_telemetry_jsonl(str(path))

    def test_bad_record_leaves_no_file(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        with pytest.raises(ModelError):
            write_telemetry_jsonl(str(path), [{"schema": "bad"}])
        assert not path.exists()


class TestMergeRecords:
    def test_merges_per_scheduler_dropping_x(self):
        records = [
            telemetry_record(
                experiment="fig2a", scheduler="SRPT", telemetry=make_telemetry(1, 0.2), x=1.0, n=2
            ),
            telemetry_record(
                experiment="fig2a", scheduler="FCFS", telemetry=make_telemetry(5), x=1.0
            ),
            telemetry_record(
                experiment="fig2a", scheduler="SRPT", telemetry=make_telemetry(2, 0.4), x=2.0, n=3
            ),
        ]
        merged = merge_records(records)
        assert [(r["scheduler"], r["n"], r["x"]) for r in merged] == [
            ("SRPT", 5, None),
            ("FCFS", 1, None),
        ]
        srpt = RunTelemetry.from_dict(merged[0]["telemetry"])
        assert srpt.metrics.counter("jobs.completed").value == 3.0
        assert srpt.metrics.gauge("util.edge.busy_frac").value == pytest.approx(0.3)


class TestReport:
    def test_format_report_groups_by_experiment(self):
        records = [
            telemetry_record(
                experiment="fig2a", scheduler="SRPT", telemetry=make_telemetry(1, 0.25)
            ),
            telemetry_record(experiment="fig2b", scheduler="FCFS", telemetry=make_telemetry(2)),
        ]
        text = format_report(records)
        assert "== fig2a ==" in text and "== fig2b ==" in text
        assert "25.0%" in text  # the busy-frac gauge rendered as a percent
        assert "-" in text  # absent metrics render as '-'

    def test_format_report_empty(self):
        assert format_report([]) == "(no telemetry records)"

    def test_main_renders_and_checks(self, tmp_path, capsys):
        path = tmp_path / "tel.jsonl"
        write_telemetry_jsonl(
            str(path),
            [telemetry_record(experiment="e", scheduler="s", telemetry=make_telemetry())],
        )
        assert main([str(path), "--check"]) == 0
        assert "1 telemetry records OK" in capsys.readouterr().out
        assert main([str(path)]) == 0
        assert "== e ==" in capsys.readouterr().out

    def test_main_fails_on_bad_file(self, tmp_path, capsys):
        path = tmp_path / "tel.jsonl"
        path.write_text("{}\n")
        assert main([str(path), "--check"]) == 1
        assert "error:" in capsys.readouterr().err
        assert main([str(tmp_path / "missing.jsonl")]) == 1


class TestTornTail:
    def test_torn_final_line_repaired(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        record = telemetry_record(experiment="e", scheduler="s", telemetry=make_telemetry())
        blob = record_to_json(record)
        # A kill mid-write: the last record is cut and has no newline.
        path.write_text(blob + "\n" + blob[: len(blob) // 2])
        records, dropped = read_telemetry_jsonl_report(str(path))
        assert records == [record] and dropped == 1
        assert read_telemetry_jsonl(str(path)) == [record]

    def test_torn_tail_that_parses_but_fails_schema(self, tmp_path):
        # A cut that lands on a complete nested object: valid JSON,
        # invalid record.  Same repair — only possible at the tail.
        path = tmp_path / "tel.jsonl"
        record = telemetry_record(experiment="e", scheduler="s", telemetry=make_telemetry())
        path.write_text(record_to_json(record) + "\n" + '{"schema"')
        records, dropped = read_telemetry_jsonl_report(str(path))
        assert records == [record] and dropped == 1

    def test_complete_final_line_still_raises(self, tmp_path):
        # The file ends with a newline: the bad line is corruption, not
        # a torn tail, and must raise as before.
        path = tmp_path / "tel.jsonl"
        record = telemetry_record(experiment="e", scheduler="s", telemetry=make_telemetry())
        path.write_text(record_to_json(record) + "\n{nope\n")
        with pytest.raises(ModelError, match=r"tel\.jsonl:2: not valid JSON"):
            read_telemetry_jsonl_report(str(path))

    def test_torn_middle_line_still_raises(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        record = telemetry_record(experiment="e", scheduler="s", telemetry=make_telemetry())
        path.write_text("{nope\n" + record_to_json(record) + "\n")
        with pytest.raises(ModelError, match=r"tel\.jsonl:1"):
            read_telemetry_jsonl_report(str(path))

    def test_intact_file_reports_zero_dropped(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        record = telemetry_record(experiment="e", scheduler="s", telemetry=make_telemetry())
        write_telemetry_jsonl(str(path), [record])
        assert read_telemetry_jsonl_report(str(path)) == ([record], 0)

    def test_main_notes_repair_on_stderr(self, tmp_path, capsys):
        path = tmp_path / "tel.jsonl"
        record = telemetry_record(experiment="e", scheduler="s", telemetry=make_telemetry())
        path.write_text(record_to_json(record) + "\n{cut")
        assert main([str(path), "--check"]) == 0
        captured = capsys.readouterr()
        assert "skipped 1 torn trailing line" in captured.err
        assert "1 torn line(s) skipped" in captured.out


class TestCsvReport:
    def test_csv_matches_table_cells(self):
        records = [
            telemetry_record(
                experiment="fig2a", scheduler="SRPT", telemetry=make_telemetry(1, 0.25)
            ),
        ]
        text = format_report_csv(records)
        lines = text.splitlines()
        assert lines[0].startswith("experiment,scheduler,runs,")
        assert "argmax-job" in lines[0]
        assert lines[1].startswith("fig2a,SRPT,1,")
        assert "25.0%" in lines[1]

    def test_csv_column_order_stable_across_eras(self):
        # A record missing the newer metrics (an "old era" file) must
        # produce the same header and column count, with '-' cells.
        new = telemetry_record(
            experiment="e", scheduler="new", telemetry=make_telemetry(1, 0.5)
        )
        old_t = RunTelemetry()
        old_t.metrics.counter("jobs.completed").inc(1.0)
        old = telemetry_record(experiment="e", scheduler="old", telemetry=old_t)
        both = format_report_csv([new, old]).splitlines()
        alone = format_report_csv([new]).splitlines()
        assert both[0] == alone[0]
        assert len(both[1].split(",")) == len(both[2].split(","))
        assert "-" in both[2].split(",")

    def test_main_format_csv(self, tmp_path, capsys):
        path = tmp_path / "tel.jsonl"
        write_telemetry_jsonl(
            str(path),
            [telemetry_record(experiment="e", scheduler="s", telemetry=make_telemetry())],
        )
        assert main([str(path), "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("experiment,scheduler,runs")

    def test_main_merges_multiple_files(self, tmp_path, capsys):
        # Two files — different "eras" of the same sweep — merge into
        # one roll-up per (experiment, scheduler).
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_telemetry_jsonl(
            str(a),
            [telemetry_record(experiment="e", scheduler="s", telemetry=make_telemetry(1), n=2)],
        )
        write_telemetry_jsonl(
            str(b),
            [telemetry_record(experiment="e", scheduler="s", telemetry=make_telemetry(5), n=3)],
        )
        assert main([str(a), str(b), "--check"]) == 0
        assert "2 files: 2 telemetry records OK" in capsys.readouterr().out
        assert main([str(a), str(b), "--format", "csv"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2  # header + the single merged row
        assert lines[1].split(",")[2] == "5"  # runs: 2 + 3

    def test_argmax_job_column_renders(self):
        t = make_telemetry()
        t.metrics.gauge("stretch.argmax_job").set(17.0)
        record = telemetry_record(experiment="e", scheduler="s", telemetry=t)
        table = format_report([record])
        header, _, row = table.splitlines()[1:4]
        col = header.split().index("argmax-job")
        assert row.split()[col] == "17"
