"""Tests for the observability package (repro.obs)."""
