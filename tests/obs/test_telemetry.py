"""Tests for RunTelemetry collection, serialization and merging."""

import json

import pytest

from repro.core.errors import ModelError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    TELEMETRY_VERSION,
    RunTelemetry,
    TelemetrySource,
    collect_telemetry,
    merge_telemetry,
)
from repro.sim.hooks import EngineHooks


class _Source(EngineHooks, TelemetrySource):
    """Minimal telemetry source for collection tests."""

    def __init__(self, name, value):
        self._registry = MetricsRegistry()
        self._registry.counter(name).inc(value)

    def telemetry_metrics(self):
        """The registry built at construction."""
        return self._registry


class TestRunTelemetry:
    def test_roundtrip(self):
        t = RunTelemetry()
        t.metrics.counter("c").inc(2)
        t.metrics.gauge("g").set(1.5)
        back = RunTelemetry.from_dict(t.to_dict())
        assert back.to_dict() == t.to_dict()
        assert back.n_runs == 1

    def test_to_json_canonical(self):
        t = RunTelemetry()
        t.metrics.counter("b").inc()
        t.metrics.counter("a").inc()
        blob = t.to_json()
        assert blob == json.dumps(json.loads(blob), sort_keys=True, separators=(",", ":"))

    def test_version_checked(self):
        bad = RunTelemetry().to_dict()
        bad["version"] = TELEMETRY_VERSION + 1
        with pytest.raises(ModelError, match="unsupported telemetry version"):
            RunTelemetry.from_dict(bad)

    def test_shape_checked(self):
        with pytest.raises(ModelError):
            RunTelemetry.from_dict("nope")
        with pytest.raises(ModelError, match="n_runs"):
            RunTelemetry.from_dict({"version": TELEMETRY_VERSION, "n_runs": 0, "metrics": {}})
        with pytest.raises(ModelError, match="metrics"):
            RunTelemetry.from_dict({"version": TELEMETRY_VERSION, "n_runs": 1})

    def test_merge_counts_runs(self):
        a, b = RunTelemetry(), RunTelemetry()
        a.metrics.counter("c").inc(1)
        b.metrics.counter("c").inc(2)
        a.merge(b)
        assert a.n_runs == 2
        assert a.metrics.counter("c").value == 3.0


class TestCollect:
    def test_unions_sources_only(self):
        hooks = [EngineHooks(), _Source("a", 1), _Source("b", 2)]
        telemetry = collect_telemetry(hooks)
        assert telemetry.metrics.names() == ["a", "b"]
        assert telemetry.n_runs == 1

    def test_no_sources_is_none(self):
        assert collect_telemetry([EngineHooks()]) is None
        assert collect_telemetry([]) is None

    def test_namespace_clash_rejected(self):
        with pytest.raises(ModelError, match="duplicate metric"):
            collect_telemetry([_Source("a", 1), _Source("a", 2)])


class TestMergeTelemetry:
    def test_accepts_objects_dicts_and_none(self):
        a = RunTelemetry()
        a.metrics.counter("c").inc(1)
        b = RunTelemetry()
        b.metrics.counter("c").inc(2)
        merged = merge_telemetry([a, None, b.to_dict()])
        assert merged.n_runs == 2
        assert merged.metrics.counter("c").value == 3.0

    def test_all_none_is_none(self):
        assert merge_telemetry([None, None]) is None
        assert merge_telemetry([]) is None

    def test_inputs_not_mutated(self):
        a = RunTelemetry()
        a.metrics.counter("c").inc(1)
        before = a.to_json()
        b = RunTelemetry()
        b.metrics.counter("c").inc(2)
        merge_telemetry([a, b])
        assert a.to_json() == before
