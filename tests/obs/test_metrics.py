"""Tests for the metric primitives and the registry."""

import pytest

from repro.core.errors import ModelError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, Series


class TestCounter:
    def test_inc_and_merge_add(self):
        a, b = Counter(), Counter()
        a.inc()
        a.inc(2.5)
        b.inc(4.0)
        a.merge(b)
        assert a.value == 7.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ModelError, match="non-negative"):
            Counter().inc(-1)

    def test_roundtrip(self):
        c = Counter(3.25)
        assert Counter.from_dict(c.to_dict()).value == 3.25


class TestGauge:
    def test_set_overwrites_within_run(self):
        g = Gauge()
        g.set(1.0)
        g.set(5.0)
        assert g.value == 5.0

    def test_merge_averages_across_runs(self):
        a, b, c = Gauge(), Gauge(), Gauge()
        a.set(1.0)
        b.set(2.0)
        c.set(6.0)
        a.merge(b)
        a.merge(c)
        assert a.value == pytest.approx(3.0)

    def test_unset_value_zero(self):
        assert Gauge().value == 0.0

    def test_roundtrip(self):
        g = Gauge()
        g.set(2.5)
        back = Gauge.from_dict(g.to_dict())
        assert back.value == 2.5 and back.n == 1


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram(edges=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        # <=1 | (1,2] | (2,4] | overflow
        assert h.counts == [2.0, 1.0, 1.0, 1.0]
        assert h.total == 5.0

    def test_weighted_mean(self):
        h = Histogram(edges=(10.0,))
        h.observe(2.0, weight=3.0)
        h.observe(8.0, weight=1.0)
        assert h.mean == pytest.approx((2.0 * 3 + 8.0) / 4)

    def test_percentile_interpolates(self):
        h = Histogram(edges=(1.0, 2.0))
        for _ in range(10):
            h.observe(0.5)
        assert h.percentile(0.5) == pytest.approx(0.5)
        assert h.percentile(0.0) == pytest.approx(0.0)
        assert h.percentile(1.0) == pytest.approx(1.0)

    def test_percentile_overflow_reports_last_edge(self):
        h = Histogram(edges=(1.0,))
        h.observe(50.0)
        assert h.percentile(0.99) == 1.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ModelError):
            Histogram(edges=(1.0,)).percentile(1.5)

    def test_empty_percentile_zero(self):
        assert Histogram(edges=(1.0,)).percentile(0.9) == 0.0

    def test_merge_adds_counts(self):
        a = Histogram(edges=(1.0, 2.0))
        b = Histogram(edges=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        a.merge(b)
        assert a.counts == [1.0, 1.0, 0.0]
        assert a.total == 2.0

    def test_merge_requires_same_edges(self):
        with pytest.raises(ModelError, match="different edges"):
            Histogram(edges=(1.0,)).merge(Histogram(edges=(2.0,)))

    def test_edges_must_increase(self):
        with pytest.raises(ModelError, match="strictly increasing"):
            Histogram(edges=(1.0, 1.0))

    def test_needs_edges(self):
        with pytest.raises(ModelError):
            Histogram(edges=())

    def test_roundtrip(self):
        h = Histogram(edges=(1.0, 2.0))
        h.observe(1.5, weight=0.25)
        back = Histogram.from_dict(h.to_dict())
        assert back.to_dict() == h.to_dict()


class TestSeries:
    def test_set_and_merge_average(self):
        a = Series.of_length(3)
        b = Series.of_length(3)
        a.set_values([1.0, 2.0, 3.0])
        b.set_values([3.0, 4.0, 5.0])
        a.merge(b)
        assert a.values == [2.0, 3.0, 4.0]

    def test_unset_values_zero(self):
        assert Series.of_length(2).values == [0.0, 0.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            Series.of_length(2).set_values([1.0])
        with pytest.raises(ModelError, match="different lengths"):
            Series.of_length(2).merge(Series.of_length(3))

    def test_positive_length_required(self):
        with pytest.raises(ModelError):
            Series.of_length(0)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", edges=(1.0,)) is reg.histogram("h")

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ModelError, match="not a gauge"):
            reg.gauge("a")
        with pytest.raises(ModelError, match="not a histogram"):
            reg.histogram("a", edges=(1.0,))
        with pytest.raises(ModelError, match="not a series"):
            reg.series("a", 2)

    def test_histogram_needs_edges_at_creation(self):
        with pytest.raises(ModelError, match="needs edges"):
            MetricsRegistry().histogram("h")

    def test_histogram_edge_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1.0,))
        with pytest.raises(ModelError, match="different edges"):
            reg.histogram("h", edges=(2.0,))

    def test_series_length_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.series("s", 3)
        with pytest.raises(ModelError, match="different length"):
            reg.series("s", 4)

    def test_union_disjoint(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.counter("y").inc(2)
        a.union(b)
        assert a.names() == ["x", "y"]

    def test_union_clash_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(ModelError, match="duplicate metric"):
            a.union(b)

    def test_merge_by_kind_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.gauge("g").set(1.0)
        b.gauge("g").set(3.0)
        b.counter("only_b").inc(5)
        a.merge(b)
        assert a.counter("c").value == 3.0
        assert a.gauge("g").value == 2.0
        assert a.counter("only_b").value == 5.0

    def test_merge_does_not_alias_adopted_metrics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("c").inc(1)
        a.merge(b)
        a.counter("c").inc(1)
        assert b.counter("c").value == 1.0

    def test_merge_kind_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(ModelError, match="cannot merge"):
            a.merge(b)

    def test_roundtrip_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(1.5)
        reg.histogram("h", edges=(1.0, 2.0)).observe(1.5)
        reg.series("s", 2).set_values([0.5, 0.75])
        d = reg.to_dict()
        assert list(d) == sorted(d)
        back = MetricsRegistry.from_dict(d)
        assert back.to_dict() == d

    def test_from_dict_rejects_unknown_type(self):
        with pytest.raises(ModelError, match="unknown type"):
            MetricsRegistry.from_dict({"x": {"type": "nope"}})

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ModelError, match="not a typed dict"):
            MetricsRegistry.from_dict({"x": 3})
        with pytest.raises(ModelError, match="malformed"):
            MetricsRegistry.from_dict({"x": {"type": "counter"}})

    def test_mapping_protocol(self):
        reg = MetricsRegistry()
        reg.counter("x")
        assert "x" in reg and len(reg) == 1
        assert [name for name, _ in reg] == ["x"]
        assert reg.get("missing") is None
