"""Tests for the ``repro-trace`` explain/diff CLI."""

import re

import pytest

from repro.obs.trace_cli import main
from repro.obs.tracing import write_trace_jsonl
from tests.obs.test_tracing import renewal_faults, small_instance, traced_run


@pytest.fixture(scope="module")
def faulted_trace(tmp_path_factory):
    """One faulted ssf-edf-fa run written as trace JSONL."""
    inst = small_instance(n=25, seed=13)
    result, payload = traced_run(
        inst, scheduler="ssf-edf-fa", faults=renewal_faults(inst)
    )
    path = tmp_path_factory.mktemp("trace") / "fa.trace.jsonl"
    write_trace_jsonl(str(path), payload)
    return result, payload, str(path)


class TestSummary:
    def test_header_and_tallies(self, faulted_trace, capsys):
        result, payload, path = faulted_trace
        assert main(["summary", path]) == 0
        out = capsys.readouterr().out
        assert "scheduler:   ssf-edf-fa" in out
        assert f"jobs:        {payload['n_jobs']}" in out
        assert "probes)" in out  # provenance path tallies rendered
        assert re.search(r"faults:\s+\d+ outages, \d+ aborted attempts", out)
        assert "top stretch:" in out


class TestJob:
    def test_timeline_renders(self, faulted_trace, capsys):
        _, payload, path = faulted_trace
        assert main(["job", path, "0"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("job 0: release ")
        assert "attempt 0 on " in out
        assert "completion " in out and "stretch " in out

    def test_aborted_attempt_shows_blame(self, faulted_trace, capsys):
        _, payload, path = faulted_trace
        aborted_job = next(
            j["job"]
            for j in payload["jobs"]
            if any(a["outcome"] == "aborted" for a in j["attempts"])
        )
        assert main(["job", path, str(aborted_job)]) == 0
        out = capsys.readouterr().out
        assert re.search(r"aborted by (edge|cloud):\d+", out)

    def test_unknown_job_errors(self, faulted_trace, capsys):
        _, _, path = faulted_trace
        assert main(["job", path, "9999"]) == 1
        assert "not in trace" in capsys.readouterr().err


class TestCritical:
    def test_names_the_max_stretch_job_exactly(self, faulted_trace, capsys):
        result, payload, path = faulted_trace
        assert main(["critical", path]) == 0
        out = capsys.readouterr().out
        match = re.match(
            r"max-stretch job: (\d+) \(stretch ([0-9.]+),", out
        )
        assert match, out
        job_id = int(match.group(1))
        # The named job is the argmax of the result's stretches and the
        # reconstructed stretch equals the result's to float equality.
        stretches = result.stretches()
        assert job_id == int(stretches.argmax())
        named = next(j for j in payload["jobs"] if j["job"] == job_id)
        assert named["stretch"] == float(stretches.max())
        assert f"job {job_id} waited [" in out or "no wait gaps" in out

    def test_attributes_waits(self, faulted_trace, capsys):
        _, _, path = faulted_trace
        assert main(["critical", path]) == 0
        out = capsys.readouterr().out
        # The chain walk names at least one cause (outage or competitor)
        # unless the argmax job was served the instant it released.
        assert (
            "blocked by outage:" in out
            or "behind job " in out
            or "no wait gaps" in out
            or "no overlapping outage" in out
        )


class TestDiff:
    def test_diff_against_plain_scheduler(self, faulted_trace, tmp_path, capsys):
        _, _, fa_path = faulted_trace
        inst = small_instance(n=25, seed=13)
        _, plain = traced_run(inst, scheduler="ssf-edf", faults=renewal_faults(inst))
        plain_path = tmp_path / "plain.trace.jsonl"
        write_trace_jsonl(str(plain_path), plain)
        assert main(["diff", str(plain_path), fa_path]) == 0
        out = capsys.readouterr().out
        assert "a: ssf-edf " in out and "b: ssf-edf-fa " in out
        assert "first divergent decision: seq " in out
        assert "per-job stretch deltas" in out

    def test_diff_identical_traces(self, faulted_trace, capsys):
        _, _, path = faulted_trace
        assert main(["diff", path, path]) == 0
        out = capsys.readouterr().out
        assert "no divergent decision" in out
        assert "per-job stretches identical" in out


class TestErrors:
    def test_missing_file(self, tmp_path, capsys):
        assert main(["summary", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_corrupt_file(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{nope\n")
        assert main(["critical", str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err
