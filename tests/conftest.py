"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform


@pytest.fixture
def single_pair_platform() -> Platform:
    """One edge unit at speed 1/3 and one cloud processor (Figure 1's)."""
    return Platform.create(edge_speeds=[1 / 3], n_cloud=1)


@pytest.fixture
def figure1_instance(single_pair_platform: Platform) -> Instance:
    """The worked example of Section III-C (J3/J5 carry up=2, dn=1;
    the HAL scan's 'up=dn=1' contradicts the prose, see DESIGN.md)."""
    jobs = [
        Job(origin=0, work=1, release=0, up=5, dn=5),
        Job(origin=0, work=4, release=0, up=2, dn=2),
        Job(origin=0, work=2, release=3, up=2, dn=1),
        Job(origin=0, work=4 / 3, release=5, up=5, dn=5),
        Job(origin=0, work=2, release=5, up=2, dn=1),
        Job(origin=0, work=1 / 3, release=6, up=5, dn=5),
    ]
    return Instance.create(single_pair_platform, jobs)


@pytest.fixture
def two_tier_platform() -> Platform:
    """Two heterogeneous edge units, two cloud processors."""
    return Platform.create(edge_speeds=[0.5, 0.1], n_cloud=2)


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

#: Positive, well-conditioned time quantities.
time_amounts = st.floats(
    min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False
)

#: Non-negative communication times (zero allowed: the Kang dn=0 case).
comm_amounts = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False),
)

#: Release dates.
release_dates = st.floats(
    min_value=0.0, max_value=200.0, allow_nan=False, allow_infinity=False
)

#: Edge speeds in (0, 1] as the paper requires.
edge_speeds = st.floats(
    min_value=0.05, max_value=1.0, allow_nan=False, allow_infinity=False
)


@st.composite
def platforms(draw, max_edge: int = 3, max_cloud: int = 3, min_cloud: int = 0):
    """Random small platforms."""
    n_edge = draw(st.integers(min_value=1, max_value=max_edge))
    n_cloud = draw(st.integers(min_value=min_cloud, max_value=max_cloud))
    speeds = draw(
        st.lists(edge_speeds, min_size=n_edge, max_size=n_edge)
    )
    return Platform.create(speeds, n_cloud)


@st.composite
def jobs_for(draw, platform: Platform):
    """A random job valid on ``platform``."""
    return Job(
        origin=draw(st.integers(min_value=0, max_value=platform.n_edge - 1)),
        work=draw(time_amounts),
        release=draw(release_dates),
        up=draw(comm_amounts),
        dn=draw(comm_amounts),
    )


@st.composite
def instances(draw, max_jobs: int = 8, max_edge: int = 3, max_cloud: int = 3, min_cloud: int = 0):
    """Random small instances (platform + jobs)."""
    platform = draw(platforms(max_edge=max_edge, max_cloud=max_cloud, min_cloud=min_cloud))
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    job_list = [draw(jobs_for(platform)) for _ in range(n)]
    return Instance.create(platform, job_list)
