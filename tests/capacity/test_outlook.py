"""Tests for repro.capacity: outlook composition, floors, transparency."""

import math

import numpy as np
import pytest

from repro.capacity import CapacityOutlook, ExpectationDiscount
from repro.capacity.outlook import NO_DISCOUNT
from repro.core.errors import ModelError
from repro.core.intervals import Interval
from repro.core.platform import Platform
from repro.faults.trace import (
    DOMAIN_CLOUD,
    DOMAIN_EDGE,
    DOMAIN_LINK,
    FaultRates,
    FaultTrace,
    RenewalRates,
)
from repro.sim.availability import CloudAvailability


def _platform():
    return Platform.create([0.5, 0.25, 1.0], cloud_speeds=[1.0, 2.0])


def _windows():
    return CloudAvailability({0: (Interval(2.0, 4.0), Interval(8.0, 9.0))})


def _trace():
    return FaultTrace(
        edge_down={1: (Interval(1.0, 3.0),)},
        cloud_down={1: (Interval(0.5, 2.5),)},
        link_down={0: (Interval(2.0, 6.0),)},
        rates=FaultRates(
            edge=RenewalRates(40.0, 4.0),
            cloud=RenewalRates(50.0, 5.0),
            link=RenewalRates(60.0, 6.0),
        ),
    )


class TestTransparentOutlook:
    def test_rates_are_platform_speeds_bitwise(self):
        platform = _platform()
        outlook = CapacityOutlook(platform)
        expected_edge = np.asarray(platform.edge_speeds, dtype=np.float64)
        expected_cloud = np.asarray(platform.cloud_speeds, dtype=np.float64)
        assert outlook.edge_rates().tobytes() == expected_edge.tobytes()
        assert outlook.cloud_rates().tobytes() == expected_cloud.tobytes()
        assert outlook.link_rate() == 1.0
        assert not outlook.discounted

    def test_floors_are_identity(self):
        outlook = CapacityOutlook(_platform(), _windows(), _trace())
        # Undiscounted: current health is the engine's to enforce, not
        # the scheduler's to anticipate — floors collapse to t even for
        # down resources.
        assert outlook.earliest_edge_start(1, 2.0) == 2.0
        assert outlook.earliest_cloud_start(0, 3.0) == 3.0
        assert outlook.earliest_link_start(0, 3.0) == 3.0

    def test_completion_ignores_floors_but_walks_windows(self):
        outlook = CapacityOutlook(_platform(), _windows())
        # Cloud 0 speed 1.0: start at 1, window [2,4) pauses, finish
        # 1 unit before + 2 after the window.
        assert outlook.earliest_cloud_completion(0, 1.0, 3.0) == pytest.approx(6.0)
        # Cloud 1 has no windows.
        assert outlook.earliest_cloud_completion(1, 1.0, 3.0) == pytest.approx(2.5)

    def test_query_counter_increments(self):
        outlook = CapacityOutlook(_platform())
        before = outlook.n_queries
        outlook.edge_rates()
        outlook.cloud_rates()
        outlook.blocked_at(0.0)
        assert outlook.n_queries == before + 3


class TestBlockedAt:
    def test_composes_faults_and_windows(self):
        outlook = CapacityOutlook(_platform(), _windows(), _trace())
        edges, clouds, links, busy = outlook.blocked_at(2.0)
        assert edges == [1]
        assert clouds == [1]
        assert links == [0]
        assert busy == [0]

    def test_empty_when_nothing_down(self):
        outlook = CapacityOutlook(_platform(), _windows(), _trace())
        assert outlook.blocked_at(7.0) == ([], [], [], [])

    def test_next_boundary_is_min_of_sources(self):
        outlook = CapacityOutlook(_platform(), _windows(), _trace())
        # Fault boundary at 0.5 precedes the first window edge at 2.0.
        assert outlook.next_boundary(0.0) == 0.5
        # Past every fault boundary only the windows remain.
        assert outlook.next_boundary(6.5) == 8.0
        assert outlook.next_boundary(100.0) == math.inf


class TestDeliverableWork:
    def test_window_overlap_carved_out(self):
        outlook = CapacityOutlook(_platform(), _windows())
        # [1, 5): 4 time units minus 2 inside the window, at speed 1.
        assert outlook.deliverable_cloud_work(0, 1.0, 5.0) == pytest.approx(2.0)
        # Cloud 1 (speed 2, no windows): full span.
        assert outlook.deliverable_cloud_work(1, 1.0, 5.0) == pytest.approx(8.0)

    def test_empty_and_edge_spans(self):
        outlook = CapacityOutlook(_platform(), _windows())
        assert outlook.deliverable_cloud_work(0, 5.0, 5.0) == 0.0
        assert outlook.deliverable_cloud_work(0, 6.0, 5.0) == 0.0
        assert outlook.deliverable_edge_work(0, 0.0, 4.0) == pytest.approx(2.0)


class TestDiscountedOutlook:
    def _outlook(self):
        discount = ExpectationDiscount.from_rates(_trace().rates)
        return CapacityOutlook(_platform(), _windows(), _trace(), discount=discount)

    def test_rates_scaled_by_availability(self):
        outlook = self._outlook()
        assert outlook.discounted
        assert outlook.edge_rates()[0] == pytest.approx(0.5 * 40.0 / 44.0)
        assert outlook.cloud_rates()[1] == pytest.approx(2.0 * 50.0 / 55.0)
        assert outlook.link_rate() == pytest.approx(60.0 / 66.0)

    def test_down_resources_floored_at_expected_recovery(self):
        outlook = self._outlook()
        assert outlook.earliest_edge_start(1, 2.0) == pytest.approx(2.0 + 4.0)
        assert outlook.earliest_edge_start(0, 2.0) == 2.0  # healthy
        assert outlook.earliest_cloud_start(1, 1.0) == pytest.approx(1.0 + 5.0)
        assert outlook.earliest_link_start(0, 3.0) == pytest.approx(3.0 + 6.0)

    def test_planned_window_floors_at_published_end(self):
        outlook = self._outlook()
        # Cloud 0 is healthy but inside the [2, 4) window: floor is the
        # window end (published co-tenancy is fair game).
        assert outlook.earliest_cloud_start(0, 3.0) == pytest.approx(4.0)

    def test_non_positive_rate_rejected(self):
        discount = ExpectationDiscount(cloud_availability=0.0)
        outlook = CapacityOutlook(_platform(), discount=discount)
        with pytest.raises(ModelError):
            outlook.earliest_cloud_completion(0, 0.0, 1.0)


class TestExpectationDiscount:
    def test_from_rates_none_is_identity(self):
        assert ExpectationDiscount.from_rates(None) == NO_DISCOUNT

    def test_partial_rates(self):
        rates = FaultRates(edge=RenewalRates(10.0, 1.0))
        d = ExpectationDiscount.from_rates(rates)
        assert d.edge_availability == pytest.approx(10.0 / 11.0)
        assert d.cloud_availability == 1.0
        assert d.availability_of(DOMAIN_EDGE) == d.edge_availability
        assert d.recovery_of(DOMAIN_EDGE) == 1.0
        assert d.recovery_of(DOMAIN_LINK) == 0.0

    def test_expected_rework_superlinear(self):
        d = ExpectationDiscount(cloud_mtbf=10.0)
        short = d.expected_rework(1.0, DOMAIN_CLOUD)
        long = d.expected_rework(10.0, DOMAIN_CLOUD)
        assert short == pytest.approx(10.0 * math.expm1(0.1))
        # Superlinear: ten times the work costs more than ten times the
        # expected busy time.
        assert long > 10.0 * short

    def test_expected_rework_infinite_mtbf_is_identity(self):
        assert NO_DISCOUNT.expected_rework(7.0, DOMAIN_EDGE) == 7.0
        assert NO_DISCOUNT.expected_rework(7.0, DOMAIN_LINK) == 7.0
