"""Tests for availability-window serialization."""

import json

import pytest

from repro.core.errors import ModelError
from repro.core.intervals import Interval
from repro.io.json_format import availability_from_dict, availability_to_dict
from repro.sim.availability import (
    CloudAvailability,
    periodic_unavailability,
    random_unavailability,
)


class TestRoundTrip:
    def test_empty(self):
        av = CloudAvailability.always_available()
        assert availability_from_dict(availability_to_dict(av)).windows == {}

    def test_periodic(self):
        av = periodic_unavailability(3, period=10.0, busy_fraction=0.3, horizon=45.0)
        restored = availability_from_dict(availability_to_dict(av))
        assert restored.windows == av.windows

    def test_random(self):
        av = random_unavailability(2, rate=0.1, mean_duration=4.0, horizon=80.0, seed=3)
        restored = availability_from_dict(availability_to_dict(av))
        assert restored.windows == av.windows

    def test_json_serializable(self):
        av = CloudAvailability({1: (Interval(2.0, 5.0),)})
        json.dumps(availability_to_dict(av))

    def test_version_checked(self):
        data = availability_to_dict(CloudAvailability.always_available())
        data["format_version"] = 0
        with pytest.raises(ModelError, match="format_version"):
            availability_from_dict(data)

    def test_semantics_preserved(self):
        av = CloudAvailability({0: (Interval(1.0, 3.0), Interval(5.0, 6.0))})
        restored = availability_from_dict(availability_to_dict(av))
        for t in (0.5, 1.0, 2.9, 3.0, 4.0, 5.5, 6.0):
            assert restored.is_available(0, t) == av.is_available(0, t)
