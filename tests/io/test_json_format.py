"""Tests for JSON serialization (repro.io.json_format)."""

import json

import pytest
from hypothesis import given, settings

from repro.core.errors import ModelError, ScheduleError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.metrics import max_stretch, stretches
from repro.core.platform import Platform
from repro.core.validation import validate_schedule
from repro.io.json_format import (
    FORMAT_VERSION,
    instance_from_dict,
    instance_to_dict,
    job_from_dict,
    job_to_dict,
    load_instance,
    load_schedule,
    platform_from_dict,
    platform_to_dict,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from tests.conftest import instances


class TestPlatformRoundTrip:
    def test_roundtrip(self):
        p = Platform.create([0.5, 0.1], cloud_speeds=[1.0, 2.0])
        assert platform_from_dict(platform_to_dict(p)) == p

    def test_missing_key(self):
        with pytest.raises(ModelError):
            platform_from_dict({"edge_speeds": [1.0]})


class TestJobRoundTrip:
    def test_roundtrip(self):
        j = Job(origin=2, work=3.5, release=1.0, up=0.5, dn=0.25)
        assert job_from_dict(job_to_dict(j)) == j

    def test_defaults_for_optional_fields(self):
        j = job_from_dict({"origin": 0, "work": 1.0})
        assert j.release == 0.0 and j.up == 0.0 and j.dn == 0.0

    def test_missing_required(self):
        with pytest.raises(ModelError):
            job_from_dict({"origin": 0})


class TestInstanceRoundTrip:
    def test_roundtrip(self, figure1_instance):
        data = instance_to_dict(figure1_instance)
        restored = instance_from_dict(data)
        assert restored.platform == figure1_instance.platform
        assert restored.jobs == figure1_instance.jobs

    def test_version_stamped(self, figure1_instance):
        assert instance_to_dict(figure1_instance)["format_version"] == FORMAT_VERSION

    def test_unknown_version_rejected(self, figure1_instance):
        data = instance_to_dict(figure1_instance)
        data["format_version"] = 999
        with pytest.raises(ModelError, match="format_version"):
            instance_from_dict(data)

    def test_json_serializable(self, figure1_instance):
        json.dumps(instance_to_dict(figure1_instance))

    def test_file_roundtrip(self, figure1_instance, tmp_path):
        path = tmp_path / "inst.json"
        save_instance(figure1_instance, path)
        restored = load_instance(path)
        assert restored.jobs == figure1_instance.jobs

    @given(inst=instances(max_jobs=6))
    @settings(deadline=None, max_examples=25)
    def test_roundtrip_property(self, inst):
        restored = instance_from_dict(instance_to_dict(inst))
        assert restored.jobs == inst.jobs
        assert restored.platform == inst.platform


class TestScheduleRoundTrip:
    @pytest.fixture
    def simulated(self, figure1_instance):
        return simulate(figure1_instance, make_scheduler("ssf-edf")).schedule

    def test_roundtrip_preserves_metrics(self, simulated):
        restored = schedule_from_dict(schedule_to_dict(simulated))
        assert max_stretch(restored) == pytest.approx(max_stretch(simulated))
        assert stretches(restored).tolist() == pytest.approx(stretches(simulated).tolist())

    def test_roundtrip_stays_valid(self, simulated):
        restored = schedule_from_dict(schedule_to_dict(simulated))
        assert validate_schedule(restored) == []

    def test_roundtrip_preserves_attempts(self, simulated):
        restored = schedule_from_dict(schedule_to_dict(simulated))
        for i in range(simulated.instance.n_jobs):
            a = simulated.job_schedules[i]
            b = restored.job_schedules[i]
            assert len(a.attempts) == len(b.attempts)
            assert a.allocation == b.allocation

    def test_file_roundtrip(self, simulated, tmp_path):
        path = tmp_path / "sched.json"
        save_schedule(simulated, path)
        restored = load_schedule(path)
        assert max_stretch(restored) == pytest.approx(max_stretch(simulated))

    def test_bad_resource_kind(self, simulated):
        data = schedule_to_dict(simulated)
        data["jobs"][0]["attempts"][0]["resource"]["kind"] = "fog"
        with pytest.raises(ScheduleError, match="fog"):
            schedule_from_dict(data)

    def test_json_serializable(self, simulated):
        json.dumps(schedule_to_dict(simulated))
