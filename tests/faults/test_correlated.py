"""Correlated fault groups and the rates metadata of generated traces."""

import pytest

from repro.core.errors import ModelError
from repro.faults import FaultClassParams, FaultTrace, exponential_fault_trace
from repro.faults.trace import FaultRates, RenewalRates

_PARAMS = FaultClassParams(mtbf=20.0, mttr=2.0)


def _trace(group_size=1, seed=13, n_edge=8, n_cloud=6):
    return exponential_fault_trace(
        n_edge=n_edge,
        n_cloud=n_cloud,
        horizon=200.0,
        seed=seed,
        edge=_PARAMS,
        cloud=_PARAMS,
        link=_PARAMS,
        group_size=group_size,
    )


class TestCorrelatedGroups:
    def test_group_size_one_reproduces_independent_model(self):
        # The default draws one renewal sequence per resource; an
        # explicit group_size=1 must consume the stream identically.
        implicit = exponential_fault_trace(
            n_edge=8, n_cloud=6, horizon=200.0, seed=13,
            edge=_PARAMS, cloud=_PARAMS, link=_PARAMS,
        )
        assert _trace(group_size=1) == implicit

    def test_group_members_share_windows(self):
        trace = _trace(group_size=3)
        for windows, n in ((trace.edge_down, 8), (trace.cloud_down, 6)):
            for base in range(0, n, 3):
                members = [
                    windows.get(idx) for idx in range(base, min(base + 3, n))
                ]
                assert len(set(map(id, members))) <= 1 or all(
                    m == members[0] for m in members
                )

    def test_correlation_changes_realization_not_rates(self):
        independent = _trace(group_size=1)
        correlated = _trace(group_size=4)
        assert independent != correlated
        assert independent.rates == correlated.rates

    def test_oversized_group_is_one_shared_draw(self):
        trace = _trace(group_size=100)
        edge_windows = set(map(tuple, trace.edge_down.values()))
        assert len(edge_windows) <= 1

    def test_group_size_validated(self):
        with pytest.raises(ModelError):
            _trace(group_size=0)


class TestRatesMetadata:
    def test_generated_trace_carries_rates(self):
        trace = _trace()
        assert trace.rates == FaultRates(
            edge=RenewalRates(20.0, 2.0),
            cloud=RenewalRates(20.0, 2.0),
            link=RenewalRates(20.0, 2.0),
        )
        assert trace.rates.edge.availability == pytest.approx(20.0 / 22.0)

    def test_hand_built_trace_has_no_rates(self):
        assert FaultTrace.none().rates is None

    def test_rates_not_part_of_identity(self):
        bare = FaultTrace.none()
        tagged = FaultTrace(rates=FaultRates(edge=RenewalRates(5.0, 1.0)))
        assert bare == tagged

    def test_renewal_rates_validated(self):
        with pytest.raises(ModelError):
            RenewalRates(0.0, 1.0)
        with pytest.raises(ModelError):
            RenewalRates(1.0, -1.0)
