"""Topology-driven correlated fault groups and the group-spec parser."""

import pytest

from repro.core.errors import ModelError
from repro.faults import FaultClassParams, exponential_fault_trace, parse_fault_groups

_PARAMS = FaultClassParams(mtbf=20.0, mttr=2.0)


def _trace(groups=None, seed=13, n_edge=8, n_cloud=6, **kwargs):
    return exponential_fault_trace(
        n_edge=n_edge,
        n_cloud=n_cloud,
        horizon=200.0,
        seed=seed,
        edge=_PARAMS,
        cloud=_PARAMS,
        link=_PARAMS,
        groups=groups,
        **kwargs,
    )


class TestTopologyGroups:
    def test_groups_none_reproduces_independent_model(self):
        # The parameter must not perturb the historical draw stream.
        assert _trace(groups=None) == _trace()

    def test_listed_group_shares_windows(self):
        trace = _trace(groups=[("edge", (0, 1, 2))])
        assert trace.edge_down.get(0) == trace.edge_down.get(1)
        assert trace.edge_down.get(1) == trace.edge_down.get(2)
        # Uncovered resources keep independent draws.
        assert trace.edge_down.get(3) != trace.edge_down.get(4)

    def test_groups_span_domains_independently(self):
        trace = _trace(groups=[("edge", (0, 1)), ("link", (0, 1)), ("cloud", (2, 3))])
        assert trace.edge_down.get(0) == trace.edge_down.get(1)
        assert trace.link_down.get(0) == trace.link_down.get(1)
        assert trace.cloud_down.get(2) == trace.cloud_down.get(3)
        # Separate domains get separate renewal sequences.
        assert trace.edge_down.get(0) != trace.link_down.get(0)

    def test_overlapping_memberships_union_merge(self):
        # Resource 1 belongs to both groups: its windows are the merged
        # union of both sequences, and the trace accepts them (the
        # constructor rejects overlapping windows per resource).
        trace = _trace(groups=[("edge", (0, 1)), ("edge", (1, 2))])
        w0 = trace.edge_down.get(0, ())
        w1 = trace.edge_down.get(1, ())
        w2 = trace.edge_down.get(2, ())
        # Every window of either group is covered by resource 1's set.
        for iv in tuple(w0) + tuple(w2):
            assert any(m.start <= iv.start and iv.end <= m.end for m in w1)

    def test_deterministic_across_calls(self):
        groups = [("edge", (0, 3)), ("link", (1, 2)), ("cloud", (0, 1, 2))]
        assert _trace(groups=groups) == _trace(groups=groups)

    def test_groups_change_realization_not_rates(self):
        independent = _trace()
        grouped = _trace(groups=[("edge", tuple(range(8)))])
        assert independent != grouped
        assert independent.rates == grouped.rates

    def test_mutually_exclusive_with_group_size(self):
        with pytest.raises(ModelError):
            _trace(groups=[("edge", (0, 1))], group_size=2)

    def test_validation_rejects_bad_groups(self):
        with pytest.raises(ModelError):
            _trace(groups=[("edge", (0, 99))])  # out of range
        with pytest.raises(ModelError):
            _trace(groups=[("cloud", (0, 0))])  # duplicate member
        with pytest.raises(ModelError):
            _trace(groups=[("edge", ())])  # empty group
        with pytest.raises(ModelError):
            _trace(groups=[("gpu", (0,))])  # unknown domain


class TestParseFaultGroups:
    def test_parses_lists_and_ranges(self):
        assert parse_fault_groups("edge:0,1;link:0-2") == (
            ("edge", (0, 1)),
            ("link", (0, 1, 2)),
        )

    def test_ranges_are_inclusive_and_mixable(self):
        assert parse_fault_groups("cloud:1,3-5,7") == (("cloud", (1, 3, 4, 5, 7)),)

    def test_rejects_malformed_specs(self):
        for spec in ("", "edge", "edge:", "edge:a", "edge:2-1"):
            with pytest.raises(ModelError):
                parse_fault_groups(spec)

    def test_unknown_domain_rejected_at_trace_construction(self):
        # The parser is syntax-only; domain names are validated where
        # the platform shape is known.
        groups = parse_fault_groups("gpu:0")
        with pytest.raises(ModelError):
            _trace(groups=groups)
