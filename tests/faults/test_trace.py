"""Unit tests for the fault-trace data model and the MTBF/MTTR sampler."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.intervals import Interval
from repro.faults import (
    DOMAIN_CLOUD,
    DOMAIN_EDGE,
    DOMAIN_LINK,
    FaultClassParams,
    FaultTrace,
    FaultTransition,
    exponential_fault_trace,
)


class TestFaultTraceValidation:
    def test_empty_trace(self):
        trace = FaultTrace.none()
        assert trace.is_empty
        assert trace.n_boundaries == 0
        assert trace.next_boundary(0.0) == float("inf")
        assert trace.edge_up(0, 5.0) and trace.cloud_up(3, 5.0) and trace.link_up(1, 5.0)

    def test_negative_index_rejected(self):
        with pytest.raises(ModelError, match="non-negative"):
            FaultTrace(edge_down={-1: (Interval(0.0, 1.0),)})

    def test_empty_interval_tuple_rejected(self):
        with pytest.raises(ModelError, match="omit the key"):
            FaultTrace(cloud_down={0: ()})

    def test_overlapping_intervals_rejected(self):
        with pytest.raises(ModelError, match="sorted and disjoint"):
            FaultTrace(edge_down={0: (Interval(0.0, 2.0), Interval(1.0, 3.0))})

    def test_unsorted_intervals_rejected(self):
        with pytest.raises(ModelError, match="sorted and disjoint"):
            FaultTrace(link_down={0: (Interval(5.0, 6.0), Interval(1.0, 2.0))})

    def test_touching_intervals_allowed(self):
        trace = FaultTrace(edge_down={0: (Interval(0.0, 1.0), Interval(1.0, 2.0))})
        assert not trace.edge_up(0, 0.5) and not trace.edge_up(0, 1.5)


class TestFaultTraceQueries:
    def trace(self):
        return FaultTrace(
            edge_down={1: (Interval(2.0, 4.0),)},
            cloud_down={0: (Interval(3.0, 5.0),)},
            link_down={1: (Interval(2.0, 3.0),)},
        )

    def test_up_down_half_open(self):
        trace = self.trace()
        assert trace.edge_up(1, 1.9)
        assert not trace.edge_up(1, 2.0)  # start is inclusive
        assert not trace.edge_up(1, 3.9)
        assert trace.edge_up(1, 4.0)  # end is exclusive
        assert trace.edge_up(0, 3.0)  # unlisted resources never fail

    def test_next_boundary_strictly_after(self):
        trace = self.trace()
        assert trace.next_boundary(0.0) == 2.0
        assert trace.next_boundary(2.0) == 3.0
        assert trace.next_boundary(4.0) == 5.0
        assert trace.next_boundary(5.0) == float("inf")

    def test_transitions_ordered_downs_first_then_domain(self):
        trace = self.trace()
        at3 = trace.transitions_at(3.0)
        # cloud 0 goes down and link 1 comes up at t=3: down first.
        assert at3 == (
            FaultTransition(DOMAIN_CLOUD, 0, True),
            FaultTransition(DOMAIN_LINK, 1, False),
        )
        assert trace.transitions_at(2.0) == (
            FaultTransition(DOMAIN_EDGE, 1, True),
            FaultTransition(DOMAIN_LINK, 1, True),
        )
        assert trace.transitions_at(99.0) == ()

    def test_down_at(self):
        trace = self.trace()
        assert trace.down_at(2.5) == ([1], [], [1])
        assert trace.down_at(3.5) == ([1], [0], [])
        assert trace.down_at(10.0) == ([], [], [])

    def test_iter_down_intervals(self):
        listed = list(self.trace().iter_down_intervals())
        assert (DOMAIN_EDGE, 1, Interval(2.0, 4.0)) in listed
        assert len(listed) == 3


class TestExponentialModel:
    def test_params_validated(self):
        with pytest.raises(ModelError, match="mtbf"):
            FaultClassParams(mtbf=0.0, mttr=1.0)
        with pytest.raises(ModelError, match="mttr"):
            FaultClassParams(mtbf=1.0, mttr=-1.0)

    def test_bad_horizon_and_sizes(self):
        with pytest.raises(ModelError, match="horizon"):
            exponential_fault_trace(n_edge=1, n_cloud=1, horizon=0.0, seed=0)
        with pytest.raises(ModelError, match="negative platform"):
            exponential_fault_trace(n_edge=-1, n_cloud=1, horizon=1.0, seed=0)

    def test_same_seed_same_trace(self):
        params = FaultClassParams(mtbf=10.0, mttr=2.0)
        kwargs = dict(n_edge=4, n_cloud=3, horizon=100.0, edge=params, cloud=params, link=params)
        a = exponential_fault_trace(seed=7, **kwargs)
        b = exponential_fault_trace(seed=7, **kwargs)
        assert a == b
        c = exponential_fault_trace(seed=8, **kwargs)
        assert a != c

    def test_none_class_never_fails(self):
        trace = exponential_fault_trace(
            n_edge=4,
            n_cloud=3,
            horizon=500.0,
            seed=1,
            edge=FaultClassParams(mtbf=5.0, mttr=1.0),
        )
        assert not trace.cloud_down and not trace.link_down
        assert trace.edge_down  # MTBF far below horizon: some crash expected

    def test_windows_clipped_at_horizon(self):
        trace = exponential_fault_trace(
            n_edge=8,
            n_cloud=0,
            horizon=50.0,
            seed=3,
            edge=FaultClassParams(mtbf=5.0, mttr=20.0),
        )
        for _, _, iv in trace.iter_down_intervals():
            assert 0.0 < iv.start < 50.0
            assert iv.end <= 50.0

    def test_generator_seed_accepted(self):
        params = FaultClassParams(mtbf=10.0, mttr=2.0)
        rng = np.random.default_rng(5)
        trace = exponential_fault_trace(
            n_edge=2, n_cloud=2, horizon=40.0, seed=rng, edge=params
        )
        assert isinstance(trace, FaultTrace)
