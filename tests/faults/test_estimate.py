"""Tests for observed-rate estimation on rateless fault traces."""

import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.faults.estimate import observed_rates
from repro.faults.trace import FaultRates, FaultTrace, Interval, RenewalRates
from repro.schedulers.fcfs import FcfsScheduler
from repro.sim.checkpoint import CheckpointPolicy, young_daly_interval
from repro.sim.engine import simulate


class TestObservedRates:
    def test_empty_trace_estimates_nothing(self):
        assert observed_rates(FaultTrace.none()) is None

    def test_single_domain_sample_means(self):
        # Edge 0: down [2,3) and [7,9) -> downs 1, 2; gaps 2-0=2, 7-3=4.
        trace = FaultTrace(
            edge_down={0: (Interval(2.0, 3.0), Interval(7.0, 9.0))}
        )
        rates = observed_rates(trace)
        assert rates is not None
        assert rates.edge == RenewalRates(mtbf=3.0, mttr=1.5)
        assert rates.cloud is None
        assert rates.link is None

    def test_means_pool_across_resources_of_a_domain(self):
        # Cloud 0: down [4,5) (gap 4); cloud 2: down [1,2) and [3,5)
        # (gaps 1 and 1).  downs = 1, 1, 2; gaps = 4, 1, 1.
        trace = FaultTrace(
            cloud_down={
                0: (Interval(4.0, 5.0),),
                2: (Interval(1.0, 2.0), Interval(3.0, 5.0)),
            }
        )
        rates = observed_rates(trace)
        assert rates.cloud == RenewalRates(mtbf=2.0, mttr=4.0 / 3.0)

    def test_domains_estimated_independently(self):
        trace = FaultTrace(
            edge_down={0: (Interval(10.0, 11.0),)},
            link_down={1: (Interval(5.0, 6.0),)},
        )
        rates = observed_rates(trace)
        assert rates.edge == RenewalRates(mtbf=10.0, mttr=1.0)
        assert rates.cloud is None
        assert rates.link == RenewalRates(mtbf=5.0, mttr=1.0)

    def test_failure_at_time_zero_is_degenerate_not_an_error(self):
        # A single down interval starting at 0 observes no uptime at
        # all — RenewalRates would reject mtbf=0, so the domain (and
        # here the whole trace) estimates to None instead of raising.
        trace = FaultTrace(edge_down={0: (Interval(0.0, 1.0),)})
        assert observed_rates(trace) is None

    def test_converges_to_model_rates_on_a_generated_trace(self):
        from repro.faults.model import FaultClassParams, exponential_fault_trace

        trace = exponential_fault_trace(
            n_edge=4,
            n_cloud=4,
            horizon=50_000.0,
            seed=7,
            edge=FaultClassParams(mtbf=40.0, mttr=4.0),
        )
        stripped = FaultTrace(
            edge_down=trace.edge_down,
            cloud_down=trace.cloud_down,
            link_down=trace.link_down,
        )
        rates = observed_rates(stripped)
        assert rates.edge.mtbf == pytest.approx(40.0, rel=0.15)
        assert rates.edge.mttr == pytest.approx(4.0, rel=0.15)


class TestEngineAutoInterval:
    """`--checkpoint-interval auto` on a trace without rate metadata."""

    def _instance(self):
        platform = Platform.create([1.0], n_cloud=0)
        return Instance.create(platform, [Job(origin=0, work=30.0)])

    def _trace(self):
        # Hand-built (rateless): edge 0 fails at 10 for 2 -> observed
        # mtbf 10, mttr 2.
        return FaultTrace(edge_down={0: (Interval(10.0, 12.0),)})

    def test_auto_matches_explicit_observed_interval(self):
        instance = self._instance()
        assert self._trace().rates is None
        auto = simulate(
            instance,
            FcfsScheduler(),
            faults=self._trace(),
            checkpoint=CheckpointPolicy(commit_cost=0.5, auto_interval=True),
        )
        explicit = simulate(
            instance,
            FcfsScheduler(),
            faults=self._trace(),
            checkpoint=CheckpointPolicy(
                interval=young_daly_interval(10.0, 0.5), commit_cost=0.5
            ),
        )
        assert auto.completion.tobytes() == explicit.completion.tobytes()
        assert auto.n_events == explicit.n_events

    def test_model_rates_still_take_precedence(self):
        # When the trace carries metadata, the estimator must not run:
        # attach rates disagreeing with the observations and check the
        # metadata wins.
        instance = self._instance()
        observed = self._trace()
        with_meta = FaultTrace(
            edge_down=observed.edge_down,
            rates=FaultRates(edge=RenewalRates(mtbf=100.0, mttr=2.0)),
        )
        auto_meta = simulate(
            instance,
            FcfsScheduler(),
            faults=with_meta,
            checkpoint=CheckpointPolicy(commit_cost=0.5, auto_interval=True),
        )
        explicit_meta = simulate(
            instance,
            FcfsScheduler(),
            faults=with_meta,
            checkpoint=CheckpointPolicy(
                interval=young_daly_interval(100.0, 0.5), commit_cost=0.5
            ),
        )
        assert auto_meta.completion.tobytes() == explicit_meta.completion.tobytes()
