"""Meta-test: every public item in the library carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_NAMES = {"__init__"}


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__, f"module {module.__name__} lacks a docstring"


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_functions_and_classes_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_") or name in SKIP_NAMES:
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not inspect.getdoc(obj):
                undocumented.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for m_name, member in vars(obj).items():
                    if m_name.startswith("_"):
                        continue
                    if inspect.isfunction(member) and not inspect.getdoc(member):
                        undocumented.append(f"{module.__name__}.{name}.{m_name}")
    assert not undocumented, f"missing docstrings: {undocumented}"
