"""Decision-reuse layer of SSF-EDF: bit-identity and cache hygiene.

The incremental machinery (probe adoption + cached replay, see
:mod:`repro.schedulers.placement`) must never change a schedule: every
test here runs the same instance with ``incremental=True`` and
``incremental=False`` (the historical rebuild-everything behavior) and
requires byte-identical outcomes — including under fault injection,
where aborted attempts must invalidate the cache.
"""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud
from repro.faults.model import FaultClassParams, exponential_fault_trace
from repro.schedulers.ssf_edf import SsfEdfScheduler, _edf_placement
from repro.sim.availability import CloudAvailability
from repro.sim.engine import simulate
from repro.sim.state import SimState
from repro.sim.view import SimulationView
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)


def canon(schedule):
    """Canonical, bitwise serialization of an interval schedule.

    ``Schedule``/``IntervalSet`` compare by identity, so schedule
    equality must go through the float bit patterns of every recorded
    interval (``float.hex`` round-trips exactly).
    """
    out = []
    for k in sorted(schedule.job_schedules):
        js = schedule.job_schedules[k]
        atts = []
        for a in js.attempts:
            atts.append(
                (
                    (a.resource.kind.value, a.resource.index),
                    tuple((iv.start.hex(), iv.end.hex()) for iv in a.execution),
                    tuple((iv.start.hex(), iv.end.hex()) for iv in a.uplink),
                    tuple((iv.start.hex(), iv.end.hex()) for iv in a.downlink),
                )
            )
        out.append((k, tuple(atts), None if js.completion is None else js.completion.hex()))
    return tuple(out)


def _ab_run(instance, *, faults=None):
    """Run incremental on/off; return both results."""
    kwargs = {} if faults is None else {"faults": faults}
    inc = simulate(instance, SsfEdfScheduler(incremental=True), **kwargs)
    ref = simulate(instance, SsfEdfScheduler(incremental=False), **kwargs)
    return inc, ref


class TestIncrementalBitIdentity:
    @pytest.mark.parametrize("seed,load", [(7, 0.5), (11, 1.0), (13, 1.5)])
    def test_random_instances_identical(self, seed, load):
        instance = generate_random_instance(
            RandomInstanceConfig(n_jobs=60, ccr=1.0, load=load),
            platform=paper_random_platform(),
            seed=seed,
        )
        inc, ref = _ab_run(instance)
        assert inc.completion.tobytes() == ref.completion.tobytes()
        assert canon(inc.schedule) == canon(ref.schedule)
        assert inc.n_reexecutions == ref.n_reexecutions
        # The reuse layer actually fired (otherwise this tests nothing).
        assert inc.scheduler_stats["scheduler.probe_reuses"] > 0

    def test_fault_aborts_produce_identical_traces(self):
        # Attempts aborted mid-flight (including inside a cached
        # placement's modeled windows) must invalidate the reuse cache:
        # with and without decision reuse the runs' event traces —
        # every executed interval of every attempt — are byte-identical.
        instance = generate_random_instance(
            RandomInstanceConfig(n_jobs=80, ccr=1.0, load=1.2),
            platform=paper_random_platform(),
            seed=21,
        )
        faults = exponential_fault_trace(
            n_edge=20,
            n_cloud=20,
            horizon=300.0,
            seed=5,
            edge=FaultClassParams(mtbf=60.0, mttr=4.0),
            cloud=FaultClassParams(mtbf=40.0, mttr=3.0),
            link=FaultClassParams(mtbf=50.0, mttr=2.0),
        )
        inc, ref = _ab_run(instance, faults=faults)
        assert ref.n_reexecutions > 0  # faults actually aborted attempts
        assert inc.completion.tobytes() == ref.completion.tobytes()
        assert canon(inc.schedule) == canon(ref.schedule)
        assert inc.n_events == ref.n_events
        assert inc.n_decisions == ref.n_decisions


class TestSchedulerObjectReuse:
    def test_two_runs_same_object_deterministic(self):
        # start() must wipe the ratchet, the deadline array, the search
        # hint, and the whole reuse cache — running the same scheduler
        # object twice must give byte-identical schedules.
        instance = generate_random_instance(
            RandomInstanceConfig(n_jobs=40, ccr=1.0, load=1.0),
            platform=paper_random_platform(),
            seed=3,
        )
        scheduler = SsfEdfScheduler()
        first = simulate(instance, scheduler)
        second = simulate(instance, scheduler)
        assert first.completion.tobytes() == second.completion.tobytes()
        assert canon(first.schedule) == canon(second.schedule)
        assert first.scheduler_stats == second.scheduler_stats

    def test_two_runs_different_instances_same_object(self):
        # A second run on a *different* instance must not see stale
        # kernel/cache state sized for the first.
        big = generate_random_instance(
            RandomInstanceConfig(n_jobs=50, ccr=1.0, load=1.0),
            platform=paper_random_platform(),
            seed=4,
        )
        small = generate_random_instance(
            RandomInstanceConfig(n_jobs=20, ccr=1.0, load=0.5),
            platform=paper_random_platform(),
            seed=5,
        )
        scheduler = SsfEdfScheduler()
        simulate(big, scheduler)
        reused = simulate(small, scheduler)
        fresh = simulate(small, SsfEdfScheduler())
        assert reused.completion.tobytes() == fresh.completion.tobytes()
        assert canon(reused.schedule) == canon(fresh.schedule)


class TestStayTieBreak:
    def _view(self, inst):
        return SimulationView(SimState(inst), CloudAvailability.always_available())

    def test_current_cloud_wins_exact_tie(self):
        # Two identical cloud processors; the job is already allocated
        # to cloud 0 with no progress yet, so its chain on cloud 0 ties
        # cloud 1's bitwise.  The stay-bonus must keep it on cloud 0 —
        # moving would wipe the attempt for no gain.
        platform = Platform.create([0.01], n_cloud=2)
        inst = Instance.create(platform, [Job(origin=0, work=1.0, up=2.0, dn=1.0)])
        state = SimState(inst)
        state.assign(0, cloud(0))
        view = SimulationView(state, CloudAvailability.always_available())
        placement, _, _ = _edf_placement(view, np.arange(1), np.array([100.0]))
        assert placement == [(0, cloud(0))]

    def test_partial_progress_stays_put(self):
        # Mid-uplink progress shortens the staying chain outright; the
        # placement must keep the current cloud, not restart elsewhere.
        platform = Platform.create([0.01], n_cloud=2)
        inst = Instance.create(platform, [Job(origin=0, work=1.0, up=2.0, dn=1.0)])
        state = SimState(inst)
        state.assign(0, cloud(1))
        state.rem_up[0] = 0.5
        view = SimulationView(state, CloudAvailability.always_available())
        placement, _, _ = _edf_placement(view, np.arange(1), np.array([100.0]))
        assert placement == [(0, cloud(1))]

    def test_no_gratuitous_reexecutions_on_symmetric_clouds(self):
        # Cloud-attractive jobs on a platform of identical cloud
        # processors: every rebuild re-derives the same placement, so
        # the run must finish without a single re-execution.
        platform = Platform.create([0.01, 0.01], n_cloud=4)
        jobs = [
            Job(origin=i % 2, work=1.0, up=0.2, dn=0.2, release=0.25 * i)
            for i in range(8)
        ]
        inst = Instance.create(platform, jobs)
        result = simulate(inst, SsfEdfScheduler())
        assert result.n_reexecutions == 0
