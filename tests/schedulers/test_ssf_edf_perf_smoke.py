"""Deterministic perf smoke for the SSF-EDF hot path.

Wall-clock assertions are flaky in CI; the placement kernel's *work
counters* are not — the run is fully deterministic, so the number of
binary-search probes, full placement rebuilds, probe adoptions and
cache replays on a pinned instance is a stable fingerprint of the hot
path's algorithmic cost.  The ceilings below are the values recorded
when the incremental layer landed (see BENCH_ssf_edf_hotpath.json); a
regression that re-introduces per-event rebuilds or breaks probe
adoption blows through them immediately, while future improvements only
lower the counts.
"""

from repro.schedulers.ssf_edf import SsfEdfScheduler
from repro.sim.engine import simulate
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)

#: Recorded counter values on the pinned instance (2026-08, the PR that
#: introduced the placement kernel).  Ceilings, not exact pins: lower is
#: better and allowed.
_CEILINGS = {
    "scheduler.probes": 376.0,
    "scheduler.probe_short_circuits": 63.0,
    "scheduler.rebuilds": 349.0,
    # The capacity layer must stay out of the per-event hot loop: a
    # transparent (fault-free) run serves exactly the kernel's bulk
    # rate-table reads at build time and nothing per decision.
    "scheduler.outlook_queries": 3.0,
}


def _pinned_run():
    instance = generate_random_instance(
        RandomInstanceConfig(n_jobs=200, ccr=1.0, load=1.0),
        platform=paper_random_platform(),
        seed=20210005,
    )
    return simulate(instance, SsfEdfScheduler(), record_trace=False)


class TestCounterCeilings:
    def test_counters_at_or_below_recorded_ceilings(self):
        result = _pinned_run()
        stats = result.scheduler_stats
        assert stats is not None
        for name, ceiling in _CEILINGS.items():
            assert stats[name] <= ceiling, (
                f"{name} regressed: {stats[name]} > recorded ceiling {ceiling}"
            )

    def test_every_decision_is_exactly_one_kind(self):
        # Accounting invariant: each decision with live jobs is served
        # by exactly one of a full rebuild, a probe adoption, or a
        # cached replay.
        result = _pinned_run()
        stats = result.scheduler_stats
        served = (
            stats["scheduler.rebuilds"]
            + stats["scheduler.probe_reuses"]
            + stats["scheduler.replays"]
        )
        assert served == result.n_decisions

    def test_reuse_layer_fires_on_pinned_instance(self):
        # The ceilings would be met trivially by a scheduler that does
        # no work at all; require the reuse paths to actually serve a
        # meaningful share of the decisions.
        result = _pinned_run()
        stats = result.scheduler_stats
        assert stats["scheduler.probe_reuses"] >= 200.0  # one per release
        assert stats["scheduler.replays"] > 0.0
