"""Tests for the Greedy heuristic (Section V-B)."""

import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.validation import validate_schedule
from repro.schedulers.greedy import GreedyScheduler
from repro.sim.engine import simulate


class TestPlacement:
    def test_single_job_best_resource(self):
        # Cloud is strictly faster: greedy must offload.
        platform = Platform.create([0.1], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=5.0, up=1.0, dn=1.0)])
        result = simulate(inst, GreedyScheduler())
        assert result.completion[0] == pytest.approx(7.0)
        assert result.max_stretch == pytest.approx(1.0)

    def test_single_job_edge_when_comms_expensive(self):
        platform = Platform.create([0.5], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=1.0, up=50.0, dn=50.0)])
        result = simulate(inst, GreedyScheduler())
        assert result.completion[0] == pytest.approx(2.0)

    def test_highest_stretch_job_gets_priority(self):
        # Two jobs on one edge unit, no cloud.  At t=1 both achievable
        # stretches are 1.0, but the running long job carries the tiny
        # stay-bonus, so the short newcomer has the (strictly) highest
        # achievable stretch and wins the unit — which is also the
        # max-stretch-optimal call (1.1 instead of 10).
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(
            platform,
            [Job(origin=0, work=10.0), Job(origin=0, work=1.0, release=1.0)],
        )
        result = simulate(inst, GreedyScheduler())
        assert result.completion[1] == pytest.approx(2.0)
        assert result.completion[0] == pytest.approx(11.0)
        assert result.max_stretch == pytest.approx(1.1)

    def test_spreads_jobs_across_cloud(self):
        platform = Platform.create([0.01], n_cloud=3)
        jobs = [Job(origin=0, work=1.0, up=0.0, dn=0.0) for _ in range(3)]
        inst = Instance.create(platform, jobs)
        result = simulate(inst, GreedyScheduler())
        # Zero comms: all three run in parallel on distinct clouds.
        assert max(result.completion) == pytest.approx(1.0)
        allocs = {str(result.schedule.job_schedules[i].allocation) for i in range(3)}
        assert len(allocs) == 3


class TestGuard:
    def _pingpong_instance(self):
        # One slow edge unit with contention and a cloud that is a trap:
        # moving there from a half-done edge run can never pay off.
        platform = Platform.create([0.5], n_cloud=1)
        jobs = [
            Job(origin=0, work=4.0, release=0.0, up=20.0, dn=20.0),
            Job(origin=0, work=4.0, release=0.5, up=20.0, dn=20.0),
            Job(origin=0, work=4.0, release=1.0, up=20.0, dn=20.0),
        ]
        return Instance.create(platform, jobs)

    def test_guarded_never_worse_than_unguarded_here(self):
        inst = self._pingpong_instance()
        guarded = simulate(inst, GreedyScheduler(guarded=True))
        unguarded = simulate(inst, GreedyScheduler(guarded=False))
        assert guarded.max_stretch <= unguarded.max_stretch + 1e-9

    def test_guarded_reduces_reexecutions(self):
        inst = self._pingpong_instance()
        guarded = simulate(inst, GreedyScheduler(guarded=True))
        unguarded = simulate(inst, GreedyScheduler(guarded=False))
        assert guarded.n_reexecutions <= unguarded.n_reexecutions

    def test_name_reflects_variant(self):
        assert GreedyScheduler().name == "greedy"
        assert GreedyScheduler(guarded=False).name == "greedy-unguarded"


class TestValidity:
    @pytest.mark.parametrize("guarded", [True, False])
    def test_schedules_valid(self, figure1_instance, guarded):
        result = simulate(figure1_instance, GreedyScheduler(guarded=guarded))
        assert validate_schedule(result.schedule) == []

    def test_all_stretches_at_least_one(self, figure1_instance):
        result = simulate(figure1_instance, GreedyScheduler())
        assert (result.stretches() >= 1.0 - 1e-9).all()

    def test_works_without_cloud(self):
        platform = Platform.create([1.0, 0.5], n_cloud=0)
        jobs = [Job(origin=i % 2, work=1.0 + i, release=float(i)) for i in range(4)]
        inst = Instance.create(platform, jobs)
        result = simulate(inst, GreedyScheduler())
        assert validate_schedule(result.schedule) == []
