"""Fault-epoch scoping of the replay cache: boundary edge cases.

The failure-aware replay path scopes its cache to the run's fault epoch
(:attr:`repro.sim.view.SimulationView.fault_epoch`): *any* fault-trace
boundary since the cache was established invalidates it, even a quiet
one that aborted nothing.  These tests pin the awkward boundaries —
an outage starting exactly on a decision event, back-to-back outages
whose recovery and failure coincide, and checkpoint-commit events —
and require byte-identical schedules between the incremental path and
the rebuild-everything reference on every one of them.

The hand-built traces here carry no renewal rates, so ``ssf-edf-fa``
degenerates to the plain arithmetic (the kernel stays transparent) and
replay remains *enabled* — which is exactly what makes the epoch guard
load-bearing: without it a replay could serve a placement cached before
a boundary the kernel never saw.
"""

import pytest

from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.job import Job
from repro.core.platform import Platform
from repro.faults import FaultClassParams, FaultTrace, exponential_fault_trace
from repro.schedulers.ssf_edf import SsfEdfScheduler
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.engine import simulate
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)

from tests.schedulers.test_ssf_edf_incremental import canon


def _two_edge_instance():
    """Two origins, one cloud; all jobs homed on edge 0."""
    platform = Platform.create([1.0, 1.0], n_cloud=1)
    jobs = [
        Job(origin=0, work=10.0, up=1.0, dn=1.0),
        Job(origin=0, work=8.0, up=1.0, dn=1.0),
        Job(origin=0, work=6.0, up=1.0, dn=1.0, release=5.0),
    ]
    return Instance.create(platform, jobs)


def _ab(instance, faults, *, failure_aware=True, checkpoint=None):
    """Run incremental on/off on identical inputs; return both results."""
    kwargs = {"faults": faults}
    if checkpoint is not None:
        kwargs["checkpoint"] = checkpoint
    inc = simulate(
        instance,
        SsfEdfScheduler(failure_aware=failure_aware, incremental=True),
        **kwargs,
    )
    ref = simulate(
        instance,
        SsfEdfScheduler(failure_aware=failure_aware, incremental=False),
        **kwargs,
    )
    return inc, ref


def _assert_identical(inc, ref):
    assert inc.completion.tobytes() == ref.completion.tobytes()
    assert canon(inc.schedule) == canon(ref.schedule)
    assert inc.n_events == ref.n_events
    assert inc.n_decisions == ref.n_decisions
    assert inc.n_reexecutions == ref.n_reexecutions


class TestBoundaryOnDecisionEvent:
    @pytest.mark.parametrize("failure_aware", [True, False])
    def test_outage_starting_exactly_at_a_release(self, failure_aware):
        # Edge 0 goes down at t=5.0 — the same instant job 2 is
        # released.  The fault boundary and the release decision share
        # one event batch; the epoch bump must not be lost or applied
        # to the wrong cache generation.
        faults = FaultTrace(edge_down={0: (Interval(5.0, 7.0),)})
        inc, ref = _ab(_two_edge_instance(), faults, failure_aware=failure_aware)
        _assert_identical(inc, ref)

    def test_quiet_boundary_invalidates_fa_cache(self):
        # An outage on edge 1 — which hosts nothing (every job is homed
        # on edge 0) — aborts no attempt and moves no remaining amount,
        # so only the fault epoch distinguishes "before" from "after".
        # The failure-aware path must invalidate on it rather than
        # replay across it.
        faults = FaultTrace(edge_down={1: (Interval(2.0, 3.0),)})
        inc, ref = _ab(_two_edge_instance(), faults, failure_aware=True)
        _assert_identical(inc, ref)
        assert inc.scheduler_stats["scheduler.epoch_invalidations"] >= 1.0


class TestAdjacentOutages:
    @pytest.mark.parametrize("failure_aware", [True, False])
    def test_recovery_coinciding_with_next_failure(self, failure_aware):
        # Back-to-back outages [2, 3) and [3, 4): the recovery of the
        # first and the onset of the second land on the same instant.
        # The zero-length "up" gap between them must not let a replay
        # slip through one epoch while the other is already live.
        faults = FaultTrace(
            edge_down={1: (Interval(2.0, 3.0), Interval(3.0, 4.0))},
            link_down={0: (Interval(3.0, 3.5),)},
        )
        inc, ref = _ab(_two_edge_instance(), faults, failure_aware=failure_aware)
        _assert_identical(inc, ref)

    def test_randomized_fa_run_with_rates_stays_identical(self):
        # The same guard under a generated trace *with* rates: replay is
        # disabled (discounted kernel), epochs still scope the decision
        # cache; the incremental path must stay exact regardless.
        instance = generate_random_instance(
            RandomInstanceConfig(n_jobs=50, ccr=1.0, load=1.0),
            platform=paper_random_platform(),
            seed=20210607,
        )
        faults = exponential_fault_trace(
            n_edge=instance.platform.n_edge,
            n_cloud=instance.platform.n_cloud,
            horizon=float(instance.release.max() + instance.min_time.sum()),
            seed=20210607,
            edge=FaultClassParams(mtbf=30.0, mttr=3.0),
            cloud=FaultClassParams(mtbf=30.0, mttr=3.0),
            link=FaultClassParams(mtbf=30.0, mttr=3.0),
        )
        inc, ref = _ab(instance, faults, failure_aware=True)
        _assert_identical(inc, ref)
        assert inc.scheduler_stats["scheduler.replays"] == 0.0


class TestCheckpointCommitEpochs:
    def test_commit_events_with_faults_stay_identical(self):
        # Checkpoint commits add engine events (and watermark restores
        # change what an abort costs) without being fault boundaries;
        # the incremental path disables replay outright under a policy
        # and must still be byte-identical through commit/abort
        # interleavings.
        instance = generate_random_instance(
            RandomInstanceConfig(n_jobs=40, ccr=1.0, load=1.0),
            platform=paper_random_platform(),
            seed=20210608,
        )
        faults = exponential_fault_trace(
            n_edge=instance.platform.n_edge,
            n_cloud=instance.platform.n_cloud,
            horizon=float(instance.release.max() + instance.min_time.sum()),
            seed=20210608,
            edge=FaultClassParams(mtbf=25.0, mttr=2.5),
            cloud=FaultClassParams(mtbf=25.0, mttr=2.5),
            link=FaultClassParams(mtbf=25.0, mttr=2.5),
        )
        policy = CheckpointPolicy(interval=3.0, commit_cost=0.5)
        inc, ref = _ab(instance, faults, failure_aware=True, checkpoint=policy)
        _assert_identical(inc, ref)
        # Replay is conservatively off for checkpointed runs: a restore
        # rewinds remaining amounts in a way the structural shadow does
        # not model, so exactness cannot be proven.
        assert inc.scheduler_stats["scheduler.replays"] == 0.0
