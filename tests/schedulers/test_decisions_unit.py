"""Unit-level tests of each scheduler's decide() output.

The end-to-end tests check outcomes; these check the *decisions*
directly against hand-computed priorities and placements on frozen
simulator states, catching bugs that outcome metrics can mask.
"""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.schedulers.edge_only import EdgeOnlyScheduler
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.srpt import SrptScheduler
from repro.schedulers.ssf_edf import SsfEdfScheduler
from repro.sim.availability import CloudAvailability
from repro.sim.events import release
from repro.sim.state import SimState
from repro.sim.view import SimulationView


def frozen_view(platform, jobs, now=0.0):
    inst = Instance.create(platform, jobs)
    state = SimState(inst)
    state.now = now
    view = SimulationView(state, CloudAvailability.always_available())
    events = [release(now, int(i)) for i in state.live_jobs()]
    return inst, state, view, events


class TestSrptDecisions:
    def test_order_is_by_completion_time(self):
        platform = Platform.create([1.0], n_cloud=1)
        jobs = [
            Job(origin=0, work=5.0),                      # edge 5 / cloud 7
            Job(origin=0, work=2.0, up=1.0, dn=1.0),      # edge 2 / cloud 4
            Job(origin=0, work=9.0, up=0.5, dn=0.5),      # edge 9 / cloud 10
        ]
        _, _, view, events = frozen_view(platform, jobs)
        decision = SrptScheduler().decide(view, events)
        assigned = [(a.job, a.resource) for a in decision]
        # J1 finishes first (edge, 2); then among leftovers the cloud
        # is free: J0 on cloud takes 7 > J2's... J0 cloud 7 vs J2 cloud 10.
        assert assigned[0] == (1, edge(0))
        assert assigned[1] == (0, cloud(0))
        # J2 is appended as a leftover on its origin edge.
        assert assigned[2][0] == 2

    def test_two_slots_two_jobs(self):
        platform = Platform.create([1.0, 1.0], n_cloud=0)
        jobs = [Job(origin=0, work=3.0), Job(origin=1, work=1.0)]
        _, _, view, events = frozen_view(platform, jobs)
        decision = SrptScheduler().decide(view, events)
        assert [(a.job, a.resource) for a in decision] == [(1, edge(1)), (0, edge(0))]


class TestGreedyDecisions:
    def test_max_potential_stretch_first(self):
        platform = Platform.create([1.0], n_cloud=0)
        # Same release; J0's min_time 10, J1's 1.  Estimated stretches
        # at t=0 are both 1.0 (nothing waited yet), but J1 loses the
        # stay-bonus tie only if allocated... neither is allocated, so
        # lowest-index max wins; both orders give a valid greedy; check
        # at a later time instead.
        jobs = [Job(origin=0, work=10.0), Job(origin=0, work=1.0)]
        inst, state, view, events = frozen_view(platform, jobs, now=0.0)
        state.now = 5.0  # both have been waiting 5 units
        decision = GreedyScheduler().decide(view, [])
        # J1's achievable stretch (5+1)/1 = 6 >> J0's (5+10)/10 = 1.5.
        assert decision.assignments[0].job == 1

    def test_places_on_min_stretch_resource(self):
        platform = Platform.create([0.1], n_cloud=1)
        jobs = [Job(origin=0, work=5.0, up=1.0, dn=1.0)]  # edge 50 vs cloud 7
        _, _, view, events = frozen_view(platform, jobs)
        decision = GreedyScheduler().decide(view, events)
        assert decision.assignments[0].resource == cloud(0)

    def test_guard_blocks_pointless_move(self):
        platform = Platform.create([1.0], n_cloud=1)
        jobs = [Job(origin=0, work=10.0, up=5.0, dn=5.0)]
        inst, state, view, _ = frozen_view(platform, jobs)
        # Half-done on the edge: cloud (fresh 20) can't beat finishing
        # on the edge (5 left), so the guard forbids the move even
        # though the cloud is free.
        state.assign(0, edge(0))
        state.rem_work[0] = 5.0
        decision = GreedyScheduler().decide(view, [])
        assert decision.assignments[0].resource == edge(0)


class TestFcfsDecisions:
    def test_priority_by_release(self):
        platform = Platform.create([1.0], n_cloud=0)
        jobs = [
            Job(origin=0, work=1.0, release=2.0),
            Job(origin=0, work=9.0, release=1.0),
        ]
        inst, state, view, _ = frozen_view(platform, jobs, now=3.0)
        decision = FcfsScheduler().decide(view, [])
        assert [a.job for a in decision] == [1, 0]


class TestEdgeOnlyDecisions:
    def test_all_assignments_on_origin_edges(self):
        platform = Platform.create([1.0, 0.5], n_cloud=3)
        jobs = [Job(origin=0, work=2.0), Job(origin=1, work=2.0)]
        _, _, view, events = frozen_view(platform, jobs)
        decision = EdgeOnlyScheduler().decide(view, events)
        for a in decision:
            assert a.resource.is_edge
            assert a.resource.index == jobs[a.job].origin

    def test_edf_order(self):
        platform = Platform.create([1.0], n_cloud=0)
        # J0 released earlier -> earlier deadline at equal min_time.
        jobs = [
            Job(origin=0, work=2.0, release=0.0),
            Job(origin=0, work=2.0, release=0.0),
            Job(origin=0, work=0.5, release=0.0),
        ]
        _, _, view, events = frozen_view(platform, jobs)
        decision = EdgeOnlyScheduler().decide(view, events)
        # Shortest job has the tightest deadline (r + S*m with small m).
        assert decision.assignments[0].job == 2


class TestSsfEdfDecisions:
    def test_covers_all_live_jobs(self):
        platform = Platform.create([0.5], n_cloud=2)
        jobs = [Job(origin=0, work=2.0, up=1.0, dn=1.0) for _ in range(5)]
        _, _, view, events = frozen_view(platform, jobs)
        decision = SsfEdfScheduler().decide(view, events)
        assert sorted(a.job for a in decision) == [0, 1, 2, 3, 4]

    def test_single_fast_cloud_claims_short_jobs(self):
        platform = Platform.create([0.05], n_cloud=1)
        jobs = [
            Job(origin=0, work=1.0, up=0.1, dn=0.1),
            Job(origin=0, work=1.0, up=0.1, dn=0.1),
        ]
        _, _, view, events = frozen_view(platform, jobs)
        decision = SsfEdfScheduler().decide(view, events)
        # Edge takes 20; the placement should send at least the first
        # job to the cloud.
        assert decision.assignments[0].resource == cloud(0)

    def test_deadlines_persist_between_releases(self):
        platform = Platform.create([1.0], n_cloud=0)
        jobs = [Job(origin=0, work=2.0), Job(origin=0, work=2.0)]
        _, _, view, events = frozen_view(platform, jobs)
        scheduler = SsfEdfScheduler()
        scheduler.decide(view, events)
        saved = scheduler._deadline_arr.copy()
        scheduler.decide(view, [])  # non-release event
        assert np.array_equal(scheduler._deadline_arr, saved)
