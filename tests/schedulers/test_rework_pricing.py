"""Rework-pricing placement and the failure-aware greedy variant.

Contracts: both variants are registered; without a fault model they
degenerate bit for bit to their base heuristics; greedy-fa draws its
discounted estimates from the *same* per-run ``CapacityOutlook`` pool
as ssf-edf-fa (one shared cache on the engine view, not a private
reconstruction); and rework pricing keeps the capacity layer out of the
per-event hot loop (outlook query ceiling unchanged).
"""

import hashlib

import pytest

from repro.capacity.outlook import ExpectationDiscount
from repro.core.validation import validate_schedule
from repro.faults import FaultClassParams, exponential_fault_trace
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.schedulers.ssf_edf import SsfEdfScheduler
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.engine import simulate
from repro.sim.hooks import EngineHooks
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)


def _digest(result):
    return hashlib.sha256(result.completion.tobytes()).hexdigest()


def _instance(seed=11, n_jobs=40, load=0.8):
    return generate_random_instance(
        RandomInstanceConfig(n_jobs=n_jobs, ccr=1.0, load=load), seed=seed
    )


def _renewal_faults(inst, seed, mtbf=25.0):
    params = FaultClassParams(mtbf=mtbf, mttr=0.1 * mtbf)
    return exponential_fault_trace(
        n_edge=inst.platform.n_edge,
        n_cloud=inst.platform.n_cloud,
        horizon=float(inst.release.max() + inst.min_time.sum()),
        seed=seed,
        edge=params,
        cloud=params,
        link=params,
    )


class ViewCapture(EngineHooks):
    """Grab the engine view so tests can inspect its outlook cache."""

    def __init__(self):
        self.view = None

    def on_start(self, view):
        self.view = view


class TestRegistry:
    def test_rework_variant_registered(self):
        assert "ssf-edf-fa-rework" in available_schedulers()
        sched = make_scheduler("ssf-edf-fa-rework")
        assert isinstance(sched, SsfEdfScheduler)
        assert sched.failure_aware and sched.rework_pricing
        assert sched.name == "ssf-edf-fa-rework"

    def test_greedy_fa_registered(self):
        assert "greedy-fa" in available_schedulers()
        sched = make_scheduler("greedy-fa")
        assert isinstance(sched, GreedyScheduler)
        assert sched.failure_aware
        assert sched.name == "greedy-fa"

    def test_rework_requires_failure_aware(self):
        with pytest.raises(ValueError):
            SsfEdfScheduler(rework_pricing=True)


class TestDegeneration:
    def test_rework_identical_to_fa_on_fault_free_run(self):
        inst = _instance()
        fa = simulate(inst, make_scheduler("ssf-edf-fa"))
        rework = simulate(inst, make_scheduler("ssf-edf-fa-rework"))
        assert _digest(fa) == _digest(rework)
        assert fa.n_decisions == rework.n_decisions

    def test_greedy_fa_identical_to_greedy_on_fault_free_run(self):
        inst = _instance()
        base = simulate(inst, make_scheduler("greedy"))
        fa = simulate(inst, make_scheduler("greedy-fa"))
        assert _digest(base) == _digest(fa)


class TestOutlookPoolIdentity:
    """greedy-fa and ssf-edf-fa price from the same outlook pool."""

    def _run_and_capture(self, name, inst, faults):
        capture = ViewCapture()
        simulate(inst, make_scheduler(name), faults=faults, hooks=[capture])
        return capture.view

    def test_greedy_fa_materializes_the_shared_discounted_outlook(self):
        inst = _instance(seed=7)
        greedy_view = self._run_and_capture("greedy-fa", inst, _renewal_faults(inst, 7))
        ssf_view = self._run_and_capture("ssf-edf-fa", inst, _renewal_faults(inst, 7))
        # Both runs served their estimates from the view's per-run cache
        # (capacity_outlook memoizes per discounted flag), and the
        # discounted pool was actually consulted.
        g_outlook = greedy_view.capacity_outlook(discounted=True)
        s_outlook = ssf_view.capacity_outlook(discounted=True)
        assert g_outlook is greedy_view.capacity_outlook(discounted=True)
        assert g_outlook.n_queries > 0
        assert s_outlook.n_queries > 0
        # Same fault rates -> identical discount parameters on both pools.
        assert g_outlook.discount == ExpectationDiscount.from_rates(
            _renewal_faults(inst, 7).rates
        )
        assert g_outlook.discount == s_outlook.discount

    def test_plain_greedy_never_touches_the_discounted_pool(self):
        inst = _instance(seed=7)
        view = self._run_and_capture("greedy", inst, _renewal_faults(inst, 7))
        # The discounted outlook must not even be materialized.
        assert True not in view._outlooks


class TestReworkUnderFaults:
    def test_rework_run_is_valid_and_deterministic(self):
        inst = _instance(seed=21, load=0.5)
        faults = _renewal_faults(inst, 21)
        policy = CheckpointPolicy(interval=1.0, commit_cost=0.05)
        digests = set()
        for _ in range(2):
            result = simulate(
                inst,
                make_scheduler("ssf-edf-fa-rework"),
                faults=faults,
                checkpoint=policy,
                record_trace=True,
            )
            digests.add(_digest(result))
            assert validate_schedule(result.schedule, checkpointing=True) == []
        assert len(digests) == 1

    def test_outlook_query_ceiling_holds_with_rework(self):
        # The rework scalars are attribute reads on the discount, not
        # counted queries: the capacity layer stays out of the hot loop.
        instance = generate_random_instance(
            RandomInstanceConfig(n_jobs=200, ccr=1.0, load=1.0),
            platform=paper_random_platform(),
            seed=20210005,
        )
        result = simulate(
            instance,
            SsfEdfScheduler(failure_aware=True, rework_pricing=True),
            record_trace=False,
        )
        stats = result.scheduler_stats
        assert stats is not None
        assert stats["scheduler.outlook_queries"] <= 3.0
