"""Tests for the extra baselines: FCFS, Cloud-Only, Random."""

import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.validation import validate_schedule
from repro.schedulers.cloud_only import CloudOnlyScheduler
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.random_alloc import RandomScheduler
from repro.sim.engine import simulate


class TestFcfs:
    def test_release_order_priority(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(
            platform,
            [Job(origin=0, work=10.0, release=0.0), Job(origin=0, work=1.0, release=1.0)],
        )
        result = simulate(inst, FcfsScheduler())
        # FCFS never lets the later short job preempt.
        assert result.completion[0] == pytest.approx(10.0)
        assert result.completion[1] == pytest.approx(11.0)

    def test_earliest_finish_placement(self):
        platform = Platform.create([0.1], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=8.0, up=1.0, dn=1.0)])
        result = simulate(inst, FcfsScheduler())
        assert result.completion[0] == pytest.approx(10.0)  # cloud wins

    def test_valid(self, figure1_instance):
        result = simulate(figure1_instance, FcfsScheduler())
        assert validate_schedule(result.schedule) == []


class TestFcfsFailureAware:
    """fcfs-fa: FCFS priority, discounted-outlook placement."""

    def _faulted_run_args(self, seed=20210609):
        from repro.faults.model import FaultClassParams, exponential_fault_trace
        from repro.workloads.random_uniform import (
            RandomInstanceConfig,
            generate_random_instance,
            paper_random_platform,
        )

        instance = generate_random_instance(
            RandomInstanceConfig(n_jobs=30, ccr=1.0, load=1.0),
            platform=paper_random_platform(),
            seed=seed,
        )
        faults = exponential_fault_trace(
            n_edge=instance.platform.n_edge,
            n_cloud=instance.platform.n_cloud,
            horizon=float(instance.release.max() + instance.min_time.sum()),
            seed=seed,
            edge=FaultClassParams(mtbf=30.0, mttr=3.0),
            cloud=FaultClassParams(mtbf=30.0, mttr=3.0),
            link=FaultClassParams(mtbf=30.0, mttr=3.0),
        )
        return instance, faults

    def test_registry_and_name(self):
        from repro.schedulers.registry import make_scheduler

        sched = make_scheduler("fcfs-fa")
        assert isinstance(sched, FcfsScheduler)
        assert sched.name == "fcfs-fa"
        assert sched.failure_aware
        assert make_scheduler("fcfs").name == "fcfs"

    def test_degenerates_to_plain_fcfs_without_fault_model(self):
        # No rates metadata -> the discounted outlook is transparent and
        # fcfs-fa must be bitwise plain fcfs.
        platform = Platform.create([1.0, 0.5], n_cloud=2)
        jobs = [
            Job(origin=0, work=8.0, up=1.0, dn=1.0),
            Job(origin=1, work=5.0, up=2.0, dn=1.0, release=1.0),
            Job(origin=0, work=3.0, up=0.5, dn=0.5, release=2.0),
        ]
        instance = Instance.create(platform, jobs)
        plain = simulate(instance, FcfsScheduler())
        fa = simulate(instance, FcfsScheduler(failure_aware=True))
        assert plain.completion.tobytes() == fa.completion.tobytes()
        assert plain.n_events == fa.n_events

    def test_shares_one_discounted_outlook_per_run(self, monkeypatch):
        # Pool identity: every placement estimate must be served by the
        # run's single shared discounted CapacityOutlook (plus at most
        # the engine's own transparent one) — not one per decision.
        import repro.sim.view as view_mod

        built = []
        real = view_mod.CapacityOutlook

        class Counting(real):
            def __init__(self, *args, **kwargs):
                built.append(kwargs.get("discount"))
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(view_mod, "CapacityOutlook", Counting)
        instance, faults = self._faulted_run_args()
        result = simulate(instance, FcfsScheduler(failure_aware=True), faults=faults)
        assert result.n_decisions > 2  # enough decisions to expose per-call rebuilds
        assert len(built) <= 2  # one transparent + one discounted, at most
        assert sum(1 for d in built if d is not None) == 1  # exactly one discounted

    def test_fa_differs_under_faults_but_stays_valid(self):
        instance, faults = self._faulted_run_args()
        fa = simulate(instance, FcfsScheduler(failure_aware=True), faults=faults)
        assert validate_schedule(fa.schedule) == []

    def test_plain_fcfs_unchanged_by_refactor(self, figure1_instance):
        # The scratch-buffer/discount plumbing must not perturb the
        # fault-free baseline.
        result = simulate(figure1_instance, FcfsScheduler())
        assert validate_schedule(result.schedule) == []
        assert not FcfsScheduler().failure_aware


class TestCloudOnly:
    def test_needs_cloud(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(platform, [Job(origin=0, work=1.0)])
        with pytest.raises(ModelError):
            simulate(inst, CloudOnlyScheduler())

    def test_everything_on_cloud(self, figure1_instance):
        result = simulate(figure1_instance, CloudOnlyScheduler())
        for js in result.schedule.iter_job_schedules():
            for attempt in js.attempts:
                assert attempt.resource.is_cloud
        assert validate_schedule(result.schedule) == []

    def test_beats_edge_when_comms_free(self):
        platform = Platform.create([0.01], n_cloud=2)
        jobs = [Job(origin=0, work=1.0, up=0.0, dn=0.0) for _ in range(2)]
        inst = Instance.create(platform, jobs)
        result = simulate(inst, CloudOnlyScheduler())
        assert max(result.completion) == pytest.approx(1.0)


class TestRandom:
    def test_reproducible_with_seed(self, figure1_instance):
        a = simulate(figure1_instance, RandomScheduler(seed=5))
        b = simulate(figure1_instance, RandomScheduler(seed=5))
        assert a.max_stretch == b.max_stretch
        assert a.completion.tolist() == b.completion.tolist()

    def test_different_seeds_can_differ(self, figure1_instance):
        values = {
            simulate(figure1_instance, RandomScheduler(seed=s)).max_stretch
            for s in range(8)
        }
        assert len(values) > 1

    def test_placement_sticky(self, figure1_instance):
        result = simulate(figure1_instance, RandomScheduler(seed=1))
        # Sticky placement: no re-executions ever.
        assert result.n_reexecutions == 0
        assert validate_schedule(result.schedule) == []
