"""Tests for the extra baselines: FCFS, Cloud-Only, Random."""

import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.validation import validate_schedule
from repro.schedulers.cloud_only import CloudOnlyScheduler
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.random_alloc import RandomScheduler
from repro.sim.engine import simulate


class TestFcfs:
    def test_release_order_priority(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(
            platform,
            [Job(origin=0, work=10.0, release=0.0), Job(origin=0, work=1.0, release=1.0)],
        )
        result = simulate(inst, FcfsScheduler())
        # FCFS never lets the later short job preempt.
        assert result.completion[0] == pytest.approx(10.0)
        assert result.completion[1] == pytest.approx(11.0)

    def test_earliest_finish_placement(self):
        platform = Platform.create([0.1], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=8.0, up=1.0, dn=1.0)])
        result = simulate(inst, FcfsScheduler())
        assert result.completion[0] == pytest.approx(10.0)  # cloud wins

    def test_valid(self, figure1_instance):
        result = simulate(figure1_instance, FcfsScheduler())
        assert validate_schedule(result.schedule) == []


class TestCloudOnly:
    def test_needs_cloud(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(platform, [Job(origin=0, work=1.0)])
        with pytest.raises(ModelError):
            simulate(inst, CloudOnlyScheduler())

    def test_everything_on_cloud(self, figure1_instance):
        result = simulate(figure1_instance, CloudOnlyScheduler())
        for js in result.schedule.iter_job_schedules():
            for attempt in js.attempts:
                assert attempt.resource.is_cloud
        assert validate_schedule(result.schedule) == []

    def test_beats_edge_when_comms_free(self):
        platform = Platform.create([0.01], n_cloud=2)
        jobs = [Job(origin=0, work=1.0, up=0.0, dn=0.0) for _ in range(2)]
        inst = Instance.create(platform, jobs)
        result = simulate(inst, CloudOnlyScheduler())
        assert max(result.completion) == pytest.approx(1.0)


class TestRandom:
    def test_reproducible_with_seed(self, figure1_instance):
        a = simulate(figure1_instance, RandomScheduler(seed=5))
        b = simulate(figure1_instance, RandomScheduler(seed=5))
        assert a.max_stretch == b.max_stretch
        assert a.completion.tolist() == b.completion.tolist()

    def test_different_seeds_can_differ(self, figure1_instance):
        values = {
            simulate(figure1_instance, RandomScheduler(seed=s)).max_stretch
            for s in range(8)
        }
        assert len(values) > 1

    def test_placement_sticky(self, figure1_instance):
        result = simulate(figure1_instance, RandomScheduler(seed=1))
        # Sticky placement: no re-executions ever.
        assert result.n_reexecutions == 0
        assert validate_schedule(result.schedule) == []
