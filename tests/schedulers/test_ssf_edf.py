"""Tests for the SSF-EDF heuristic (Section V-D)."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud
from repro.core.validation import validate_schedule
from repro.schedulers.ssf_edf import SsfEdfScheduler, _edf_placement
from repro.sim.availability import CloudAvailability
from repro.sim.engine import simulate
from repro.sim.state import SimState
from repro.sim.view import SimulationView


class TestConstruction:
    def test_bad_eps_rejected(self):
        with pytest.raises(ValueError):
            SsfEdfScheduler(eps=0.0)

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            SsfEdfScheduler(alpha=-1.0)

    def test_start_resets_state(self):
        # Every piece of per-run state must be wiped: the ratchet, the
        # deadline array, the search hint, and the whole reuse cache —
        # a leak would poison the next run of a reused scheduler object.
        s = SsfEdfScheduler()
        s._stretch_so_far = 5.0
        s._hint = 4.5
        s._has_deadlines = True
        s._cache_live_bytes = b"stale"
        s._cache_epoch = 99
        s._cache_placed = object()
        s._cache = object()
        s._cache_seed = object()

        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(platform, [Job(origin=0, work=1.0)])
        view = SimulationView(SimState(inst), CloudAvailability.always_available())
        s.start(view)
        assert s._stretch_so_far == 1.0
        assert s._hint is None
        assert not s._has_deadlines
        assert s._cache is None
        assert s._cache_seed is None
        assert s._cache_placed is None
        assert s._cache_live_bytes == b""
        assert s._cache_epoch == -1
        assert np.all(s._deadline_arr == 0.0)
        assert s._kernel is not None and s._kernel.instance is inst


class TestBehavior:
    def test_single_job_optimal(self):
        platform = Platform.create([0.25], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=2.0, up=1.0, dn=1.0)])
        result = simulate(inst, SsfEdfScheduler())
        assert result.max_stretch == pytest.approx(1.0, abs=1e-6)

    def test_no_release_dates_prefers_short_first(self):
        # Both at t=0 on one machine: the binary search finds the SPT
        # optimum (short job first).
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(
            platform, [Job(origin=0, work=10.0), Job(origin=0, work=1.0)]
        )
        result = simulate(inst, SsfEdfScheduler())
        assert result.completion[1] == pytest.approx(1.0)
        assert result.max_stretch == pytest.approx(1.1, rel=1e-2)

    def test_stretch_so_far_monotone(self):
        platform = Platform.create([1.0], n_cloud=0)
        jobs = [Job(origin=0, work=1.0, release=float(i)) for i in range(4)]
        inst = Instance.create(platform, jobs)
        scheduler = SsfEdfScheduler()
        estimates = []

        orig = scheduler._release_placement

        def spy(view, live):
            placed = orig(view, live)
            estimates.append(scheduler._stretch_so_far)
            return placed

        scheduler._release_placement = spy
        simulate(inst, scheduler)
        assert estimates == sorted(estimates)

    def test_paper_edf_counterexample_still_schedulable(self):
        # Section V-D example: two jobs, one cloud processor; pure EDF
        # misses d_2 = 6 but the instance is schedulable.  SSF-EDF is
        # EDF-based, so we only require a valid schedule with a finite
        # stretch, not optimality.
        platform = Platform.create([0.01], n_cloud=1)
        jobs = [
            Job(origin=0, work=1.0, up=2.0, dn=0.0),
            Job(origin=0, work=1.0, up=2.0, dn=0.0),
        ]
        inst = Instance.create(platform, jobs)
        result = simulate(inst, SsfEdfScheduler())
        assert validate_schedule(result.schedule) == []
        # Serialized uplinks: one of the two must wait 2 units.
        assert result.max_stretch <= 2.0 + 1e-6

    def test_alpha_scales_deadlines(self, figure1_instance):
        r1 = simulate(figure1_instance, SsfEdfScheduler(alpha=1.0))
        r2 = simulate(figure1_instance, SsfEdfScheduler(alpha=4.0))
        assert validate_schedule(r2.schedule) == []
        # Both valid; values may differ but both complete all jobs.
        assert np.isfinite(r1.max_stretch) and np.isfinite(r2.max_stretch)


class TestEdfPlacement:
    def _view(self, inst):
        return SimulationView(SimState(inst), CloudAvailability.always_available())

    def test_placement_covers_all_live_jobs(self):
        platform = Platform.create([0.5], n_cloud=2)
        jobs = [Job(origin=0, work=2.0, up=1.0, dn=1.0) for _ in range(4)]
        inst = Instance.create(platform, jobs)
        view = self._view(inst)
        live = np.arange(4)
        placement, completions, _ = _edf_placement(view, live, np.arange(4, dtype=float))
        assert sorted(j for j, _ in placement) == [0, 1, 2, 3]
        assert len(completions) == 4

    def test_placement_orders_by_deadline(self):
        platform = Platform.create([0.5], n_cloud=1)
        jobs = [Job(origin=0, work=2.0) for _ in range(3)]
        inst = Instance.create(platform, jobs)
        view = self._view(inst)
        deadlines = np.array([5.0, 1.0, 3.0])
        placement, _, _ = _edf_placement(view, np.arange(3), deadlines)
        assert [j for j, _ in placement] == [1, 2, 0]

    def test_placement_respects_port_reservations(self):
        # Two cloud-bound jobs from one edge unit: the second's uplink
        # must be scheduled after the first's in the estimate.
        platform = Platform.create([0.01], n_cloud=2)
        jobs = [Job(origin=0, work=1.0, up=3.0, dn=0.0) for _ in range(2)]
        inst = Instance.create(platform, jobs)
        view = self._view(inst)
        placement, completions, _ = _edf_placement(
            view, np.arange(2), np.array([1.0, 2.0])
        )
        assert completions[0] == pytest.approx(4.0)
        assert completions[1] == pytest.approx(7.0)

    def test_feasibility_flag(self):
        platform = Platform.create([1.0], n_cloud=0)
        jobs = [Job(origin=0, work=2.0), Job(origin=0, work=2.0)]
        inst = Instance.create(platform, jobs)
        view = self._view(inst)
        _, _, ok_loose = _edf_placement(view, np.arange(2), np.array([10.0, 10.0]))
        _, _, ok_tight = _edf_placement(view, np.arange(2), np.array([2.0, 2.0]))
        assert ok_loose
        assert not ok_tight


class TestValidity:
    def test_schedule_valid_and_good_on_figure1(self, figure1_instance):
        result = simulate(figure1_instance, SsfEdfScheduler())
        assert validate_schedule(result.schedule) == []
        # Known regression anchor: SSF-EDF achieves the offline optimum
        # 1.25 on the paper's example.
        assert result.max_stretch == pytest.approx(1.25, rel=1e-6)
