"""Deterministic perf smoke for the failure-aware fault path.

The fault-free twin (``test_ssf_edf_perf_smoke.py``) pins the hot-path
counters of a transparent run; this suite pins the *faulted*
failure-aware path on one seeded instance + renewal trace.  The run is
fully deterministic, so the counters are a stable fingerprint of the
fault-path algorithmic cost: a regression that re-queries the outlook
per event, re-floors every resource per boundary, or drops probe
adoption under faults blows through the ceilings immediately, while
future improvements only lower the counts.
"""

from repro.faults.model import FaultClassParams, exponential_fault_trace
from repro.schedulers.ssf_edf import SsfEdfScheduler
from repro.sim.engine import simulate
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)

#: Recorded counter values on the pinned faulted instance (2026-08, the
#: fault-path overhaul PR; see BENCH_fault_path.json).  Ceilings, not
#: exact pins: lower is better and allowed.
_CEILINGS = {
    "scheduler.probes": 849.0,
    "scheduler.probe_short_circuits": 187.0,
    "scheduler.rebuilds": 866.0,
    # The incremental capacity layer: outlook reads happen on deltas,
    # not per event — a regression to per-event wholesale queries
    # multiplies this by ~5x.
    "scheduler.outlook_queries": 1844.0,
    "scheduler.outlook_delta_updates": 781.0,
    "scheduler.partial_rebuilds": 781.0,
}


def _pinned_run():
    instance = generate_random_instance(
        RandomInstanceConfig(n_jobs=200, ccr=1.0, load=1.0),
        platform=paper_random_platform(),
        seed=20210005,
    )
    faults = exponential_fault_trace(
        n_edge=instance.platform.n_edge,
        n_cloud=instance.platform.n_cloud,
        horizon=float(instance.release.max() + instance.min_time.sum()),
        seed=20210005,
        edge=FaultClassParams(mtbf=100.0, mttr=10.0),
        cloud=FaultClassParams(mtbf=100.0, mttr=10.0),
        link=FaultClassParams(mtbf=100.0, mttr=10.0),
    )
    return simulate(
        instance,
        SsfEdfScheduler(failure_aware=True),
        faults=faults,
        record_trace=False,
    )


class TestFaultPathCounterCeilings:
    def test_counters_at_or_below_recorded_ceilings(self):
        result = _pinned_run()
        stats = result.scheduler_stats
        assert stats is not None
        for name, ceiling in _CEILINGS.items():
            assert stats[name] <= ceiling, (
                f"{name} regressed: {stats[name]} > recorded ceiling {ceiling}"
            )

    def test_every_decision_is_exactly_one_kind(self):
        # Accounting invariant, unchanged under faults: each decision
        # with live jobs is served by exactly one of a full rebuild, a
        # probe adoption, or a cached replay.
        result = _pinned_run()
        stats = result.scheduler_stats
        served = (
            stats["scheduler.rebuilds"]
            + stats["scheduler.probe_reuses"]
            + stats["scheduler.replays"]
        )
        assert served == result.n_decisions

    def test_reuse_and_delta_layers_fire(self):
        # Ceilings alone would be met by a scheduler doing no work at
        # all; require the incremental layers to actually serve the run.
        result = _pinned_run()
        stats = result.scheduler_stats
        assert stats["scheduler.probe_reuses"] >= 200.0  # one per release
        assert stats["scheduler.outlook_delta_updates"] > 0.0
        assert stats["scheduler.partial_rebuilds"] > 0.0
        # Replay is off for the discounted kernel (exactness cannot be
        # proven there) — the decision mix must reflect that, not a
        # silently broken replay path.
        assert stats["scheduler.replays"] == 0.0
