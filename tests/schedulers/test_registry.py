"""Tests for the scheduler registry."""

import pytest

from repro.core.errors import ModelError
from repro.schedulers import (
    PAPER_SCHEDULERS,
    BaseScheduler,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)
from repro.schedulers.registry import _REGISTRY


class TestLookup:
    def test_paper_schedulers_all_registered(self):
        for name in PAPER_SCHEDULERS:
            assert name in available_schedulers()

    def test_make_returns_fresh_instances(self):
        a = make_scheduler("srpt")
        b = make_scheduler("srpt")
        assert a is not b

    def test_names_match(self):
        for name in available_schedulers():
            scheduler = make_scheduler(name)
            assert scheduler.name == name

    def test_unknown_name(self):
        with pytest.raises(ModelError, match="unknown scheduler"):
            make_scheduler("does-not-exist")

    def test_kwargs_forwarded(self):
        s = make_scheduler("ssf-edf", eps=0.5, alpha=2.0)
        assert s.eps == 0.5
        assert s.alpha == 2.0


class TestRegistration:
    def test_register_and_use(self):
        class Custom(BaseScheduler):
            name = "custom-test"

            def decide(self, view, events):  # pragma: no cover - unused
                raise NotImplementedError

        register_scheduler("custom-test", Custom)
        try:
            assert isinstance(make_scheduler("custom-test"), Custom)
        finally:
            _REGISTRY.pop("custom-test", None)

    def test_duplicate_rejected(self):
        with pytest.raises(ModelError, match="already registered"):
            register_scheduler("srpt", lambda: None)

    def test_overwrite_allowed_explicitly(self):
        original = _REGISTRY["srpt"]
        try:
            register_scheduler("srpt", original, overwrite=True)
        finally:
            _REGISTRY["srpt"] = original
