"""Tests for the shared scheduler helpers (repro.schedulers.base)."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.schedulers.base import (
    ResourceSlots,
    append_leftovers,
    has_release,
    resource_from_column,
)
from repro.sim.availability import CloudAvailability
from repro.sim.decision import Decision
from repro.sim.events import compute_done, release
from repro.sim.state import SimState
from repro.sim.view import SimulationView


@pytest.fixture
def view():
    platform = Platform.create([0.5, 0.25], n_cloud=2)
    inst = Instance.create(
        platform,
        [Job(origin=0, work=1.0), Job(origin=1, work=2.0, up=1.0, dn=1.0)],
    )
    state = SimState(inst)
    return SimulationView(state, CloudAvailability.always_available()), state


class TestResourceSlots:
    def test_initially_all_free(self, view):
        v, _ = view
        slots = ResourceSlots(v)
        assert slots.any_free()
        assert slots.edge_free.all()
        assert slots.cloud_free.all()
        assert slots.free_clouds().tolist() == [0, 1]

    def test_claiming(self, view):
        v, _ = view
        slots = ResourceSlots(v)
        slots.claim(edge(0))
        slots.claim(cloud(1))
        assert not slots.edge_free[0]
        assert slots.edge_free[1]
        assert slots.free_clouds().tolist() == [0]

    def test_all_claimed(self, view):
        v, _ = view
        slots = ResourceSlots(v)
        for r in (edge(0), edge(1), cloud(0), cloud(1)):
            slots.claim(r)
        assert not slots.any_free()


class TestAppendLeftovers:
    def test_unstarted_jobs_parked_on_origin(self, view):
        v, _ = view
        d = Decision()
        append_leftovers(d, v, [])
        assert [(a.job, str(a.resource)) for a in d] == [
            (0, "edge[0]"),
            (1, "edge[1]"),
        ]

    def test_started_jobs_keep_allocation(self, view):
        v, state = view
        state.assign(1, cloud(0))
        d = Decision()
        append_leftovers(d, v, [])
        assert [(a.job, str(a.resource)) for a in d] == [
            (0, "edge[0]"),
            (1, "cloud[0]"),
        ]

    def test_assigned_jobs_skipped(self, view):
        v, _ = view
        d = Decision()
        d.add(0, edge(0))
        append_leftovers(d, v, [0])
        assert [a.job for a in d] == [0, 1]

    def test_done_jobs_excluded(self, view):
        v, state = view
        state.finish(0, 1.0)
        d = Decision()
        append_leftovers(d, v, [])
        assert [a.job for a in d] == [1]


class TestSmallHelpers:
    def test_has_release(self):
        assert has_release([compute_done(1.0, 0), release(1.0, 1)])
        assert not has_release([compute_done(1.0, 0)])
        assert not has_release([])

    def test_resource_from_column(self, view):
        v, _ = view
        assert resource_from_column(v, 0, 0) == edge(0)
        assert resource_from_column(v, 1, 0) == edge(1)
        assert resource_from_column(v, 0, 1) == cloud(0)
        assert resource_from_column(v, 0, 2) == cloud(1)
