"""Tests for the Edge-Only baseline (Section V-A)."""

import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.validation import validate_schedule
from repro.offline.bender import optimal_max_stretch_single_machine
from repro.schedulers.edge_only import EdgeOnlyScheduler
from repro.sim.engine import simulate


class TestConstruction:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            EdgeOnlyScheduler(eps=-1.0)
        with pytest.raises(ValueError):
            EdgeOnlyScheduler(alpha=0.0)


class TestCloudNeverUsed:
    def test_all_jobs_on_edge(self, figure1_instance):
        result = simulate(figure1_instance, EdgeOnlyScheduler())
        for js in result.schedule.iter_job_schedules():
            for attempt in js.attempts:
                assert attempt.resource.is_edge

    def test_valid(self, figure1_instance):
        result = simulate(figure1_instance, EdgeOnlyScheduler())
        assert validate_schedule(result.schedule) == []


class TestSingleUnitOptimality:
    def test_matches_bender_optimum_without_cloud(self):
        # With one edge unit and no cloud, Edge-Only is exactly the
        # stretch-so-far EDF of Bender et al.; on instances where all
        # jobs are known at their release (offline = online here since
        # releases are 0), it must achieve the offline optimum.
        platform = Platform.create([1.0], n_cloud=0)
        works = [3.0, 1.0, 2.0]
        inst = Instance.create(platform, [Job(origin=0, work=w) for w in works])
        result = simulate(inst, EdgeOnlyScheduler(eps=1e-6))
        opt = optimal_max_stretch_single_machine(works, [0.0, 0.0, 0.0])
        assert result.max_stretch == pytest.approx(opt.stretch, rel=1e-4)

    def test_cloud_aware_denominator(self):
        # A job that *would* be much faster on the cloud gets a tighter
        # deadline; Edge-Only still runs it locally, so its stretch is
        # computed against the cloud time and exceeds 1.
        platform = Platform.create([0.1], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=5.0, up=1.0, dn=1.0)])
        result = simulate(inst, EdgeOnlyScheduler())
        # Edge time 50 vs min_time 7.
        assert result.max_stretch == pytest.approx(50.0 / 7.0)


class TestIndependentUnits:
    def test_units_do_not_interfere(self):
        platform = Platform.create([1.0, 1.0], n_cloud=0)
        jobs = [
            Job(origin=0, work=2.0),
            Job(origin=1, work=3.0),
        ]
        inst = Instance.create(platform, jobs)
        result = simulate(inst, EdgeOnlyScheduler())
        assert result.completion.tolist() == pytest.approx([2.0, 3.0])

    def test_edf_order_within_unit(self):
        # Same unit, staggered releases: the late short job should
        # preempt the long one (its deadline is much earlier).
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(
            platform,
            [Job(origin=0, work=20.0), Job(origin=0, work=1.0, release=2.0)],
        )
        result = simulate(inst, EdgeOnlyScheduler())
        assert result.completion[1] < result.completion[0]
        assert result.completion[1] == pytest.approx(3.0)


class TestStretchSoFarMonotone:
    def test_estimates_never_decrease(self):
        platform = Platform.create([1.0], n_cloud=0)
        jobs = [Job(origin=0, work=2.0, release=float(2 * i)) for i in range(4)]
        inst = Instance.create(platform, jobs)
        scheduler = EdgeOnlyScheduler()
        history = []

        orig = scheduler._update_unit

        def spy(view, live, j):
            orig(view, live, j)
            history.append(scheduler._stretch_so_far[j])

        scheduler._update_unit = spy
        simulate(inst, scheduler)
        assert history == sorted(history)
