"""The failure-aware SSF-EDF variant (ssf-edf-fa).

Three contracts: without a fault model the variant degenerates to plain
ssf-edf bit for bit; with one, its placements route around
currently-down resources (expected-recovery floors); and both the
registry wiring and the telemetry counter are live.
"""

import hashlib

import pytest

from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.validation import validate_schedule
from repro.faults import FaultClassParams, FaultTrace, exponential_fault_trace
from repro.faults.trace import FaultRates, RenewalRates
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.schedulers.ssf_edf import SsfEdfScheduler
from repro.sim.engine import simulate
from repro.workloads.random_uniform import RandomInstanceConfig, generate_random_instance


def _digest(result):
    return hashlib.sha256(result.completion.tobytes()).hexdigest()


def _renewal_faults(inst, seed, mtbf, mttr):
    params = FaultClassParams(mtbf=mtbf, mttr=mttr)
    return exponential_fault_trace(
        n_edge=inst.platform.n_edge,
        n_cloud=inst.platform.n_cloud,
        horizon=float(inst.release.max() + inst.min_time.sum()),
        seed=seed,
        edge=params,
        cloud=params,
        link=params,
    )


class TestRegistry:
    def test_registered_and_named(self):
        assert "ssf-edf-fa" in available_schedulers()
        sched = make_scheduler("ssf-edf-fa")
        assert isinstance(sched, SsfEdfScheduler)
        assert sched.failure_aware
        assert sched.name == "ssf-edf-fa"
        assert make_scheduler("ssf-edf").name == "ssf-edf"


class TestDegeneratesWithoutModel:
    def test_identical_to_plain_on_fault_free_run(self):
        inst = generate_random_instance(
            RandomInstanceConfig(n_jobs=40, ccr=1.0, load=0.8), seed=11
        )
        base = simulate(inst, make_scheduler("ssf-edf"))
        fa = simulate(inst, make_scheduler("ssf-edf-fa"))
        assert _digest(base) == _digest(fa)

    def test_identical_on_hand_built_trace_without_rates(self):
        # A trace with no rates metadata gives the discounted outlook
        # nothing to discount: schedules stay bitwise those of ssf-edf.
        inst = generate_random_instance(
            RandomInstanceConfig(n_jobs=30, ccr=1.0, load=1.0), seed=3
        )
        faults = FaultTrace(
            edge_down={0: (Interval(5.0, 8.0),)},
            cloud_down={1: (Interval(2.0, 6.0),)},
        )
        assert faults.rates is None
        base = simulate(inst, make_scheduler("ssf-edf"), faults=faults)
        fa = simulate(inst, make_scheduler("ssf-edf-fa"), faults=faults)
        assert _digest(base) == _digest(fa)


class TestFloorsRouteAroundDownResources:
    def _scenario(self):
        # Slow edge, two equal clouds; cloud 0 is down for a long repair
        # right when the only job arrives.  Fault-oblivious EDF ties the
        # clouds and picks index 0 (argmin's first minimum) — the job
        # then sits blocked until the repair.  The failure-aware floors
        # push cloud 0's timeline to now + E[repair], so cloud 1 wins.
        platform = Platform.create([0.01], cloud_speeds=[1.0, 1.0])
        inst = Instance.create(
            platform, [Job(origin=0, work=10.0, up=0.1, dn=0.1)]
        )
        faults = FaultTrace(
            cloud_down={0: (Interval(0.0, 50.0),)},
            rates=FaultRates(cloud=RenewalRates(100.0, 50.0)),
        )
        return inst, faults

    def test_oblivious_waits_but_aware_moves(self):
        inst, faults = self._scenario()
        base = simulate(inst, make_scheduler("ssf-edf"), faults=faults)
        fa = simulate(inst, make_scheduler("ssf-edf-fa"), faults=faults)
        assert not validate_schedule(base.schedule)
        assert not validate_schedule(fa.schedule)
        # Oblivious: blocked on cloud 0 until t=50, then 10.2 of service.
        assert base.completion[0] == pytest.approx(60.2)
        # Aware: straight onto cloud 1.
        assert fa.completion[0] == pytest.approx(10.2)
        assert fa.max_stretch < base.max_stretch

    def test_renewal_trace_keeps_schedules_valid(self):
        inst = generate_random_instance(
            RandomInstanceConfig(n_jobs=40, ccr=1.0, load=1.0), seed=9
        )
        faults = _renewal_faults(inst, seed=21, mtbf=30.0, mttr=3.0)
        fa = simulate(inst, make_scheduler("ssf-edf-fa"), faults=faults)
        assert not validate_schedule(fa.schedule)
        assert (fa.completion > 0).all()


class TestTelemetryAndReuse:
    def test_outlook_queries_counter_exported(self):
        inst = generate_random_instance(
            RandomInstanceConfig(n_jobs=20, ccr=1.0, load=0.5), seed=2
        )
        faults = _renewal_faults(inst, seed=4, mtbf=40.0, mttr=4.0)
        sched = make_scheduler("ssf-edf-fa")
        simulate(inst, sched, faults=faults)
        counters = sched.telemetry_counters()
        assert counters["scheduler.outlook_queries"] > 0
        plain = make_scheduler("ssf-edf")
        simulate(inst, plain, faults=faults)
        assert plain.telemetry_counters()["scheduler.outlook_queries"] > 0

    def test_replay_disabled_but_probe_adoption_kept(self):
        inst = generate_random_instance(
            RandomInstanceConfig(n_jobs=40, ccr=1.0, load=1.0), seed=9
        )
        faults = _renewal_faults(inst, seed=21, mtbf=30.0, mttr=3.0)
        sched = make_scheduler("ssf-edf-fa")
        simulate(inst, sched, faults=faults)
        counters = sched.telemetry_counters()
        assert counters["scheduler.replays"] == 0
        assert counters["scheduler.probe_reuses"] > 0
