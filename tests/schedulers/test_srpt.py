"""Tests for the SRPT heuristic (Section V-C)."""

import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.validation import validate_schedule
from repro.schedulers.srpt import SrptScheduler
from repro.sim.engine import simulate


class TestOrdering:
    def test_shortest_job_first_on_one_machine(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(
            platform, [Job(origin=0, work=10.0), Job(origin=0, work=1.0)]
        )
        result = simulate(inst, SrptScheduler())
        assert result.completion[1] == pytest.approx(1.0)
        assert result.completion[0] == pytest.approx(11.0)

    def test_short_release_preempts_long(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(
            platform, [Job(origin=0, work=10.0), Job(origin=0, work=1.0, release=3.0)]
        )
        result = simulate(inst, SrptScheduler())
        # At t=3, J0 has 7 remaining > J1's 1: preempt.
        assert result.completion[1] == pytest.approx(4.0)
        assert result.completion[0] == pytest.approx(11.0)

    def test_remaining_time_not_total_time(self):
        platform = Platform.create([1.0], n_cloud=0)
        # J0 is long but nearly done when J1 arrives.
        inst = Instance.create(
            platform, [Job(origin=0, work=10.0), Job(origin=0, work=2.0, release=9.0)]
        )
        result = simulate(inst, SrptScheduler())
        # At t=9 J0 has 1 remaining < 2: J0 finishes first.
        assert result.completion[0] == pytest.approx(10.0)
        assert result.completion[1] == pytest.approx(12.0)

    def test_picks_fastest_resource(self):
        platform = Platform.create([0.1], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=8.0, up=1.0, dn=1.0)])
        result = simulate(inst, SrptScheduler())
        assert result.completion[0] == pytest.approx(10.0)  # cloud: 1+8+1

    def test_parallelizes_across_resources(self):
        platform = Platform.create([1.0], n_cloud=1)
        inst = Instance.create(
            platform,
            [Job(origin=0, work=3.0, up=0.0, dn=0.0), Job(origin=0, work=3.0, up=0.0, dn=0.0)],
        )
        result = simulate(inst, SrptScheduler())
        assert max(result.completion) == pytest.approx(3.0)


class TestReexecution:
    def test_restart_on_faster_resource(self):
        # J0 computes on the slow edge; when the (initially busy) cloud
        # frees up, restarting from scratch still finishes earlier.
        platform = Platform.create([0.05], n_cloud=1)
        inst = Instance.create(
            platform,
            [
                Job(origin=0, work=1.0, up=0.5, dn=0.5),   # grabs the cloud first
                Job(origin=0, work=5.0, up=1.0, dn=1.0),   # starts on edge (100 time units)
            ],
        )
        result = simulate(inst, SrptScheduler())
        # After J0 completes (t=2), J1 restarts on the cloud rather than
        # grinding out the edge execution.
        assert result.n_reexecutions >= 1
        assert result.completion[1] < 20.0
        assert validate_schedule(result.schedule) == []


class TestNoRestartVariant:
    def test_name(self):
        assert SrptScheduler(allow_restart=False).name == "srpt-norestart"
        assert SrptScheduler().name == "srpt"

    def test_never_reexecutes(self):
        platform = Platform.create([0.05], n_cloud=1)
        jobs = [
            Job(origin=0, work=1.0, up=0.5, dn=0.5),
            Job(origin=0, work=5.0, up=1.0, dn=1.0),
        ]
        inst = Instance.create(platform, jobs)
        result = simulate(inst, SrptScheduler(allow_restart=False))
        assert result.n_reexecutions == 0
        assert validate_schedule(result.schedule) == []

    def test_restart_helps_on_restart_friendly_instance(self):
        # Same instance as TestReexecution: the restarting variant must
        # finish the long job no later than the pinned one.
        platform = Platform.create([0.05], n_cloud=1)
        jobs = [
            Job(origin=0, work=1.0, up=0.5, dn=0.5),
            Job(origin=0, work=5.0, up=1.0, dn=1.0),
        ]
        inst = Instance.create(platform, jobs)
        with_restart = simulate(inst, SrptScheduler())
        without = simulate(inst, SrptScheduler(allow_restart=False))
        assert with_restart.completion[1] <= without.completion[1] + 1e-9

    def test_fresh_jobs_still_free_to_choose(self):
        # Pinning only applies to *started* jobs.
        platform = Platform.create([0.1], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=8.0, up=1.0, dn=1.0)])
        result = simulate(inst, SrptScheduler(allow_restart=False))
        assert result.completion[0] == pytest.approx(10.0)  # picked the cloud


class TestValidity:
    def test_schedules_valid(self, figure1_instance):
        result = simulate(figure1_instance, SrptScheduler())
        assert validate_schedule(result.schedule) == []

    def test_stretches_at_least_one(self, figure1_instance):
        result = simulate(figure1_instance, SrptScheduler())
        assert (result.stretches() >= 1.0 - 1e-9).all()


class TestFailureAware:
    """srpt-fa: SRPT on the run's shared discounted capacity outlook."""

    def _faulted_run_args(self, seed=20210609):
        from repro.faults.model import FaultClassParams, exponential_fault_trace
        from repro.workloads.random_uniform import (
            RandomInstanceConfig,
            generate_random_instance,
            paper_random_platform,
        )

        instance = generate_random_instance(
            RandomInstanceConfig(n_jobs=30, ccr=1.0, load=1.0),
            platform=paper_random_platform(),
            seed=seed,
        )
        faults = exponential_fault_trace(
            n_edge=instance.platform.n_edge,
            n_cloud=instance.platform.n_cloud,
            horizon=float(instance.release.max() + instance.min_time.sum()),
            seed=seed,
            edge=FaultClassParams(mtbf=30.0, mttr=3.0),
            cloud=FaultClassParams(mtbf=30.0, mttr=3.0),
            link=FaultClassParams(mtbf=30.0, mttr=3.0),
        )
        return instance, faults

    def test_registry_and_name(self):
        from repro.schedulers.registry import make_scheduler

        sched = make_scheduler("srpt-fa")
        assert isinstance(sched, SrptScheduler)
        assert sched.name == "srpt-fa"
        assert sched.failure_aware

    def test_degenerates_to_plain_srpt_without_fault_model(self):
        # No rates metadata -> the discounted outlook is the transparent
        # one and srpt-fa must be bitwise plain srpt.
        platform = Platform.create([1.0, 0.5], n_cloud=2)
        jobs = [
            Job(origin=0, work=8.0, up=1.0, dn=1.0),
            Job(origin=1, work=5.0, up=2.0, dn=1.0, release=1.0),
            Job(origin=0, work=3.0, up=0.5, dn=0.5, release=2.0),
        ]
        instance = Instance.create(platform, jobs)
        plain = simulate(instance, SrptScheduler())
        fa = simulate(instance, SrptScheduler(failure_aware=True))
        assert plain.completion.tobytes() == fa.completion.tobytes()
        assert plain.n_events == fa.n_events

    def test_shares_one_discounted_outlook_per_run(self, monkeypatch):
        # Pool identity: every estimate of every decision must be served
        # by the run's single shared discounted CapacityOutlook (plus at
        # most the engine's own transparent one) — not one per decision.
        import repro.sim.view as view_mod

        built = []
        real = view_mod.CapacityOutlook

        class Counting(real):
            def __init__(self, *args, **kwargs):
                built.append(kwargs.get("discount"))
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(view_mod, "CapacityOutlook", Counting)
        instance, faults = self._faulted_run_args()
        result = simulate(instance, SrptScheduler(failure_aware=True), faults=faults)
        assert result.n_decisions > 2  # enough decisions to expose per-call rebuilds
        assert len(built) <= 2  # one transparent + one discounted, at most
        assert sum(1 for d in built if d is not None) == 1  # exactly one discounted

    def test_fa_differs_under_faults_but_stays_valid(self):
        instance, faults = self._faulted_run_args()
        fa = simulate(instance, SrptScheduler(failure_aware=True), faults=faults)
        assert validate_schedule(fa.schedule) == []
