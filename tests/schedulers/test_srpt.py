"""Tests for the SRPT heuristic (Section V-C)."""

import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.validation import validate_schedule
from repro.schedulers.srpt import SrptScheduler
from repro.sim.engine import simulate


class TestOrdering:
    def test_shortest_job_first_on_one_machine(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(
            platform, [Job(origin=0, work=10.0), Job(origin=0, work=1.0)]
        )
        result = simulate(inst, SrptScheduler())
        assert result.completion[1] == pytest.approx(1.0)
        assert result.completion[0] == pytest.approx(11.0)

    def test_short_release_preempts_long(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(
            platform, [Job(origin=0, work=10.0), Job(origin=0, work=1.0, release=3.0)]
        )
        result = simulate(inst, SrptScheduler())
        # At t=3, J0 has 7 remaining > J1's 1: preempt.
        assert result.completion[1] == pytest.approx(4.0)
        assert result.completion[0] == pytest.approx(11.0)

    def test_remaining_time_not_total_time(self):
        platform = Platform.create([1.0], n_cloud=0)
        # J0 is long but nearly done when J1 arrives.
        inst = Instance.create(
            platform, [Job(origin=0, work=10.0), Job(origin=0, work=2.0, release=9.0)]
        )
        result = simulate(inst, SrptScheduler())
        # At t=9 J0 has 1 remaining < 2: J0 finishes first.
        assert result.completion[0] == pytest.approx(10.0)
        assert result.completion[1] == pytest.approx(12.0)

    def test_picks_fastest_resource(self):
        platform = Platform.create([0.1], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=8.0, up=1.0, dn=1.0)])
        result = simulate(inst, SrptScheduler())
        assert result.completion[0] == pytest.approx(10.0)  # cloud: 1+8+1

    def test_parallelizes_across_resources(self):
        platform = Platform.create([1.0], n_cloud=1)
        inst = Instance.create(
            platform,
            [Job(origin=0, work=3.0, up=0.0, dn=0.0), Job(origin=0, work=3.0, up=0.0, dn=0.0)],
        )
        result = simulate(inst, SrptScheduler())
        assert max(result.completion) == pytest.approx(3.0)


class TestReexecution:
    def test_restart_on_faster_resource(self):
        # J0 computes on the slow edge; when the (initially busy) cloud
        # frees up, restarting from scratch still finishes earlier.
        platform = Platform.create([0.05], n_cloud=1)
        inst = Instance.create(
            platform,
            [
                Job(origin=0, work=1.0, up=0.5, dn=0.5),   # grabs the cloud first
                Job(origin=0, work=5.0, up=1.0, dn=1.0),   # starts on edge (100 time units)
            ],
        )
        result = simulate(inst, SrptScheduler())
        # After J0 completes (t=2), J1 restarts on the cloud rather than
        # grinding out the edge execution.
        assert result.n_reexecutions >= 1
        assert result.completion[1] < 20.0
        assert validate_schedule(result.schedule) == []


class TestNoRestartVariant:
    def test_name(self):
        assert SrptScheduler(allow_restart=False).name == "srpt-norestart"
        assert SrptScheduler().name == "srpt"

    def test_never_reexecutes(self):
        platform = Platform.create([0.05], n_cloud=1)
        jobs = [
            Job(origin=0, work=1.0, up=0.5, dn=0.5),
            Job(origin=0, work=5.0, up=1.0, dn=1.0),
        ]
        inst = Instance.create(platform, jobs)
        result = simulate(inst, SrptScheduler(allow_restart=False))
        assert result.n_reexecutions == 0
        assert validate_schedule(result.schedule) == []

    def test_restart_helps_on_restart_friendly_instance(self):
        # Same instance as TestReexecution: the restarting variant must
        # finish the long job no later than the pinned one.
        platform = Platform.create([0.05], n_cloud=1)
        jobs = [
            Job(origin=0, work=1.0, up=0.5, dn=0.5),
            Job(origin=0, work=5.0, up=1.0, dn=1.0),
        ]
        inst = Instance.create(platform, jobs)
        with_restart = simulate(inst, SrptScheduler())
        without = simulate(inst, SrptScheduler(allow_restart=False))
        assert with_restart.completion[1] <= without.completion[1] + 1e-9

    def test_fresh_jobs_still_free_to_choose(self):
        # Pinning only applies to *started* jobs.
        platform = Platform.create([0.1], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=8.0, up=1.0, dn=1.0)])
        result = simulate(inst, SrptScheduler(allow_restart=False))
        assert result.completion[0] == pytest.approx(10.0)  # picked the cloud


class TestValidity:
    def test_schedules_valid(self, figure1_instance):
        result = simulate(figure1_instance, SrptScheduler())
        assert validate_schedule(result.schedule) == []

    def test_stretches_at_least_one(self, figure1_instance):
        result = simulate(figure1_instance, SrptScheduler())
        assert (result.stretches() >= 1.0 - 1e-9).all()
