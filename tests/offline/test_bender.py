"""Tests for the offline single-machine optimum (Bender et al.)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ModelError
from repro.offline.bender import optimal_max_stretch_single_machine
from repro.offline.spt import spt_max_stretch

works_lists = st.lists(
    st.floats(min_value=0.2, max_value=20.0, allow_nan=False), min_size=1, max_size=6
)


class TestKnownValues:
    def test_single_job(self):
        opt = optimal_max_stretch_single_machine([5.0], [0.0])
        assert opt.stretch == pytest.approx(1.0, abs=1e-5)

    def test_two_equal_release(self):
        opt = optimal_max_stretch_single_machine([1.0, 10.0], [0.0, 0.0])
        assert opt.stretch == pytest.approx(1.1, rel=1e-4)

    def test_disjoint_releases_are_free(self):
        opt = optimal_max_stretch_single_machine([1.0, 1.0], [0.0, 10.0])
        assert opt.stretch == pytest.approx(1.0, abs=1e-5)

    def test_custom_min_times(self):
        # The edge-cloud adaptation: denominator smaller than the edge
        # time makes the optimum exceed 1 even for a lone job.
        opt = optimal_max_stretch_single_machine(
            [4.0], [0.0], speed=0.5, min_times=[2.0]
        )
        assert opt.stretch == pytest.approx(4.0, rel=1e-4)

    def test_speed(self):
        # Each job takes 2 time units at speed 0.5; completions 2 and 4
        # against min_times of 2 -> stretches 1 and 2.
        opt = optimal_max_stretch_single_machine([1.0, 1.0], [0.0, 0.0], speed=0.5)
        assert opt.stretch == pytest.approx(2.0, rel=1e-4)

    def test_empty(self):
        opt = optimal_max_stretch_single_machine([], [])
        assert opt.stretch == 1.0

    def test_bad_min_times(self):
        with pytest.raises(ModelError):
            optimal_max_stretch_single_machine([1.0], [0.0], min_times=[1.0, 2.0])
        with pytest.raises(ModelError):
            optimal_max_stretch_single_machine([1.0], [0.0], min_times=[0.0])


class TestOptimality:
    @given(works=works_lists)
    @settings(deadline=None)
    def test_equals_spt_when_no_releases(self, works):
        """With all releases 0, the optimum equals the SPT value (Lemma 2)."""
        opt = optimal_max_stretch_single_machine(works, [0.0] * len(works), eps=1e-7)
        assert opt.stretch == pytest.approx(spt_max_stretch(works), rel=1e-4)

    @given(works=works_lists, data=st.data())
    @settings(deadline=None, max_examples=40)
    def test_lower_bounds_all_nonpreemptive_orders(self, works, data):
        """The preemptive optimum is <= every non-preemptive order."""
        n = len(works)
        releases = [
            data.draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
            for _ in range(n)
        ]
        opt = optimal_max_stretch_single_machine(works, releases, eps=1e-7)
        best_order = np.inf
        for perm in itertools.permutations(range(min(n, 5))):
            perm = list(perm) + list(range(5, n))
            t = 0.0
            worst = 1.0
            for i in perm:
                t = max(t, releases[i]) + works[i]
                worst = max(worst, (t - releases[i]) / works[i])
            best_order = min(best_order, worst)
        assert opt.stretch <= best_order * (1 + 1e-4)

    @given(works=works_lists)
    @settings(deadline=None)
    def test_completions_meet_reported_deadlines(self, works):
        releases = [0.0] * len(works)
        opt = optimal_max_stretch_single_machine(works, releases, eps=1e-7)
        assert (opt.completion <= opt.deadlines + 1e-6 * np.maximum(1, opt.deadlines)).all()

    @given(works=works_lists)
    @settings(deadline=None)
    def test_stretch_at_least_one(self, works):
        opt = optimal_max_stretch_single_machine(works, [0.0] * len(works))
        assert opt.stretch >= 1.0 - 1e-9
