"""Tests for the fixed-policy list scheduler."""

import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import cloud, edge
from repro.offline.list_scheduler import FixedPolicyScheduler
from repro.sim.engine import simulate


@pytest.fixture
def instance() -> Instance:
    platform = Platform.create([1.0], n_cloud=1)
    return Instance.create(
        platform,
        [Job(origin=0, work=2.0), Job(origin=0, work=1.0), Job(origin=0, work=1.0, release=5.0)],
    )


class TestFixedPolicy:
    def test_priority_respected(self, instance):
        result = simulate(
            instance, FixedPolicyScheduler([edge(0), edge(0), edge(0)], [1, 0, 2])
        )
        assert result.completion[1] == pytest.approx(1.0)
        assert result.completion[0] == pytest.approx(3.0)
        assert result.completion[2] == pytest.approx(6.0)

    def test_allocation_respected(self, instance):
        result = simulate(
            instance, FixedPolicyScheduler([cloud(0), edge(0), edge(0)], [0, 1, 2])
        )
        assert result.schedule.job_schedules[0].allocation == cloud(0)
        assert result.schedule.job_schedules[1].allocation == edge(0)

    def test_bad_priority_rejected(self):
        with pytest.raises(ModelError):
            FixedPolicyScheduler([edge(0)], [0, 0])

    def test_incomplete_priority_rejected(self):
        with pytest.raises(ModelError):
            FixedPolicyScheduler([edge(0), edge(0)], [0])
