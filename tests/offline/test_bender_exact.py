"""Tests for the exact offline single-machine optimum (after [4])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ModelError
from repro.offline.bender import optimal_max_stretch_single_machine
from repro.offline.bender_exact import (
    critical_stretch_values,
    optimal_max_stretch_exact,
)
from repro.offline.spt import spt_max_stretch

works_lists = st.lists(
    st.floats(min_value=0.2, max_value=20.0, allow_nan=False), min_size=1, max_size=7
)


class TestCriticalValues:
    def test_no_crossings_for_identical_min_times(self):
        assert critical_stretch_values(np.array([0.0, 1.0]), np.array([2.0, 2.0])).size == 0

    def test_single_crossing(self):
        # d_0(S) = 0 + 3S, d_1(S) = 2 + S cross at S = 1.
        values = critical_stretch_values(np.array([0.0, 2.0]), np.array([3.0, 1.0]))
        assert values.tolist() == [1.0]

    def test_negative_crossings_dropped(self):
        # Crossing at S = -1 is meaningless.
        values = critical_stretch_values(np.array([2.0, 0.0]), np.array([3.0, 1.0]))
        assert values.size == 0


class TestExactOptimum:
    def test_single_job(self):
        opt = optimal_max_stretch_exact([5.0], [0.0])
        assert opt.stretch == pytest.approx(1.0)

    def test_matches_spt_for_zero_releases(self):
        works = [3.0, 1.0, 2.0]
        opt = optimal_max_stretch_exact(works, [0.0, 0.0, 0.0])
        assert opt.stretch == pytest.approx(spt_max_stretch(works))

    def test_exact_value_on_crafted_instance(self):
        # Two jobs: J0 (w=2, r=0), J1 (w=1, r=1).  Either order:
        # J0 first: C = (2, 3) -> stretches (1, 2); J1 first (preempt at
        # 1): C = (4? ...) run J0 [0,1], J1 [1,2], J0 [2,3]:
        # stretches (3/2, 1).  Optimum = 1.5.
        opt = optimal_max_stretch_exact([2.0, 1.0], [0.0, 1.0])
        assert opt.stretch == pytest.approx(1.5)

    def test_empty(self):
        assert optimal_max_stretch_exact([], []).stretch == 1.0

    def test_validation(self):
        with pytest.raises(ModelError):
            optimal_max_stretch_exact([1.0], [0.0, 1.0])
        with pytest.raises(ModelError):
            optimal_max_stretch_exact([0.0], [0.0])
        with pytest.raises(ModelError):
            optimal_max_stretch_exact([1.0], [0.0], speed=0.0)
        with pytest.raises(ModelError):
            optimal_max_stretch_exact([1.0], [0.0], min_times=[0.0])

    def test_custom_min_times(self):
        opt = optimal_max_stretch_exact([4.0], [0.0], speed=0.5, min_times=[2.0])
        assert opt.stretch == pytest.approx(4.0)

    def test_completions_witness_value(self):
        works = [2.0, 1.0, 3.0]
        releases = [0.0, 1.0, 1.5]
        opt = optimal_max_stretch_exact(works, releases)
        stretches = (opt.completion - np.asarray(releases)) / np.asarray(works)
        assert stretches.max() == pytest.approx(opt.stretch)


class TestAgainstBisection:
    @given(works=works_lists, data=st.data())
    @settings(deadline=None, max_examples=40)
    def test_exact_within_eps_of_bisection(self, works, data):
        releases = [
            data.draw(st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
            for _ in works
        ]
        exact = optimal_max_stretch_exact(works, releases)
        approx = optimal_max_stretch_single_machine(works, releases, eps=1e-7)
        # Bisection returns a feasible (>= optimal) target within eps.
        assert exact.stretch <= approx.stretch * (1 + 1e-5) + 1e-9
        assert approx.stretch <= exact.stretch * (1 + 1e-4) + 1e-6

    @given(works=works_lists)
    @settings(deadline=None, max_examples=20)
    def test_exact_at_least_one(self, works):
        opt = optimal_max_stretch_exact(works, [0.0] * len(works))
        assert opt.stretch >= 1.0 - 1e-9
