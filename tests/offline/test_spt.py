"""Tests for Lemma 2 (SPT optimality on one machine, no release dates)."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ModelError
from repro.offline.spt import (
    completions_of_order,
    max_stretch_of_order,
    spt_max_stretch,
    spt_order,
)

works_lists = st.lists(
    st.floats(min_value=0.1, max_value=50.0, allow_nan=False), min_size=1, max_size=7
)


class TestBasics:
    def test_paper_intro_example(self):
        # 1-hour and 10-hour jobs: long first -> 11, short first -> 1.1.
        assert max_stretch_of_order([1.0, 10.0], [1, 0]) == pytest.approx(11.0)
        assert max_stretch_of_order([1.0, 10.0], [0, 1]) == pytest.approx(1.1)
        assert spt_max_stretch([1.0, 10.0]) == pytest.approx(1.1)

    def test_completions(self):
        comp = completions_of_order([3.0, 1.0], [1, 0])
        assert comp.tolist() == [4.0, 1.0]

    def test_spt_order_stable(self):
        assert spt_order([2.0, 1.0, 2.0]).tolist() == [1, 0, 2]

    def test_invalid_order_rejected(self):
        with pytest.raises(ModelError):
            max_stretch_of_order([1.0, 2.0], [0, 0])

    def test_nonpositive_work_rejected(self):
        with pytest.raises(ModelError):
            max_stretch_of_order([0.0], [0])

    def test_empty(self):
        assert max_stretch_of_order([], []) == 0.0


class TestLemma2:
    """The exchange argument, verified exhaustively and by property."""

    @given(works=works_lists)
    def test_spt_beats_every_permutation_small(self, works):
        if len(works) > 5:
            works = works[:5]
        best = spt_max_stretch(works)
        for perm in itertools.permutations(range(len(works))):
            assert best <= max_stretch_of_order(works, list(perm)) + 1e-9

    @given(works=works_lists, data=st.data())
    def test_adjacent_swap_towards_spt_never_hurts(self, works, data):
        """The exchange step of the proof: fixing one mis-ordering
        cannot increase the max-stretch."""
        n = len(works)
        if n < 2:
            return
        perm = data.draw(st.permutations(range(n)))
        perm = list(perm)
        # Find a mis-ordering (longer before shorter).
        for i in range(n - 1):
            if works[perm[i]] > works[perm[i + 1]]:
                swapped = perm.copy()
                swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
                assert (
                    max_stretch_of_order(works, swapped)
                    <= max_stretch_of_order(works, perm) + 1e-9
                )
                break

    @given(works=works_lists)
    def test_spt_stretch_bounded_by_position(self, works):
        """The k-th SPT job has stretch at most k (used in Theorem 2)."""
        order = spt_order(works)
        comp = completions_of_order(works, order)
        for pos, i in enumerate(order):
            assert comp[i] / works[i] <= (pos + 1) + 1e-9
