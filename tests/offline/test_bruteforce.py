"""Tests for the exact brute-force solvers."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.offline.bruteforce import edge_cloud_bruteforce, mmsh_optimal
from repro.offline.spt import completions_of_order, spt_order

works_lists = st.lists(
    st.floats(min_value=0.2, max_value=20.0, allow_nan=False), min_size=1, max_size=7
)


def mmsh_value_of_assignment(works, assignment, n_machines):
    """Max-stretch of a partition, SPT order per machine."""
    worst = 0.0
    for m in range(n_machines):
        machine_works = [w for w, a in zip(works, assignment) if a == m]
        if not machine_works:
            continue
        order = spt_order(machine_works)
        comp = completions_of_order(machine_works, order)
        worst = max(worst, max(c / w for c, w in zip(comp, machine_works)))
    return worst


class TestMmshOptimal:
    def test_single_machine_is_spt(self):
        # SPT completions 1, 3, 6 -> stretches 1, 1.5, 2.
        sol = mmsh_optimal([1.0, 2.0, 3.0], 1)
        assert sol.max_stretch == pytest.approx(2.0)

    def test_more_machines_than_jobs(self):
        sol = mmsh_optimal([5.0, 7.0], 4)
        assert sol.max_stretch == pytest.approx(1.0)

    def test_two_machines_balanced(self):
        sol = mmsh_optimal([1.0, 1.0, 1.0, 1.0], 2)
        # Two jobs per machine: second job has stretch 2.
        assert sol.max_stretch == pytest.approx(2.0)

    def test_assignment_witnesses_value(self):
        works = [3.0, 1.0, 4.0, 1.0, 5.0]
        sol = mmsh_optimal(works, 2)
        value = mmsh_value_of_assignment(works, sol.assignment, 2)
        assert value == pytest.approx(sol.max_stretch)

    def test_empty(self):
        assert mmsh_optimal([], 3).max_stretch == 0.0

    def test_bad_machine_count(self):
        with pytest.raises(ModelError):
            mmsh_optimal([1.0], 0)

    @given(works=works_lists, n_machines=st.integers(min_value=1, max_value=3))
    @settings(deadline=None, max_examples=40)
    def test_optimal_over_exhaustive_assignments(self, works, n_machines):
        if len(works) > 5:
            works = works[:5]
        sol = mmsh_optimal(works, n_machines)
        best = min(
            mmsh_value_of_assignment(works, assignment, n_machines)
            for assignment in itertools.product(range(n_machines), repeat=len(works))
        )
        assert sol.max_stretch == pytest.approx(best)


class TestEdgeCloudBruteforce:
    def test_single_job_picks_best_resource(self):
        platform = Platform.create([0.1], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=5.0, up=1.0, dn=1.0)])
        sol = edge_cloud_bruteforce(inst)
        assert sol.max_stretch == pytest.approx(1.0)
        assert sol.allocation[0].is_cloud

    def test_figure1_optimum(self, figure1_instance):
        sol = edge_cloud_bruteforce(figure1_instance)
        assert sol.max_stretch == pytest.approx(1.25, rel=1e-9)

    def test_too_many_jobs_rejected(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(platform, [Job(origin=0, work=1.0)] * 9)
        with pytest.raises(ModelError, match="exponential"):
            edge_cloud_bruteforce(inst)

    def test_empty_instance(self):
        platform = Platform.create([1.0], n_cloud=0)
        inst = Instance.create(platform, [])
        assert edge_cloud_bruteforce(inst).max_stretch == 0.0

    def test_lower_bounds_heuristics(self):
        # The brute-force fixed-policy optimum is at most any heuristic's
        # value on the same instance.
        from repro.schedulers.registry import make_scheduler
        from repro.sim.engine import simulate

        platform = Platform.create([0.5], n_cloud=1)
        jobs = [
            Job(origin=0, work=2.0, release=0.0, up=1.0, dn=1.0),
            Job(origin=0, work=1.0, release=1.0, up=2.0, dn=0.5),
            Job(origin=0, work=3.0, release=2.0, up=0.5, dn=0.5),
        ]
        inst = Instance.create(platform, jobs)
        sol = edge_cloud_bruteforce(inst)
        for name in ("greedy", "srpt", "ssf-edf", "fcfs"):
            result = simulate(inst, make_scheduler(name))
            assert sol.max_stretch <= result.max_stretch + 1e-9
