"""Tests for the offline local-search improver."""

import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.offline.bounds import max_stretch_lower_bound
from repro.offline.bruteforce import edge_cloud_bruteforce
from repro.offline.list_scheduler import FixedPolicyScheduler
from repro.offline.local_search import improve_offline
from repro.sim.engine import simulate
from repro.workloads.random_uniform import RandomInstanceConfig, generate_random_instance


class TestBasics:
    def test_empty_instance(self):
        platform = Platform.create([1.0])
        inst = Instance.create(platform, [])
        assert improve_offline(inst).max_stretch == 0.0

    def test_bad_parameters(self, figure1_instance):
        with pytest.raises(ModelError):
            improve_offline(figure1_instance, iterations=0)
        with pytest.raises(ModelError):
            improve_offline(figure1_instance, restarts=0)

    def test_result_is_replayable(self, figure1_instance):
        result = improve_offline(figure1_instance, iterations=100, restarts=2, seed=1)
        replay = simulate(
            figure1_instance,
            FixedPolicyScheduler(list(result.allocation), list(result.priority)),
        )
        assert replay.max_stretch == pytest.approx(result.max_stretch)

    def test_reproducible(self, figure1_instance):
        a = improve_offline(figure1_instance, iterations=60, restarts=1, seed=9)
        b = improve_offline(figure1_instance, iterations=60, restarts=1, seed=9)
        assert a.max_stretch == b.max_stretch
        assert a.priority == b.priority

    def test_evaluation_budget(self, figure1_instance):
        result = improve_offline(figure1_instance, iterations=50, restarts=2, seed=0)
        assert result.evaluations == 2 * (50 + 1)


class TestQuality:
    def test_finds_figure1_optimum(self, figure1_instance):
        result = improve_offline(figure1_instance, iterations=300, restarts=3, seed=0)
        assert result.max_stretch == pytest.approx(1.25, abs=0.02)

    def test_matches_bruteforce_on_tiny(self):
        platform = Platform.create([0.5], n_cloud=1)
        jobs = [
            Job(origin=0, work=2.0, release=0.0, up=1.0, dn=1.0),
            Job(origin=0, work=1.0, release=1.0, up=2.0, dn=0.5),
            Job(origin=0, work=3.0, release=2.0, up=0.5, dn=0.5),
        ]
        inst = Instance.create(platform, jobs)
        exact = edge_cloud_bruteforce(inst)
        found = improve_offline(inst, iterations=300, restarts=3, seed=0)
        assert found.max_stretch == pytest.approx(exact.max_stretch, rel=0.05)

    def test_never_below_lower_bound(self):
        inst = generate_random_instance(RandomInstanceConfig(n_jobs=12, load=1.0), seed=5)
        result = improve_offline(inst, iterations=80, restarts=2, seed=0)
        assert result.max_stretch >= max_stretch_lower_bound(inst) - 1e-3

    def test_beats_or_matches_naive_start(self):
        # The search can only improve on its own first evaluation.
        inst = generate_random_instance(RandomInstanceConfig(n_jobs=10, load=1.0), seed=6)
        quick = improve_offline(inst, iterations=1, restarts=1, seed=0)
        longer = improve_offline(inst, iterations=200, restarts=2, seed=0)
        assert longer.max_stretch <= quick.max_stretch + 1e-9
