"""Tests for the exact partition solvers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ModelError
from repro.offline.partition import three_partition, two_partition_eq


class TestTwoPartitionEq:
    def test_simple_yes(self):
        subset = two_partition_eq([1, 2, 3, 4])
        assert subset is not None
        assert len(subset) == 2
        assert sum(1 if i in subset else 0 for i in range(4)) == 2
        assert sum([1, 2, 3, 4][i] for i in subset) == 5

    def test_odd_total_no(self):
        assert two_partition_eq([1, 2, 3, 5]) is None

    def test_equal_sum_wrong_cardinality_no(self):
        # {6} vs {1,2,3}: sums match only with unequal cardinality.
        assert two_partition_eq([6, 1, 2, 3]) is None

    def test_all_equal_yes(self):
        subset = two_partition_eq([4, 4, 4, 4, 4, 4])
        assert subset is not None
        assert len(subset) == 3

    def test_odd_count_rejected(self):
        with pytest.raises(ModelError):
            two_partition_eq([1, 2, 3])

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            two_partition_eq([1, -2, 3, 4])

    def test_zeros(self):
        assert two_partition_eq([0, 0]) == (0,) or two_partition_eq([0, 0]) == (1,)

    @given(
        values=st.lists(st.integers(min_value=1, max_value=30), min_size=2, max_size=10)
    )
    @settings(deadline=None)
    def test_returned_subset_is_a_witness(self, values):
        if len(values) % 2 != 0:
            values = values[:-1]
        subset = two_partition_eq(values)
        if subset is not None:
            assert len(subset) == len(values) // 2
            assert sum(values[i] for i in subset) * 2 == sum(values)
            assert len(set(subset)) == len(subset)


class TestThreePartition:
    def test_simple_yes(self):
        values = [1, 2, 3, 1, 2, 3]
        triples = three_partition(values, 6)
        assert triples is not None
        assert len(triples) == 2
        used = [i for t in triples for i in t]
        assert sorted(used) == list(range(6))
        for t in triples:
            assert sum(values[i] for i in t) == 6

    def test_wrong_total_no(self):
        assert three_partition([1, 2, 3, 1, 2, 4], 6) is None

    def test_right_total_but_unsplittable_no(self):
        # Total is 2 * 6 = 12 but no triple sums to 6: any triple holds
        # at most one 4 and zeros otherwise.
        assert three_partition([4, 4, 4, 0, 0, 0], 6) is None

    def test_count_not_multiple_of_three(self):
        with pytest.raises(ModelError):
            three_partition([1, 2], 3)

    @given(
        triple_sums=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=10),
                st.integers(min_value=1, max_value=10),
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(deadline=None)
    def test_constructed_yes_instances_solved(self, triple_sums):
        """Instances built from known triples are always solvable."""
        target = 25
        values = []
        for a, b in triple_sums:
            values += [a, b, target - a - b]
        triples = three_partition(values, target)
        assert triples is not None
        for t in triples:
            assert sum(values[i] for i in t) == target
