"""Tests for preemptive EDF feasibility (repro.offline.edf_feasibility)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ModelError
from repro.offline.edf_feasibility import edf_feasible, edf_preemptive

works_lists = st.lists(
    st.floats(min_value=0.1, max_value=20.0, allow_nan=False), min_size=1, max_size=8
)


class TestBasics:
    def test_single_job(self):
        result = edf_preemptive([2.0], [0.0], [2.0])
        assert result.feasible
        assert result.completion[0] == pytest.approx(2.0)

    def test_single_job_misses(self):
        assert not edf_feasible([2.0], [0.0], [1.9])

    def test_speed_scales(self):
        result = edf_preemptive([2.0], [0.0], [4.0], speed=0.5)
        assert result.feasible
        assert result.completion[0] == pytest.approx(4.0)

    def test_two_jobs_ordered_by_deadline(self):
        result = edf_preemptive([2.0, 2.0], [0.0, 0.0], [10.0, 2.0])
        assert result.feasible
        assert result.completion[1] == pytest.approx(2.0)
        assert result.completion[0] == pytest.approx(4.0)

    def test_preemption_on_release(self):
        # Long job starts; urgent job released at 1 preempts and meets
        # its deadline; long job still makes its own.
        result = edf_preemptive([10.0, 1.0], [0.0, 1.0], [12.0, 2.5])
        assert result.feasible
        assert result.completion[1] == pytest.approx(2.0)
        assert result.completion[0] == pytest.approx(11.0)

    def test_idle_gap_before_late_release(self):
        result = edf_preemptive([1.0, 1.0], [0.0, 5.0], [1.0, 6.0])
        assert result.feasible
        assert result.completion[1] == pytest.approx(6.0)

    def test_infeasible_overload(self):
        assert not edf_feasible([5.0, 5.0], [0.0, 0.0], [5.0, 5.0])

    def test_empty(self):
        assert edf_feasible([], [], [])


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ModelError):
            edf_preemptive([1.0], [0.0, 1.0], [2.0])

    def test_bad_speed(self):
        with pytest.raises(ModelError):
            edf_preemptive([1.0], [0.0], [2.0], speed=0.0)

    def test_nonpositive_work(self):
        with pytest.raises(ModelError):
            edf_preemptive([0.0], [0.0], [2.0])


class TestProperties:
    @given(works=works_lists)
    def test_loose_deadlines_always_feasible(self, works):
        n = len(works)
        releases = [0.0] * n
        deadlines = [sum(works) + 1.0] * n
        result = edf_preemptive(works, releases, deadlines)
        assert result.feasible
        # Work conservation: the last completion equals the total work.
        assert np.nanmax(result.completion) == pytest.approx(sum(works))

    @given(works=works_lists, slack=st.floats(min_value=0.0, max_value=5.0))
    def test_feasibility_monotone_in_slack(self, works, slack):
        """If deadlines are feasible, looser deadlines stay feasible."""
        n = len(works)
        releases = [float(i) for i in range(n)]
        base = [releases[i] + works[i] * n for i in range(n)]
        if edf_feasible(works, releases, base):
            looser = [d + slack for d in base]
            assert edf_feasible(works, releases, looser)

    @given(works=works_lists)
    def test_completions_cover_all_jobs_when_feasible(self, works):
        n = len(works)
        releases = [0.0] * n
        deadlines = [1e9] * n
        result = edf_preemptive(works, releases, deadlines)
        assert not np.isnan(result.completion).any()
