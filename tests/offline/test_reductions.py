"""Tests for the NP-hardness reductions (Theorems 1-3).

The decisive property: the reduction target is achievable **iff** the
source partition instance is a yes-instance — verified with the exact
partition solvers against the exact MMSH brute force on small inputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ModelError
from repro.offline.bruteforce import mmsh_optimal
from repro.offline.partition import three_partition, two_partition_eq
from repro.offline.reductions import (
    mmsh_as_edge_cloud,
    reduction_from_2partition_eq,
    reduction_from_3partition,
    yes_assignment_from_2partition,
)
from repro.offline.spt import completions_of_order, spt_order

_TOL = 1e-9


def assignment_value(works, assignment, n_machines):
    worst = 0.0
    for m in range(n_machines):
        machine = [w for w, a in zip(works, assignment) if a == m]
        if not machine:
            continue
        order = spt_order(machine)
        comp = completions_of_order(machine, order)
        worst = max(worst, max(c / w for c, w in zip(comp, machine)))
    return worst


class TestTheorem1Construction:
    def test_shape(self):
        red = reduction_from_2partition_eq([1, 2, 3, 4])
        assert len(red.works) == 6
        assert red.n_machines == 2
        # n = 2, S = 5: w_i = 2*5 + a_i; big jobs (n+1)*S = 15.
        assert red.works == (11.0, 12.0, 13.0, 14.0, 15.0, 15.0)
        assert red.target_stretch == pytest.approx((4 + 2 + 2) / 3)

    def test_big_jobs_are_largest(self):
        red = reduction_from_2partition_eq([3, 5, 2, 4, 1, 3])
        assert max(red.works[:-2]) < red.works[-1] + _TOL

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            reduction_from_2partition_eq([1, 2, 3])
        with pytest.raises(ModelError):
            reduction_from_2partition_eq([])
        with pytest.raises(ModelError):
            reduction_from_2partition_eq([0, 1, 2, 3])

    def test_yes_instance_achieves_target(self):
        values = [1, 2, 3, 4]  # {1,4} vs {2,3}
        subset = two_partition_eq(values)
        assert subset is not None
        red = reduction_from_2partition_eq(values)
        assignment = yes_assignment_from_2partition(values, subset)
        value = assignment_value(list(red.works), assignment, 2)
        assert value == pytest.approx(red.target_stretch)

    def test_no_instance_misses_target(self):
        values = [1, 1, 1, 4]  # total 7, no equal split
        assert two_partition_eq(values) is None
        red = reduction_from_2partition_eq(values)
        sol = mmsh_optimal(list(red.works), 2)
        assert sol.max_stretch > red.target_stretch + 1e-9

    @given(
        values=st.lists(st.integers(min_value=1, max_value=12), min_size=4, max_size=6)
    )
    @settings(deadline=None, max_examples=30)
    def test_iff_property(self, values):
        if len(values) % 2 != 0:
            values = values[:-1]
        # The construction needs the two added jobs to be the largest,
        # i.e. every a_i < S (otherwise the source is trivially a
        # no-instance — one element exceeds half the total — but the
        # built MMSH instance may still hit the target).
        total = sum(values)
        if total % 2 != 0 or max(values) >= total // 2:
            return
        red = reduction_from_2partition_eq(values)
        sol = mmsh_optimal(list(red.works), 2)
        achievable = sol.max_stretch <= red.target_stretch + 1e-9
        has_partition = two_partition_eq(values) is not None
        assert achievable == has_partition

    def test_degenerate_oversized_element_is_no_instance(self):
        # a_i >= S: trivially no partition; documents that the iff only
        # covers non-degenerate inputs (see test above).
        values = [1, 1, 1, 5]
        assert two_partition_eq(values) is None


class TestTheorem2Construction:
    def test_shape(self):
        values = [3, 3, 3, 3, 3, 3]  # n = 2, B = 9? sum = 18 = 2*9
        red = reduction_from_3partition(values, 9)
        assert red.n_machines == 2
        assert len(red.works) == 8
        assert red.works[-1] == pytest.approx(4.5)
        assert red.target_stretch == 3.0

    def test_range_constraint_enforced(self):
        with pytest.raises(ModelError):
            reduction_from_3partition([1, 4, 4, 1, 4, 4], 9)  # 1 <= B/4

    def test_yes_instance_achieves_three(self):
        values = [3, 3, 3, 3, 3, 3]
        assert three_partition(values, 9) is not None
        red = reduction_from_3partition(values, 9)
        sol = mmsh_optimal(list(red.works), red.n_machines)
        assert sol.max_stretch <= 3.0 + 1e-9

    def test_no_instance_exceeds_three(self):
        # B = 20; values in (5, 10); sums to 2*20 but cannot split into
        # two triples of 20 each: {6,6,8} = 20 and {6,7,7} = 20 would be
        # needed... pick values where no split exists.
        values = [6, 6, 6, 6, 9, 7]  # total 40; triples: 6+6+9=21 no; 6+6+7=19 no...
        assert three_partition(values, 20) is None
        red = reduction_from_3partition(values, 20)
        sol = mmsh_optimal(list(red.works), red.n_machines)
        assert sol.max_stretch > 3.0 + 1e-9

    @given(
        triples=st.lists(
            st.tuples(
                st.integers(min_value=26, max_value=49),
                st.integers(min_value=26, max_value=49),
            ).filter(lambda ab: 26 <= 100 - ab[0] - ab[1] <= 49),
            min_size=1,
            max_size=2,
        )
    )
    @settings(deadline=None, max_examples=20)
    def test_constructed_yes_instances(self, triples):
        """Instances assembled from valid triples always achieve 3."""
        values = []
        for a, b in triples:
            values += [a, b, 100 - a - b]
        red = reduction_from_3partition(values, 100)
        sol = mmsh_optimal(list(red.works), red.n_machines)
        assert sol.max_stretch <= 3.0 + 1e-9


class TestTheorem3Embedding:
    def test_edge_cloud_instance_shape(self):
        red = reduction_from_2partition_eq([1, 2, 3, 4])
        inst = mmsh_as_edge_cloud(red)
        assert inst.platform.n_edge == 1
        assert inst.platform.edge_speeds == (1.0,)
        assert inst.platform.n_cloud == red.n_machines - 1
        assert all(j.up == 0 and j.dn == 0 and j.release == 0 for j in inst.jobs)

    def test_embedding_preserves_min_times(self):
        red = reduction_from_2partition_eq([1, 2, 3, 4])
        inst = mmsh_as_edge_cloud(red)
        # Zero comms + speed-1 everywhere: min_time == work.
        assert inst.min_time.tolist() == pytest.approx(list(red.works))
