"""Tests for the lower bounds (repro.offline.bounds)."""

import pytest
from hypothesis import given, settings

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.offline.bounds import (
    aggregate_capacity_bound,
    max_stretch_lower_bound,
    min_compute_time,
)
from repro.offline.bruteforce import edge_cloud_bruteforce
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from tests.conftest import instances


class TestMinComputeTime:
    def test_uses_fastest_processor(self):
        platform = Platform.create([0.5], cloud_speeds=[1.0, 2.0])
        inst = Instance.create(platform, [Job(origin=0, work=4.0)])
        assert min_compute_time(inst)[0] == pytest.approx(2.0)

    def test_edge_faster_than_cloud(self):
        platform = Platform.create([1.0], cloud_speeds=[0.5])
        inst = Instance.create(platform, [Job(origin=0, work=4.0)])
        assert min_compute_time(inst)[0] == pytest.approx(4.0)

    def test_no_cloud(self):
        platform = Platform.create([0.25])
        inst = Instance.create(platform, [Job(origin=0, work=1.0)])
        assert min_compute_time(inst)[0] == pytest.approx(4.0)


class TestAggregateBound:
    def test_empty(self):
        platform = Platform.create([1.0])
        inst = Instance.create(platform, [])
        assert aggregate_capacity_bound(inst) == 0.0
        assert max_stretch_lower_bound(inst) == 0.0

    def test_single_job_is_one(self):
        platform = Platform.create([1.0], n_cloud=1)
        inst = Instance.create(platform, [Job(origin=0, work=1.0)])
        assert max_stretch_lower_bound(inst) == pytest.approx(1.0, abs=1e-3)

    def test_detects_overload(self):
        # Ten unit jobs released together on a single speed-1 machine:
        # someone's stretch is at least ~5.5 on average... the window
        # bound certifies > 1.
        platform = Platform.create([1.0])
        inst = Instance.create(platform, [Job(origin=0, work=1.0)] * 10)
        assert aggregate_capacity_bound(inst) > 1.5

    def test_figure1_bound_at_most_optimum(self, figure1_instance):
        lb = max_stretch_lower_bound(figure1_instance)
        assert lb <= 1.25 + 1e-6

    @given(inst=instances(max_jobs=4, max_edge=2, max_cloud=1))
    @settings(deadline=None, max_examples=20)
    def test_bound_never_exceeds_bruteforce(self, inst):
        """Soundness: the relaxation bound lower-bounds the fixed-policy
        optimum (which itself upper-bounds the true optimum)."""
        lb = max_stretch_lower_bound(inst)
        best = edge_cloud_bruteforce(inst)
        assert lb <= best.max_stretch + 1e-3

    @given(inst=instances(max_jobs=6, max_edge=2, max_cloud=2))
    @settings(deadline=None, max_examples=20)
    def test_bound_never_exceeds_heuristics(self, inst):
        lb = max_stretch_lower_bound(inst)
        for name in ("srpt", "ssf-edf"):
            result = simulate(inst, make_scheduler(name), record_trace=False)
            assert lb <= result.max_stretch + 1e-3
