"""Integration: the paper's worked example (Section III-C, Figure 1).

The schedule of Figure 1, replayed through the engine as a fixed
policy, must reproduce every number the paper states:

* interval layout (J1 edge 0-3; J2 up 0-2, exec 2-6, dn 6-8; ...),
* per-job stretches (1, 1, 6/5, 5/4, 6/5, 1),
* optimal max-stretch 5/4 (checked against the brute force),
* the t=6 snapshot: edge computes, cloud computes, one uplink and one
  downlink are all simultaneously in flight.
"""

import pytest

from repro.core.resources import cloud, edge
from repro.core.validation import validate_schedule
from repro.offline.bruteforce import edge_cloud_bruteforce
from repro.offline.list_scheduler import FixedPolicyScheduler
from repro.sim.engine import simulate

ALLOCATION = [edge(0), cloud(0), cloud(0), edge(0), cloud(0), edge(0)]
PRIORITY = [0, 5, 1, 2, 4, 3]


@pytest.fixture
def paper_run(figure1_instance):
    return simulate(figure1_instance, FixedPolicyScheduler(ALLOCATION, PRIORITY))


class TestFigure1:
    def test_schedule_is_valid(self, paper_run):
        assert validate_schedule(paper_run.schedule) == []

    def test_per_job_stretches(self, paper_run):
        assert paper_run.stretches().tolist() == pytest.approx(
            [1.0, 1.0, 6 / 5, 5 / 4, 6 / 5, 1.0]
        )

    def test_max_stretch_is_five_fourths(self, paper_run):
        assert paper_run.max_stretch == pytest.approx(1.25)

    def test_interval_layout_matches_figure(self, paper_run):
        s = paper_run.schedule

        def exec_spans(i):
            return [(iv.start, iv.end) for iv in s.job_schedules[i].final_attempt.execution]

        def up_spans(i):
            return [(iv.start, iv.end) for iv in s.job_schedules[i].final_attempt.uplink]

        assert exec_spans(0) == [(0.0, 3.0)]
        assert up_spans(1) == [(0.0, 2.0)]
        assert exec_spans(1) == [(2.0, 6.0)]
        assert up_spans(2) == [(3.0, 5.0)]
        assert exec_spans(2) == [(6.0, 8.0)]
        # J4 preempted by J6 at t=6, resumes at 7.
        assert exec_spans(3) == [(5.0, 6.0), (7.0, 10.0)]
        assert exec_spans(5) == [(6.0, 7.0)]
        assert up_spans(4) == [(5.0, 7.0)]
        assert exec_spans(4) == [(8.0, 10.0)]

    def test_time_six_snapshot(self, paper_run):
        """At t=6: edge computes (J6), cloud computes (J3), J5 uploads,
        J2 downloads — all four activity kinds in parallel."""
        s = paper_run.schedule
        t = 6.5  # inside (6, 7)
        active_exec = [
            i
            for i in range(6)
            for iv in s.job_schedules[i].final_attempt.execution
            if iv.contains_time(t)
        ]
        active_up = [
            i
            for i in range(6)
            for iv in s.job_schedules[i].final_attempt.uplink
            if iv.contains_time(t)
        ]
        active_dn = [
            i
            for i in range(6)
            for iv in s.job_schedules[i].final_attempt.downlink
            if iv.contains_time(t)
        ]
        assert set(active_exec) == {5, 2}  # J6 on edge, J3 on cloud
        assert active_up == [4]  # J5 uploading
        assert active_dn == [1]  # J2 downloading

    def test_fixed_policy_class_attains_optimum(self, figure1_instance, paper_run):
        best = edge_cloud_bruteforce(figure1_instance)
        assert best.max_stretch == pytest.approx(paper_run.max_stretch)

    def test_preemption_without_reexecution(self, paper_run):
        # J6 preempts J4 on the edge; J4 resumes — same resource, no
        # attempt reset.
        assert paper_run.n_reexecutions == 0
        assert len(paper_run.schedule.job_schedules[3].attempts) == 1


class TestHeuristicsOnFigure1:
    """The online heuristics on the paper's example."""

    def test_ssf_edf_matches_offline_optimum(self, figure1_instance):
        from repro.schedulers.ssf_edf import SsfEdfScheduler

        result = simulate(figure1_instance, SsfEdfScheduler())
        assert result.max_stretch == pytest.approx(1.25, rel=1e-6)

    def test_all_heuristics_valid_and_above_optimum(self, figure1_instance):
        from repro.schedulers.registry import available_schedulers, make_scheduler

        for name in available_schedulers():
            scheduler = (
                make_scheduler(name, seed=0) if name == "random" else make_scheduler(name)
            )
            result = simulate(figure1_instance, scheduler)
            assert validate_schedule(result.schedule) == [], name
            assert result.max_stretch >= 1.25 - 1e-9, name
