"""Cross-cutting property tests: every policy, random instances.

These are the load-bearing invariants of the whole system:

1. every heuristic produces a schedule the *independent* validator
   accepts (model constraints: exclusivity, one-port, phases, amounts);
2. every stretch is >= 1 (nothing beats its dedicated time);
3. runs are deterministic;
4. the relaxation lower bound never exceeds any heuristic's value;
5. traced and untraced runs agree on the metrics.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.metrics import max_stretch, stretches
from repro.core.validation import validate_schedule
from repro.offline.bounds import max_stretch_lower_bound
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.sim.engine import simulate
from tests.conftest import instances

# greedy-unguarded (the literal paper text) is excluded from the
# always-valid battery: two identical cloud-hungry jobs can steal the
# cloud from each other at every event, each theft a re-execution that
# wipes the other's progress — a livelock the engine's max_steps guard
# turns into SimulationError.  See TestGreedyUnguardedLivelock below;
# this is precisely why the guarded variant is the default.
POLICIES = ("edge-only", "greedy", "srpt", "ssf-edf", "fcfs")


def _make(name):
    return make_scheduler(name, seed=123) if name == "random" else make_scheduler(name)


class TestScheduleValidity:
    @pytest.mark.parametrize("name", POLICIES + ("random",))
    @given(inst=instances(max_jobs=7, max_edge=3, max_cloud=2))
    @settings(deadline=None, max_examples=25)
    def test_schedules_always_valid(self, name, inst):
        result = simulate(inst, _make(name))
        errors = validate_schedule(result.schedule)
        assert errors == [], f"{name}: {errors[:3]}"

    @given(inst=instances(max_jobs=6, max_edge=2, max_cloud=2, min_cloud=1))
    @settings(deadline=None, max_examples=25)
    def test_cloud_only_valid(self, inst):
        result = simulate(inst, _make("cloud-only"))
        assert validate_schedule(result.schedule) == []


class TestStretchInvariants:
    @pytest.mark.parametrize("name", POLICIES)
    @given(inst=instances(max_jobs=7))
    @settings(deadline=None, max_examples=20)
    def test_stretches_at_least_one(self, name, inst):
        result = simulate(inst, _make(name), record_trace=False)
        assert (result.stretches() >= 1.0 - 1e-6).all()

    @pytest.mark.parametrize("name", ("srpt", "ssf-edf"))
    @given(inst=instances(max_jobs=6))
    @settings(deadline=None, max_examples=15)
    def test_lower_bound_respected(self, name, inst):
        result = simulate(inst, _make(name), record_trace=False)
        lb = max_stretch_lower_bound(inst)
        assert lb <= result.max_stretch + 1e-3

    @pytest.mark.parametrize("name", POLICIES)
    @given(inst=instances(max_jobs=6))
    @settings(deadline=None, max_examples=10)
    def test_deterministic(self, name, inst):
        a = simulate(inst, _make(name), record_trace=False)
        b = simulate(inst, _make(name), record_trace=False)
        assert np.array_equal(a.completion, b.completion)


class TestGreedyUnguardedLivelock:
    """The documented pathology of the literal-paper Greedy."""

    def _instance(self):
        from repro.core.instance import Instance
        from repro.core.job import Job
        from repro.core.platform import Platform

        platform = Platform.create([0.25], n_cloud=1)
        jobs = [Job(origin=0, work=1.0, up=0.0, dn=1.0) for _ in range(2)]
        return Instance.create(platform, jobs)

    def test_unguarded_livelocks(self):
        from repro.core.errors import SimulationError

        with pytest.raises(SimulationError, match="steps"):
            simulate(self._instance(), _make("greedy-unguarded"))

    def test_guard_breaks_the_livelock(self):
        result = simulate(self._instance(), _make("greedy"))
        assert validate_schedule(result.schedule) == []
        assert np.isfinite(result.completion).all()


class TestMetricConsistency:
    @pytest.mark.parametrize("name", ("greedy", "srpt", "ssf-edf"))
    @given(inst=instances(max_jobs=6))
    @settings(deadline=None, max_examples=15)
    def test_trace_and_array_metrics_agree(self, name, inst):
        traced = simulate(inst, _make(name))
        untraced = simulate(inst, _make(name), record_trace=False)
        assert traced.max_stretch == pytest.approx(untraced.max_stretch)
        # Schedule-derived metrics match array-derived ones.
        assert max_stretch(traced.schedule) == pytest.approx(traced.max_stretch)
        assert stretches(traced.schedule) == pytest.approx(traced.stretches())

    @pytest.mark.parametrize("name", POLICIES)
    @given(inst=instances(max_jobs=6))
    @settings(deadline=None, max_examples=10)
    def test_completion_after_release(self, name, inst):
        result = simulate(inst, _make(name), record_trace=False)
        assert (result.completion >= inst.release - 1e-9).all()
        assert np.isfinite(result.completion).all()
