"""Theory checks: the theorems the implementation should witness.

* Bender et al.: stretch-so-far EDF with α=1 is Δ-competitive on one
  machine (Δ = longest/shortest job).  Our Edge-Only on a single
  speed-1 edge unit with no cloud *is* that algorithm, so its
  max-stretch must be within Δ of the offline optimum.
* With all releases at 0 on one machine, the offline optimum is the
  SPT value (Lemma 2) and SSF-EDF should achieve it online (everything
  is known at t=0).
* MMSH embedding (Theorem 3): simulating an MMSH instance through the
  edge-cloud engine with zero comms reproduces pure multiprocessor
  scheduling values.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.offline.bender import optimal_max_stretch_single_machine
from repro.offline.bruteforce import mmsh_optimal
from repro.offline.reductions import MmshReduction, mmsh_as_edge_cloud
from repro.offline.spt import spt_max_stretch
from repro.schedulers.edge_only import EdgeOnlyScheduler
from repro.schedulers.ssf_edf import SsfEdfScheduler
from repro.sim.engine import simulate

works_lists = st.lists(
    st.floats(min_value=0.2, max_value=20.0, allow_nan=False), min_size=1, max_size=7
)


def single_machine_instance(works, releases) -> Instance:
    platform = Platform.create([1.0], n_cloud=0)
    jobs = [Job(origin=0, work=w, release=r) for w, r in zip(works, releases)]
    return Instance.create(platform, jobs)


class TestDeltaCompetitiveness:
    @given(works=works_lists, data=st.data())
    @settings(deadline=None, max_examples=30)
    def test_edge_only_within_delta_of_optimum(self, works, data):
        releases = [
            data.draw(st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
            for _ in works
        ]
        inst = single_machine_instance(works, releases)
        result = simulate(inst, EdgeOnlyScheduler(eps=1e-4), record_trace=False)
        opt = optimal_max_stretch_single_machine(works, releases, eps=1e-6)
        delta = inst.delta()
        assert result.max_stretch <= delta * opt.stretch * (1 + 1e-3) + 1e-6

    @given(works=works_lists)
    @settings(deadline=None, max_examples=30)
    def test_online_equals_offline_when_all_released(self, works):
        """With every job known at t=0 the online algorithm sees the
        whole instance: it must achieve the offline (SPT) optimum."""
        inst = single_machine_instance(works, [0.0] * len(works))
        result = simulate(inst, EdgeOnlyScheduler(eps=1e-6), record_trace=False)
        assert result.max_stretch == pytest.approx(spt_max_stretch(works), rel=1e-3)

    @given(works=works_lists)
    @settings(deadline=None, max_examples=20)
    def test_ssf_edf_matches_spt_on_one_machine(self, works):
        inst = single_machine_instance(works, [0.0] * len(works))
        result = simulate(inst, SsfEdfScheduler(eps=1e-6), record_trace=False)
        assert result.max_stretch == pytest.approx(spt_max_stretch(works), rel=1e-3)


class TestTheorem3Embedding:
    @given(
        works=st.lists(
            st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=6,
        ),
        n_machines=st.integers(min_value=2, max_value=3),
    )
    @settings(deadline=None, max_examples=15)
    def test_embedded_instance_achieves_mmsh_optimum(self, works, n_machines):
        """Replaying the MMSH-optimal partition through the edge-cloud
        engine (one speed-1 edge + p-1 clouds, zero comms) yields the
        same max-stretch: the embedding is value-preserving."""
        from repro.core.resources import cloud, edge
        from repro.offline.list_scheduler import FixedPolicyScheduler

        reduction = MmshReduction(tuple(works), n_machines, target_stretch=0.0)
        inst = mmsh_as_edge_cloud(reduction)
        sol = mmsh_optimal(works, n_machines)

        # Machine 0 -> the edge unit; machine m>0 -> cloud m-1.  SPT
        # priority within the whole instance is enough because machines
        # are independent when comms are zero.
        allocation = [
            edge(0) if m == 0 else cloud(m - 1) for m in sol.assignment
        ]
        priority = list(np.argsort(np.asarray(works), kind="stable"))
        result = simulate(inst, FixedPolicyScheduler(allocation, priority))
        assert result.max_stretch == pytest.approx(sol.max_stretch, rel=1e-9)
