"""Property tests: heuristics under cloud availability windows (§VII).

The engine + windows interplay has its own invariants: schedules stay
valid (windows never let two computations overlap, never break ports),
no cloud computation happens inside an unavailable window, and taking
capacity away can only help jobs so much — completions never improve
beyond the always-available baseline on the same priority-free metric.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.core.resources import ResourceKind
from repro.core.validation import validate_schedule
from repro.schedulers.registry import make_scheduler
from repro.sim.availability import CloudAvailability, periodic_unavailability
from repro.sim.engine import simulate
from tests.conftest import instances


@st.composite
def availabilities(draw, n_cloud: int):
    """Random disjoint unavailability windows for up to n_cloud procs."""
    windows = {}
    for k in range(n_cloud):
        if not draw(st.booleans()):
            continue
        n_windows = draw(st.integers(min_value=1, max_value=3))
        t = draw(st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
        ivs = []
        for _ in range(n_windows):
            start = t + draw(st.floats(min_value=0.1, max_value=30.0, allow_nan=False))
            length = draw(st.floats(min_value=0.5, max_value=40.0, allow_nan=False))
            ivs.append(Interval(start, start + length))
            t = start + length
        windows[k] = tuple(ivs)
    return CloudAvailability(windows)


class TestUnderWindows:
    @pytest.mark.parametrize("name", ["greedy", "srpt", "ssf-edf", "fcfs"])
    @given(inst=instances(max_jobs=5, max_edge=2, max_cloud=2, min_cloud=1), data=st.data())
    @settings(deadline=None, max_examples=20)
    def test_schedules_stay_valid(self, name, inst, data):
        availability = data.draw(availabilities(inst.platform.n_cloud))
        result = simulate(inst, make_scheduler(name), availability=availability)
        assert validate_schedule(result.schedule) == []
        assert np.isfinite(result.completion).all()

    @pytest.mark.parametrize("name", ["srpt", "ssf-edf"])
    @given(inst=instances(max_jobs=5, max_edge=2, max_cloud=2, min_cloud=1), data=st.data())
    @settings(deadline=None, max_examples=20)
    def test_no_compute_inside_windows(self, name, inst, data):
        availability = data.draw(availabilities(inst.platform.n_cloud))
        result = simulate(inst, make_scheduler(name), availability=availability)
        for js in result.schedule.iter_job_schedules():
            for attempt in js.attempts:
                if attempt.resource.kind is not ResourceKind.CLOUD:
                    continue
                k = attempt.resource.index
                for iv in attempt.execution:
                    for window in availability.windows.get(k, ()):
                        overlap = min(iv.end, window.end) - max(iv.start, window.start)
                        assert overlap <= 1e-6, (
                            f"job {js.job_id} computed on cloud[{k}] during "
                            f"unavailable window {window}: {iv}"
                        )

    def test_total_blackout_forces_edge_or_wait(self):
        """Cloud down for a long prefix: jobs either run on the edge or
        wait out the window; either way stretches stay finite."""
        from repro.core.instance import Instance
        from repro.core.job import Job
        from repro.core.platform import Platform

        platform = Platform.create([0.1], n_cloud=2)
        jobs = [Job(origin=0, work=1.0, up=0.5, dn=0.5, release=float(i)) for i in range(3)]
        inst = Instance.create(platform, jobs)
        availability = periodic_unavailability(
            2, period=1000.0, busy_fraction=0.5, horizon=1000.0, stagger=False
        )
        baseline = simulate(inst, make_scheduler("ssf-edf"))
        throttled = simulate(inst, make_scheduler("ssf-edf"), availability=availability)
        assert validate_schedule(throttled.schedule) == []
        assert throttled.max_stretch >= baseline.max_stretch - 1e-9
