"""Shim for legacy editable installs (`pip install -e .`).

This offline environment ships setuptools without the `wheel` package,
so PEP 660 editable installs (which build a wheel) are unavailable; the
presence of setup.py lets pip fall back to `setup.py develop`.  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
