"""Mutable simulation state: job progress and activity phases.

Per-job quantities are held in flat NumPy arrays (not per-job objects)
because the schedulers' per-event completion/stretch estimates sweep all
live jobs; array access keeps those inner loops cheap and lets the view
hand out vectorized estimates.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.instance import Instance
from repro.core.resources import Resource, ResourceKind, cloud, edge
from repro.util.float_cmp import DEFAULT_ABS_TOL

#: alloc_kind codes (array-friendly stand-ins for ResourceKind/None).
ALLOC_NONE = -1
ALLOC_EDGE = 0
ALLOC_CLOUD = 1


class Phase(enum.Enum):
    """Current phase of a job's (re-)execution."""

    UPLINK = "uplink"
    COMPUTE = "compute"
    DOWNLINK = "downlink"
    DONE = "done"


class SimState:
    """All mutable per-job state of one simulation run."""

    def __init__(self, instance: Instance):
        self.instance = instance
        n = instance.n_jobs
        self.now: float = 0.0

        #: Remaining uplink / work / downlink *for the current attempt*.
        #: Work is in work units; up/dn in time units.
        self.rem_up = instance.up.copy()
        self.rem_work = instance.work.copy()
        self.rem_dn = instance.dn.copy()

        self.alloc_kind = np.full(n, ALLOC_NONE, dtype=np.int8)
        self.alloc_index = np.full(n, -1, dtype=np.int64)

        self.done = np.zeros(n, dtype=bool)
        self.completion = np.full(n, np.nan, dtype=np.float64)

        #: Number of attempts started per job (re-execution counter).
        self.attempts = np.zeros(n, dtype=np.int64)

        #: Structural-reset epoch: bumped once per remaining-amount reset
        #: (a new attempt or an abort), *not* on plain progress.  Lets
        #: incremental schedulers detect resets bitwise-invisible in the
        #: arrays themselves (e.g. an abort of a job that had not
        #: progressed yet writes back the fresh amounts unchanged).
        self.rem_epoch: int = 0

        #: Fault epoch: bumped by the engine once per processed fault or
        #: availability boundary instant (every ``RESOURCE_/LINK_DOWN/UP``
        #: or ``AVAILABILITY_CHANGE`` batch).  Epoch-scoped caches
        #: (cross-event replay, capacity deltas) are provably stable
        #: while it is unchanged and invalidate outright across a bump.
        self.fault_epoch: int = 0
        #: Append-only log of ``(domain, index)`` resources whose health
        #: changed, in boundary order ("window" entries use index -1).
        #: Consumers remember the length they have consumed — the suffix
        #: is the dirty set since their last look.
        self.dirty_resources: list[tuple[str, int]] = []

        #: Checkpoint/restart extension (:mod:`repro.sim.checkpoint`).
        #: Off by default: no watermark arrays exist and every reset
        #: restores from scratch, bit-identical to the historical rule.
        self.checkpoint_policy = None
        self.checkpointing: bool = False
        self.ckpt_up: np.ndarray | None = None
        self.ckpt_work: np.ndarray | None = None
        #: True while a job's periodic commit is burning its overhead
        #: (the watermark has not advanced yet); cleared on any reset.
        self.ckpt_pending: np.ndarray | None = None

    def enable_checkpoints(self, policy) -> None:
        """Attach a :class:`~repro.sim.checkpoint.CheckpointPolicy`.

        Watermark arrays start at the full instance amounts (nothing
        committed); they are only allocated when the policy actually
        commits, so a retry-budget-only policy leaves the reset paths
        on the historical from-scratch rule.
        """
        self.checkpoint_policy = policy
        if policy is not None and policy.checkpoints_enabled:
            self.checkpointing = True
            self.ckpt_up = self.instance.up.copy()
            self.ckpt_work = self.instance.work.copy()
            self.ckpt_pending = np.zeros(self.instance.n_jobs, dtype=bool)

    # -- queries ---------------------------------------------------------------

    def released(self) -> np.ndarray:
        """Boolean mask of jobs released at the current time."""
        return self.instance.release <= self.now + DEFAULT_ABS_TOL

    def live_jobs(self) -> np.ndarray:
        """Indices of released, uncompleted jobs."""
        return np.nonzero(self.released() & ~self.done)[0]

    def allocation(self, i: int) -> Resource | None:
        """Current allocation of job ``i`` (None before the first attempt)."""
        kind = self.alloc_kind[i]
        if kind == ALLOC_NONE:
            return None
        if kind == ALLOC_EDGE:
            return edge(int(self.alloc_index[i]))
        return cloud(int(self.alloc_index[i]))

    def phase(self, i: int) -> Phase:
        """Phase of job ``i`` within its current attempt.

        Zero-length communications are skipped (e.g. Kang instances have
        ``dn = 0``: such jobs are DONE right after their computation).
        Edge attempts have no communication phases at all.
        """
        if self.done[i]:
            return Phase.DONE
        if self.alloc_kind[i] == ALLOC_CLOUD:
            if self.rem_up[i] > DEFAULT_ABS_TOL:
                return Phase.UPLINK
            if self.rem_work[i] > DEFAULT_ABS_TOL:
                return Phase.COMPUTE
            return Phase.DOWNLINK
        return Phase.COMPUTE

    # -- mutation --------------------------------------------------------------

    def assign(self, i: int, resource: Resource) -> bool:
        """(Re-)assign job ``i`` to ``resource``; return True if this is a new attempt.

        Re-assignment to a *different* resource is a re-execution from
        scratch: all progress is lost (the model allows preemption and
        re-execution but not migration).  Re-assignment to the current
        resource is a no-op.
        """
        kind = ALLOC_EDGE if resource.kind is ResourceKind.EDGE else ALLOC_CLOUD
        if self.alloc_kind[i] == kind and self.alloc_index[i] == resource.index:
            return False
        job = self.instance.jobs[i]
        self.alloc_kind[i] = kind
        self.alloc_index[i] = resource.index
        if self.checkpointing:
            # Restore from the durable watermark, not from scratch; an
            # in-flight commit's overhead is lost with the attempt.
            self.rem_up[i] = self.ckpt_up[i]
            self.rem_work[i] = self.ckpt_work[i]
            self.ckpt_pending[i] = False
        else:
            self.rem_up[i] = job.up
            self.rem_work[i] = job.work
        self.rem_dn[i] = job.dn
        self.attempts[i] += 1
        self.rem_epoch += 1
        return True

    def assign_many(
        self, jobs: np.ndarray, kinds: np.ndarray, indices: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`assign` over a decision's columnar arrays.

        Returns the boolean mask (aligned with ``jobs``) of entries
        that opened a new attempt — i.e. whose resource differs from
        the current allocation.  Progress of those jobs is reset from
        scratch, exactly as repeated scalar :meth:`assign` calls would.
        """
        changed = (self.alloc_kind[jobs] != kinds) | (self.alloc_index[jobs] != indices)
        if changed.any():
            ids = jobs[changed]
            self.alloc_kind[ids] = kinds[changed]
            self.alloc_index[ids] = indices[changed]
            inst = self.instance
            if self.checkpointing:
                self.rem_up[ids] = self.ckpt_up[ids]
                self.rem_work[ids] = self.ckpt_work[ids]
                self.ckpt_pending[ids] = False
            else:
                self.rem_up[ids] = inst.up[ids]
                self.rem_work[ids] = inst.work[ids]
            self.rem_dn[ids] = inst.dn[ids]
            self.attempts[ids] += 1
            self.rem_epoch += int(np.count_nonzero(changed))
        return changed

    def abort(self, i: int) -> None:
        """Abort job ``i``'s current attempt (a crash killed its resource).

        The job returns to pending with no allocation; all progress of
        the attempt is lost, exactly as a re-assignment wipes it (the
        re-execution rule).  ``attempts`` is *not* rolled back — the
        aborted attempt happened — so the next assignment opens a fresh
        attempt and the re-execution counter stays truthful.
        """
        job = self.instance.jobs[i]
        self.alloc_kind[i] = ALLOC_NONE
        self.alloc_index[i] = -1
        if self.checkpointing:
            # Only the uncommitted tail is lost: restore to the last
            # durable watermark (:mod:`repro.sim.checkpoint`).
            self.rem_up[i] = self.ckpt_up[i]
            self.rem_work[i] = self.ckpt_work[i]
            self.ckpt_pending[i] = False
        else:
            self.rem_up[i] = job.up
            self.rem_work[i] = job.work
        self.rem_dn[i] = job.dn
        self.rem_epoch += 1

    def finish(self, i: int, time: float) -> None:
        """Mark job ``i`` completed at ``time``."""
        self.done[i] = True
        self.completion[i] = time
