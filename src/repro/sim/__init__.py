"""Discrete-event simulation of the edge-cloud platform.

Layered sim-core: the :mod:`~repro.sim.engine` clock loop composes the
:mod:`~repro.sim.ledger` (resource grant state), the
:mod:`~repro.sim.kernel` (vectorized progress arithmetic) and the
:mod:`~repro.sim.hooks` observer protocol (all instrumentation).  See
``docs/ENGINE.md`` for the architecture tour.
"""

from repro.sim.availability import (
    CloudAvailability,
    periodic_unavailability,
    random_unavailability,
)
from repro.sim.decision import Assignment, Decision
from repro.sim.engine import Engine, Scheduler, SimulationResult, simulate
from repro.sim.events import Event, EventKind
from repro.sim.hooks import (
    EngineHooks,
    EventCounter,
    StepTimingProfiler,
    StretchWatermarkMonitor,
    make_hooks,
    register_hook,
)
from repro.sim.kernel import ActivityKernel
from repro.sim.ledger import ResourceLedger
from repro.sim.state import Phase, SimState
from repro.sim.trace import TraceRecorder
from repro.sim.view import SimulationView

__all__ = [
    "CloudAvailability",
    "periodic_unavailability",
    "random_unavailability",
    "Assignment",
    "Decision",
    "Engine",
    "Scheduler",
    "SimulationResult",
    "simulate",
    "Event",
    "EventKind",
    "EngineHooks",
    "EventCounter",
    "StepTimingProfiler",
    "StretchWatermarkMonitor",
    "make_hooks",
    "register_hook",
    "ActivityKernel",
    "ResourceLedger",
    "TraceRecorder",
    "Phase",
    "SimState",
    "SimulationView",
]
