"""Discrete-event simulation of the edge-cloud platform."""

from repro.sim.availability import (
    CloudAvailability,
    periodic_unavailability,
    random_unavailability,
)
from repro.sim.decision import Assignment, Decision
from repro.sim.engine import Engine, Scheduler, SimulationResult, simulate
from repro.sim.events import Event, EventKind
from repro.sim.state import Phase, SimState
from repro.sim.view import SimulationView

__all__ = [
    "CloudAvailability",
    "periodic_unavailability",
    "random_unavailability",
    "Assignment",
    "Decision",
    "Engine",
    "Scheduler",
    "SimulationResult",
    "simulate",
    "Event",
    "EventKind",
    "Phase",
    "SimState",
    "SimulationView",
]
