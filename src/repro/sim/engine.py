"""The discrete-event simulation engine.

The engine is a strict interpreter of the model of Section III: it owns
time, job progress, processor exclusivity and the one-port full-duplex
communication constraints.  Schedulers only *decide* (see
:mod:`repro.sim.decision`); the engine enforces.

One step of the main loop:

1. hand the scheduler the current events and a read-only view;
2. apply its decision — (re-)assign jobs, opening a new attempt (and
   wiping progress) whenever the resource changes;
3. activate jobs in priority order: a job runs its current phase
   (uplink / compute / downlink) iff every resource that phase needs is
   still free — edge compute unit, cloud compute unit, or the
   send/receive port pair of a communication;
4. advance time to the earliest activity completion, job release, or
   cloud-availability boundary;
5. emit the corresponding events (the four kinds of Section V) and loop
   until all jobs completed.

The engine optionally records a full interval trace which is converted
to a :class:`repro.core.schedule.Schedule` for independent validation.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.errors import DecisionError, SimulationError
from repro.core.instance import Instance
from repro.core.resources import ResourceKind
from repro.core.schedule import Schedule
from repro.sim.availability import CloudAvailability
from repro.sim.decision import Decision
from repro.sim.events import (
    Event,
    availability_change,
    compute_done,
    downlink_done,
    job_done,
    release,
    uplink_done,
)
from repro.sim.state import ALLOC_CLOUD, Phase, SimState
from repro.sim.trace import NullRecorder, TraceRecorder
from repro.sim.view import SimulationView

#: Completion tolerance: an activity with less than this much remaining
#: (relative to its total amount) is considered finished.
_REL_TOL = 1e-9
_ABS_TOL = 1e-9


@runtime_checkable
class Scheduler(Protocol):
    """What the engine requires of a scheduling policy."""

    name: str

    def start(self, view: SimulationView) -> None:
        """Called once before the first decision."""

    def decide(self, view: SimulationView, events: Sequence[Event]) -> Decision:
        """Return the prioritized assignment for the period until the next event."""


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    instance: Instance
    scheduler_name: str
    completion: np.ndarray
    schedule: Schedule | None
    n_events: int
    n_decisions: int
    n_reexecutions: int
    wall_time: float

    def stretches(self) -> np.ndarray:
        """Per-job stretches ``(C_i - r_i) / min_time_i``."""
        return (self.completion - self.instance.release) / self.instance.min_time

    @property
    def max_stretch(self) -> float:
        """The objective value of the run."""
        s = self.stretches()
        return float(s.max()) if s.size else 0.0

    @property
    def average_stretch(self) -> float:
        """Mean stretch of the run."""
        s = self.stretches()
        return float(s.mean()) if s.size else 0.0

    @property
    def makespan(self) -> float:
        """Latest completion time."""
        return float(self.completion.max()) if self.completion.size else 0.0


def simulate(
    instance: Instance,
    scheduler: Scheduler,
    *,
    availability: CloudAvailability | None = None,
    record_trace: bool = True,
    max_steps: int | None = None,
) -> SimulationResult:
    """Run ``scheduler`` on ``instance`` and return the result.

    ``record_trace=False`` skips building the interval schedule (big
    parameter sweeps); metrics remain available from the completion
    array.  ``max_steps`` caps the number of engine iterations as a
    safety net against non-terminating policies.
    """
    engine = Engine(
        instance,
        scheduler,
        availability=availability,
        record_trace=record_trace,
        max_steps=max_steps,
    )
    return engine.run()


class Engine:
    """See module docstring; prefer the :func:`simulate` convenience."""

    def __init__(
        self,
        instance: Instance,
        scheduler: Scheduler,
        *,
        availability: CloudAvailability | None = None,
        record_trace: bool = True,
        max_steps: int | None = None,
    ):
        self.instance = instance
        self.scheduler = scheduler
        self.availability = availability or CloudAvailability.always_available()
        self.recorder = TraceRecorder(instance) if record_trace else NullRecorder()
        n = instance.n_jobs
        self.max_steps = max_steps if max_steps is not None else max(1000, 400 * (n + 5))
        self._has_windows = bool(self.availability.windows)

    def run(self) -> SimulationResult:
        """Execute the simulation to completion."""
        t0 = _time.perf_counter()
        instance = self.instance
        n = instance.n_jobs
        state = SimState(instance)
        view = SimulationView(state, self.availability)
        platform = instance.platform

        if n == 0:
            return self._result(state, n_events=0, n_decisions=0, t0=t0)

        release_order = np.argsort(instance.release, kind="stable")
        next_rel = 0

        # Jump to the first release.
        state.now = float(instance.release[release_order[0]])
        events: list[Event] = []
        while next_rel < n and instance.release[release_order[next_rel]] <= state.now + _ABS_TOL:
            events.append(release(state.now, int(release_order[next_rel])))
            next_rel += 1

        self.scheduler.start(view)

        # Completion tolerances per job, scaled by the amount magnitudes.
        up_tol = np.maximum(1.0, instance.up) * _REL_TOL
        work_tol = np.maximum(1.0, instance.work) * _REL_TOL
        dn_tol = np.maximum(1.0, instance.dn) * _REL_TOL

        n_events = len(events)
        n_decisions = 0
        steps = 0
        n_done = 0

        while n_done < n:
            steps += 1
            if steps > self.max_steps:
                raise SimulationError(
                    f"engine exceeded {self.max_steps} steps with {n - n_done} jobs "
                    f"unfinished at t={state.now}; scheduler {self.scheduler.name!r} "
                    "may not be making progress"
                )

            decision = self.scheduler.decide(view, events)
            decision.check_well_formed()
            n_decisions += 1

            self._apply_assignments(state, decision)
            active = self._activate(state, decision)

            # Earliest next event.
            dt = float("inf")
            for i, phase, rate in active:
                if phase is Phase.UPLINK:
                    rem = state.rem_up[i]
                elif phase is Phase.COMPUTE:
                    rem = state.rem_work[i]
                else:
                    rem = state.rem_dn[i]
                dt = min(dt, rem / rate)
            if next_rel < n:
                dt = min(dt, float(instance.release[release_order[next_rel]]) - state.now)
            if self._has_windows:
                dt = min(dt, self.availability.next_boundary(state.now) - state.now)

            if not np.isfinite(dt):
                raise SimulationError(
                    f"deadlock at t={state.now}: no activity can run, no future event, "
                    f"but {n - n_done} jobs are unfinished (scheduler "
                    f"{self.scheduler.name!r} idled live jobs)"
                )
            if dt <= 0:
                raise SimulationError(
                    f"non-positive time step {dt} at t={state.now}; "
                    "simultaneous events were not drained"
                )

            t_next = state.now + dt
            events = []

            # Advance all active jobs and emit completion events.
            for i, phase, rate in active:
                self.recorder.record(i, phase, state.now, t_next)
                if phase is Phase.UPLINK:
                    state.rem_up[i] -= rate * dt
                    if state.rem_up[i] <= up_tol[i]:
                        state.rem_up[i] = 0.0
                        events.append(uplink_done(t_next, i))
                elif phase is Phase.COMPUTE:
                    state.rem_work[i] -= rate * dt
                    if state.rem_work[i] <= work_tol[i]:
                        state.rem_work[i] = 0.0
                        events.append(compute_done(t_next, i))
                        # dn == 0 (or an edge job): the job is finished now.
                        if state.alloc_kind[i] != ALLOC_CLOUD or state.rem_dn[i] <= dn_tol[i]:
                            state.rem_dn[i] = 0.0
                            state.finish(i, t_next)
                            self.recorder.complete(i, t_next)
                            events.append(job_done(t_next, i))
                            n_done += 1
                else:  # DOWNLINK
                    state.rem_dn[i] -= rate * dt
                    if state.rem_dn[i] <= dn_tol[i]:
                        state.rem_dn[i] = 0.0
                        events.append(downlink_done(t_next, i))
                        state.finish(i, t_next)
                        self.recorder.complete(i, t_next)
                        events.append(job_done(t_next, i))
                        n_done += 1

            state.now = t_next

            while next_rel < n and instance.release[release_order[next_rel]] <= t_next + _ABS_TOL:
                events.append(release(t_next, int(release_order[next_rel])))
                next_rel += 1

            if self._has_windows and abs(self.availability.next_boundary(state.now - dt) - t_next) <= _ABS_TOL:
                events.append(availability_change(t_next))

            n_events += len(events)

        return self._result(state, n_events=n_events, n_decisions=n_decisions, t0=t0)

    # -- helpers ---------------------------------------------------------------

    def _apply_assignments(self, state: SimState, decision: Decision) -> None:
        """Validate and apply the decision's (re-)assignments."""
        instance = self.instance
        platform = instance.platform
        for a in decision:
            i = a.job
            if not 0 <= i < instance.n_jobs:
                raise DecisionError(f"no such job: {i}")
            if state.done[i]:
                raise DecisionError(f"job {i} is already completed")
            if instance.release[i] > state.now + _ABS_TOL:
                raise DecisionError(
                    f"job {i} is not released yet (r={instance.release[i]}, t={state.now})"
                )
            res = a.resource
            if res.kind is ResourceKind.EDGE:
                if res.index != instance.jobs[i].origin:
                    raise DecisionError(
                        f"job {i} originates from edge[{instance.jobs[i].origin}], "
                        f"cannot run on {res}"
                    )
            elif res.index >= platform.n_cloud:
                raise DecisionError(f"no such cloud processor: {res}")
            if state.assign(i, res):
                self.recorder.new_attempt(i, res)

    def _activate(
        self, state: SimState, decision: Decision
    ) -> list[tuple[int, Phase, float]]:
        """Grant resources in priority order; return running activities."""
        platform = self.instance.platform
        origin = self.instance.origin
        edge_compute = [True] * platform.n_edge
        edge_send = [True] * platform.n_edge
        edge_recv = [True] * platform.n_edge
        cloud_compute = [True] * platform.n_cloud
        cloud_recv = [True] * platform.n_cloud
        cloud_send = [True] * platform.n_cloud

        active: list[tuple[int, Phase, float]] = []
        for a in decision:
            i = a.job
            res = a.resource
            phase = state.phase(i)
            if res.kind is ResourceKind.EDGE:
                j = res.index
                if edge_compute[j]:
                    edge_compute[j] = False
                    active.append((i, Phase.COMPUTE, platform.edge_speeds[j]))
                continue
            k = res.index
            o = int(origin[i])
            if phase is Phase.UPLINK:
                if edge_send[o] and cloud_recv[k]:
                    edge_send[o] = False
                    cloud_recv[k] = False
                    active.append((i, Phase.UPLINK, 1.0))
            elif phase is Phase.COMPUTE:
                if cloud_compute[k] and self.availability.is_available(k, state.now):
                    cloud_compute[k] = False
                    active.append((i, Phase.COMPUTE, platform.cloud_speeds[k]))
            elif phase is Phase.DOWNLINK:
                if cloud_send[k] and edge_recv[o]:
                    cloud_send[k] = False
                    edge_recv[o] = False
                    active.append((i, Phase.DOWNLINK, 1.0))
            else:  # pragma: no cover - defensive
                raise SimulationError(f"job {i} assigned while in phase {phase}")
        return active

    def _result(
        self, state: SimState, *, n_events: int, n_decisions: int, t0: float
    ) -> SimulationResult:
        return SimulationResult(
            instance=self.instance,
            scheduler_name=getattr(self.scheduler, "name", type(self.scheduler).__name__),
            completion=state.completion.copy(),
            schedule=self.recorder.build(),
            n_events=n_events,
            n_decisions=n_decisions,
            n_reexecutions=int(np.maximum(state.attempts - 1, 0).sum()),
            wall_time=_time.perf_counter() - t0,
        )
