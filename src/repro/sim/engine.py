"""The discrete-event simulation engine (the layered sim-core).

The engine is a strict interpreter of the model of Section III: it owns
time, job progress, processor exclusivity and the one-port full-duplex
communication constraints.  Schedulers only *decide* (see
:mod:`repro.sim.decision`); the engine enforces.

The run loop is composed from three layers plus an observer protocol:

* the **clock** — this module's :class:`Engine.run` loop, which owns
  event ordering, release draining and time advance;
* the **resource ledger** (:mod:`repro.sim.ledger`) — grant/release
  state of every exclusive compute slot and communication port, with an
  incremental API so activation only re-evaluates the decision suffix
  that the last event batch could have affected;
* the **activity kernel** (:mod:`repro.sim.kernel`) — vectorized
  remaining-amount arithmetic (one masked ``rem -= rate * dt`` per
  phase) and next-event distances over array slices;
* **hooks** (:mod:`repro.sim.hooks`) — all instrumentation (interval
  traces, counters, profilers, watermarks) observes the run through
  the :class:`~repro.sim.hooks.EngineHooks` callbacks; the engine core
  contains no instrumentation-specific branches.

One step of the main loop:

1. hand the scheduler the current events and a read-only view;
2. apply its decision — (re-)assign jobs, opening a new attempt (and
   wiping progress) whenever the resource changes;
3. activate jobs in priority order: a job runs its current phase
   (uplink / compute / downlink) iff every resource that phase needs is
   still free — edge compute unit, cloud compute unit, or the
   send/receive port pair of a communication;
4. advance time to the earliest activity completion, job release, or
   cloud-availability boundary;
5. emit the corresponding events (the four kinds of Section V) and loop
   until all jobs completed.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.errors import DecisionError, SimulationError
from repro.core.instance import Instance
from repro.core.resources import cloud, edge
from repro.core.schedule import Schedule
from repro.faults.trace import DOMAIN_CLOUD, DOMAIN_EDGE, FaultTrace
from repro.sim.availability import CloudAvailability
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.decision import Decision
from repro.sim.events import (
    Event,
    attempt_aborted,
    availability_change,
    checkpoint_committed,
    compute_done,
    downlink_done,
    job_abandoned,
    job_done,
    link_down,
    link_up,
    release,
    resource_down,
    resource_up,
    uplink_done,
)
from repro.sim.hooks import EngineHooks, EventCounter, HookSet
from repro.sim.kernel import ActivityKernel
from repro.sim.ledger import ACT_COMPUTE, ACT_UPLINK, ResourceLedger
from repro.sim.state import ALLOC_CLOUD, ALLOC_EDGE, Phase, SimState
from repro.sim.trace import TraceRecorder
from repro.sim.view import SimulationView

_ABS_TOL = 1e-9

#: Activity code → scheduler-facing phase (for hook callbacks).
_ACT_PHASE = {0: Phase.UPLINK, 1: Phase.COMPUTE, 2: Phase.DOWNLINK}


@runtime_checkable
class Scheduler(Protocol):
    """What the engine requires of a scheduling policy."""

    name: str

    def start(self, view: SimulationView) -> None:
        """Called once before the first decision."""

    def decide(self, view: SimulationView, events: Sequence[Event]) -> Decision:
        """Return the prioritized assignment for the period until the next event."""


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    instance: Instance
    scheduler_name: str
    completion: np.ndarray
    schedule: Schedule | None
    n_events: int
    n_decisions: int
    n_reexecutions: int
    wall_time: float
    #: Scheduler-reported hot-path counters (``telemetry_counters()``),
    #: or None for schedulers that don't export any.
    scheduler_stats: dict[str, float] | None = None
    #: Jobs that exhausted a retry budget and left uncompleted
    #: (checkpoint extension); their completion stays NaN and they are
    #: excluded from the stretch metrics rather than reported as an
    #: unbounded stretch.
    n_abandoned: int = 0

    def stretches(self) -> np.ndarray:
        """Per-job stretches ``(C_i - r_i) / min_time_i``.

        Abandoned jobs are NaN (their completion is NaN)."""
        return (self.completion - self.instance.release) / self.instance.min_time

    @property
    def max_stretch(self) -> float:
        """The objective value of the run (over completed jobs; ``inf``
        when every job was abandoned)."""
        s = self.stretches()
        if not s.size:
            return 0.0
        if self.n_abandoned:
            finite = s[~np.isnan(s)]
            return float(finite.max()) if finite.size else float("inf")
        return float(s.max())

    @property
    def average_stretch(self) -> float:
        """Mean stretch of the run (over completed jobs)."""
        s = self.stretches()
        if not s.size:
            return 0.0
        if self.n_abandoned:
            finite = s[~np.isnan(s)]
            return float(finite.mean()) if finite.size else float("inf")
        return float(s.mean())

    @property
    def makespan(self) -> float:
        """Latest completion time (of the jobs that completed)."""
        if not self.completion.size:
            return 0.0
        if self.n_abandoned:
            finite = self.completion[~np.isnan(self.completion)]
            return float(finite.max()) if finite.size else 0.0
        return float(self.completion.max())


def simulate(
    instance: Instance,
    scheduler: Scheduler,
    *,
    availability: CloudAvailability | None = None,
    faults: FaultTrace | None = None,
    checkpoint: CheckpointPolicy | None = None,
    record_trace: bool = True,
    max_steps: int | None = None,
    hooks: Sequence[EngineHooks] | None = None,
) -> SimulationResult:
    """Run ``scheduler`` on ``instance`` and return the result.

    ``record_trace=False`` skips building the interval schedule (big
    parameter sweeps); metrics remain available from the completion
    array.  ``faults`` injects a deterministic crash/outage trace
    (:mod:`repro.faults`); ``None`` or an empty trace leaves the run
    bit-identical to the fault-free engine.  ``checkpoint`` attaches a
    :class:`~repro.sim.checkpoint.CheckpointPolicy`: durable progress
    commits, watermark restores on abort and optional per-job retry
    budgets; ``None`` (the default) keeps the historical
    restart-from-scratch rule bit-identically.  ``max_steps`` caps the
    number of engine iterations as a safety net against non-terminating
    policies.  ``hooks`` attaches extra
    :class:`~repro.sim.hooks.EngineHooks` observers to the run.
    """
    engine = Engine(
        instance,
        scheduler,
        availability=availability,
        faults=faults,
        checkpoint=checkpoint,
        record_trace=record_trace,
        max_steps=max_steps,
        hooks=hooks,
    )
    return engine.run()


class Engine:
    """See module docstring; prefer the :func:`simulate` convenience."""

    def __init__(
        self,
        instance: Instance,
        scheduler: Scheduler,
        *,
        availability: CloudAvailability | None = None,
        faults: FaultTrace | None = None,
        checkpoint: CheckpointPolicy | None = None,
        record_trace: bool = True,
        max_steps: int | None = None,
        hooks: Sequence[EngineHooks] | None = None,
    ):
        self.instance = instance
        self.scheduler = scheduler
        self.availability = availability or CloudAvailability.always_available()
        self.faults = faults if faults is not None else FaultTrace.none()
        if checkpoint is not None and checkpoint.auto_interval:
            # Young/Daly auto policies bind to this run's fault model
            # here, so everything downstream (max_steps sizing, the
            # state's watermark machinery, the scheduler's view) sees a
            # concrete interval.  A trace without model-rate metadata
            # (replayed log, hand-built) falls back to sample-mean
            # MTBF/MTTR estimated from the failures it records
            # (:mod:`repro.faults.estimate`) — still non-clairvoyant,
            # and a genuinely fault-free run still disables the rule.
            rates = self.faults.rates
            if rates is None and not self.faults.is_empty:
                from repro.faults.estimate import observed_rates

                rates = observed_rates(self.faults)
            checkpoint = checkpoint.resolved_for(rates)
        self.checkpoint = checkpoint
        self.recorder = TraceRecorder(instance) if record_trace else None
        self._counter = EventCounter()
        observers: list[EngineHooks] = []
        if self.recorder is not None:
            observers.append(self.recorder)
        if hooks:
            observers.extend(hooks)
        observers.append(self._counter)
        self.hooks = HookSet(observers)
        n = instance.n_jobs
        self._has_windows = bool(self.availability.windows)
        self._has_faults = not self.faults.is_empty
        self._has_ckpt = checkpoint is not None and checkpoint.checkpoints_enabled
        self._retry_budget = checkpoint.retry_budget if checkpoint is not None else None
        #: Fault-killed attempts per job (retry-budget accounting).
        self._fault_aborts = [0] * n if self._retry_budget is not None else None
        self._n_abandoned = 0
        if max_steps is not None:
            self.max_steps = max_steps
        else:
            # Every fault boundary adds a step (and a burst of aborts can
            # add re-execution steps), so the default safety cap grows
            # with the trace.
            self.max_steps = max(1000, 400 * (n + 5)) + 4 * self.faults.n_boundaries
            if self._has_ckpt and checkpoint.interval is not None and n:
                # Each periodic commit adds two boundary steps (overhead
                # start + watermark advance), and a crashing job can redo
                # a commit window per abort.
                n_commits = int(float(instance.work.sum()) / checkpoint.interval) + n + 1
                self.max_steps += 4 * n_commits * (2 + self.faults.n_boundaries)

        platform = instance.platform
        self.ledger = ResourceLedger(platform)
        self._origin_l = instance.origin.tolist()
        self._edge_speeds_l = [float(s) for s in platform.edge_speeds]
        self._cloud_speeds_l = [float(s) for s in platform.cloud_speeds]

        # Set at run start from the view (shared, transparent outlook).
        self._outlook = None

        # Per-position grant bookkeeping of the last activation round
        # (aligned with the decision's columnar arrays); backs the
        # ledger's incremental release path.
        self._prev: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None
        self._prev_l: tuple[list, list, list, list] | None = None
        #: Blocked-set constancy key of the last activation round (None
        #: when the run has no windows and no faults).  Incremental
        #: resumption is sound exactly while this key is unchanged.
        self._prev_block_key: tuple[int, int] | None = None
        self._pos_granted: list[bool] = []
        self._pos_act: list[int] = []
        self._pos_o: list[int] = []
        self._pos_k: list[int] = []
        self._pos_rate: list[float] = []

    def run(self) -> SimulationResult:
        """Execute the simulation to completion."""
        t0 = _time.perf_counter()
        instance = self.instance
        n = instance.n_jobs
        state = SimState(instance)
        if self.checkpoint is not None:
            state.enable_checkpoints(self.checkpoint)
        view = SimulationView(state, self.availability, self.faults)
        # The run's transparent capacity outlook: one composed view of
        # windows + fault state, shared with the schedulers through the
        # SimulationView and used here to block the ledger each round.
        self._outlook = view.capacity_outlook()
        kernel = ActivityKernel(instance, state)
        hooks = self.hooks

        if n == 0:
            return self._result(state, t0=t0)

        release_times = instance.release
        release_order = np.argsort(release_times, kind="stable")
        next_rel = 0

        # Jump to the first release.
        state.now = float(release_times[release_order[0]])
        events: list[Event] = []
        while next_rel < n and release_times[release_order[next_rel]] <= state.now + _ABS_TOL:
            events.append(release(state.now, int(release_order[next_rel])))
            next_rel += 1

        self.scheduler.start(view)
        # Provenance is opt-in: only ask the scheduler for per-decision
        # explanations when a registered hook will actually read them.
        set_prov = getattr(self.scheduler, "set_provenance", None)
        if set_prov is not None:
            set_prov(hooks.wants_provenance)
        for cb in hooks.start:
            cb(view)
        for cb in hooks.events:
            cb(events)

        steps = 0
        n_done = 0

        while n_done < n:
            steps += 1
            if steps > self.max_steps:
                raise SimulationError(
                    f"engine exceeded {self.max_steps} steps with {n - n_done} jobs "
                    f"unfinished at t={state.now}; scheduler {self.scheduler.name!r} "
                    "may not be making progress"
                )

            decision = self.scheduler.decide(view, events)
            decision.check_well_formed()
            now = state.now
            for cb in hooks.decision:
                cb(now, decision)

            jobs, kinds, indices = decision.as_arrays()
            self._apply(state, hooks, jobs, kinds, indices, decision)
            # Small decisions run an all-scalar step (lists end to end);
            # both modes perform identical IEEE-754 arithmetic.
            small = jobs.size <= 32
            jobs_l, kinds_l, indices_l = jobs.tolist(), kinds.tolist(), indices.tolist()
            if small:
                acts_l = kernel.request_kinds(jobs_l, kinds_l)
                acts = np.array(acts_l, dtype=np.int8)
            else:
                acts = kernel.request_kinds(jobs, kinds)
                acts_l = acts.tolist()
            jobs_active, acts_active, rates_active = self._activate(
                jobs, kinds, indices, acts, jobs_l, kinds_l, indices_l, acts_l, now, small
            )

            # Earliest next event.
            dt = float("inf")
            if len(jobs_active):
                ttc = kernel.time_to_completion(jobs_active, acts_active, rates_active)
                dt = float(min(ttc)) if small else float(ttc.min())
            if next_rel < n:
                dt = min(dt, float(release_times[release_order[next_rel]]) - state.now)
            if self._has_windows:
                dt = min(dt, self.availability.next_boundary(state.now) - state.now)
            fault_b = float("inf")
            if self._has_faults:
                fault_b = self.faults.next_boundary(state.now)
                dt = min(dt, fault_b - state.now)
            ckpt_b = float("inf")
            if self._has_ckpt and len(jobs_active):
                ckpt_b = self._next_commit_boundary(
                    state, kernel, jobs_active, acts_active, rates_active, small
                )
                dt = min(dt, ckpt_b - state.now)

            if not np.isfinite(dt):
                raise SimulationError(
                    f"deadlock at t={state.now}: no activity can run, no future event, "
                    f"but {n - n_done} jobs are unfinished (scheduler "
                    f"{self.scheduler.name!r} idled live jobs)"
                )
            if dt <= 0:
                raise SimulationError(
                    f"non-positive time step {dt} at t={state.now}; "
                    "simultaneous events were not drained"
                )

            t_next = state.now + dt

            completed = kernel.advance(jobs_active, acts_active, rates_active, dt)

            if hooks.has_step:
                if not small:
                    jobs_active = jobs_active.tolist()
                    acts_active = acts_active.tolist()
                    rates_active = rates_active.tolist()
                active = [
                    (j, _ACT_PHASE[a], r)
                    for j, a, r in zip(jobs_active, acts_active, rates_active)
                ]
                for cb in hooks.step:
                    cb(now, t_next, active)

            events = []
            if small or hooks.has_step:
                positions = [p for p, f in enumerate(completed) if f]
            else:
                positions = np.nonzero(completed)[0].tolist()
            for pos in positions:
                i = int(jobs_active[pos])
                act = acts_active[pos]
                if act == ACT_UPLINK:
                    events.append(uplink_done(t_next, i))
                    if (
                        self._has_ckpt
                        and self.checkpoint.phase_boundaries
                        and state.ckpt_up[i] > kernel.up_tol[i]
                    ):
                        # The staged input is durable at the boundary; the
                        # commit overhead rides the compute phase.
                        state.ckpt_up[i] = float(state.rem_up[i])
                        cost = self.checkpoint.commit_cost
                        if cost > 0.0:
                            state.rem_work[i] += cost
                        state.rem_epoch += 1
                        events.append(
                            checkpoint_committed(t_next, i, state.allocation(i))
                        )
                elif act == ACT_COMPUTE:
                    events.append(compute_done(t_next, i))
                    # dn == 0 (or an edge job): the job is finished now.
                    if state.alloc_kind[i] != ALLOC_CLOUD or state.rem_dn[i] <= kernel.dn_tol[i]:
                        state.rem_dn[i] = 0.0
                        state.finish(i, t_next)
                        for cb in hooks.complete:
                            cb(i, t_next)
                        events.append(job_done(t_next, i))
                        n_done += 1
                else:  # ACT_DOWNLINK
                    state.finish(i, t_next)
                    events.append(downlink_done(t_next, i))
                    for cb in hooks.complete:
                        cb(i, t_next)
                    events.append(job_done(t_next, i))
                    n_done += 1

            # Periodic commit boundaries land before the fault boundary
            # below: a commit coinciding with a crash is durable (the
            # abort restores the fresh watermark — half-open intervals).
            if self._has_ckpt and abs(ckpt_b - t_next) <= _ABS_TOL:
                self._process_commits(
                    state, kernel, t_next, events, jobs_active, acts_active
                )

            state.now = t_next

            while next_rel < n and release_times[release_order[next_rel]] <= t_next + _ABS_TOL:
                events.append(release(t_next, int(release_order[next_rel])))
                next_rel += 1

            if self._has_windows and abs(self.availability.next_boundary(state.now - dt) - t_next) <= _ABS_TOL:
                events.append(availability_change(t_next))
                state.fault_epoch += 1
                state.dirty_resources.append(("window", -1))

            if self._has_faults and abs(fault_b - t_next) <= _ABS_TOL:
                n_done += self._fault_boundary(
                    state, hooks, fault_b, t_next, events,
                    jobs_active, acts_active, completed,
                )

            for cb in hooks.events:
                cb(events)

        return self._result(state, t0=t0)

    # -- decision application --------------------------------------------------

    def _apply(
        self,
        state: SimState,
        hooks: HookSet,
        jobs: np.ndarray,
        kinds: np.ndarray,
        indices: np.ndarray,
        decision: Decision,
    ) -> None:
        """Validate and apply the decision's (re-)assignments (vectorized).

        The happy path validates all entries with a handful of array
        reductions and applies them via
        :meth:`~repro.sim.state.SimState.assign_many`; any invalid entry
        falls back to the scalar sweep, which raises the precise
        historical :class:`DecisionError` for the *first* offending
        entry (after applying the valid prefix, as the scalar engine
        always did).
        """
        if not jobs.size:
            return
        instance = self.instance
        if jobs.size <= 32:
            # Scalar sweep beats numpy dispatch overhead on small decisions
            # (and reports errors identically on either path).
            self._apply_slow(state, hooks, decision)
            return
        if ((jobs >= 0) & (jobs < instance.n_jobs)).all():
            edge_mask = kinds == ALLOC_EDGE
            if (
                not state.done[jobs].any()
                and not (instance.release[jobs] > state.now + _ABS_TOL).any()
                and not (indices[edge_mask] != instance.origin[jobs[edge_mask]]).any()
                and not (indices[~edge_mask] >= instance.platform.n_cloud).any()
            ):
                changed = state.assign_many(jobs, kinds, indices)
                if hooks.has_assign and changed.any():
                    now = state.now
                    for pos in np.nonzero(changed)[0].tolist():
                        idx = int(indices[pos])
                        res = edge(idx) if kinds[pos] == ALLOC_EDGE else cloud(idx)
                        job = int(jobs[pos])
                        for cb in hooks.assign:
                            cb(job, res, now)
                return
        self._apply_slow(state, hooks, decision)

    def _apply_slow(self, state: SimState, hooks: HookSet, decision: Decision) -> None:
        """Scalar validation/application sweep (exact error reporting)."""
        instance = self.instance
        n_jobs = instance.n_jobs
        n_cloud = instance.platform.n_cloud
        release_times = instance.release
        origin = self._origin_l
        done = state.done
        alloc_kind = state.alloc_kind
        alloc_index = state.alloc_index
        now = state.now
        deadline = now + _ABS_TOL
        has_assign = hooks.has_assign
        jobs, kinds, indices = decision.as_arrays()
        for i, kind, idx in zip(jobs.tolist(), kinds.tolist(), indices.tolist()):
            if not 0 <= i < n_jobs:
                raise DecisionError(f"no such job: {i}")
            if done[i]:
                raise DecisionError(f"job {i} is already completed")
            if release_times[i] > deadline:
                raise DecisionError(
                    f"job {i} is not released yet (r={release_times[i]}, t={now})"
                )
            if kind == ALLOC_EDGE:
                if idx != origin[i]:
                    raise DecisionError(
                        f"job {i} originates from edge[{origin[i]}], "
                        f"cannot run on {edge(idx)}"
                    )
            elif idx >= n_cloud:
                raise DecisionError(f"no such cloud processor: {cloud(idx)}")
            if alloc_kind[i] != kind or alloc_index[i] != idx:
                alloc_kind[i] = kind
                alloc_index[i] = idx
                if state.checkpointing:
                    state.rem_up[i] = state.ckpt_up[i]
                    state.rem_work[i] = state.ckpt_work[i]
                    state.ckpt_pending[i] = False
                else:
                    state.rem_up[i] = instance.up[i]
                    state.rem_work[i] = instance.work[i]
                state.rem_dn[i] = instance.dn[i]
                state.attempts[i] += 1
                state.rem_epoch += 1
                if has_assign:
                    res = edge(idx) if kind == ALLOC_EDGE else cloud(idx)
                    for cb in hooks.assign:
                        cb(i, res, now)

    # -- fault boundaries ------------------------------------------------------

    def _fault_boundary(
        self,
        state: SimState,
        hooks: HookSet,
        boundary: float,
        t_next: float,
        events: list[Event],
        jobs_active,
        acts_active,
        completed,
    ) -> int:
        """Process the fault transitions at ``boundary`` (== ``t_next``).

        Emits the down/up events, aborts the attempts a crash killed —
        every live attempt allocated to a crashed resource, plus every
        in-flight transfer through a crashed unit or downed link — and
        fires the abort hooks.  Activities that completed exactly at the
        boundary are finished, not aborted (intervals are half-open).

        Returns the number of jobs *abandoned* at this boundary: with a
        retry budget (:mod:`repro.sim.checkpoint`), a job whose attempts
        have been fault-killed ``retry_budget`` times leaves the system
        uncompleted, so the caller counts it as done.
        """
        origin = self._origin_l
        # One boundary instant == one epoch bump: every epoch-scoped
        # cache (cross-event replay in particular) invalidates here.
        state.fault_epoch += 1
        jobs_l = jobs_active if isinstance(jobs_active, list) else jobs_active.tolist()
        acts_l = acts_active if isinstance(acts_active, list) else acts_active.tolist()
        comp_l = completed if isinstance(completed, list) else completed.tolist()
        inflight = [
            (int(j), a)
            for j, a, c in zip(jobs_l, acts_l, comp_l)
            if not c and not state.done[int(j)]
        ]
        to_abort: dict[int, object] = {}  # job -> resource whose fault killed it

        def _abort_transfers(unit: int, res) -> None:
            for j, act in inflight:
                if act != ACT_COMPUTE and origin[j] == unit:
                    to_abort.setdefault(j, res)

        for tr in self.faults.transitions_at(boundary):
            state.dirty_resources.append((tr.domain, tr.index))
            if tr.domain == DOMAIN_EDGE:
                res = edge(tr.index)
                if not tr.goes_down:
                    events.append(resource_up(t_next, res))
                    continue
                events.append(resource_down(t_next, res))
                ids = np.nonzero(
                    (state.alloc_kind == ALLOC_EDGE)
                    & (state.alloc_index == tr.index)
                    & ~state.done
                )[0]
                for i in ids.tolist():
                    to_abort.setdefault(int(i), res)
                # The unit's ports die with it: in-flight transfers of
                # jobs originating here are lost too.
                _abort_transfers(tr.index, res)
            elif tr.domain == DOMAIN_CLOUD:
                res = cloud(tr.index)
                if not tr.goes_down:
                    events.append(resource_up(t_next, res))
                    continue
                events.append(resource_down(t_next, res))
                # Data staged on the processor is lost with it: every
                # attempt allocated here aborts, whatever its phase.
                ids = np.nonzero(
                    (state.alloc_kind == ALLOC_CLOUD)
                    & (state.alloc_index == tr.index)
                    & ~state.done
                )[0]
                for i in ids.tolist():
                    to_abort.setdefault(int(i), res)
            else:  # DOMAIN_LINK
                res = edge(tr.index)
                if not tr.goes_down:
                    events.append(link_up(t_next, res))
                    continue
                events.append(link_down(t_next, res))
                # Only in-flight transfers die; a job computing on the
                # cloud keeps its attempt and waits for the link.
                _abort_transfers(tr.index, res)

        budget = self._retry_budget
        abandoned = 0
        for i in sorted(to_abort):
            state.abort(i)
            events.append(attempt_aborted(t_next, i, to_abort[i]))
            for cb in hooks.abort:
                cb(i, t_next)
            if budget is not None:
                self._fault_aborts[i] += 1
                if self._fault_aborts[i] >= budget:
                    # Graceful degradation: the job leaves the system
                    # uncompleted (completion stays NaN) instead of
                    # retrying without bound.
                    state.done[i] = True
                    events.append(job_abandoned(t_next, i))
                    abandoned += 1
        self._n_abandoned += abandoned
        return abandoned

    # -- checkpoint commits ----------------------------------------------------

    def _next_commit_boundary(
        self, state: SimState, kernel: ActivityKernel,
        jobs_active, acts_active, rates_active, small: bool,
    ) -> float:
        """Earliest periodic commit boundary among the active computes.

        A job's next boundary sits at ``rem_work == ckpt_work -
        interval`` — both before a commit (progress burning toward the
        boundary) and during one (the overhead burning back down to it),
        since beginning a commit snaps ``rem_work`` to ``target +
        commit_cost``.  Targets at or below the completion tolerance are
        not boundaries: the job finishes instead.
        """
        interval = self.checkpoint.interval
        if interval is None:
            return float("inf")
        jl = jobs_active if small else jobs_active.tolist()
        al = acts_active if small else acts_active.tolist()
        rl = rates_active if small else rates_active.tolist()
        rem_work = state.rem_work
        ckpt_work = state.ckpt_work
        work_tol = kernel.work_tol
        now = state.now
        best = float("inf")
        for j, a, r in zip(jl, al, rl):
            if a != ACT_COMPUTE:
                continue
            target = float(ckpt_work[j]) - interval
            if target <= float(work_tol[j]):
                continue
            t = now + (float(rem_work[j]) - target) / r
            if t < best:
                best = t
        return best

    def _process_commits(
        self, state: SimState, kernel: ActivityKernel, t_next: float,
        events: list[Event], jobs_active, acts_active,
    ) -> None:
        """Advance every active compute sitting on its commit boundary.

        Two-step commit: reaching the boundary the first time begins the
        commit (``rem_work`` inflates by ``commit_cost``; a crash during
        this overhead loses the in-flight commit), and burning the
        overhead back to the boundary makes it durable — the watermark
        advances and ``CHECKPOINT_COMMITTED`` fires.  A zero (or
        sub-tolerance) cost commits in one step.
        """
        interval = self.checkpoint.interval
        if interval is None:
            return
        cost = self.checkpoint.commit_cost
        jl = jobs_active if isinstance(jobs_active, list) else jobs_active.tolist()
        al = acts_active if isinstance(acts_active, list) else acts_active.tolist()
        for j, a in zip(jl, al):
            if a != ACT_COMPUTE:
                continue
            j = int(j)
            if state.done[j]:
                continue
            tol = float(kernel.work_tol[j])
            target = float(state.ckpt_work[j]) - interval
            if target <= tol or abs(float(state.rem_work[j]) - target) > tol:
                continue
            if state.ckpt_pending[j] or cost <= tol:
                state.rem_work[j] = target
                state.ckpt_work[j] = target
                state.ckpt_up[j] = float(state.rem_up[j])
                state.ckpt_pending[j] = False
                state.rem_epoch += 1
                events.append(checkpoint_committed(t_next, j, state.allocation(j)))
            else:
                state.rem_work[j] = target + cost
                state.ckpt_pending[j] = True
                state.rem_epoch += 1

    # -- activation ------------------------------------------------------------

    def _activate(
        self,
        jobs: np.ndarray,
        kinds: np.ndarray,
        indices: np.ndarray,
        acts: np.ndarray,
        jobs_l: list,
        kinds_l: list,
        indices_l: list,
        acts_l: list,
        now: float,
        small: bool,
    ):
        """Grant resources in priority order; return the active set.

        Returns parallel ``(jobs, activities, rates)`` columns of the
        granted activities, in decision priority order — plain lists in
        small-step mode, arrays otherwise.

        Grants are resumed incrementally: positions before the first
        request that changed since the previous round keep their grant
        outcome (a grant depends only on higher-priority requests, which
        are unchanged), the ledger releases the stale suffix, and only
        the suffix is re-scanned.  With availability windows or a fault
        trace, grants also depend on the clock through the blocked set,
        which is piecewise constant between boundaries: rounds whose
        :meth:`~repro.capacity.outlook.CapacityOutlook.blocked_key` is
        unchanged since the previous round see the exact same blocked
        claims (releases never touch block claims, only granted
        positions), so incremental resumption stays sound.  Only rounds
        that cross a boundary — key changed — rebuild from scratch,
        re-blocking the ledger for the new down-state.
        """
        ledger = self.ledger
        start = 0
        prev_l = self._prev_l
        blocked = self._has_windows or self._has_faults
        block_key = self._outlook.blocked_key(now) if blocked else None
        if prev_l is not None and block_key == self._prev_block_key:
            if blocked:
                # The round's down-state was served by key equality
                # instead of a fresh scan — a delta update.
                self._outlook.n_delta_updates += 1
            if small:
                pjobs_l, pkinds_l, pindices_l, pacts_l = prev_l
                mm = min(len(jobs_l), len(pjobs_l))
                start = mm
                for pos in range(mm):
                    if (
                        jobs_l[pos] != pjobs_l[pos]
                        or kinds_l[pos] != pkinds_l[pos]
                        or indices_l[pos] != pindices_l[pos]
                        or acts_l[pos] != pacts_l[pos]
                    ):
                        start = pos
                        break
            else:
                pjobs, pkinds, pindices, pacts = self._prev
                m = min(jobs.size, pjobs.size)
                if m:
                    diff = (
                        (jobs[:m] != pjobs[:m])
                        | (kinds[:m] != pkinds[:m])
                        | (indices[:m] != pindices[:m])
                        | (acts[:m] != pacts[:m])
                    )
                    nz = np.nonzero(diff)[0]
                    start = int(nz[0]) if nz.size else m
                else:
                    start = 0
            granted = self._pos_granted
            for pos in range(start, len(granted)):
                if granted[pos]:
                    ledger.release(self._pos_act[pos], self._pos_o[pos], self._pos_k[pos])
            del granted[start:]
            del self._pos_act[start:]
            del self._pos_o[start:]
            del self._pos_k[start:]
            del self._pos_rate[start:]
        else:
            ledger.begin_round()
            if blocked:
                ledger.block_from_outlook(self._outlook, now)
            self._pos_granted.clear()
            self._pos_act.clear()
            self._pos_o.clear()
            self._pos_k.clear()
            self._pos_rate.clear()

        self._scan(start, jobs_l, kinds_l, indices_l, acts_l, now)
        self._prev = (jobs, kinds, indices, acts)
        self._prev_l = (jobs_l, kinds_l, indices_l, acts_l)
        self._prev_block_key = block_key

        granted = self._pos_granted
        if small:
            ja: list = []
            aa: list = []
            ra: list = []
            rates_l = self._pos_rate
            for pos, ok in enumerate(granted):
                if ok:
                    ja.append(jobs_l[pos])
                    aa.append(acts_l[pos])
                    ra.append(rates_l[pos])
            return ja, aa, ra
        g = np.array(granted, dtype=bool)
        if not g.any():
            empty_f = np.empty(0, dtype=np.float64)
            return jobs[:0], acts[:0], empty_f
        rates = np.array(self._pos_rate, dtype=np.float64)
        return jobs[g], acts[g], rates[g]

    def _scan(
        self,
        start: int,
        jobs_l: list,
        kinds_l: list,
        indices_l: list,
        acts_l: list,
        now: float,
    ) -> None:
        """Scan decision positions from ``start``, granting in priority order.

        Appends one entry per position to the per-position bookkeeping
        lists.  Stops attempting grants once the ledger is exhausted —
        every remaining request would be denied anyway.
        """
        ledger = self.ledger
        origin = self._origin_l
        edge_speeds = self._edge_speeds_l
        cloud_speeds = self._cloud_speeds_l
        granted = self._pos_granted
        p_act = self._pos_act
        p_o = self._pos_o
        p_k = self._pos_k
        p_rate = self._pos_rate

        grant_edge_compute = ledger.grant_edge_compute
        grant_uplink = ledger.grant_uplink
        grant_cloud_compute = ledger.grant_cloud_compute
        grant_downlink = ledger.grant_downlink

        exhausted = ledger.exhausted
        n_pos = len(jobs_l)
        for pos in range(start, n_pos):
            if exhausted:
                # Every remaining request would be denied: fill the tail
                # in bulk (same entries the per-position path appends).
                rest = n_pos - pos
                p_act.extend(acts_l[pos:])
                granted.extend([False] * rest)
                fill = [-1] * rest
                p_o.extend(fill)
                p_k.extend(fill)
                p_rate.extend([0.0] * rest)
                return
            act = acts_l[pos]
            p_act.append(act)
            if kinds_l[pos] == ALLOC_EDGE:
                j = indices_l[pos]
                if grant_edge_compute(j):
                    granted.append(True)
                    p_o.append(j)
                    p_k.append(-1)
                    p_rate.append(edge_speeds[j])
                    exhausted = ledger.exhausted
                    continue
            else:
                k = indices_l[pos]
                o = origin[jobs_l[pos]]
                if act == ACT_UPLINK:
                    ok = grant_uplink(o, k)
                    rate = 1.0
                elif act == ACT_COMPUTE:
                    # A cloud inside a co-tenancy window is pre-blocked
                    # in the ledger (block_from_outlook at round start),
                    # so a plain grant suffices here.
                    ok = grant_cloud_compute(k)
                    rate = cloud_speeds[k]
                else:
                    ok = grant_downlink(k, o)
                    rate = 1.0
                if ok:
                    granted.append(True)
                    p_o.append(o)
                    p_k.append(k)
                    p_rate.append(rate)
                    exhausted = ledger.exhausted
                    continue
            granted.append(False)
            p_o.append(-1)
            p_k.append(-1)
            p_rate.append(0.0)

    # -- result ----------------------------------------------------------------

    def _result(self, state: SimState, *, t0: float) -> SimulationResult:
        """Assemble the final result and fire the finish hooks."""
        stats_fn = getattr(self.scheduler, "telemetry_counters", None)
        result = SimulationResult(
            instance=self.instance,
            scheduler_name=getattr(self.scheduler, "name", type(self.scheduler).__name__),
            completion=state.completion.copy(),
            schedule=self.recorder.build() if self.recorder is not None else None,
            n_events=self._counter.n_events,
            n_decisions=self._counter.n_decisions,
            n_reexecutions=int(np.maximum(state.attempts - 1, 0).sum()),
            wall_time=_time.perf_counter() - t0,
            scheduler_stats=dict(stats_fn()) if stats_fn is not None else None,
            n_abandoned=self._n_abandoned,
        )
        for cb in self.hooks.finish:
            cb(result)
        return result
