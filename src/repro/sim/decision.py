"""The scheduler → engine contract.

At every event the engine asks the scheduler for a :class:`Decision`:
an *ordered* list of ``(job, resource)`` assignments.  The order encodes
priority — the engine activates jobs first-listed-first, so when two
jobs need the same processor or the same communication port, the earlier
one gets it and the later one waits until the next event.

Semantics of an assignment:

* assigning a job to its current resource continues it (progress kept);
* assigning it to a different resource triggers a re-execution from
  scratch (progress lost; the model forbids migration);
* a live job *not listed* in the decision keeps its allocation and
  progress but is suspended (preempted) until a later decision lists it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.errors import DecisionError
from repro.core.resources import Resource


@dataclass(frozen=True)
class Assignment:
    """One prioritized placement of a job on a resource."""

    job: int
    resource: Resource


@dataclass
class Decision:
    """An ordered list of assignments (earlier = higher priority)."""

    assignments: list[Assignment] = field(default_factory=list)

    @classmethod
    def of(cls, pairs: Iterable[tuple[int, Resource]]) -> "Decision":
        """Build a decision from ``(job, resource)`` pairs."""
        return cls([Assignment(j, r) for j, r in pairs])

    def add(self, job: int, resource: Resource) -> None:
        """Append an assignment with the lowest priority so far."""
        self.assignments.append(Assignment(job, resource))

    def check_well_formed(self) -> None:
        """Raise :class:`DecisionError` on duplicate jobs."""
        seen: set[int] = set()
        for a in self.assignments:
            if a.job in seen:
                raise DecisionError(f"job {a.job} assigned twice in one decision")
            seen.add(a.job)

    def __iter__(self) -> Iterator[Assignment]:
        return iter(self.assignments)

    def __len__(self) -> int:
        return len(self.assignments)

    def __bool__(self) -> bool:
        return bool(self.assignments)
