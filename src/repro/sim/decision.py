"""The scheduler → engine contract.

At every event the engine asks the scheduler for a :class:`Decision`:
an *ordered* list of ``(job, resource)`` assignments.  The order encodes
priority — the engine activates jobs first-listed-first, so when two
jobs need the same processor or the same communication port, the earlier
one gets it and the later one waits until the next event.

Semantics of an assignment:

* assigning a job to its current resource continues it (progress kept);
* assigning it to a different resource triggers a re-execution from
  scratch (progress lost; the model forbids migration);
* a live job *not listed* in the decision keeps its allocation and
  progress but is suspended (preempted) until a later decision lists it.

Storage is columnar: a decision holds parallel (job, kind, index)
columns rather than per-assignment objects, because the engine consumes
decisions as NumPy arrays (:meth:`Decision.as_arrays`) and schedulers
append the work-conserving tail of a decision in one vectorized call
(:meth:`Decision.add_bulk`).  :class:`Assignment` objects are
materialized only on demand (iteration, ``assignments``) for
inspection and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.errors import DecisionError
from repro.core.resources import Resource, ResourceKind, cloud, edge
from repro.sim.state import ALLOC_EDGE


@dataclass(frozen=True)
class Assignment:
    """One prioritized placement of a job on a resource."""

    job: int
    resource: Resource


_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_I8 = np.empty(0, dtype=np.int8)


class Decision:
    """An ordered list of assignments (earlier = higher priority)."""

    __slots__ = (
        "_jobs",
        "_kinds",
        "_indices",
        "_segments",
        "_length",
        "_arrays",
        "provenance",
    )

    def __init__(self, assignments: Iterable[Assignment] | None = None):
        #: Scalar-append staging columns (flushed into ``_segments``).
        self._jobs: list[int] = []
        self._kinds: list[int] = []
        self._indices: list[int] = []
        #: Flushed columnar pieces, each ``(jobs, kinds, indices)`` arrays.
        self._segments: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._length = 0
        self._arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        #: Optional structured explanation attached by the scheduler when
        #: provenance-collecting hooks are registered (duck-typed: any
        #: object with ``to_dict()``); None on ordinary runs.
        self.provenance = None
        if assignments:
            for a in assignments:
                self.add(a.job, a.resource)

    @classmethod
    def of(cls, pairs: Iterable[tuple[int, Resource]]) -> "Decision":
        """Build a decision from ``(job, resource)`` pairs."""
        d = cls()
        for j, r in pairs:
            d.add(j, r)
        return d

    def add(self, job: int, resource: Resource) -> None:
        """Append an assignment with the lowest priority so far."""
        self._jobs.append(job)
        self._kinds.append(0 if resource.kind is ResourceKind.EDGE else 1)
        self._indices.append(resource.index)
        self._length += 1
        self._arrays = None

    def add_bulk(
        self,
        jobs: np.ndarray | Sequence[int],
        kinds: np.ndarray | Sequence[int],
        indices: np.ndarray | Sequence[int],
    ) -> None:
        """Append many assignments at once, preserving their order.

        ``kinds`` uses the :mod:`repro.sim.state` allocation codes
        (``ALLOC_EDGE`` / ``ALLOC_CLOUD``).  This is the vectorized
        counterpart of repeated :meth:`add` calls — schedulers use it
        for the work-conserving leftover tail.
        """
        jobs = np.asarray(jobs, dtype=np.int64)
        if jobs.size == 0:
            return
        self._flush_pending()
        self._segments.append(
            (
                jobs,
                np.asarray(kinds, dtype=np.int8),
                np.asarray(indices, dtype=np.int64),
            )
        )
        self._length += jobs.size
        self._arrays = None

    def _flush_pending(self) -> None:
        """Move the scalar-append staging columns into a segment."""
        if self._jobs:
            self._segments.append(
                (
                    np.array(self._jobs, dtype=np.int64),
                    np.array(self._kinds, dtype=np.int8),
                    np.array(self._indices, dtype=np.int64),
                )
            )
            self._jobs, self._kinds, self._indices = [], [], []

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The decision as parallel ``(jobs, kinds, indices)`` arrays.

        ``kinds`` holds the allocation codes of :mod:`repro.sim.state`.
        The arrays are cached until the next mutation; callers must not
        modify them.
        """
        if self._arrays is None:
            self._flush_pending()
            segs = self._segments
            if not segs:
                self._arrays = (_EMPTY_I64, _EMPTY_I8, _EMPTY_I64)
            elif len(segs) == 1:
                self._arrays = segs[0]
            else:
                self._arrays = (
                    np.concatenate([s[0] for s in segs]),
                    np.concatenate([s[1] for s in segs]),
                    np.concatenate([s[2] for s in segs]),
                )
        return self._arrays

    def jobs_array(self) -> np.ndarray:
        """Just the job column (priority order)."""
        return self.as_arrays()[0]

    @property
    def assignments(self) -> list[Assignment]:
        """The decision as :class:`Assignment` objects (materialized on demand)."""
        return list(self)

    def check_well_formed(self) -> None:
        """Raise :class:`DecisionError` on duplicate jobs."""
        jobs = self.as_arrays()[0]
        if not jobs.size:
            return
        if jobs.size > 256:
            if np.unique(jobs).size == jobs.size:
                return
        seen: set[int] = set()
        for j in jobs.tolist():
            if j in seen:
                raise DecisionError(f"job {j} assigned twice in one decision")
            seen.add(j)

    def __iter__(self) -> Iterator[Assignment]:
        jobs, kinds, indices = self.as_arrays()
        for j, k, i in zip(jobs.tolist(), kinds.tolist(), indices.tolist()):
            yield Assignment(j, edge(i) if k == ALLOC_EDGE else cloud(i))

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Decision):
            return NotImplemented
        a = self.as_arrays()
        b = other.as_arrays()
        return all(np.array_equal(x, y) for x, y in zip(a, b))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Decision({self.assignments!r})"
