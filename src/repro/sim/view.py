"""Read-only view of the simulation handed to schedulers.

The view exposes the live jobs, their remaining amounts, and the
*dedicated-resource* completion estimates every heuristic of Section V
is built on: how long would job ``i`` still take if placed on resource
``r`` right now and never delayed?  Estimates honor the
no-migration/re-execution rule — progress only counts on the job's
current resource; any other placement restarts from scratch.

Vectorized variants (``durations_*``) return arrays over a job-id vector
and back the per-event inner loops of Greedy/SRPT/SSF-EDF.
"""

from __future__ import annotations

import numpy as np

from repro.capacity.outlook import CapacityOutlook, ExpectationDiscount
from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.platform import Platform
from repro.core.resources import Resource, ResourceKind
from repro.faults.trace import FaultTrace
from repro.sim.availability import CloudAvailability
from repro.sim.state import ALLOC_CLOUD, ALLOC_EDGE, SimState


class SimulationView:
    """What a scheduler may observe (everything except the future)."""

    def __init__(
        self,
        state: SimState,
        availability: CloudAvailability,
        faults: FaultTrace | None = None,
    ):
        self._state = state
        self._availability = availability
        self._faults = faults if faults is not None else FaultTrace.none()
        self._outlooks: dict[bool, CapacityOutlook] = {}

    # -- basic observations ------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._state.now

    @property
    def instance(self) -> Instance:
        """The instance being scheduled (jobs' static parameters)."""
        return self._state.instance

    @property
    def platform(self) -> Platform:
        """The platform."""
        return self._state.instance.platform

    @property
    def availability(self) -> CloudAvailability:
        """Cloud availability windows (extension; always-available by default)."""
        return self._availability

    @property
    def faults(self) -> FaultTrace:
        """The run's fault trace (empty when fault injection is off).

        Schedulers may query *current* resource health
        (``faults.edge_up(j, view.now)`` etc.); peeking at future
        boundaries would be clairvoyant and is considered cheating.
        """
        return self._faults

    def capacity_outlook(self, *, discounted: bool = False) -> CapacityOutlook:
        """The run's :class:`~repro.capacity.outlook.CapacityOutlook`.

        Built lazily once per run and shared by every consumer.  With
        ``discounted=False`` (the default) the outlook is transparent —
        effective rates are the platform speeds bitwise, floors are the
        identity — and this is what the duration estimators below are
        served from.  ``discounted=True`` applies the
        :class:`~repro.capacity.outlook.ExpectationDiscount` derived
        from the fault trace's model parameters (when the trace carries
        none, the discounted outlook degenerates to the transparent
        one).
        """
        outlook = self._outlooks.get(discounted)
        if outlook is None:
            discount = (
                ExpectationDiscount.from_rates(self._faults.rates) if discounted else None
            )
            outlook = CapacityOutlook(
                self.platform, self._availability, self._faults, discount=discount
            )
            self._outlooks[discounted] = outlook
        return outlook

    def live_jobs(self) -> np.ndarray:
        """Indices of released, uncompleted jobs."""
        return self._state.live_jobs()

    def allocation(self, i: int) -> Resource | None:
        """Current allocation of job ``i``."""
        return self._state.allocation(i)

    @property
    def alloc_kind(self) -> np.ndarray:
        """Per-job allocation kind codes (``ALLOC_NONE/EDGE/CLOUD``)."""
        return self._state.alloc_kind

    @property
    def alloc_index(self) -> np.ndarray:
        """Per-job allocated resource index (-1 before any attempt)."""
        return self._state.alloc_index

    @property
    def rem_up(self) -> np.ndarray:
        """Remaining uplink time per job (current attempt)."""
        return self._state.rem_up

    @property
    def rem_work(self) -> np.ndarray:
        """Remaining work per job (current attempt)."""
        return self._state.rem_work

    @property
    def rem_dn(self) -> np.ndarray:
        """Remaining downlink time per job (current attempt)."""
        return self._state.rem_dn

    @property
    def rem_epoch(self) -> int:
        """Structural-reset epoch of the remaining amounts.

        Bumped once per attempt reset (new assignment or fault abort),
        never on plain progress.  Incremental schedulers compare it to
        detect resets that are bitwise-invisible in the ``rem_*`` arrays
        themselves — e.g. an abort of a job that had not progressed yet.
        """
        return self._state.rem_epoch

    @property
    def fault_epoch(self) -> int:
        """Fault epoch: bumped at every processed fault or availability
        boundary instant (see :class:`~repro.sim.state.SimState`).

        Epoch-scoped scheduler caches key on it: while it is unchanged,
        no resource went down or came back up between two decisions,
        so capacity-dependent state carried across events is stable.
        This observes only the *past* (boundaries already processed) —
        no clairvoyance.
        """
        return self._state.fault_epoch

    @property
    def dirty_resources(self) -> list[tuple[str, int]]:
        """Append-only ``(domain, index)`` log of health transitions.

        Consumers remember the length they have consumed; the suffix
        since then is the dirty set — the only resources whose derived
        per-resource state (rate rows, reservation floors) can differ
        from the cached copy.  Treat as read-only.
        """
        return self._state.dirty_resources

    def min_time(self, i: int) -> float:
        """Dedicated-system time of job ``i`` (the stretch denominator)."""
        return float(self.instance.min_time[i])

    @property
    def checkpoint_policy(self):
        """The run's :class:`~repro.sim.checkpoint.CheckpointPolicy`.

        None unless the run opted into checkpoint/restart; schedulers
        that price re-execution exposure (rework pricing) read the
        commit interval and overhead from here.
        """
        return self._state.checkpoint_policy

    # -- scalar estimates ----------------------------------------------------

    def duration_on(self, i: int, resource: Resource) -> float:
        """Remaining dedicated duration of job ``i`` if placed on ``resource`` now."""
        state = self._state
        job = self.instance.jobs[i]
        if resource.kind is ResourceKind.EDGE:
            if resource.index != job.origin:
                raise ModelError(f"job {i} cannot run on {resource}: origin is {job.origin}")
            speed = float(self.capacity_outlook().edge_rates()[resource.index])
            if state.alloc_kind[i] == ALLOC_EDGE and state.alloc_index[i] == resource.index:
                return float(state.rem_work[i]) / speed
            return job.work / speed
        speed = float(self.capacity_outlook().cloud_rates()[resource.index])
        if state.alloc_kind[i] == ALLOC_CLOUD and state.alloc_index[i] == resource.index:
            return float(state.rem_up[i]) + float(state.rem_work[i]) / speed + float(state.rem_dn[i])
        return job.up + job.work / speed + job.dn

    def completion_est(self, i: int, resource: Resource) -> float:
        """Estimated completion time of job ``i`` on ``resource`` (no contention)."""
        return self.now + self.duration_on(i, resource)

    def stretch_est(self, i: int, resource: Resource) -> float:
        """Estimated stretch of job ``i`` if run on ``resource`` starting now."""
        job = self.instance.jobs[i]
        return (self.completion_est(i, resource) - job.release) / self.min_time(i)

    # -- vectorized estimates --------------------------------------------------

    def durations_edge(self, jobs: np.ndarray, *, discounted: bool = False) -> np.ndarray:
        """Remaining durations if each job runs on its own origin edge unit.

        ``discounted=True`` serves the estimate from the discounted
        outlook (failure-aware effective rates); the default is the
        transparent outlook, bitwise the historical arithmetic.
        """
        state = self._state
        inst = self.instance
        speeds = self.capacity_outlook(discounted=discounted).edge_rates()[inst.origin[jobs]]
        on_edge = state.alloc_kind[jobs] == ALLOC_EDGE
        work = np.where(on_edge, state.rem_work[jobs], inst.work[jobs])
        return work / speeds

    def durations_cloud(self, jobs: np.ndarray, k: int, *, discounted: bool = False) -> np.ndarray:
        """Remaining durations if each job runs on cloud processor ``k``."""
        state = self._state
        inst = self.instance
        speed = float(self.capacity_outlook(discounted=discounted).cloud_rates()[k])
        on_k = (state.alloc_kind[jobs] == ALLOC_CLOUD) & (state.alloc_index[jobs] == k)
        up = np.where(on_k, state.rem_up[jobs], inst.up[jobs])
        work = np.where(on_k, state.rem_work[jobs], inst.work[jobs])
        dn = np.where(on_k, state.rem_dn[jobs], inst.dn[jobs])
        return up + work / speed + dn

    def durations_matrix(
        self, jobs: np.ndarray, out: np.ndarray | None = None, *, discounted: bool = False
    ) -> np.ndarray:
        """Durations of shape ``(len(jobs), 1 + n_cloud)``.

        Column 0 is the origin-edge duration; column ``1 + k`` the
        duration on cloud processor ``k``.  Built as a single broadcast
        over the fresh (from-scratch) amounts, then patched for jobs
        whose progress survives on their current cloud — this is the
        hot estimate of the Greedy/SRPT/FCFS inner loops.

        ``out``, when given, receives the result in place (the matrix
        heuristics pass a per-run scratch buffer to avoid the per-event
        allocation).  The in-place formulation reorders only commutative
        IEEE additions, so values are bit-identical either way.
        """
        state = self._state
        inst = self.instance
        n_cloud = self.platform.n_cloud
        if out is None:
            out = np.empty((len(jobs), 1 + n_cloud))
        out[:, 0] = self.durations_edge(jobs, discounted=discounted)
        if n_cloud:
            speeds = self.capacity_outlook(discounted=discounted).cloud_rates()
            cloud_cols = out[:, 1:]
            np.divide(inst.work[jobs][:, None], speeds[None, :], out=cloud_cols)
            cloud_cols += inst.up[jobs][:, None]
            cloud_cols += inst.dn[jobs][:, None]
            on_cloud = np.nonzero(state.alloc_kind[jobs] == ALLOC_CLOUD)[0]
            if on_cloud.size:
                ids = jobs[on_cloud]
                ks = state.alloc_index[ids]
                out[on_cloud, 1 + ks] = (
                    state.rem_up[ids] + state.rem_work[ids] / speeds[ks] + state.rem_dn[ids]
                )
        return out

    def current_columns(self, jobs: np.ndarray) -> np.ndarray:
        """Column of each job's current allocation in :meth:`durations_matrix`.

        0 for the origin edge unit, ``1 + k`` for cloud ``k``, and -1
        for jobs that were never assigned.  Schedulers use this to
        prefer the current resource on ties (avoiding gratuitous
        re-executions).
        """
        state = self._state
        kind = state.alloc_kind[jobs]
        index = state.alloc_index[jobs]
        cols = np.full(len(jobs), -1, dtype=np.int64)
        cols[kind == ALLOC_EDGE] = 0
        on_cloud = kind == ALLOC_CLOUD
        cols[on_cloud] = 1 + index[on_cloud]
        return cols

    def stretch_matrix(
        self, jobs: np.ndarray, out: np.ndarray | None = None, *, discounted: bool = False
    ) -> np.ndarray:
        """Estimated stretches, same shape/columns as :meth:`durations_matrix`.

        Like :meth:`durations_matrix`, ``out`` makes the computation run
        in a caller-provided buffer with bit-identical values, and
        ``discounted=True`` prices the failure-aware effective rates.
        """
        inst = self.instance
        durations = self.durations_matrix(jobs, out=out, discounted=discounted)
        durations += self.now
        durations -= inst.release[jobs][:, None]
        durations /= inst.min_time[jobs][:, None]
        return durations
