"""Event types of the event-based algorithms (Section V).

The paper's algorithms reconsider decisions only when one of at most
``4n`` events occurs, for job :math:`J_i`:

1. the job is released at its edge unit            (``Release``);
2. the job completes execution                      (``ComputeDone``);
3. the job completes an uplink communication        (``UplinkDone``);
4. the job completes a downlink communication       (``DownlinkDone``).

``JobDone`` fires when the job leaves the system (it coincides with
``ComputeDone`` for edge jobs and ``DownlinkDone`` for cloud jobs and is
provided for scheduler convenience).  Preemptions do not create events:
they are *decisions* taken at events.

Extensions add further kinds: ``AvailabilityChange`` for planned cloud
windows (§VII), and the fault events of :mod:`repro.faults` —
``ResourceDown``/``ResourceUp`` when an edge unit or cloud processor
crashes/recovers (carrying the :class:`~repro.core.resources.Resource`),
``LinkDown``/``LinkUp`` when an edge unit's access link drops/returns
(carrying the unit as the resource), and ``AttemptAborted`` for every
attempt a crash killed (carrying the job), so schedulers can react to
lost work without inspecting the state arrays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.resources import Resource


class EventKind(enum.Enum):
    """The kinds of simulation events."""

    RELEASE = "release"
    UPLINK_DONE = "uplink_done"
    COMPUTE_DONE = "compute_done"
    DOWNLINK_DONE = "downlink_done"
    JOB_DONE = "job_done"
    AVAILABILITY_CHANGE = "availability_change"
    RESOURCE_DOWN = "resource_down"
    RESOURCE_UP = "resource_up"
    LINK_DOWN = "link_down"
    LINK_UP = "link_up"
    ATTEMPT_ABORTED = "attempt_aborted"
    CHECKPOINT_COMMITTED = "checkpoint_committed"
    JOB_ABANDONED = "job_abandoned"


@dataclass(frozen=True)
class Event:
    """One simulation event: what happened, to which job, and when.

    ``resource`` is set only on fault events (which resource crashed,
    recovered, or lost its link); job-lifecycle events leave it None.
    """

    kind: EventKind
    time: float
    job: int | None = None
    resource: Resource | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        who = f" J{self.job}" if self.job is not None else ""
        where = f" {self.resource}" if self.resource is not None else ""
        return f"{self.kind.value}@{self.time:g}{who}{where}"


def release(time: float, job: int) -> Event:
    """A job-release event."""
    return Event(EventKind.RELEASE, time, job)


def uplink_done(time: float, job: int) -> Event:
    """An uplink-completion event."""
    return Event(EventKind.UPLINK_DONE, time, job)


def compute_done(time: float, job: int) -> Event:
    """A computation-completion event."""
    return Event(EventKind.COMPUTE_DONE, time, job)


def downlink_done(time: float, job: int) -> Event:
    """A downlink-completion event."""
    return Event(EventKind.DOWNLINK_DONE, time, job)


def job_done(time: float, job: int) -> Event:
    """A job-leaves-the-system event."""
    return Event(EventKind.JOB_DONE, time, job)


def availability_change(time: float) -> Event:
    """A cloud availability window opened or closed (extension)."""
    return Event(EventKind.AVAILABILITY_CHANGE, time, None)


def resource_down(time: float, resource: Resource) -> Event:
    """An edge unit or cloud processor crashed (fault extension)."""
    return Event(EventKind.RESOURCE_DOWN, time, None, resource)


def resource_up(time: float, resource: Resource) -> Event:
    """A crashed edge unit or cloud processor recovered."""
    return Event(EventKind.RESOURCE_UP, time, None, resource)


def link_down(time: float, unit: Resource) -> Event:
    """The access link of edge ``unit`` went down (fault extension)."""
    return Event(EventKind.LINK_DOWN, time, None, unit)


def link_up(time: float, unit: Resource) -> Event:
    """The access link of edge ``unit`` came back up."""
    return Event(EventKind.LINK_UP, time, None, unit)


def attempt_aborted(time: float, job: int, resource: Resource) -> Event:
    """A crash aborted ``job``'s in-progress attempt on ``resource``."""
    return Event(EventKind.ATTEMPT_ABORTED, time, job, resource)


def checkpoint_committed(time: float, job: int, resource: Resource | None) -> Event:
    """``job``'s progress watermark advanced durably on ``resource``
    (checkpoint extension, :mod:`repro.sim.checkpoint`)."""
    return Event(EventKind.CHECKPOINT_COMMITTED, time, job, resource)


def job_abandoned(time: float, job: int) -> Event:
    """``job`` exhausted its retry budget and left the system
    uncompleted (checkpoint extension)."""
    return Event(EventKind.JOB_ABANDONED, time, job)
