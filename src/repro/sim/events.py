"""Event types of the event-based algorithms (Section V).

The paper's algorithms reconsider decisions only when one of at most
``4n`` events occurs, for job :math:`J_i`:

1. the job is released at its edge unit            (``Release``);
2. the job completes execution                      (``ComputeDone``);
3. the job completes an uplink communication        (``UplinkDone``);
4. the job completes a downlink communication       (``DownlinkDone``).

``JobDone`` fires when the job leaves the system (it coincides with
``ComputeDone`` for edge jobs and ``DownlinkDone`` for cloud jobs and is
provided for scheduler convenience).  Preemptions do not create events:
they are *decisions* taken at events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventKind(enum.Enum):
    """The kinds of simulation events."""

    RELEASE = "release"
    UPLINK_DONE = "uplink_done"
    COMPUTE_DONE = "compute_done"
    DOWNLINK_DONE = "downlink_done"
    JOB_DONE = "job_done"
    AVAILABILITY_CHANGE = "availability_change"


@dataclass(frozen=True)
class Event:
    """One simulation event: what happened, to which job, and when."""

    kind: EventKind
    time: float
    job: int | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        who = f" J{self.job}" if self.job is not None else ""
        return f"{self.kind.value}@{self.time:g}{who}"


def release(time: float, job: int) -> Event:
    """A job-release event."""
    return Event(EventKind.RELEASE, time, job)


def uplink_done(time: float, job: int) -> Event:
    """An uplink-completion event."""
    return Event(EventKind.UPLINK_DONE, time, job)


def compute_done(time: float, job: int) -> Event:
    """A computation-completion event."""
    return Event(EventKind.COMPUTE_DONE, time, job)


def downlink_done(time: float, job: int) -> Event:
    """A downlink-completion event."""
    return Event(EventKind.DOWNLINK_DONE, time, job)


def job_done(time: float, job: int) -> Event:
    """A job-leaves-the-system event."""
    return Event(EventKind.JOB_DONE, time, job)


def availability_change(time: float) -> Event:
    """A cloud availability window opened or closed (extension)."""
    return Event(EventKind.AVAILABILITY_CHANGE, time, None)
