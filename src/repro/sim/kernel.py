"""The activity kernel: vectorized job-progress arithmetic.

The middle layer of the sim-core.  Given the engine's *active set* —
parallel arrays of (job, activity, rate) in grant order — the kernel
answers the three numeric questions of a simulation step without any
per-job Python loop:

* which activity each assigned job *requests* right now
  (:meth:`ActivityKernel.request_kinds`, the vectorized form of
  :meth:`repro.sim.state.SimState.phase`);
* how far away the next activity completion is
  (:meth:`ActivityKernel.time_to_completion`, one ``rem / rate`` per
  phase over array slices);
* what remains after advancing ``dt`` (:meth:`ActivityKernel.advance`,
  one masked ``rem -= rate * dt`` per phase, with snap-to-zero at the
  per-job completion tolerances).

All arithmetic is elementwise IEEE-754 double precision on the same
state arrays the scalar engine used, so results are bit-identical to
the historical per-job loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import Instance
from repro.sim.ledger import ACT_COMPUTE, ACT_DOWNLINK, ACT_UPLINK
from repro.sim.state import ALLOC_CLOUD, SimState
from repro.util.float_cmp import DEFAULT_ABS_TOL

#: Completion tolerance: an activity with less than this much remaining
#: (relative to its total amount) is considered finished.
_REL_TOL = 1e-9

#: Below this many active entries, scalar loops beat the fixed overhead
#: of NumPy dispatch; both paths run the same IEEE-754 arithmetic, so
#: results are bit-identical either way.
_SMALL = 32


class ActivityKernel:
    """Vectorized progress arithmetic over one run's :class:`SimState`."""

    __slots__ = ("state", "up_tol", "work_tol", "dn_tol")

    def __init__(self, instance: Instance, state: SimState):
        self.state = state
        # Completion tolerances per job, scaled by the amount magnitudes.
        self.up_tol = np.maximum(1.0, instance.up) * _REL_TOL
        self.work_tol = np.maximum(1.0, instance.work) * _REL_TOL
        self.dn_tol = np.maximum(1.0, instance.dn) * _REL_TOL

    def request_kinds(
        self, jobs: "np.ndarray | list", kinds: "np.ndarray | list"
    ) -> "np.ndarray | list":
        """Activity code each assigned job requests in its current attempt.

        ``jobs`` / ``kinds`` are the decision's columnar arrays; the
        result holds :data:`ACT_UPLINK` / :data:`ACT_COMPUTE` /
        :data:`ACT_DOWNLINK` per position.  Mirrors
        :meth:`SimState.phase` (zero-length communications skipped; edge
        attempts compute only), minus the DONE case — completed jobs
        cannot appear in a well-formed decision.
        """
        state = self.state
        small = type(jobs) is list
        if small or jobs.size <= _SMALL:
            rem_up = state.rem_up
            rem_work = state.rem_work
            out = []
            jl = jobs if small else jobs.tolist()
            kl = kinds if small else kinds.tolist()
            for j, k in zip(jl, kl):
                if k == ALLOC_CLOUD:
                    if rem_up[j] > DEFAULT_ABS_TOL:
                        out.append(ACT_UPLINK)
                    elif rem_work[j] > DEFAULT_ABS_TOL:
                        out.append(ACT_COMPUTE)
                    else:
                        out.append(ACT_DOWNLINK)
                else:
                    out.append(ACT_COMPUTE)
            return out if small else np.array(out, dtype=np.int8)
        acts = np.full(jobs.size, ACT_COMPUTE, dtype=np.int8)
        on_cloud = kinds == ALLOC_CLOUD
        if on_cloud.any():
            up_left = state.rem_up[jobs] > DEFAULT_ABS_TOL
            work_left = state.rem_work[jobs] > DEFAULT_ABS_TOL
            acts[on_cloud & up_left] = ACT_UPLINK
            acts[on_cloud & ~up_left & ~work_left] = ACT_DOWNLINK
        return acts

    def time_to_completion(
        self, jobs: "np.ndarray | list", acts: "np.ndarray | list", rates: "np.ndarray | list"
    ) -> "np.ndarray | list":
        """Remaining duration ``rem / rate`` of every active activity.

        List inputs (the engine's small-step mode) return a plain list;
        array inputs return an array.  Both paths divide the same
        float64 scalars, so the values are bit-identical.
        """
        state = self.state
        small = type(jobs) is list
        if small or jobs.size <= _SMALL:
            rems = (state.rem_up, state.rem_work, state.rem_dn)
            if small:
                return [rems[a][j] / r for j, a, r in zip(jobs, acts, rates)]
            return np.array(
                [
                    rems[a][j] / r
                    for j, a, r in zip(jobs.tolist(), acts.tolist(), rates.tolist())
                ]
            )
        out = np.empty(jobs.size, dtype=np.float64)
        for act, rem in (
            (ACT_UPLINK, state.rem_up),
            (ACT_COMPUTE, state.rem_work),
            (ACT_DOWNLINK, state.rem_dn),
        ):
            mask = acts == act
            if mask.any():
                out[mask] = rem[jobs[mask]] / rates[mask]
        return out

    def advance(
        self, jobs: "np.ndarray | list", acts: "np.ndarray | list", rates: "np.ndarray | list", dt: float
    ) -> "np.ndarray | list":
        """Advance every active activity by ``dt``; return completion mask.

        Remaining amounts within tolerance of zero are snapped to
        exactly ``0.0`` (so downstream phase tests see clean state),
        and the returned boolean array marks, per active position,
        activities that finished at the end of this step.
        """
        state = self.state
        small = type(jobs) is list
        if small or jobs.size <= _SMALL:
            rems = (state.rem_up, state.rem_work, state.rem_dn)
            tols = (self.up_tol, self.work_tol, self.dn_tol)
            done = []
            if not small:
                jobs, acts, rates = jobs.tolist(), acts.tolist(), rates.tolist()
            for j, a, r in zip(jobs, acts, rates):
                rem = rems[a]
                rem[j] -= r * dt
                if rem[j] <= tols[a][j]:
                    rem[j] = 0.0
                    done.append(True)
                else:
                    done.append(False)
            return done if small else np.array(done, dtype=bool)
        completed = np.zeros(jobs.size, dtype=bool)
        for act, rem, tol in (
            (ACT_UPLINK, state.rem_up, self.up_tol),
            (ACT_COMPUTE, state.rem_work, self.work_tol),
            (ACT_DOWNLINK, state.rem_dn, self.dn_tol),
        ):
            mask = acts == act
            if not mask.any():
                continue
            ids = jobs[mask]
            rem[ids] -= rates[mask] * dt
            finished = rem[ids] <= tol[ids]
            if finished.any():
                rem[ids[finished]] = 0.0
            completed[mask] = finished
        return completed
