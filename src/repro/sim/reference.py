"""A deliberately naive reference simulator for differential testing.

This simulator shares *no* mechanism with :mod:`repro.sim.engine`: it
advances time in small fixed quanta ``dt`` and, at every step,
re-grants resources to a fixed-policy workload from scratch.  It is
orders of magnitude slower and only approximately correct (every phase
transition can be delayed by up to one quantum), but it is simple
enough to be obviously faithful to the model — which makes it a useful
*oracle*: on random instances, the event engine's completion times must
match the reference's within a few quanta.

Only fixed policies (static allocation + static priority) are
supported; that is exactly what the differential tests need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.resources import Resource, ResourceKind


@dataclass(frozen=True)
class ReferenceResult:
    """Completion times of the reference run."""

    completion: np.ndarray
    dt: float
    steps: int


def simulate_reference(
    instance: Instance,
    allocation: list[Resource],
    priority: list[int],
    *,
    dt: float = 0.01,
    max_steps: int = 2_000_000,
) -> ReferenceResult:
    """Run the fixed policy with naive time quantization.

    At each step, in priority order, every unfinished released job
    tries to run its current phase for ``dt``; the phase executes iff
    all resources it needs are unused *this step*.  Amounts are
    decremented by ``rate * dt`` (slightly overshooting the final
    quantum, hence completions are accurate to ``O(dt)`` per phase).
    """
    n = instance.n_jobs
    if len(allocation) != n or sorted(priority) != list(range(n)):
        raise ModelError("allocation/priority must cover all jobs exactly once")
    if dt <= 0:
        raise ModelError(f"dt must be positive, got {dt}")

    platform = instance.platform
    rem_up = instance.up.astype(float).copy()
    rem_work = instance.work.astype(float).copy()
    rem_dn = instance.dn.astype(float).copy()
    completion = np.full(n, np.nan)
    done = np.zeros(n, dtype=bool)

    t = 0.0
    steps = 0
    eps = 1e-12

    while not done.all():
        steps += 1
        if steps > max_steps:
            raise ModelError(
                f"reference simulator exceeded {max_steps} steps at t={t}; "
                "decrease the instance size or increase dt"
            )

        edge_compute = [False] * platform.n_edge
        edge_send = [False] * platform.n_edge
        edge_recv = [False] * platform.n_edge
        cloud_compute = [False] * platform.n_cloud
        cloud_recv = [False] * platform.n_cloud
        cloud_send = [False] * platform.n_cloud

        for i in priority:
            if done[i] or instance.release[i] > t + eps:
                continue
            res = allocation[i]
            if res.kind is ResourceKind.EDGE:
                j = res.index
                if not edge_compute[j]:
                    edge_compute[j] = True
                    rem_work[i] -= platform.edge_speeds[j] * dt
                    if rem_work[i] <= eps:
                        done[i] = True
                        completion[i] = t + dt
                continue
            k = res.index
            o = instance.jobs[i].origin
            if rem_up[i] > eps:
                if not edge_send[o] and not cloud_recv[k]:
                    edge_send[o] = True
                    cloud_recv[k] = True
                    rem_up[i] -= dt
            elif rem_work[i] > eps:
                if not cloud_compute[k]:
                    cloud_compute[k] = True
                    rem_work[i] -= platform.cloud_speeds[k] * dt
                    # A zero-length downlink transfers nothing: the job
                    # is done the moment its computation finishes.
                    if rem_work[i] <= eps and rem_dn[i] <= eps:
                        done[i] = True
                        completion[i] = t + dt
            else:
                if not cloud_send[k] and not edge_recv[o]:
                    cloud_send[k] = True
                    edge_recv[o] = True
                    rem_dn[i] -= dt
                    if rem_dn[i] <= eps:
                        done[i] = True
                        completion[i] = t + dt

        t += dt

    return ReferenceResult(completion=completion, dt=dt, steps=steps)
