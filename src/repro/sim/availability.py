"""Cloud availability windows (the paper's future-work extension, §VII).

    "a realistic but intricate framework is to consider that cloud
    processors may be dynamically requested by other applications at
    certain time intervals"

A :class:`CloudAvailability` maps each cloud processor to a set of
*unavailable* intervals during which its compute unit cannot execute
jobs (its network ports stay usable: the co-tenant applications of the
quote steal cycles, not bandwidth).  The engine treats window boundaries
as extra events, so schedulers re-decide when a processor (dis)appears.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.errors import ModelError
from repro.core.intervals import Interval
from repro.util.rng import SeedLike, as_generator


@dataclass(frozen=True)
class CloudAvailability:
    """Unavailability intervals per cloud processor.

    ``windows[k]`` is a sorted tuple of disjoint intervals during which
    cloud processor ``k`` cannot compute.  Processors without an entry
    are always available.
    """

    windows: Mapping[int, tuple[Interval, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        boundaries: set[float] = set()
        for k, ivs in self.windows.items():
            if k < 0:
                raise ModelError(f"cloud index must be non-negative, got {k}")
            for a, b in zip(ivs, ivs[1:]):
                if b.start < a.end:
                    raise ModelError(
                        f"unavailability windows of cloud[{k}] must be sorted and disjoint: "
                        f"{a} then {b}"
                    )
            for iv in ivs:
                boundaries.add(iv.start)
                boundaries.add(iv.end)
        object.__setattr__(self, "_boundaries", sorted(boundaries))
        # Per-cloud sorted window-start lists: availability probes bisect
        # plain float lists instead of keyed Interval tuples.
        object.__setattr__(
            self,
            "_starts",
            {k: [iv.start for iv in ivs] for k, ivs in self.windows.items()},
        )

    @classmethod
    def always_available(cls) -> "CloudAvailability":
        """No unavailability at all (the paper's base model)."""
        return cls({})

    def is_available(self, k: int, t: float) -> bool:
        """True when cloud ``k`` may compute at time ``t``."""
        starts = self._starts.get(k)
        if not starts:
            return True
        pos = bisect_right(starts, t) - 1
        return pos < 0 or not self.windows[k][pos].contains_time(t)

    def next_boundary(self, t: float) -> float:
        """Earliest window start/end strictly after ``t`` (inf if none)."""
        b = self._boundaries
        pos = bisect_right(b, t)
        return b[pos] if pos < len(b) else float("inf")

    def interval_key(self, t: float) -> int:
        """Index of the constancy interval of ``t``.

        Window membership is piecewise constant between boundaries and
        every interval is half-open, so :meth:`is_available` answers
        identically for any two instants with equal keys — the outlook
        caches its composed down-state on this.
        """
        return bisect_right(self._boundaries, t)

    def available_until(self, k: int, t: float) -> float:
        """End of the current availability period of cloud ``k`` (inf if open-ended)."""
        if not self.is_available(k, t):
            return t
        ivs = self.windows.get(k, ())
        for iv in ivs:
            if iv.start > t:
                return iv.start
        return float("inf")


def periodic_unavailability(
    n_cloud: int,
    *,
    period: float,
    busy_fraction: float,
    horizon: float,
    stagger: bool = True,
) -> CloudAvailability:
    """Deterministic periodic co-tenancy: each period, the processor is
    taken for ``busy_fraction * period`` time units.

    With ``stagger`` the busy slots of successive processors are offset
    so the whole cloud never disappears at once.
    """
    if not 0 <= busy_fraction < 1:
        raise ModelError(f"busy_fraction must be in [0, 1), got {busy_fraction}")
    if period <= 0 or horizon <= 0:
        raise ModelError("period and horizon must be positive")
    busy = busy_fraction * period
    windows: dict[int, tuple[Interval, ...]] = {}
    if busy <= 0:
        return CloudAvailability({})
    for k in range(n_cloud):
        offset = (k * period / max(1, n_cloud)) if stagger else 0.0
        ivs = []
        start = offset
        while start < horizon:
            ivs.append(Interval(start, start + busy))
            start += period
        windows[k] = tuple(ivs)
    return CloudAvailability(windows)


def random_unavailability(
    n_cloud: int,
    *,
    rate: float,
    mean_duration: float,
    horizon: float,
    seed: SeedLike = None,
) -> CloudAvailability:
    """Poisson co-tenant arrivals with exponential durations, per processor."""
    if rate < 0 or mean_duration <= 0 or horizon <= 0:
        raise ModelError("rate must be >= 0, mean_duration and horizon > 0")
    rng = as_generator(seed)
    windows: dict[int, tuple[Interval, ...]] = {}
    for k in range(n_cloud):
        ivs: list[Interval] = []
        t = 0.0
        while True:
            if rate == 0:
                break
            t += rng.exponential(1.0 / rate)
            if t >= horizon:
                break
            d = rng.exponential(mean_duration)
            if d <= 0.0:
                # A zero draw (measure-zero but possible at the float
                # boundary) would make an invalid zero-length Interval.
                continue
            start = max(t, ivs[-1].end if ivs else 0.0)
            ivs.append(Interval(start, start + d))
            t = start + d
        if ivs:
            windows[k] = tuple(ivs)
    return CloudAvailability(windows)
