"""The resource ledger: grant state for one decision round and across rounds.

The model's resources are exclusive within a time step: each edge unit
has one compute slot, one send port and one receive port; each cloud
processor has one compute slot, one receive port and one send port
(one-port full-duplex, §III).  The ledger owns those booleans and the
grant/release bookkeeping the engine's activation pass runs on.

Two usage modes:

* ``begin_round()`` resets everything to free and the engine re-grants
  from scratch in decision priority order (the always-correct path);
* the *incremental* path keeps grants from the previous round and only
  :meth:`release`\\ s the entries whose request changed — the engine
  uses it when the head of the decision is unchanged since the last
  step, so activation re-evaluates only the decision suffix that the
  last event batch could have affected.

Free-slot counters back :attr:`exhausted`, which lets the activation
scan stop as soon as no grant of any kind can succeed anymore.
"""

from __future__ import annotations

from repro.core.platform import Platform

#: Activity codes used across ledger/kernel/engine (array-friendly).
ACT_UPLINK = 0
ACT_COMPUTE = 1
ACT_DOWNLINK = 2


class ResourceLedger:
    """Boolean grant state of every exclusive resource of the platform."""

    __slots__ = (
        "n_edge",
        "n_cloud",
        "edge_compute",
        "edge_send",
        "edge_recv",
        "cloud_compute",
        "cloud_recv",
        "cloud_send",
        "_free_edge_compute",
        "_free_cloud_compute",
        "_free_edge_send",
        "_free_edge_recv",
        "_free_cloud_recv",
        "_free_cloud_send",
    )

    def __init__(self, platform: Platform):
        self.n_edge = platform.n_edge
        self.n_cloud = platform.n_cloud
        self.begin_round()

    # -- round lifecycle -------------------------------------------------------

    def begin_round(self) -> None:
        """Mark every resource free (a from-scratch grant round)."""
        self.edge_compute = [True] * self.n_edge
        self.edge_send = [True] * self.n_edge
        self.edge_recv = [True] * self.n_edge
        self.cloud_compute = [True] * self.n_cloud
        self.cloud_recv = [True] * self.n_cloud
        self.cloud_send = [True] * self.n_cloud
        self._free_edge_compute = self.n_edge
        self._free_cloud_compute = self.n_cloud
        self._free_edge_send = self.n_edge
        self._free_edge_recv = self.n_edge
        self._free_cloud_recv = self.n_cloud
        self._free_cloud_send = self.n_cloud

    @property
    def exhausted(self) -> bool:
        """True when no further grant of any kind can succeed.

        Exact, not heuristic: every activity needs either a compute slot
        or a (send, recv) port pair, so when all compute slots are taken
        and each direction is missing at least one side of its pair,
        scanning lower-priority requests cannot grant anything.
        """
        return (
            self._free_edge_compute == 0
            and self._free_cloud_compute == 0
            and (self._free_edge_send == 0 or self._free_cloud_recv == 0)
            and (self._free_cloud_send == 0 or self._free_edge_recv == 0)
        )

    # -- fault blocking --------------------------------------------------------
    #
    # A down resource is modelled as pre-claimed for the round: its
    # slots/ports are marked taken before the grant scan runs, so no
    # activity can be granted on it and the `exhausted` early-exit stays
    # exact.  Only valid right after `begin_round()` (the engine blocks
    # down resources at the start of every from-scratch round).

    def block_edge(self, j: int) -> None:
        """Mark crashed edge unit ``j`` fully unusable for this round."""
        if self.edge_compute[j]:
            self.edge_compute[j] = False
            self._free_edge_compute -= 1
        self.block_link(j)

    def block_cloud(self, k: int) -> None:
        """Mark crashed cloud processor ``k`` fully unusable for this round."""
        if self.cloud_compute[k]:
            self.cloud_compute[k] = False
            self._free_cloud_compute -= 1
        if self.cloud_recv[k]:
            self.cloud_recv[k] = False
            self._free_cloud_recv -= 1
        if self.cloud_send[k]:
            self.cloud_send[k] = False
            self._free_cloud_send -= 1

    def block_cloud_compute(self, k: int) -> None:
        """Mark only cloud ``k``'s compute slot taken (planned co-tenancy).

        Availability windows steal cycles, not bandwidth: the ports stay
        grantable while the compute slot is pre-claimed for the round.
        """
        if self.cloud_compute[k]:
            self.cloud_compute[k] = False
            self._free_cloud_compute -= 1

    def block_from_outlook(self, outlook, t: float) -> None:
        """Pre-claim everything the capacity outlook says is down at ``t``.

        The one entry point the engine uses at the start of a
        from-scratch round: crashed resources are blocked whole, clouds
        inside a static co-tenancy window compute-only.  Only valid
        right after :meth:`begin_round`.
        """
        edges, clouds, links, busy = outlook.blocked_at(t)
        for j in edges:
            self.block_edge(j)
        for k in clouds:
            self.block_cloud(k)
        for o in links:
            self.block_link(o)
        for k in busy:
            self.block_cloud_compute(k)

    def block_link(self, o: int) -> None:
        """Mark edge unit ``o``'s access link (both ports) unusable."""
        if self.edge_send[o]:
            self.edge_send[o] = False
            self._free_edge_send -= 1
        if self.edge_recv[o]:
            self.edge_recv[o] = False
            self._free_edge_recv -= 1

    # -- grants ----------------------------------------------------------------

    def grant_edge_compute(self, j: int) -> bool:
        """Claim edge unit ``j``'s compute slot; False if already taken."""
        if self.edge_compute[j]:
            self.edge_compute[j] = False
            self._free_edge_compute -= 1
            return True
        return False

    def grant_cloud_compute(self, k: int) -> bool:
        """Claim cloud processor ``k``'s compute slot; False if taken."""
        if self.cloud_compute[k]:
            self.cloud_compute[k] = False
            self._free_cloud_compute -= 1
            return True
        return False

    def grant_uplink(self, o: int, k: int) -> bool:
        """Claim edge ``o``'s send port and cloud ``k``'s receive port together."""
        if self.edge_send[o] and self.cloud_recv[k]:
            self.edge_send[o] = False
            self.cloud_recv[k] = False
            self._free_edge_send -= 1
            self._free_cloud_recv -= 1
            return True
        return False

    def grant_downlink(self, k: int, o: int) -> bool:
        """Claim cloud ``k``'s send port and edge ``o``'s receive port together."""
        if self.cloud_send[k] and self.edge_recv[o]:
            self.cloud_send[k] = False
            self.edge_recv[o] = False
            self._free_cloud_send -= 1
            self._free_edge_recv -= 1
            return True
        return False

    # -- releases (the incremental path) ---------------------------------------

    def release(self, act: int, o: int, k: int) -> None:
        """Return the resources of one granted activity.

        ``act`` is one of :data:`ACT_UPLINK` / :data:`ACT_COMPUTE` /
        :data:`ACT_DOWNLINK`; ``o`` is the origin edge unit, ``k`` the
        cloud processor (``k < 0`` for an edge compute activity).
        """
        if act == ACT_COMPUTE:
            if k < 0:
                self.edge_compute[o] = True
                self._free_edge_compute += 1
            else:
                self.cloud_compute[k] = True
                self._free_cloud_compute += 1
        elif act == ACT_UPLINK:
            self.edge_send[o] = True
            self.cloud_recv[k] = True
            self._free_edge_send += 1
            self._free_cloud_recv += 1
        else:
            self.cloud_send[k] = True
            self.edge_recv[o] = True
            self._free_cloud_send += 1
            self._free_edge_recv += 1
