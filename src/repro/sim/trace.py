"""Trace recording: turn an engine run into a checkable :class:`Schedule`.

The recorder is an :class:`~repro.sim.hooks.EngineHooks` implementation
— the engine has no trace-specific code; it simply fires ``on_assign``
/ ``on_step`` / ``on_complete`` and the recorder assembles every
attempt start, activity segment and completion into the interval-based
schedule representation of :mod:`repro.core.schedule`, which the
independent validator can then re-check.  Contiguous segments of the
same activity are coalesced by ``IntervalSet``.
"""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.resources import Resource
from repro.core.schedule import Attempt, Schedule
from repro.sim.hooks import EngineHooks
from repro.sim.state import Phase


class TraceRecorder(EngineHooks):
    """Accumulates the execution trace of one simulation run."""

    def __init__(self, instance: Instance):
        self._schedule = Schedule(instance)
        self._open: dict[int, Attempt] = {}

    # -- hook callbacks (how the engine drives the recorder) -------------------

    def on_assign(self, job: int, resource: Resource, now: float) -> None:
        """Open a fresh attempt when the engine applies a (re-)assignment."""
        self.new_attempt(job, resource)

    def on_step(self, t0: float, t1: float, active) -> None:
        """Record one segment per activity that ran during ``[t0, t1)``."""
        for job, phase, _rate in active:
            self.record(job, phase, t0, t1)

    def on_complete(self, job: int, time: float) -> None:
        """Store the completion time when a job leaves the system."""
        self.complete(job, time)

    # -- direct API (tests and standalone use) ---------------------------------

    def new_attempt(self, job: int, resource: Resource) -> None:
        """Open a fresh attempt for ``job`` on ``resource``."""
        self._open[job] = self._schedule.new_attempt(job, resource)

    def record(self, job: int, phase: Phase, start: float, end: float) -> None:
        """Record that ``job`` spent ``[start, end)`` in ``phase``."""
        if end <= start:
            return
        attempt = self._open.get(job)
        if attempt is None:
            raise SimulationError(f"trace: activity for job {job} before any attempt")
        interval = Interval(start, end)
        if phase is Phase.UPLINK:
            attempt.uplink.add(interval)
        elif phase is Phase.COMPUTE:
            attempt.execution.add(interval)
        elif phase is Phase.DOWNLINK:
            attempt.downlink.add(interval)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"trace: cannot record phase {phase}")

    def complete(self, job: int, time: float) -> None:
        """Record the completion time of ``job``."""
        self._schedule.set_completion(job, time)

    def build(self) -> Schedule:
        """Return the assembled schedule."""
        return self._schedule


class NullRecorder:
    """Drop-in no-op recorder used when tracing is disabled (big sweeps)."""

    def new_attempt(self, job: int, resource: Resource) -> None:
        """Ignore."""

    def record(self, job: int, phase: Phase, start: float, end: float) -> None:
        """Ignore."""

    def complete(self, job: int, time: float) -> None:
        """Ignore."""

    def build(self) -> None:
        """There is nothing to build."""
        return None
