"""Trace recording: turn an engine run into a checkable :class:`Schedule`.

The engine reports every attempt start, every activity segment, and
every completion; the recorder assembles them into the interval-based
schedule representation of :mod:`repro.core.schedule`, which the
independent validator can then re-check.  Contiguous segments of the
same activity are coalesced by ``IntervalSet``.
"""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.resources import Resource
from repro.core.schedule import Attempt, Schedule
from repro.sim.state import Phase


class TraceRecorder:
    """Accumulates the execution trace of one simulation run."""

    def __init__(self, instance: Instance):
        self._schedule = Schedule(instance)
        self._open: dict[int, Attempt] = {}

    def new_attempt(self, job: int, resource: Resource) -> None:
        """Open a fresh attempt for ``job`` on ``resource``."""
        self._open[job] = self._schedule.new_attempt(job, resource)

    def record(self, job: int, phase: Phase, start: float, end: float) -> None:
        """Record that ``job`` spent ``[start, end)`` in ``phase``."""
        if end <= start:
            return
        attempt = self._open.get(job)
        if attempt is None:
            raise SimulationError(f"trace: activity for job {job} before any attempt")
        interval = Interval(start, end)
        if phase is Phase.UPLINK:
            attempt.uplink.add(interval)
        elif phase is Phase.COMPUTE:
            attempt.execution.add(interval)
        elif phase is Phase.DOWNLINK:
            attempt.downlink.add(interval)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"trace: cannot record phase {phase}")

    def complete(self, job: int, time: float) -> None:
        """Record the completion time of ``job``."""
        self._schedule.set_completion(job, time)

    def build(self) -> Schedule:
        """Return the assembled schedule."""
        return self._schedule


class NullRecorder:
    """Drop-in no-op recorder used when tracing is disabled (big sweeps)."""

    def new_attempt(self, job: int, resource: Resource) -> None:
        """Ignore."""

    def record(self, job: int, phase: Phase, start: float, end: float) -> None:
        """Ignore."""

    def complete(self, job: int, time: float) -> None:
        """Ignore."""

    def build(self) -> None:
        """There is nothing to build."""
        return None
