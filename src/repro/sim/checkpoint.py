"""Checkpoint/restart policy: opt-in durable progress commits.

The paper's re-execution rule is maximally brutal: any abort — a
scheduler re-assignment or a crash injected by :mod:`repro.faults` —
discards *all* progress.  A :class:`CheckpointPolicy` relaxes this as an
opt-in extension of the attempt lifecycle: the engine periodically
commits a job's progress to durable storage, and every subsequent reset
(:meth:`repro.sim.state.SimState.abort` or a re-assignment) restores the
job to its last committed watermark instead of to scratch.  A crash
mid-compute then loses only the uncommitted tail.

Semantics (enforced by :class:`repro.sim.engine.Engine`):

* **Periodic commits** (``interval``, in work units) happen during the
  compute phase: every time an attempt's committed work grows by
  ``interval``, a commit begins.  A commit is *not* free — it first
  burns ``commit_cost`` extra work units (the overhead of serializing
  state to durable storage), and only when that overhead completes does
  the watermark advance (``CHECKPOINT_COMMITTED`` fires).  A crash
  during the overhead loses the in-flight commit: the job restores to
  the *previous* watermark.
* **Phase-boundary commits** (``phase_boundaries``) persist the staged
  input data when an uplink completes: the upload is durable at the
  boundary (the transfer finished; ``CHECKPOINT_COMMITTED`` fires
  immediately) and the ``commit_cost`` overhead rides the compute phase
  that follows.
* **Durable storage**: a watermark survives re-placement to a different
  resource — that is what the commit overhead buys.  This is *not*
  migration of live state: only explicitly committed progress moves,
  and everything after the last commit is still re-executed.
* **Graceful degradation** (``retry_budget``): after a job's attempts
  have been killed by faults ``retry_budget`` times, the job is
  *abandoned* — it leaves the system uncompleted (``JOB_ABANDONED``
  fires) and is reported through an explicit abandoned-jobs count
  rather than an unbounded stretch.

With no policy (the default everywhere), the simulation is bit-identical
to the historical engine: no watermark arrays are allocated and no
commit boundaries enter the event loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.errors import ModelError


def young_daly_interval(mtbf: float, commit_cost: float) -> float:
    """The Young/Daly optimal commit interval, ``sqrt(2 * mtbf * cost)``.

    The first-order optimum of the classic checkpointing trade-off:
    committing every ``w`` work units costs ``cost / w`` overhead per
    unit of progress, while a failure (exponential, mean ``mtbf``) loses
    ``w / 2`` uncommitted units in expectation — minimized at
    ``w* = sqrt(2 * mtbf * cost)`` [Young '74, Daly '06].  Both
    arguments are in the model's work units (the platform burns work at
    known rates, so work is the natural clock here).
    """
    if not mtbf > 0.0 or not math.isfinite(mtbf):
        raise ModelError(f"Young/Daly mtbf must be positive and finite, got {mtbf}")
    if not commit_cost > 0.0:
        raise ModelError(
            f"Young/Daly needs a positive commit cost, got {commit_cost} "
            "(a free commit has no optimal interval — commit constantly)"
        )
    return math.sqrt(2.0 * mtbf * commit_cost)


@dataclass(frozen=True)
class CheckpointPolicy:
    """Opt-in checkpoint/restart configuration for one run.

    ``interval`` — commit every this many *work units* of compute
    progress (None disables periodic commits).  ``commit_cost`` — extra
    work units each commit burns before the watermark advances.
    ``phase_boundaries`` — also commit the uploaded input data at every
    uplink completion.  ``retry_budget`` — abandon a job after this many
    fault-killed attempts (None leaves retries unbounded).

    ``auto_interval`` defers the periodic interval to run binding: the
    engine resolves it with :meth:`resolved_for` against the fault
    trace's renewal rates (the Young/Daly optimum for the most fragile
    compute domain).  An auto policy carries ``interval=None`` until
    then and requires a positive ``commit_cost`` — the formula is
    degenerate for free commits.
    """

    interval: float | None = None
    commit_cost: float = 0.0
    phase_boundaries: bool = False
    retry_budget: int | None = None
    auto_interval: bool = False

    def __post_init__(self) -> None:
        if self.interval is not None and not self.interval > 0.0:
            raise ModelError(
                f"checkpoint interval must be positive, got {self.interval}"
            )
        if self.commit_cost < 0.0:
            raise ModelError(
                f"checkpoint commit cost must be >= 0, got {self.commit_cost}"
            )
        if self.retry_budget is not None and self.retry_budget < 1:
            raise ModelError(
                f"retry budget must be >= 1, got {self.retry_budget}"
            )
        if self.auto_interval:
            if self.interval is not None:
                raise ModelError(
                    "auto_interval derives the commit interval at run binding; "
                    f"drop the explicit interval ({self.interval})"
                )
            if not self.commit_cost > 0.0:
                raise ModelError(
                    "auto_interval (Young/Daly) needs a positive commit cost, "
                    f"got {self.commit_cost}"
                )

    def resolved_for(self, rates) -> "CheckpointPolicy":
        """The concrete policy for one run's fault model.

        A non-auto policy returns itself.  An auto policy derives its
        periodic interval as the Young/Daly optimum for the smallest
        MTBF among the *compute* domains the trace models (edge, cloud)
        — the conservative choice: commits sized for the most fragile
        processor class (link outages never kill committed compute
        progress, so they don't drive the interval).  With no compute
        fault model there is nothing for periodic commits to protect
        and the periodic rule disables itself (phase-boundary commits
        and the retry budget are unaffected).

        ``rates`` is the trace's :class:`~repro.faults.trace.FaultRates`
        (or None for hand-built traces).
        """
        if not self.auto_interval:
            return self
        mtbfs = []
        if rates is not None:
            if rates.edge is not None:
                mtbfs.append(rates.edge.mtbf)
            if rates.cloud is not None:
                mtbfs.append(rates.cloud.mtbf)
        if not mtbfs:
            return replace(self, auto_interval=False)
        return replace(
            self,
            auto_interval=False,
            interval=young_daly_interval(min(mtbfs), self.commit_cost),
        )

    @property
    def checkpoints_enabled(self) -> bool:
        """Whether any commit rule is active (watermarks are tracked)."""
        return self.interval is not None or self.phase_boundaries or self.auto_interval

    @property
    def degradation_enabled(self) -> bool:
        """Whether jobs can be abandoned after repeated fault aborts."""
        return self.retry_budget is not None
