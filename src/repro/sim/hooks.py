"""Pluggable engine instrumentation (the observer layer of the sim-core).

The engine itself only *simulates*; everything observational — interval
traces, event/decision counters, step-timing profiles, stretch
watermarks — is an :class:`EngineHooks` implementation registered on
the engine.  Hooks see the run through a small set of callbacks:

==============  ============================================================
callback        fired
==============  ============================================================
``on_start``    once, before the first decision
``on_decision`` after every scheduler decision (before it is applied)
``on_assign``   whenever a (re-)assignment opens a new attempt
``on_step``     after every time advance, with the active activities
``on_events``   with every batch of freshly emitted events
``on_abort``    when a fault aborts a job's in-progress attempt
``on_complete`` when a job leaves the system
``on_finish``   once, with the final :class:`~repro.sim.engine.SimulationResult`
==============  ============================================================

The engine pre-binds, per callback, the list of hooks that actually
override it (:class:`HookSet`), so unused callbacks cost nothing in the
hot loop — an engine run with no step hooks performs no per-activity
Python work at all.

Ship-with hooks: :class:`EventCounter` (the engine's own bookkeeping),
:class:`StepTimingProfiler` and :class:`StretchWatermarkMonitor` here,
and :class:`repro.sim.trace.TraceRecorder` for full interval traces.
"""

from __future__ import annotations

import math as _math
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.core.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.resources import Resource
    from repro.sim.decision import Decision
    from repro.sim.events import Event
    from repro.sim.state import Phase
    from repro.sim.view import SimulationView


class EngineHooks:
    """Base class for engine instrumentation; every callback is a no-op.

    Subclass and override only what you need — the engine skips
    callbacks that no registered hook overrides, so a hook pays only
    for what it observes.  ``active`` entries in :meth:`on_step` are
    ``(job, phase, rate)`` tuples in priority (grant) order.

    A hook that wants the scheduler to attach structured provenance to
    each :class:`~repro.sim.decision.Decision` (see
    ``Decision.provenance``) sets the class attribute
    :attr:`wants_decision_provenance`; the engine forwards the request
    to schedulers that support it (``set_provenance``).  Schedulers
    only do the extra bookkeeping when at least one registered hook
    asks for it, so ordinary runs pay nothing.
    """

    #: Set to True on subclasses that consume ``Decision.provenance``.
    wants_decision_provenance = False

    def reset(self) -> None:
        """Return the hook to its just-constructed state.

        The warm worker path of the parallel harness reuses hook
        objects across the runs a worker executes, calling ``reset()``
        before every run.  The default re-runs ``__init__`` — exact for
        every hook built by a zero-argument registry factory
        (:func:`register_hook` requires one), which is why a reset hook
        observes byte-identically to a fresh instance.  Hooks whose
        constructors do work that must not repeat should override.
        """
        self.__init__()

    def on_start(self, view: "SimulationView") -> None:
        """Called once before the first decision."""

    def on_decision(self, now: float, decision: "Decision") -> None:
        """Called after every scheduler decision, before it is applied."""

    def on_assign(self, job: int, resource: "Resource", now: float) -> None:
        """Called when ``job`` opens a new attempt on ``resource``."""

    def on_step(
        self, t0: float, t1: float, active: Sequence[tuple[int, "Phase", float]]
    ) -> None:
        """Called after time advanced from ``t0`` to ``t1``; ``active``
        lists the activities that ran during ``[t0, t1)``."""

    def on_events(self, events: Sequence["Event"]) -> None:
        """Called with every batch of freshly emitted events."""

    def on_abort(self, job: int, time: float) -> None:
        """Called when a fault aborts ``job``'s attempt at ``time``
        (progress lost; the job is back to pending)."""

    def on_complete(self, job: int, time: float) -> None:
        """Called when ``job`` leaves the system at ``time``."""

    def on_finish(self, result) -> None:
        """Called once with the final :class:`SimulationResult`."""


def _overrides(hook: EngineHooks, name: str) -> bool:
    """True when ``hook``'s class overrides callback ``name``."""
    return getattr(type(hook), name, None) is not getattr(EngineHooks, name)


class HookSet:
    """Pre-bound dispatch lists, one per callback, for a set of hooks.

    Built once per engine run.  Each ``self.<name>`` attribute is the
    list of bound methods of the hooks that override ``on_<name>``; the
    engine only iterates non-empty lists, and the boolean ``has_step``
    / ``has_assign`` flags let it skip building callback arguments
    entirely when nobody listens.
    """

    def __init__(self, hooks: Sequence[EngineHooks]):
        self.hooks = list(hooks)
        self.start = [h.on_start for h in self.hooks if _overrides(h, "on_start")]
        self.decision = [h.on_decision for h in self.hooks if _overrides(h, "on_decision")]
        self.assign = [h.on_assign for h in self.hooks if _overrides(h, "on_assign")]
        self.step = [h.on_step for h in self.hooks if _overrides(h, "on_step")]
        self.events = [h.on_events for h in self.hooks if _overrides(h, "on_events")]
        self.abort = [h.on_abort for h in self.hooks if _overrides(h, "on_abort")]
        self.complete = [h.on_complete for h in self.hooks if _overrides(h, "on_complete")]
        self.finish = [h.on_finish for h in self.hooks if _overrides(h, "on_finish")]
        self.has_step = bool(self.step)
        self.has_assign = bool(self.assign)
        self.has_complete = bool(self.complete)
        self.wants_provenance = any(
            getattr(type(h), "wants_decision_provenance", False) for h in self.hooks
        )


class EventCounter(EngineHooks):
    """Counts events and decisions (the engine's former hard-wired tallies)."""

    def __init__(self) -> None:
        self.n_events = 0
        self.n_decisions = 0

    def on_decision(self, now: float, decision) -> None:
        """Count one scheduler invocation."""
        self.n_decisions += 1

    def on_events(self, events) -> None:
        """Count the batch of emitted events."""
        self.n_events += len(events)


@dataclass
class StepTimingReport:
    """Summary of engine-step wall times collected by :class:`StepTimingProfiler`."""

    n_steps: int
    total_s: float
    mean_s: float
    p50_s: float
    p99_s: float
    max_s: float

    def __str__(self) -> str:
        return (
            f"{self.n_steps} steps, total {self.total_s * 1e3:.2f} ms, "
            f"mean {self.mean_s * 1e6:.1f} us, p50 {self.p50_s * 1e6:.1f} us, "
            f"p99 {self.p99_s * 1e6:.1f} us, max {self.max_s * 1e6:.1f} us"
        )


def _nearest_rank(sorted_values: list[float], q: float) -> float:
    """Nearest-rank ``q``-quantile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = _math.ceil(q * len(sorted_values))
    return sorted_values[min(len(sorted_values), max(1, rank)) - 1]


class StepTimingProfiler(EngineHooks):
    """Wall-clock profile of every engine step (decision → advance).

    A lightweight alternative to full tracing for large sweeps: two
    ``perf_counter`` calls per step, no per-activity work.  ``report()``
    summarizes; ``step_times`` keeps the raw per-step durations.
    """

    def __init__(self) -> None:
        self.step_times: list[float] = []
        self._t0: float | None = None

    def on_decision(self, now: float, decision) -> None:
        """Stamp the start of the step."""
        self._t0 = _time.perf_counter()

    def on_step(self, t0: float, t1: float, active) -> None:
        """Close the step opened by the last decision."""
        if self._t0 is not None:
            self.step_times.append(_time.perf_counter() - self._t0)
            self._t0 = None

    def on_finish(self, result) -> None:
        """Flush a step left open when the run ends without an ``on_step``
        (e.g. the terminal decision completed the last job instantly)."""
        if self._t0 is not None:
            self.step_times.append(_time.perf_counter() - self._t0)
            self._t0 = None

    def report(self) -> StepTimingReport:
        """Aggregate the collected step times."""
        n = len(self.step_times)
        total = float(sum(self.step_times))
        ordered = sorted(self.step_times)
        return StepTimingReport(
            n_steps=n,
            total_s=total,
            mean_s=total / n if n else 0.0,
            p50_s=_nearest_rank(ordered, 0.5),
            p99_s=_nearest_rank(ordered, 0.99),
            max_s=ordered[-1] if n else 0.0,
        )


@dataclass
class WatermarkSample:
    """One increase of the running max-stretch watermark."""

    time: float
    job: int
    stretch: float


class StretchWatermarkMonitor(EngineHooks):
    """Tracks the running maximum per-job stretch as completions occur.

    The final ``watermark`` equals the run's max-stretch and
    ``argmax_job`` names the job that attained it (-1 before any
    completion); ``history`` records every time the watermark rose
    (when, which job, to what), which is how the objective builds up
    over a run — useful to see *which* completions drive the maximum
    without recording a trace.
    """

    def __init__(self) -> None:
        self.watermark = 0.0
        self.argmax_job = -1
        self.history: list[WatermarkSample] = []
        self._release = None
        self._min_time = None

    def on_start(self, view) -> None:
        """Capture the static per-job quantities of the instance."""
        self._release = view.instance.release
        self._min_time = view.instance.min_time

    def on_complete(self, job: int, time: float) -> None:
        """Update the watermark with ``job``'s realized stretch."""
        stretch = (time - self._release[job]) / self._min_time[job]
        if stretch > self.watermark:
            self.watermark = float(stretch)
            self.argmax_job = job
            self.history.append(WatermarkSample(time=time, job=job, stretch=self.watermark))


@dataclass
class _HookRegistry:
    """Name → factory registry used by CLIs and parallel workers."""

    factories: dict = field(default_factory=dict)


_REGISTRY = _HookRegistry()


def register_hook(name: str, factory) -> None:
    """Register a zero-argument hook factory under ``name``.

    Names travel where closures cannot (process pools, CLI flags): a
    worker or command line asks for hooks by name via :func:`make_hooks`.
    Names are unique — re-registering one is a :class:`ModelError`, so a
    typo'd or colliding registration fails at import time instead of
    silently shadowing an existing hook.
    """
    if name in _REGISTRY.factories:
        raise ModelError(
            f"hook {name!r} is already registered; hook names must be unique"
        )
    _REGISTRY.factories[name] = factory


def make_hooks(names: Sequence[str] | str | None) -> list[EngineHooks]:
    """Instantiate the named hooks (a single name or a sequence)."""
    if not names:
        return []
    if isinstance(names, str):
        names = [names]
    hooks = []
    for name in names:
        if name not in _REGISTRY.factories:
            known = ", ".join(sorted(_REGISTRY.factories)) or "(none)"
            raise ModelError(f"unknown hook {name!r}; registered: {known}")
        hooks.append(_REGISTRY.factories[name]())
    return hooks


register_hook("counter", EventCounter)
register_hook("profile", StepTimingProfiler)
register_hook("watermark", StretchWatermarkMonitor)
