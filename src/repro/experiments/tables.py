"""Plain-text rendering of experiment results (the "figures" as tables).

The paper's figures are line plots (one series per heuristic over the
sweep variable); this module prints the same series as aligned text
tables and exports raw rows as CSV for external plotting.
"""

from __future__ import annotations

import io
from typing import Sequence

from repro.experiments.runner import AggregateRow, ResultRow


def format_series_table(agg: Sequence[AggregateRow], *, x_label: str = "x") -> str:
    """One row per x, one max-stretch column per scheduler (a figure-as-table)."""
    if not agg:
        return "(no data)"
    schedulers: list[str] = []
    xs: list[float] = []
    for row in agg:
        if row.scheduler not in schedulers:
            schedulers.append(row.scheduler)
        if row.x not in xs:
            xs.append(row.x)
    cell = {(row.x, row.scheduler): row for row in agg}

    header = [x_label] + [f"{s} (max-stretch)" for s in schedulers]
    lines = [header]
    for x in xs:
        line = [f"{x:g}"]
        for s in schedulers:
            row = cell.get((x, s))
            if row is None:
                line.append("-")
            else:
                spread = f" ±{row.max_stretch_std:.2f}" if row.n > 1 else ""
                line.append(f"{row.max_stretch_mean:.3f}{spread}")
        lines.append(line)
    return _align(lines)


def format_timing_table(agg: Sequence[AggregateRow], *, x_label: str = "x") -> str:
    """Same layout, but scheduling wall-clock seconds per cell."""
    if not agg:
        return "(no data)"
    schedulers: list[str] = []
    xs: list[float] = []
    for row in agg:
        if row.scheduler not in schedulers:
            schedulers.append(row.scheduler)
        if row.x not in xs:
            xs.append(row.x)
    cell = {(row.x, row.scheduler): row for row in agg}

    header = [x_label] + [f"{s} (s)" for s in schedulers]
    lines = [header]
    for x in xs:
        line = [f"{x:g}"]
        for s in schedulers:
            row = cell.get((x, s))
            line.append("-" if row is None else f"{row.wall_time_mean:.4f}")
        lines.append(line)
    return _align(lines)


def rows_to_csv(rows: Sequence[ResultRow]) -> str:
    """Raw result rows as CSV text."""
    out = io.StringIO()
    if not rows:
        return ""
    fields = list(rows[0].as_dict().keys())
    out.write(",".join(fields) + "\n")
    for row in rows:
        d = row.as_dict()
        out.write(",".join(str(d[f]) for f in fields) + "\n")
    return out.getvalue()


def _align(lines: list[list[str]]) -> str:
    widths = [max(len(line[c]) for line in lines) for c in range(len(lines[0]))]
    rendered = []
    for idx, line in enumerate(lines):
        rendered.append("  ".join(cell.rjust(w) for cell, w in zip(line, widths)))
        if idx == 0:
            rendered.append("  ".join("-" * w for w in widths))
    return "\n".join(rendered)
