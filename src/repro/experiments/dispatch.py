"""Cost-aware dynamic dispatch for sweep cells.

The parallel harness used to fan cells out with ``pool.map`` and a
static chunksize, which is exactly the classic list-scheduling straggler
problem applied to ourselves: sweep cells differ in cost by an order of
magnitude across load/MTBF points, and a cheap cell stuck behind an
expensive one in the same chunk idles a worker at the tail of the sweep.
The fix is the classic LPT rule (longest cell first — Srivastav &
Trystram's list-scheduling bound applies verbatim): cells are submitted
*individually*, in descending predicted-cost order, over a bounded
in-flight window, so the expensive cells start first and the cheap ones
pack the tail.

The cost model is deliberately coarse.  It only has to *rank* cells, not
price them: each :class:`~repro.experiments.config.SweepPoint` may carry
a ``cost_hint`` (builders supply domain knowledge — e.g. the fault study
knows that a smaller MTBF means more re-executions and a longer run),
scaled by the roster size since every cell runs all schedulers.  Points
without a hint predict a uniform cost, which degenerates dispatch to
serial cell order — never worse than the historical behavior.

Because every cell derives its RNG stream from the root seed alone,
dispatch order is free to change: rows are byte-identical under any
submission or completion order.
"""

from __future__ import annotations

import os

from repro.core.errors import ModelError
from repro.experiments.config import ExperimentSpec

#: In-flight cells per usable core; 2 keeps every worker fed while one
#: result is in transit without building a deep queue of stale submits.
WINDOW_PER_CORE = 2


def predict_cell_cost(spec: ExperimentSpec, point_index: int) -> float:
    """Predicted relative cost of one (point, rep) cell of ``spec``.

    ``cost_hint`` is a unitless relative weight (only the ordering it
    induces matters); cells of the same point cost the same, so reps
    inherit the point's prediction.  Missing or non-positive hints fall
    back to 1.0 — uniform cost, serial dispatch order.
    """
    hint = getattr(spec.points[point_index], "cost_hint", None)
    base = float(hint) if hint is not None and hint > 0 else 1.0
    return base * len(spec.schedulers)


def dispatch_order(spec: ExperimentSpec) -> list[tuple[int, int]]:
    """All (point, rep) cells of ``spec`` in submission order.

    Descending predicted cost, with (point, rep) as the deterministic
    tie-break so two runs of the same sweep always submit identically.
    """
    cells = [
        (point_index, rep)
        for point_index in range(len(spec.points))
        for rep in range(spec.n_reps)
    ]
    cost = {p: predict_cell_cost(spec, p) for p in range(len(spec.points))}
    cells.sort(key=lambda cell: (-cost[cell[0]], cell[0], cell[1]))
    return cells


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def effective_window(n_workers: int, usable: int | None = None) -> int:
    """Bounded in-flight window for a pool of ``n_workers``.

    ``min(n_workers, usable cores) * WINDOW_PER_CORE``: on a machine
    with fewer cores than requested workers the window (and the pool,
    see the harness) shrinks to what the hardware can actually run —
    oversubscribing a small box buys context switches, not throughput.
    """
    if n_workers < 1:
        raise ModelError(f"n_workers must be positive, got {n_workers}")
    if usable is None:
        usable = usable_cores()
    return max(1, min(n_workers, usable) * WINDOW_PER_CORE)
