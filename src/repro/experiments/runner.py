"""Executes experiment specs and aggregates the result rows.

For every (sweep point, replication) the runner draws one instance from
a spawned seed and runs *all* schedulers on that same instance — paired
comparisons, as in the paper, where each plotted point averages the
heuristics over a common pool of generated instances.
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict, dataclass
from typing import Sequence

import numpy as np

import repro.obs.monitors  # noqa: F401 — registers the telemetry hook names
import repro.obs.tracing  # noqa: F401 — registers the "tracing" hook name
from repro.core.errors import CellTimeoutError, ModelError
from repro.experiments.config import ExperimentSpec
from repro.obs.telemetry import collect_telemetry, merge_telemetry
from repro.obs.tracing import collect_trace
from repro.sim.engine import simulate
from repro.sim.hooks import make_hooks
from repro.util.rng import spawn_generator


@dataclass(frozen=True)
class ResultRow:
    """One (point, replication, scheduler) measurement.

    ``telemetry`` is the run's
    :meth:`~repro.obs.telemetry.RunTelemetry.to_dict` snapshot when the
    cell was instrumented with telemetry-source hooks, else None.  It
    is a plain dict so rows pickle across process pools losslessly.
    ``trace`` is likewise the run's trace payload
    (:meth:`~repro.obs.tracing.RunTracer.payload`) when the cell was
    instrumented with ``tracing``, else None; both ride the same
    pickle/checkpoint paths, so serial and parallel sweeps produce
    byte-identical traces.
    """

    experiment: str
    x: float
    scheduler: str
    rep: int
    max_stretch: float
    avg_stretch: float
    makespan: float
    wall_time: float
    n_events: int
    n_reexecutions: int
    n_abandoned: int = 0
    telemetry: dict | None = None
    trace: dict | None = None

    def as_dict(self) -> dict:
        """Plain-dict view of the scalar fields (CSV/JSON export).

        Telemetry and trace are deliberately excluded — they are
        structured, not columnar; the JSONL sinks
        (:mod:`repro.obs.sinks`, :mod:`repro.obs.tracing`) are their
        export paths.
        """
        d = asdict(self)
        del d["telemetry"]
        del d["trace"]
        return d


@dataclass(frozen=True)
class AggregateRow:
    """Mean/std over the replications of one (point, scheduler).

    ``telemetry`` merges the replications' snapshots (counters add,
    gauges/series average, histograms pool); None when uninstrumented.
    """

    experiment: str
    x: float
    scheduler: str
    n: int
    max_stretch_mean: float
    max_stretch_std: float
    avg_stretch_mean: float
    wall_time_mean: float
    reexec_mean: float
    telemetry: dict | None = None


class WarmState:
    """Reusable per-process execution state for :func:`run_cell`.

    One ``WarmState`` serves all cells of *one* spec (the parallel
    harness scopes it to its per-worker spec cache entry).  It keeps:

    * one scheduler object per ``reusable`` roster entry — safe because
      a reusable spec's factory ignores its generator argument (so
      skipping later factory calls perturbs no RNG stream) and the
      engine's ``scheduler.start(view)`` contract wipes all per-run
      state (see ``tests/schedulers/test_ssf_edf.py``); non-reusable
      entries (e.g. ``random``) are rebuilt from the cell's generator
      every run, exactly as the cold path does;
    * one hook list per instrument tuple, ``reset()`` before every run
      (:meth:`repro.sim.hooks.EngineHooks.reset`), so a warm hook
      observes byte-identically to a fresh one.

    ``instance_builds`` counts instance generations (one per cell by
    construction — all schedulers share the cell's instance); the
    harness exports it as ``harness.instance.builds`` and CI pins it to
    exactly n_points × n_reps.
    """

    def __init__(self) -> None:
        self._schedulers: dict[int, object] = {}
        self._hooks: dict[tuple[str, ...], list] = {}
        self.instance_builds = 0

    def scheduler_for(self, index: int, sched_spec, rng):
        """The roster entry's scheduler: cached when reusable."""
        if not sched_spec.reusable:
            return sched_spec.factory(rng)
        scheduler = self._schedulers.get(index)
        if scheduler is None:
            scheduler = self._schedulers[index] = sched_spec.factory(rng)
        return scheduler

    def hooks_for(self, instrument: Sequence[str] | None) -> list:
        """The instrument tuple's hook list, reset to fresh state."""
        key = tuple(instrument) if instrument else ()
        hooks = self._hooks.get(key)
        if hooks is None:
            hooks = self._hooks[key] = make_hooks(instrument)
        else:
            for hook in hooks:
                hook.reset()
        return hooks


def run_cell(
    spec: ExperimentSpec,
    point_index: int,
    rep: int,
    *,
    instrument: Sequence[str] | None = None,
    warm: WarmState | None = None,
) -> list[ResultRow]:
    """Run one (sweep point, replication) cell: all schedulers on the
    cell's instance.  The cell's RNG stream is re-derived from the
    spec's root seed (only this cell's child is spawned, in O(1)), so
    cells can be executed in any order (or in different processes) and
    still reproduce the serial results.  ``instrument`` names
    registered engine hooks (see :func:`repro.sim.hooks.register_hook`)
    instantiated fresh for every scheduler run; passing a
    :class:`WarmState` instead reuses that state's scheduler/hook
    objects under their reset contracts — rows are byte-identical
    either way."""
    rng = spawn_generator(spec.seed, point_index * spec.n_reps + rep)
    point = spec.points[point_index]

    rows: list[ResultRow] = []
    instance = point.make_instance(rng)
    if warm is not None:
        warm.instance_builds += 1
    availability = (
        point.make_availability(instance, rng)
        if point.make_availability is not None
        else None
    )
    # Faults draw after availability, always in this order, so adding a
    # fault model to an experiment never perturbs its instance stream.
    faults = (
        point.make_faults(instance, rng)
        if point.make_faults is not None
        else None
    )
    for sched_index, sched_spec in enumerate(spec.schedulers):
        if warm is not None:
            scheduler = warm.scheduler_for(sched_index, sched_spec, rng)
            hooks = warm.hooks_for(instrument)
        else:
            scheduler = sched_spec.factory(rng)
            hooks = make_hooks(instrument)
        t0 = time.perf_counter()
        try:
            result = simulate(
                instance,
                scheduler,
                availability=availability,
                faults=faults,
                checkpoint=sched_spec.checkpoint,
                record_trace=False,
                hooks=hooks,
            )
        except CellTimeoutError:
            raise
        except Exception as exc:
            raise ModelError(
                f"scheduler {sched_spec.label!r} failed on cell "
                f"(x={point.x:g}, rep={rep}, root_seed={spec.seed}): "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        wall = time.perf_counter() - t0
        telemetry = collect_telemetry(hooks)
        trace = collect_trace(hooks)
        rows.append(
            ResultRow(
                experiment=spec.name,
                x=float(point.x),
                scheduler=sched_spec.label,
                rep=rep,
                max_stretch=result.max_stretch,
                avg_stretch=result.average_stretch,
                makespan=result.makespan,
                wall_time=wall,
                n_events=result.n_events,
                n_reexecutions=result.n_reexecutions,
                n_abandoned=result.n_abandoned,
                telemetry=None if telemetry is None else telemetry.to_dict(),
                trace=trace,
            )
        )
    return rows


def run_experiment(
    spec: ExperimentSpec,
    *,
    progress: bool = False,
    instrument: Sequence[str] | None = None,
) -> list[ResultRow]:
    """Run every (point, rep, scheduler) combination of ``spec``.

    ``instrument`` forwards registered hook names to every cell (rows
    never need the interval trace, so tracing stays off either way).
    """
    rows: list[ResultRow] = []
    for point_index, point in enumerate(spec.points):
        for rep in range(spec.n_reps):
            rows.extend(run_cell(spec, point_index, rep, instrument=instrument))
            if progress:
                print(
                    f"[{spec.name}] x={point.x:g} rep={rep + 1}/{spec.n_reps} done",
                    file=sys.stderr,
                )
    return rows


def aggregate(rows: list[ResultRow]) -> list[AggregateRow]:
    """Collapse replications; rows grouped by (experiment, x, scheduler)."""
    groups: dict[tuple[str, float, str], list[ResultRow]] = {}
    order: list[tuple[str, float, str]] = []
    for row in rows:
        key = (row.experiment, row.x, row.scheduler)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)

    out = []
    for key in order:
        group = groups[key]
        ms = np.array([r.max_stretch for r in group])
        telemetry = merge_telemetry(r.telemetry for r in group)
        out.append(
            AggregateRow(
                experiment=key[0],
                x=key[1],
                scheduler=key[2],
                n=len(group),
                max_stretch_mean=float(ms.mean()),
                max_stretch_std=float(ms.std(ddof=1)) if len(group) > 1 else 0.0,
                avg_stretch_mean=float(np.mean([r.avg_stretch for r in group])),
                wall_time_mean=float(np.mean([r.wall_time for r in group])),
                reexec_mean=float(np.mean([r.n_reexecutions for r in group])),
                telemetry=None if telemetry is None else telemetry.to_dict(),
            )
        )
    return out
