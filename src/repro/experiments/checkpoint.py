"""Incremental JSONL checkpointing of completed sweep cells.

A sweep that dies halfway — machine reboot, OOM kill, a SIGKILL'd
driver — should not throw away the cells it finished.  The harness
appends one JSONL record per completed (point, replication) cell,
committed to the OS in *groups* (``group_size`` records buffered per
write+flush; 1 restores the legacy per-cell durability), so the file
survives a kill of the process at any instant modulo the uncommitted
tail of the current group and a torn final line, both of which are
detected and dropped on load.  ``--resume`` then re-runs only the
missing cells;
because every cell's RNG stream is derived from the root seed alone
(:func:`repro.util.rng.spawn_generator`), the re-run cells are
byte-identical to what an uninterrupted run would have produced, and so
is the merged result.

File layout (one JSON object per line)::

    {"schema": "repro.cells/1", "kind": "header", "experiment": ..., "overrides": {...}}
    {"kind": "cell", "point": 0, "rep": 0, "rows": [{...}, ...]}
    ...

The header pins the sweep parameters; resuming with a different
experiment or different overrides is a :class:`ModelError` rather than
a silently inconsistent merge.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Mapping

from repro.core.errors import ModelError
from repro.experiments.runner import ResultRow

#: Schema tag of cell-checkpoint files.
CELLS_SCHEMA = "repro.cells/1"


def _dumps(obj) -> str:
    """Canonical JSON: sorted keys, no whitespace (byte-stable records)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def row_to_dict(row: ResultRow) -> dict:
    """Full dict view of a row, telemetry included (checkpoint payload)."""
    return asdict(row)


def row_from_dict(data: Mapping) -> ResultRow:
    """Rebuild a :class:`ResultRow` from :func:`row_to_dict` output.

    JSON round-trips Python floats exactly (``repr`` semantics), so a
    restored row compares equal to the original, telemetry included.
    """
    try:
        return ResultRow(**data)
    except TypeError as exc:
        raise ModelError(f"malformed checkpoint row: {exc}") from exc


class CheckpointStore:
    """Append-only JSONL store of completed cells for one sweep.

    Lifecycle: construct, optionally :meth:`load_completed` (the resume
    path), then :meth:`start` before the first :meth:`append`.  The
    store tolerates a torn final line (a record the writing process was
    killed inside): the tail is dropped on load and truncated away
    before appending resumes.

    ``group_size`` sets the group-commit granularity: appended records
    are buffered in memory and committed (one write + flush, optionally
    fsync'd) every ``group_size`` records and on :meth:`close`.  A kill
    can therefore lose at most the last ``group_size - 1`` cells — a
    deliberate durability/throughput trade the caller picks; the
    default 1 keeps the historical per-cell guarantee.  ``fsync=True``
    additionally forces each commit to stable storage (survives power
    loss, not just process death).
    """

    def __init__(
        self,
        path: str,
        *,
        experiment: str,
        overrides: Mapping,
        group_size: int = 1,
        fsync: bool = False,
    ) -> None:
        if group_size < 1:
            raise ModelError(f"group_size must be positive, got {group_size}")
        self.path = path
        self.experiment = experiment
        self.overrides = dict(overrides)
        self.group_size = int(group_size)
        self.fsync = bool(fsync)
        self._fh = None
        self._valid_bytes: int | None = None
        self._buffer: list[str] = []

    # -- loading (resume) ------------------------------------------------------

    def load_completed(self) -> dict[tuple[int, int], list[ResultRow]]:
        """Completed cells recorded by a previous run of the same sweep.

        Returns ``{(point, rep): rows}``.  Missing or empty files are an
        empty dict (a resume of a sweep that never started is just a
        start).  A header that names a different experiment or different
        overrides is a :class:`ModelError`; a torn final line is dropped.
        """
        try:
            with open(self.path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            return {}
        if not blob:
            return {}
        if blob.endswith(b"\n"):
            keep = blob
        elif b"\n" in blob:
            keep = blob[: blob.rfind(b"\n") + 1]
        else:
            keep = b""
        self._valid_bytes = len(keep)
        completed: dict[tuple[int, int], list[ResultRow]] = {}
        for lineno, line in enumerate(keep.decode("utf-8").splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ModelError(
                    f"corrupt checkpoint {self.path!r} at line {lineno}: {exc}"
                ) from exc
            if lineno == 1:
                self._check_header(record)
                continue
            if record.get("kind") != "cell":
                raise ModelError(
                    f"checkpoint {self.path!r} line {lineno}: expected a cell "
                    f"record, got kind={record.get('kind')!r}"
                )
            rows = [row_from_dict(d) for d in record["rows"]]
            completed[(int(record["point"]), int(record["rep"]))] = rows
        return completed

    def _check_header(self, record: Mapping) -> None:
        if record.get("schema") != CELLS_SCHEMA or record.get("kind") != "header":
            raise ModelError(
                f"{self.path!r} is not a cell checkpoint (schema "
                f"{record.get('schema')!r}, expected {CELLS_SCHEMA!r})"
            )
        if record.get("experiment") != self.experiment:
            raise ModelError(
                f"checkpoint {self.path!r} belongs to experiment "
                f"{record.get('experiment')!r}, not {self.experiment!r}; refusing to mix"
            )
        if record.get("overrides") != self.overrides:
            raise ModelError(
                f"checkpoint {self.path!r} was written with overrides "
                f"{record.get('overrides')!r} but this run uses {self.overrides!r}; "
                "resume with the same --reps/--n-jobs/--seed or start fresh"
            )

    # -- writing ---------------------------------------------------------------

    def start(self, *, fresh: bool) -> None:
        """Open the store for appending.

        ``fresh=True`` truncates any existing file and writes a new
        header; ``fresh=False`` (resume) keeps the valid prefix found by
        :meth:`load_completed`, truncating a torn tail first.
        """
        exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if fresh or not exists or self._valid_bytes == 0:
            self._fh = open(self.path, "w", encoding="utf-8")
            header = {
                "schema": CELLS_SCHEMA,
                "kind": "header",
                "experiment": self.experiment,
                "overrides": self.overrides,
            }
            self._fh.write(_dumps(header) + "\n")
            self._fh.flush()
            return
        if self._valid_bytes is not None and self._valid_bytes < os.path.getsize(self.path):
            with open(self.path, "r+b") as fh:
                fh.truncate(self._valid_bytes)
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, point: int, rep: int, rows: list[ResultRow]) -> None:
        """Record one completed cell.

        The record is committed (written + flushed) as soon as the
        in-memory group reaches ``group_size`` records; with the
        default group size of 1 that is immediately, so a kill at any
        later instant cannot lose the cell."""
        if self._fh is None:
            raise ModelError("CheckpointStore.append before start()")
        record = {
            "kind": "cell",
            "point": point,
            "rep": rep,
            "rows": [row_to_dict(r) for r in rows],
        }
        self._buffer.append(_dumps(record) + "\n")
        if len(self._buffer) >= self.group_size:
            self.commit()

    def commit(self) -> None:
        """Force the buffered records to the OS (and to disk if
        ``fsync``); a no-op when the buffer is empty."""
        if not self._buffer:
            return
        if self._fh is None:
            raise ModelError("CheckpointStore.commit before start()")
        self._fh.write("".join(self._buffer))
        self._buffer.clear()
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Commit any buffered records and close the file (idempotent)."""
        if self._fh is not None:
            self.commit()
            self._fh.close()
            self._fh = None
