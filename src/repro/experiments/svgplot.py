"""Dependency-free SVG line charts for experiment series.

matplotlib is not a dependency of this package; this tiny writer turns
aggregated experiment rows into the paper's figure style — one line per
heuristic, the sweep variable on the x axis (optionally log-scaled),
mean max-stretch on the y axis with ±σ whiskers.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Sequence

from repro.core.errors import ModelError
from repro.experiments.runner import AggregateRow

#: Line colors per series, cycled (colorblind-safe-ish palette).
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#F0E442", "#56B4E9")

_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 60, 160, 30, 50


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    if hi <= lo:
        return [lo]
    step = (hi - lo) / (n - 1)
    return [lo + i * step for i in range(n)]


def render_series_svg(
    agg: Sequence[AggregateRow],
    *,
    title: str = "",
    x_label: str = "x",
    y_label: str = "max-stretch",
    width: int = 640,
    height: int = 400,
    log_x: bool = False,
    show_std: bool = True,
) -> str:
    """Render aggregated rows as an SVG document (string)."""
    if not agg:
        raise ModelError("no data to plot")

    schedulers: list[str] = []
    for row in agg:
        if row.scheduler not in schedulers:
            schedulers.append(row.scheduler)
    series = {
        s: sorted(
            [r for r in agg if r.scheduler == s], key=lambda r: r.x
        )
        for s in schedulers
    }

    def tx(x: float) -> float:
        return math.log10(x) if log_x else x

    xs = [tx(r.x) for r in agg]
    ys_hi = [r.max_stretch_mean + (r.max_stretch_std if show_std else 0) for r in agg]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys_hi) * 1.05 or 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    plot_w = width - _MARGIN_L - _MARGIN_R
    plot_h = height - _MARGIN_T - _MARGIN_B

    def px(x: float) -> float:
        return _MARGIN_L + (tx(x) - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return _MARGIN_T + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="18" text-anchor="middle" font-size="14">'
            f"{_escape(title)}</text>"
        )

    # Axes.
    x0, y0 = _MARGIN_L, _MARGIN_T + plot_h
    parts.append(
        f'<line x1="{x0}" y1="{y0}" x2="{x0 + plot_w}" y2="{y0}" stroke="black"/>'
    )
    parts.append(f'<line x1="{x0}" y1="{_MARGIN_T}" x2="{x0}" y2="{y0}" stroke="black"/>')
    parts.append(
        f'<text x="{x0 + plot_w / 2}" y="{height - 8}" text-anchor="middle">'
        f"{_escape(x_label)}</text>"
    )
    parts.append(
        f'<text x="14" y="{_MARGIN_T + plot_h / 2}" text-anchor="middle" '
        f'transform="rotate(-90 14 {_MARGIN_T + plot_h / 2})">{_escape(y_label)}</text>'
    )

    # Ticks.
    x_values = sorted({r.x for r in agg})
    tick_xs = x_values if len(x_values) <= 8 else _ticks(min(x_values), max(x_values))
    for v in tick_xs:
        parts.append(
            f'<line x1="{px(v)}" y1="{y0}" x2="{px(v)}" y2="{y0 + 4}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{px(v)}" y="{y0 + 18}" text-anchor="middle">{v:g}</text>'
        )
    for v in _ticks(y_lo, y_hi):
        parts.append(
            f'<line x1="{x0 - 4}" y1="{py(v)}" x2="{x0}" y2="{py(v)}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{x0 - 8}" y="{py(v) + 4}" text-anchor="end">{v:.3g}</text>'
        )
        parts.append(
            f'<line x1="{x0}" y1="{py(v)}" x2="{x0 + plot_w}" y2="{py(v)}" '
            f'stroke="#dddddd"/>'
        )

    # Series.
    for idx, name in enumerate(schedulers):
        color = PALETTE[idx % len(PALETTE)]
        rows = series[name]
        points = " ".join(f"{px(r.x):.1f},{py(r.max_stretch_mean):.1f}" for r in rows)
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" stroke-width="2"/>'
        )
        for r in rows:
            parts.append(
                f'<circle cx="{px(r.x):.1f}" cy="{py(r.max_stretch_mean):.1f}" '
                f'r="3" fill="{color}"/>'
            )
            if show_std and r.max_stretch_std > 0:
                top = py(r.max_stretch_mean + r.max_stretch_std)
                bot = py(max(0.0, r.max_stretch_mean - r.max_stretch_std))
                parts.append(
                    f'<line x1="{px(r.x):.1f}" y1="{top:.1f}" x2="{px(r.x):.1f}" '
                    f'y2="{bot:.1f}" stroke="{color}" stroke-width="1"/>'
                )
        # Legend entry.
        ly = _MARGIN_T + 16 * idx + 8
        lx = _MARGIN_L + plot_w + 12
        parts.append(
            f'<line x1="{lx}" y1="{ly}" x2="{lx + 18}" y2="{ly}" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        parts.append(f'<text x="{lx + 24}" y="{ly + 4}">{_escape(name)}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def save_series_svg(agg: Sequence[AggregateRow], path: str | Path, **kwargs) -> None:
    """Write :func:`render_series_svg` output to a file."""
    Path(path).write_text(render_series_svg(agg, **kwargs))
