"""Experiment specifications: what to sweep, which policies, how many reps.

An :class:`ExperimentSpec` is fully declarative: a list of sweep points,
each able to draw an instance (and optionally a cloud-availability
pattern) from a seeded generator, plus the scheduler roster.  The runner
(:mod:`repro.experiments.runner`) turns a spec into result rows; seeds
are derived per (point, replication) with ``SeedSequence.spawn`` so
every row is independently reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.faults.trace import FaultTrace
from repro.schedulers.base import BaseScheduler
from repro.schedulers.registry import make_scheduler
from repro.sim.availability import CloudAvailability
from repro.sim.checkpoint import CheckpointPolicy

#: Builds a fresh scheduler; receives a generator for stochastic policies.
SchedulerFactory = Callable[[np.random.Generator], BaseScheduler]

#: Draws one instance for a sweep point.
InstanceFactory = Callable[[np.random.Generator], Instance]

#: Draws the cloud-availability pattern for one run (None = always on).
AvailabilityFactory = Callable[[Instance, np.random.Generator], CloudAvailability]

#: Draws the fault trace for one run (None = fault-free).
FaultFactory = Callable[[Instance, np.random.Generator], FaultTrace]


@dataclass(frozen=True)
class SchedulerSpec:
    """A labeled scheduler factory.

    ``checkpoint`` opts this roster entry's runs into the
    checkpoint/restart execution model (:mod:`repro.sim.checkpoint`);
    None (the default) keeps the historical from-scratch rule.  The
    policy rides the spec (not the experiment) so a roster can compare
    checkpointed and uncheckpointed variants on the same cells.

    ``reusable`` declares that one scheduler object built by ``factory``
    may serve many runs: the factory ignores its generator argument
    (building the object consumes nothing from the cell's RNG stream)
    and every piece of per-run state is wiped by the engine's
    ``scheduler.start(view)`` reset contract.  The warm worker path of
    the parallel harness builds such schedulers once per worker instead
    of once per run; set False for stochastic policies seeded at
    construction (``named("random")`` does), which must be rebuilt from
    the cell's generator every run.
    """

    label: str
    factory: SchedulerFactory
    checkpoint: CheckpointPolicy | None = None
    reusable: bool = True

    @classmethod
    def named(
        cls,
        name: str,
        *,
        label: str | None = None,
        checkpoint: CheckpointPolicy | None = None,
        **kwargs,
    ) -> "SchedulerSpec":
        """Spec for a registry scheduler; kwargs go to its constructor."""
        if label is None:
            label = name
        if name == "random":
            return cls(
                label,
                lambda rng: make_scheduler(name, seed=rng, **kwargs),
                checkpoint,
                reusable=False,
            )
        return cls(label, lambda rng: make_scheduler(name, **kwargs), checkpoint)


@dataclass(frozen=True)
class SweepPoint:
    """One x-value of a sweep and its instance distribution.

    ``cost_hint`` is an optional unitless relative cost of one cell of
    this point (only the ordering across points matters); the parallel
    harness dispatches expensive cells first
    (:mod:`repro.experiments.dispatch`).  None predicts uniform cost.
    """

    x: float
    make_instance: InstanceFactory
    make_availability: AvailabilityFactory | None = None
    make_faults: FaultFactory | None = None
    cost_hint: float | None = None


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete experiment: sweep points x schedulers x replications."""

    name: str
    x_label: str
    points: tuple[SweepPoint, ...]
    schedulers: tuple[SchedulerSpec, ...]
    n_reps: int = 10
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.n_reps <= 0:
            raise ModelError(f"n_reps must be positive, got {self.n_reps}")
        if not self.points:
            raise ModelError("an experiment needs at least one sweep point")
        if not self.schedulers:
            raise ModelError("an experiment needs at least one scheduler")
        labels = [s.label for s in self.schedulers]
        if len(set(labels)) != len(labels):
            raise ModelError(f"duplicate scheduler labels: {labels}")
