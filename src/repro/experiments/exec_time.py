"""Execution-time experiments (§VI-B, "Execution times").

The paper reports scheduling wall-clock (time to *compute* the
schedule, not simulated time) versus n, load, and CCR, finding: SRPT
fastest, SSF-EDF and Edge-Only slowest, Greedy load-sensitive; times
grow with n and load but stay flat in CCR.  Every run of the main
harness already records ``wall_time``; these specs sweep the three axes
with the paper's four policies.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.config import ExperimentSpec, SchedulerSpec, SweepPoint
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)


def _all_four() -> tuple[SchedulerSpec, ...]:
    return tuple(
        SchedulerSpec.named(n) for n in ("edge-only", "greedy", "srpt", "ssf-edf")
    )


def exec_time_vs_n(
    *,
    n_values: Sequence[int] = (50, 100, 200, 400),
    n_reps: int = 5,
    ccr: float = 1.0,
    load: float = 0.05,
    seed: int = 20210521,
) -> ExperimentSpec:
    """Scheduling time vs number of jobs."""
    points = tuple(
        SweepPoint(
            x=n,
            make_instance=(
                lambda rng, n=n: generate_random_instance(
                    RandomInstanceConfig(n_jobs=n, ccr=ccr, load=load),
                    platform=paper_random_platform(),
                    seed=rng,
                )
            ),
        )
        for n in n_values
    )
    return ExperimentSpec(
        name="exec_time_vs_n",
        x_label="n_jobs",
        points=points,
        schedulers=_all_four(),
        n_reps=n_reps,
        seed=seed,
        description="scheduling wall-clock vs number of jobs",
    )


def exec_time_vs_load(
    *,
    loads: Sequence[float] = (0.05, 0.25, 1.0, 2.0),
    n_jobs: int = 200,
    n_reps: int = 5,
    ccr: float = 1.0,
    seed: int = 20210522,
) -> ExperimentSpec:
    """Scheduling time vs load (Edge-Only excluded, as in Fig. 2(b))."""
    points = tuple(
        SweepPoint(
            x=load,
            make_instance=(
                lambda rng, load=load: generate_random_instance(
                    RandomInstanceConfig(n_jobs=n_jobs, ccr=ccr, load=load),
                    platform=paper_random_platform(),
                    seed=rng,
                )
            ),
        )
        for load in loads
    )
    return ExperimentSpec(
        name="exec_time_vs_load",
        x_label="load",
        points=points,
        schedulers=tuple(SchedulerSpec.named(n) for n in ("greedy", "srpt", "ssf-edf")),
        n_reps=n_reps,
        seed=seed,
        description="scheduling wall-clock vs load",
    )


def exec_time_vs_ccr(
    *,
    ccrs: Sequence[float] = (0.1, 1.0, 10.0),
    n_jobs: int = 200,
    n_reps: int = 5,
    load: float = 0.05,
    seed: int = 20210523,
) -> ExperimentSpec:
    """Scheduling time vs CCR (the paper finds it roughly constant)."""
    points = tuple(
        SweepPoint(
            x=ccr,
            make_instance=(
                lambda rng, ccr=ccr: generate_random_instance(
                    RandomInstanceConfig(n_jobs=n_jobs, ccr=ccr, load=load),
                    platform=paper_random_platform(),
                    seed=rng,
                )
            ),
        )
        for ccr in ccrs
    )
    return ExperimentSpec(
        name="exec_time_vs_ccr",
        x_label="CCR",
        points=points,
        schedulers=_all_four(),
        n_reps=n_reps,
        seed=seed,
        description="scheduling wall-clock vs CCR",
    )
