"""Fault-degradation study: max-stretch vs resource reliability.

Sweeps the mean time between failures (MTBF) of every resource class
and measures how gracefully each heuristic degrades as crashes and link
outages force re-executions — the robustness companion to the paper's
fault-free comparison (the paper's model already prices re-execution
via its attempt counter; here the attempts are forced by the platform
instead of chosen by the scheduler).

Every sweep point shares the instance distribution and differs only in
the fault model: failures arrive as a seeded renewal process
(:func:`repro.faults.model.exponential_fault_trace`) whose horizon
covers the whole run, with a fixed mean time to repair, so smaller MTBF
means strictly more downtime.  Instance, availability, and fault
streams are drawn in a fixed order from the cell's generator, so the
x-axis varies reliability and nothing else.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.instance import Instance
from repro.experiments.config import ExperimentSpec, SchedulerSpec, SweepPoint
from repro.faults.model import FaultClassParams, exponential_fault_trace, parse_fault_groups
from repro.faults.trace import FaultTrace
from repro.sim.checkpoint import CheckpointPolicy
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)

#: Fraction of an outage spent repairing: MTTR = MTTR_FRACTION * MTBF.
MTTR_FRACTION = 0.1


def _fault_horizon(instance: Instance) -> float:
    """A horizon safely past the end of any plausible schedule.

    Last release plus the whole workload run serially at its best
    speed; faults beyond the actual makespan are simply never reached.
    """
    return float(instance.release.max() + instance.min_time.sum())


def _make_faults(mtbf: float, group_size: int = 1, groups=None):
    def factory(instance: Instance, rng) -> FaultTrace:
        params = FaultClassParams(mtbf=mtbf, mttr=MTTR_FRACTION * mtbf)
        return exponential_fault_trace(
            n_edge=instance.platform.n_edge,
            n_cloud=instance.platform.n_cloud,
            horizon=_fault_horizon(instance),
            seed=rng,
            edge=params,
            cloud=params,
            link=params,
            group_size=group_size,
            groups=groups,
        )

    return factory


def degradation_mtbf(
    *,
    mtbf_values: Sequence[float] = (25.0, 50.0, 100.0, 200.0, 400.0),
    n_jobs: int = 100,
    n_reps: int = 10,
    ccr: float = 1.0,
    load: float = 0.5,
    seed: int = 20210601,
    failure_aware: bool = False,
    correlation: int = 1,
    fault_groups: str | None = None,
    checkpoint_interval: float | str | None = None,
    checkpoint_cost: float = 0.0,
    retry_budget: int | None = None,
) -> ExperimentSpec:
    """Max-stretch degradation as resources get less reliable.

    x is the per-resource MTBF in time units (smaller = failures more
    frequent); MTTR is pinned at :data:`MTTR_FRACTION` of the MTBF so
    the long-run unavailable fraction is constant and the x-axis
    isolates failure *frequency* (how often work is lost) rather than
    capacity.

    ``failure_aware`` adds the ``ssf-edf-fa``, ``srpt-fa`` and
    ``fcfs-fa`` variants
    to the roster (all schedule from the run's shared *discounted*
    capacity outlook, see :mod:`repro.capacity`) for a fault-oblivious
    vs failure-aware comparison on identical fault realizations.  ``correlation`` is the
    correlated-failure group size: consecutive resources in groups of
    that size share their fault windows (1 = independent);
    ``fault_groups`` instead takes a topology-driven group spec
    (``"edge:0-4;link:0-4"``, see
    :func:`repro.faults.model.parse_fault_groups`).  Adding a roster
    entry does not perturb the shared instance/fault streams, so the
    baseline columns are unchanged.

    ``checkpoint_interval`` / ``checkpoint_cost`` / ``retry_budget``
    enable the checkpoint/restart variant: two extra roster entries —
    ``ssf-edf-fa+ckpt`` and the rework-pricing ``ssf-edf-fa-rework+ckpt``
    — run with a periodic :class:`~repro.sim.checkpoint.CheckpointPolicy`
    on the *same* cells, so checkpointed and from-scratch execution are
    compared on identical fault realizations.  The literal
    ``checkpoint_interval="auto"`` defers the interval to each cell: the
    engine derives the Young/Daly optimum
    :func:`~repro.sim.checkpoint.young_daly_interval` from the cell's
    own fault rates, so every sweep point commits at *its* MTBF's
    optimal cadence rather than one hand-picked constant.
    """
    groups = parse_fault_groups(fault_groups) if fault_groups is not None else None
    points = tuple(
        SweepPoint(
            x=mtbf,
            make_instance=(
                lambda rng: generate_random_instance(
                    RandomInstanceConfig(n_jobs=n_jobs, ccr=ccr, load=load),
                    platform=paper_random_platform(),
                    seed=rng,
                )
            ),
            make_faults=_make_faults(mtbf, correlation, groups),
            # Lower MTBF means more fault-killed attempts re-executed,
            # so a cell's work grows as its MTBF shrinks; the hint only
            # orders dispatch (docs/HARNESS.md), it never affects rows.
            cost_hint=1.0 / mtbf,
        )
        for mtbf in mtbf_values
    )
    schedulers = [
        SchedulerSpec.named("fcfs"),
        SchedulerSpec.named("greedy"),
        SchedulerSpec.named("ssf-edf"),
    ]
    if failure_aware:
        schedulers.append(SchedulerSpec.named("ssf-edf-fa"))
        schedulers.append(SchedulerSpec.named("srpt-fa"))
        schedulers.append(SchedulerSpec.named("fcfs-fa"))
    if checkpoint_interval is not None or retry_budget is not None:
        auto = checkpoint_interval == "auto"
        policy = CheckpointPolicy(
            interval=None if auto else checkpoint_interval,
            commit_cost=checkpoint_cost,
            retry_budget=retry_budget,
            auto_interval=auto,
        )
        schedulers.append(
            SchedulerSpec.named("ssf-edf-fa", label="ssf-edf-fa+ckpt", checkpoint=policy)
        )
        schedulers.append(
            SchedulerSpec.named(
                "ssf-edf-fa-rework", label="ssf-edf-fa-rework+ckpt", checkpoint=policy
            )
        )
    return ExperimentSpec(
        name="degradation_mtbf",
        x_label="MTBF",
        points=points,
        schedulers=tuple(schedulers),
        n_reps=n_reps,
        seed=seed,
        description="max-stretch degradation vs mean time between failures",
    )
