"""Experiment harness: figure sweeps, replication, aggregation, CLI."""

from repro.experiments.ablations import (
    ablation_alpha,
    ablation_reexec,
    ablation_availability,
    ablation_eps,
    ablation_greedy_guard,
    ablation_hetero_cloud,
)
from repro.experiments.config import (
    ExperimentSpec,
    SchedulerSpec,
    SweepPoint,
)
from repro.experiments.exec_time import (
    exec_time_vs_ccr,
    exec_time_vs_load,
    exec_time_vs_n,
)
from repro.experiments.figures import fig2a, fig2b, fig2c, fig2d
from repro.experiments.parallel import run_named_experiment_parallel
from repro.experiments.runner import (
    AggregateRow,
    ResultRow,
    aggregate,
    run_experiment,
)
from repro.experiments.tables import (
    format_series_table,
    format_timing_table,
    rows_to_csv,
)

__all__ = [
    "ExperimentSpec",
    "SchedulerSpec",
    "SweepPoint",
    "run_experiment",
    "run_named_experiment_parallel",
    "aggregate",
    "ResultRow",
    "AggregateRow",
    "fig2a",
    "fig2b",
    "fig2c",
    "fig2d",
    "exec_time_vs_n",
    "exec_time_vs_load",
    "exec_time_vs_ccr",
    "ablation_alpha",
    "ablation_eps",
    "ablation_greedy_guard",
    "ablation_reexec",
    "ablation_hetero_cloud",
    "ablation_availability",
    "format_series_table",
    "format_timing_table",
    "rows_to_csv",
]
