"""Ablation studies over the design choices DESIGN.md calls out.

Not in the paper's evaluation, but each probes a knob the paper
introduces:

* ``ablation_alpha`` — SSF-EDF's deadline scaling α (§V-D sets α=1 for
  Δ-competitiveness but notes other values can do better when Δ is
  known);
* ``ablation_eps`` — the binary-search precision ε of SSF-EDF (its
  complexity carries the log(1/ε) factor);
* ``ablation_greedy_guard`` — the re-execution guard this reproduction
  adds to Greedy (see :mod:`repro.schedulers.greedy`);
* ``ablation_availability`` — cloud co-tenancy duty cycles (the §VII
  future-work scenario), comparing the cloud-using heuristics as cloud
  capacity flickers.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.config import ExperimentSpec, SchedulerSpec, SweepPoint
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.srpt import SrptScheduler
from repro.schedulers.ssf_edf import SsfEdfScheduler
from repro.sim.availability import periodic_unavailability
from repro.workloads.kang import KangConfig, generate_kang_instance
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)


def _random_points(
    xs: Sequence[float], n_jobs: int, ccr: float, load: float
) -> tuple[SweepPoint, ...]:
    return tuple(
        SweepPoint(
            x=x,
            make_instance=(
                lambda rng, _x=x: generate_random_instance(
                    RandomInstanceConfig(n_jobs=n_jobs, ccr=ccr, load=load),
                    platform=paper_random_platform(),
                    seed=rng,
                )
            ),
        )
        for x in xs
    )


def ablation_alpha(
    *,
    alphas: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    n_jobs: int = 200,
    n_reps: int = 10,
    ccr: float = 1.0,
    load: float = 0.5,
    seed: int = 20210524,
) -> ExperimentSpec:
    """SSF-EDF deadline scaling α; one scheduler per α, shared instances."""
    schedulers = tuple(
        SchedulerSpec(f"ssf-edf(a={a:g})", lambda rng, a=a: SsfEdfScheduler(alpha=a))
        for a in alphas
    )
    return ExperimentSpec(
        name="ablation_alpha",
        x_label="load",
        points=_random_points([load], n_jobs, ccr, load),
        schedulers=schedulers,
        n_reps=n_reps,
        seed=seed,
        description="SSF-EDF deadline scaling factor",
    )


def ablation_eps(
    *,
    eps_values: Sequence[float] = (1e-1, 1e-2, 1e-3, 1e-6),
    n_jobs: int = 200,
    n_reps: int = 10,
    ccr: float = 1.0,
    load: float = 0.5,
    seed: int = 20210525,
) -> ExperimentSpec:
    """SSF-EDF binary-search precision: stretch quality vs wall-clock."""
    schedulers = tuple(
        SchedulerSpec(f"ssf-edf(eps={e:g})", lambda rng, e=e: SsfEdfScheduler(eps=e))
        for e in eps_values
    )
    return ExperimentSpec(
        name="ablation_eps",
        x_label="load",
        points=_random_points([load], n_jobs, ccr, load),
        schedulers=schedulers,
        n_reps=n_reps,
        seed=seed,
        description="SSF-EDF binary-search precision",
    )


def ablation_greedy_guard(
    *,
    n_jobs: int = 200,
    n_reps: int = 10,
    n_edge: int = 20,
    n_cloud: int = 10,
    load: float = 0.05,
    seed: int = 20210526,
) -> ExperimentSpec:
    """Guarded vs literal-paper Greedy, on re-execution-prone Kang instances."""
    points = (
        SweepPoint(
            x=n_jobs,
            make_instance=(
                lambda rng: generate_kang_instance(
                    KangConfig(n_jobs=n_jobs, n_edge=n_edge, n_cloud=n_cloud, load=load),
                    seed=rng,
                )
            ),
        ),
    )
    schedulers = (
        SchedulerSpec("greedy", lambda rng: GreedyScheduler(guarded=True)),
        SchedulerSpec("greedy-unguarded", lambda rng: GreedyScheduler(guarded=False)),
        SchedulerSpec("srpt", lambda rng: SrptScheduler()),
    )
    return ExperimentSpec(
        name="ablation_greedy_guard",
        x_label="n_jobs",
        points=points,
        schedulers=schedulers,
        n_reps=n_reps,
        seed=seed,
        description="Greedy re-execution guard on Kang instances",
    )


def ablation_reexec(
    *,
    n_jobs: int = 200,
    n_reps: int = 10,
    ccr: float = 1.0,
    loads: Sequence[float] = (0.05, 0.5, 1.0),
    seed: int = 20210528,
) -> ExperimentSpec:
    """Re-execution on/off (§III model choice), for SRPT across loads.

    The paper's model allows restarting a job from scratch on another
    resource; this sweep measures what that buys SRPT as load grows.
    """
    schedulers = (
        SchedulerSpec("srpt", lambda rng: SrptScheduler()),
        SchedulerSpec("srpt-norestart", lambda rng: SrptScheduler(allow_restart=False)),
    )
    points = tuple(
        SweepPoint(
            x=load,
            make_instance=(
                lambda rng, load=load: generate_random_instance(
                    RandomInstanceConfig(n_jobs=n_jobs, ccr=ccr, load=load),
                    platform=paper_random_platform(),
                    seed=rng,
                )
            ),
        )
        for load in loads
    )
    return ExperimentSpec(
        name="ablation_reexec",
        x_label="load",
        points=points,
        schedulers=schedulers,
        n_reps=n_reps,
        seed=seed,
        description="value of re-execution (restart from scratch) for SRPT",
    )


def ablation_hetero_cloud(
    *,
    n_jobs: int = 200,
    n_reps: int = 10,
    ccr: float = 0.5,
    load: float = 0.5,
    seed: int = 20210529,
) -> ExperimentSpec:
    """Heterogeneous cloud speeds at equal aggregate capacity (§II).

    The paper keeps the cloud homogeneous but notes the extension is
    straightforward; this sweep pits a homogeneous 20 x 1.0 cloud
    against mixed fleets with the same total speed (a few fast + many
    slow processors) to see whether the heuristics exploit fast nodes.
    """
    from repro.core.platform import Platform

    mixes = {
        "uniform 20x1.0": [1.0] * 20,
        "mixed 10x1.5+10x0.5": [1.5] * 10 + [0.5] * 10,
        "skewed 4x3.0+16x0.5": [3.0] * 4 + [0.5] * 16,
    }
    edge_speeds = [0.1] * 10 + [0.5] * 10

    points = []
    for x, (label, cloud_speeds) in enumerate(mixes.items()):
        platform = Platform.create(edge_speeds, cloud_speeds=cloud_speeds)
        points.append(
            SweepPoint(
                x=float(x),
                make_instance=(
                    lambda rng, platform=platform: generate_random_instance(
                        RandomInstanceConfig(n_jobs=n_jobs, ccr=ccr, load=load),
                        platform=platform,
                        seed=rng,
                    )
                ),
            )
        )
    schedulers = tuple(SchedulerSpec.named(n) for n in ("greedy", "srpt", "ssf-edf"))
    return ExperimentSpec(
        name="ablation_hetero_cloud",
        x_label="cloud mix (0=uniform, 1=mixed, 2=skewed)",
        points=tuple(points),
        schedulers=schedulers,
        n_reps=n_reps,
        seed=seed,
        description="heterogeneous cloud speeds at equal aggregate capacity",
    )


def ablation_availability(
    *,
    busy_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75),
    n_jobs: int = 200,
    n_reps: int = 10,
    ccr: float = 0.2,
    load: float = 0.5,
    period: float = 50.0,
    seed: int = 20210527,
) -> ExperimentSpec:
    """Cloud co-tenancy (§VII future work): stretch vs cloud duty cycle.

    Each cloud processor is periodically stolen for ``busy_fraction`` of
    every ``period``; the horizon covers the whole release window plus
    slack.  Low CCR makes the cloud attractive, so the steal hurts.
    """
    points = []
    for bf in busy_fractions:
        def make_availability(instance, rng, bf=bf):
            horizon = float(instance.release.max()) + float(instance.min_time.sum())
            return periodic_unavailability(
                instance.platform.n_cloud,
                period=period,
                busy_fraction=bf,
                horizon=max(horizon, period),
            )

        points.append(
            SweepPoint(
                x=bf,
                make_instance=(
                    lambda rng: generate_random_instance(
                        RandomInstanceConfig(n_jobs=n_jobs, ccr=ccr, load=load),
                        platform=paper_random_platform(),
                        seed=rng,
                    )
                ),
                make_availability=make_availability if bf > 0 else None,
            )
        )
    schedulers = tuple(SchedulerSpec.named(n) for n in ("greedy", "srpt", "ssf-edf"))
    return ExperimentSpec(
        name="ablation_availability",
        x_label="cloud busy fraction",
        points=tuple(points),
        schedulers=schedulers,
        n_reps=n_reps,
        seed=seed,
        description="cloud co-tenancy duty-cycle sweep",
    )
