"""Compact wire format for rows crossing the worker process boundary.

An instrumented cell's :class:`~repro.experiments.runner.ResultRow` list
pickles to ~22 KB, almost all of it telemetry — histogram edge/count
lists and float-valued metric maps repeated per roster entry.  Two
layers cut what crosses the pipe:

* :func:`encode_rows` / :func:`decode_rows` — a structural tuple
  encoding with a per-cell interned string table (metric names,
  scheduler labels, type tags referenced by index).  This does *not*
  shrink the pickle much by itself — pickle already memoizes shared
  string objects — but it strips dataclass/dict framing into flat
  homogeneous tuples, which is exactly the shape deflate likes;
* :func:`pack_rows` / :func:`unpack_rows` — the tuple encoding,
  pickled and deflated (zlib level 3: ~7x smaller on instrumented
  cells, ~0.3 ms per cell — noise next to a simulation).  This is what
  workers actually return.

Neither layer touches any on-disk format: the checkpoint JSONL and
telemetry sinks still see plain :class:`ResultRow` objects, and
``unpack_rows(pack_rows(rows)) == rows`` holds exactly (Python floats
round-trip untouched; dict equality is order-insensitive).

Only the IPC payload uses this encoding; it never hits disk, so there
is no schema/versioning concern beyond the paired encoder/decoder of
one build (workers are forked from the driver).
"""

from __future__ import annotations

import pickle
import zlib

from repro.core.errors import ModelError
from repro.experiments.runner import ResultRow

#: Deflate level of :func:`pack_rows` — 3 is within a few percent of
#: level 9 on telemetry payloads at a fraction of the CPU.
_PACK_LEVEL = 3

#: Bumped when the tuple layout changes; decode rejects mismatches so a
#: driver never silently misreads a stale worker's payload.
WIRE_VERSION = 1

#: Scalar ResultRow fields in tuple position order (telemetry and trace
#: are appended separately with their own encodings).
_SCALAR_FIELDS = (
    "x",
    "rep",
    "max_stretch",
    "avg_stretch",
    "makespan",
    "wall_time",
    "n_events",
    "n_reexecutions",
    "n_abandoned",
)


class _Interner:
    """Build-side string table: string → dense index."""

    def __init__(self) -> None:
        self.table: list[str] = []
        self._index: dict[str, int] = {}

    def ref(self, s: str) -> int:
        idx = self._index.get(s)
        if idx is None:
            idx = self._index[s] = len(self.table)
            self.table.append(s)
        return idx


def _encode_metric(payload: dict, intern: _Interner) -> tuple:
    """One metric's ``to_dict`` as an (interned-key, value) pair tuple.

    Values are scalars or float lists; only the keys and the type tag
    repeat across metrics, so only those are interned.
    """
    return tuple(
        (intern.ref(key), intern.ref(value) if key == "type" else value)
        for key, value in payload.items()
    )


def _decode_metric(encoded: tuple, table: list[str]) -> dict:
    return {
        table[key_idx]: (table[value] if table[key_idx] == "type" else value)
        for key_idx, value in encoded
    }


def _encode_telemetry(telemetry: dict | None, intern: _Interner):
    if telemetry is None:
        return None
    metrics = telemetry["metrics"]
    return (
        telemetry["version"],
        telemetry["n_runs"],
        tuple(
            (intern.ref(name), _encode_metric(payload, intern))
            for name, payload in metrics.items()
        ),
    )


def _decode_telemetry(encoded, table: list[str]) -> dict | None:
    if encoded is None:
        return None
    version, n_runs, metrics = encoded
    return {
        "version": version,
        "n_runs": n_runs,
        "metrics": {
            table[name_idx]: _decode_metric(payload, table)
            for name_idx, payload in metrics
        },
    }


def encode_rows(rows: list[ResultRow]) -> tuple:
    """A cell's rows as ``(WIRE_VERSION, string_table, row_tuples)``."""
    intern = _Interner()
    encoded = []
    for row in rows:
        encoded.append(
            (
                intern.ref(row.experiment),
                intern.ref(row.scheduler),
            )
            + tuple(getattr(row, f) for f in _SCALAR_FIELDS)
            + (
                _encode_telemetry(row.telemetry, intern),
                row.trace,
            )
        )
    return (WIRE_VERSION, tuple(intern.table), tuple(encoded))


def decode_rows(payload: tuple) -> list[ResultRow]:
    """Inverse of :func:`encode_rows`; exact row equality."""
    version, table, encoded = payload
    if version != WIRE_VERSION:
        raise ModelError(
            f"unsupported wire version {version!r} (this build reads "
            f"{WIRE_VERSION}); driver and workers are out of sync"
        )
    table = list(table)
    rows = []
    for item in encoded:
        experiment_idx, scheduler_idx = item[0], item[1]
        scalars = dict(zip(_SCALAR_FIELDS, item[2 : 2 + len(_SCALAR_FIELDS)]))
        telemetry_enc, trace = item[2 + len(_SCALAR_FIELDS) :]
        rows.append(
            ResultRow(
                experiment=table[experiment_idx],
                scheduler=table[scheduler_idx],
                telemetry=_decode_telemetry(telemetry_enc, table),
                trace=trace,
                **scalars,
            )
        )
    return rows


def pack_rows(rows: list[ResultRow]) -> bytes:
    """The deflated wire blob a worker returns for one cell's rows."""
    return zlib.compress(
        pickle.dumps(encode_rows(rows), protocol=pickle.HIGHEST_PROTOCOL),
        _PACK_LEVEL,
    )


def unpack_rows(blob: bytes) -> list[ResultRow]:
    """Inverse of :func:`pack_rows`; exact row equality."""
    return decode_rows(pickle.loads(zlib.decompress(blob)))
