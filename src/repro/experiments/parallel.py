"""Parallel experiment execution over worker processes.

Specs carry closures (instance factories), which do not pickle; so the
parallel path ships only *names*: each worker rebuilds the named spec
from :mod:`repro.experiments.cli`'s builder registry and runs one
(point, replication) cell.  Cell RNG streams are re-derived from the
root seed inside :func:`repro.experiments.runner.run_cell`, so results
are bit-identical to the serial runner regardless of scheduling order
— parallelism changes wall-clock only.

This is how the paper-scale sweeps (1000 reps of n = 4000) become
tractable: cells are embarrassingly parallel.

Telemetry crosses the process boundary the same way rows do:
instrumented hooks are instantiated inside the worker (from the shipped
names), collected into a :class:`~repro.obs.telemetry.RunTelemetry`
snapshot by :func:`~repro.experiments.runner.run_cell`, and attached to
each :class:`ResultRow` as a plain dict — so the serial and parallel
runners return byte-identical telemetry for the same seed, not just
identical scalar rows.

Two entry points:

* :func:`run_named_experiment_parallel` — the fast path: chunked
  ``pool.map``, fail on the first bad cell (its historical contract);
* :func:`run_named_experiment_resilient` — the crash-safe harness:
  per-cell wall-clock timeouts (SIGALRM inside the worker), a bounded
  retry/skip policy for failing cells, incremental JSONL checkpointing
  of completed cells (:mod:`repro.experiments.checkpoint`) with resume,
  survival of worker-process deaths (the pool is rebuilt and unfinished
  cells resubmitted), and a quarantine report of cells that never
  succeeded.  Completed-cell results are identical between the two
  paths and the serial runner.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.errors import CellTimeoutError, ModelError
from repro.experiments.checkpoint import CheckpointStore
from repro.experiments.runner import ResultRow, run_cell

#: Pool rebuilds tolerated after worker-process deaths before the
#: remaining cells are quarantined (only under skip/retry policies).
MAX_POOL_REBUILDS = 3

#: Hard cap on one retry-backoff pause, seconds.
MAX_BACKOFF_S = 30.0


def _backoff_delay(base: float, attempt: int, cap: float = MAX_BACKOFF_S) -> float:
    """Deterministic exponential backoff: ``base * 2**(attempt-1)``, capped.

    Attempt 1 waits ``base``, attempt 2 ``2*base``, … — no jitter, so a
    sweep's pause schedule is a pure function of its failure history.
    ``base <= 0`` (the default policy) disables backoff entirely.
    """
    if base <= 0.0 or attempt <= 0:
        return 0.0
    return min(cap, base * (2.0 ** (attempt - 1)))


def _run_named_cell(args: tuple) -> tuple[int, int, list[ResultRow]]:
    """Worker entry: rebuild the spec by name and run one cell.

    Any exception is re-raised as a :class:`ModelError` naming the cell
    — and, once the spec is known, its x-value and root seed — with the
    original exception chained, so the parent sees *which* (experiment,
    point, rep) failed and why instead of a bare traceback pickled out
    of an anonymous worker.  :class:`CellTimeoutError` passes through
    untouched so the driver can classify timeouts.
    """
    name, overrides, point_index, rep, instrument = args
    from repro.experiments.cli import build_spec

    try:
        spec = build_spec(name, **overrides)
    except Exception as exc:
        raise ModelError(
            f"experiment {name!r} cell (point={point_index}, rep={rep}) "
            f"failed: {type(exc).__name__}: {exc}"
        ) from exc
    try:
        return point_index, rep, run_cell(
            spec, point_index, rep, instrument=instrument
        )
    except CellTimeoutError:
        raise
    except Exception as exc:
        x = (
            f"{spec.points[point_index].x:g}"
            if 0 <= point_index < len(spec.points)
            else "?"
        )
        raise ModelError(
            f"experiment {name!r} cell (point={point_index}, rep={rep}) "
            f"failed: {type(exc).__name__}: {exc} [x={x}, root_seed={spec.seed}]"
        ) from exc


@contextmanager
def _cell_deadline(timeout_s: float | None):
    """Raise :class:`CellTimeoutError` in the calling (main) thread after
    ``timeout_s`` seconds of wall clock.

    Uses ``SIGALRM``/``setitimer``, so it guards only the main thread of
    the process and is a no-op on platforms without it (Windows); pool
    workers execute cells on their main thread, which is exactly where
    the guard is armed.
    """
    if not timeout_s or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeoutError(
            f"cell exceeded its wall-clock timeout of {timeout_s:g}s"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_guarded_cell(args: tuple) -> tuple[int, int, list[ResultRow]]:
    """Worker entry of the resilient path: a cell under a deadline."""
    name, overrides, point_index, rep, instrument, timeout_s = args
    with _cell_deadline(timeout_s):
        return _run_named_cell((name, overrides, point_index, rep, instrument))


def _validated_workers(n_workers: int | None) -> int:
    if n_workers is None:
        n_workers = max(1, (os.cpu_count() or 2) - 1)
    if n_workers < 1:
        raise ModelError(f"n_workers must be positive, got {n_workers}")
    return n_workers


def _known_experiment(name: str) -> None:
    from repro.experiments.cli import _BUILDERS

    if name not in _BUILDERS:
        raise ModelError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(_BUILDERS))}"
        )


def run_named_experiment_parallel(
    name: str,
    *,
    n_workers: int | None = None,
    n_reps: int | None = None,
    n_jobs: int | None = None,
    seed: int | None = None,
    failure_aware: bool = False,
    correlation: int = 1,
    fault_groups: str | None = None,
    checkpoint_interval: float | str | None = None,
    checkpoint_cost: float = 0.0,
    retry_budget: int | None = None,
    instrument: "tuple[str, ...] | None" = None,
) -> list[ResultRow]:
    """Run the named experiment with cells fanned out over processes.

    Returns rows in the same order as the serial runner (points outer,
    replications inner, schedulers innermost).  ``instrument`` names
    registered engine hooks; names (not hook objects) cross the process
    boundary, and each worker instantiates them fresh per run.  The
    first failing cell aborts the sweep — use
    :func:`run_named_experiment_resilient` for timeout/retry/checkpoint
    semantics.
    """
    from repro.experiments.cli import build_spec

    _known_experiment(name)
    n_workers = _validated_workers(n_workers)

    overrides = {"n_reps": n_reps, "n_jobs": n_jobs, "seed": seed}
    # Non-default fault options only: default runs keep the historical
    # overrides shape (checkpoint headers compare overrides verbatim).
    if failure_aware:
        overrides["failure_aware"] = True
    if correlation != 1:
        overrides["correlation"] = correlation
    if fault_groups is not None:
        overrides["fault_groups"] = fault_groups
    if checkpoint_interval is not None:
        overrides["checkpoint_interval"] = checkpoint_interval
    if checkpoint_cost != 0.0:
        overrides["checkpoint_cost"] = checkpoint_cost
    if retry_budget is not None:
        overrides["retry_budget"] = retry_budget
    spec = build_spec(name, **overrides)
    cells = [
        (name, overrides, point_index, rep, instrument)
        for point_index in range(len(spec.points))
        for rep in range(spec.n_reps)
    ]

    if n_workers == 1:
        results = [_run_named_cell(cell) for cell in cells]
    else:
        # Explicit chunksize: the default of 1 round-trips one pickle per
        # cell; batching amortizes IPC while keeping enough chunks per
        # worker (~4) for load balancing across uneven cell durations.
        chunksize = max(1, len(cells) // (n_workers * 4))
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            results = list(pool.map(_run_named_cell, cells, chunksize=chunksize))

    results.sort(key=lambda item: (item[0], item[1]))
    rows: list[ResultRow] = []
    for _, _, cell_rows in results:
        rows.extend(cell_rows)
    return rows


@dataclass(frozen=True)
class QuarantinedCell:
    """A cell that never succeeded within the retry budget."""

    point: int
    rep: int
    attempts: int
    error: str


@dataclass
class SweepOutcome:
    """What a resilient sweep produced.

    ``rows`` holds the completed cells' rows in serial order (missing
    cells simply contribute nothing); ``quarantined`` the cells that
    never succeeded; ``n_from_checkpoint`` / ``n_executed`` how many
    cells were restored vs actually run.
    """

    rows: list[ResultRow] = field(default_factory=list)
    quarantined: list[QuarantinedCell] = field(default_factory=list)
    n_from_checkpoint: int = 0
    n_executed: int = 0


def run_named_experiment_resilient(
    name: str,
    *,
    n_workers: int | None = None,
    n_reps: int | None = None,
    n_jobs: int | None = None,
    seed: int | None = None,
    failure_aware: bool = False,
    correlation: int = 1,
    fault_groups: str | None = None,
    checkpoint_interval: float | str | None = None,
    checkpoint_cost: float = 0.0,
    retry_budget: int | None = None,
    instrument: "tuple[str, ...] | None" = None,
    timeout_s: float | None = None,
    on_error: str = "fail",
    max_retries: int = 2,
    retry_backoff: float = 0.0,
    checkpoint_path: str | None = None,
    resume: bool = False,
) -> SweepOutcome:
    """Crash-safe sweep: timeouts, retry policy, checkpointing, resume.

    ``on_error`` decides what a failing (or timed-out) cell does to the
    sweep: ``"fail"`` aborts on the first failure (the fast path's
    behavior), ``"skip"`` quarantines it immediately, ``"retry"``
    re-runs it up to ``max_retries`` more times before quarantining.
    ``retry_backoff`` inserts a deterministic exponential pause before
    each re-run (``base * 2**(attempt-1)`` seconds, capped at
    :data:`MAX_BACKOFF_S`) — useful when cells fail on transient
    machine pressure rather than on their own inputs; the default 0
    retries immediately, the historical behavior.
    ``checkpoint_path`` appends every completed cell to a JSONL file
    (flushed per cell); with ``resume=True`` cells already in that file
    are not re-run.  A worker process dying (OOM killer, SIGKILL) does
    not lose the sweep: the pool is rebuilt and unfinished cells are
    resubmitted (under ``"fail"`` it aborts, but completed cells are
    already on disk for ``--resume``).

    Completed cells are byte-identical to the serial runner's — every
    cell derives its RNG stream from the root seed alone, so neither
    execution order, retries, nor a resume change any result.
    """
    _known_experiment(name)
    n_workers = _validated_workers(n_workers)
    if on_error not in ("fail", "skip", "retry"):
        raise ModelError(
            f"on_error must be one of fail/skip/retry, got {on_error!r}"
        )
    if max_retries < 0:
        raise ModelError(f"max_retries must be non-negative, got {max_retries}")
    if retry_backoff < 0:
        raise ModelError(f"retry_backoff must be non-negative, got {retry_backoff}")
    if resume and checkpoint_path is None:
        raise ModelError("resume=True requires a checkpoint_path")

    from repro.experiments.cli import build_spec

    overrides = {"n_reps": n_reps, "n_jobs": n_jobs, "seed": seed}
    if failure_aware:
        overrides["failure_aware"] = True
    if correlation != 1:
        overrides["correlation"] = correlation
    if fault_groups is not None:
        overrides["fault_groups"] = fault_groups
    if checkpoint_interval is not None:
        overrides["checkpoint_interval"] = checkpoint_interval
    if checkpoint_cost != 0.0:
        overrides["checkpoint_cost"] = checkpoint_cost
    if retry_budget is not None:
        overrides["retry_budget"] = retry_budget
    spec = build_spec(name, **overrides)
    all_cells = [
        (point_index, rep)
        for point_index in range(len(spec.points))
        for rep in range(spec.n_reps)
    ]

    completed: dict[tuple[int, int], list[ResultRow]] = {}
    store: CheckpointStore | None = None
    if checkpoint_path is not None:
        store = CheckpointStore(checkpoint_path, experiment=name, overrides=overrides)
        if resume:
            completed = store.load_completed()
        store.start(fresh=not resume)

    outcome = SweepOutcome(n_from_checkpoint=len(completed))
    pending = [c for c in all_cells if c not in completed]
    attempts: dict[tuple[int, int], int] = {}
    quarantined: dict[tuple[int, int], str] = {}

    def cell_args(cell: tuple[int, int]) -> tuple:
        return (name, overrides, cell[0], cell[1], instrument, timeout_s)

    def record(cell: tuple[int, int], rows: list[ResultRow]) -> None:
        completed[cell] = rows
        outcome.n_executed += 1
        if store is not None:
            store.append(cell[0], cell[1], rows)

    def on_failure(cell: tuple[int, int], exc: BaseException) -> bool:
        """Apply the policy; True means the cell should be retried."""
        attempts[cell] = attempts.get(cell, 0) + 1
        if on_error == "fail":
            if isinstance(exc, ModelError):
                raise exc
            raise ModelError(
                f"experiment {name!r} cell (point={cell[0]}, rep={cell[1]}) "
                f"failed: {type(exc).__name__}: {exc}"
            ) from exc
        if on_error == "retry" and attempts[cell] <= max_retries:
            return True
        quarantined[cell] = f"{type(exc).__name__}: {exc}"
        return False

    try:
        if n_workers == 1:
            queue = list(pending)
            while queue:
                cell = queue.pop(0)
                try:
                    _, _, rows = _run_guarded_cell(cell_args(cell))
                except Exception as exc:
                    if on_failure(cell, exc):
                        delay = _backoff_delay(retry_backoff, attempts[cell])
                        if delay:
                            time.sleep(delay)
                        queue.append(cell)
                    continue
                record(cell, rows)
        else:
            _run_pooled(
                pending, cell_args, record, on_failure, quarantined, attempts,
                n_workers, strict=on_error == "fail", retry_backoff=retry_backoff,
            )
    finally:
        if store is not None:
            store.close()

    for cell in all_cells:
        if cell in completed:
            outcome.rows.extend(completed[cell])
    outcome.quarantined = [
        QuarantinedCell(
            point=cell[0],
            rep=cell[1],
            attempts=attempts.get(cell, 0),
            error=error,
        )
        for cell, error in sorted(quarantined.items())
    ]
    return outcome


def _run_pooled(
    pending: list[tuple[int, int]],
    cell_args,
    record,
    on_failure,
    quarantined: dict,
    attempts: dict,
    n_workers: int,
    *,
    strict: bool,
    retry_backoff: float = 0.0,
) -> None:
    """Submit-per-cell pool loop that survives worker-process deaths.

    A ``BrokenProcessPool`` (a worker was killed) fails *every* pending
    future, so the whole pool is discarded and rebuilt, and the cells
    that had not completed are resubmitted — except under the strict
    (fail) policy, where the death aborts the sweep with the completed
    cells already checkpointed.  Pool rebuilds are bounded by
    :data:`MAX_POOL_REBUILDS`; past that the remaining cells are
    quarantined (the machine, not the cells, is the likely problem).
    """
    todo = list(pending)
    rebuilds = 0
    while todo:
        retry_cells: list[tuple[int, int]] = []
        finished: set[tuple[int, int]] = set()
        try:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                futures = {
                    pool.submit(_run_guarded_cell, cell_args(cell)): cell
                    for cell in todo
                }
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for fut in done:
                        cell = futures[fut]
                        try:
                            _, _, rows = fut.result()
                        except BrokenProcessPool:
                            raise
                        except Exception as exc:
                            finished.add(cell)
                            if on_failure(cell, exc):
                                retry_cells.append(cell)
                            continue
                        finished.add(cell)
                        record(cell, rows)
        except BrokenProcessPool as exc:
            if strict:
                raise ModelError(
                    "a worker process died mid-sweep (killed or crashed hard); "
                    "completed cells are checkpointed — rerun with --on-cell-error "
                    "skip/retry to rebuild the pool and continue instead"
                ) from exc
            rebuilds += 1
            survivors = [c for c in todo if c not in finished] + retry_cells
            if rebuilds > MAX_POOL_REBUILDS:
                for cell in survivors:
                    attempts.setdefault(cell, 0)
                    quarantined[cell] = (
                        f"worker pool died {rebuilds} times; last: "
                        f"{type(exc).__name__}: {exc}"
                    )
                return
            todo = survivors
            continue
        if retry_cells:
            # One pause per retry round, sized by the round's most-tried
            # cell — retries of a round run concurrently anyway.
            delay = _backoff_delay(
                retry_backoff, max(attempts.get(c, 1) for c in retry_cells)
            )
            if delay:
                time.sleep(delay)
        todo = retry_cells
