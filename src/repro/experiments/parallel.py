"""Parallel experiment execution over worker processes.

Specs carry closures (instance factories), which do not pickle; so the
parallel path ships only *names*: each worker rebuilds the named spec
from :mod:`repro.experiments.cli`'s builder registry and runs one
(point, replication) cell.  Cell RNG streams are re-derived from the
root seed inside :func:`repro.experiments.runner.run_cell`, so results
are bit-identical to the serial runner regardless of scheduling order
— parallelism changes wall-clock only.

This is how the paper-scale sweeps (1000 reps of n = 4000) become
tractable: cells are embarrassingly parallel.  Three throughput layers
sit on top of that embarrassment (see ``docs/HARNESS.md``):

* **Cost-aware dynamic dispatch** — cells are submitted individually in
  descending predicted-cost order (longest cell first, the classic LPT
  rule) over a bounded in-flight window sized to the machine's usable
  cores (:mod:`repro.experiments.dispatch`), instead of the historical
  static-chunked ``pool.map`` whose tail chunks straggled.
* **Warm worker state** — each worker memoizes the rebuilt spec and
  reuses scheduler objects (the engine's ``start(view)`` reset
  contract) and hook instances (``EngineHooks.reset``) across the
  cells it executes (:class:`~repro.experiments.runner.WarmState`).
* **Batched result I/O** — results cross the process boundary in the
  compact tuple/interned-string wire format of
  :mod:`repro.experiments.wire`, and completed cells are checkpointed
  with group commits (:class:`~repro.experiments.checkpoint.CheckpointStore`).

Telemetry crosses the process boundary the same way rows do:
instrumented hooks are instantiated inside the worker (from the shipped
names), collected into a :class:`~repro.obs.telemetry.RunTelemetry`
snapshot by :func:`~repro.experiments.runner.run_cell`, and attached to
each :class:`ResultRow` as a plain dict — so the serial and parallel
runners return byte-identical telemetry for the same seed, not just
identical scalar rows.  The harness additionally observes *itself*
(cells/sec, busy fraction, straggler ratio, pickle bytes, pool
rebuilds) into an optional :class:`~repro.obs.harness.HarnessStats`.

Two entry points:

* :func:`run_named_experiment_parallel` — the fast path: dynamic
  dispatch, fail on the first bad cell (its historical contract);
* :func:`run_named_experiment_resilient` — the crash-safe harness:
  per-cell wall-clock timeouts (SIGALRM inside the worker), a bounded
  retry/skip policy for failing cells, incremental JSONL checkpointing
  of completed cells (:mod:`repro.experiments.checkpoint`) with resume,
  survival of worker-process deaths (the pool is rebuilt and unfinished
  cells resubmitted), and a quarantine report of cells that never
  succeeded.  Completed-cell results are identical between the two
  paths and the serial runner.
"""

from __future__ import annotations

import heapq
import os
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.errors import CellTimeoutError, ModelError
from repro.experiments.checkpoint import CheckpointStore, _dumps
from repro.experiments.dispatch import dispatch_order, effective_window, predict_cell_cost
from repro.experiments.runner import ResultRow, WarmState, run_cell
from repro.experiments.wire import pack_rows, unpack_rows
from repro.obs.harness import HarnessStats, ProgressReporter

#: Pool rebuilds tolerated after worker-process deaths before the
#: remaining cells are quarantined (only under skip/retry policies).
MAX_POOL_REBUILDS = 3

#: Hard cap on one retry-backoff pause, seconds.
MAX_BACKOFF_S = 30.0

#: Default group size of checkpoint group commits (cells buffered per
#: write+flush); 1 restores the legacy per-cell durability.
DEFAULT_CHECKPOINT_GROUP = 8


def _backoff_delay(base: float, attempt: int, cap: float = MAX_BACKOFF_S) -> float:
    """Deterministic exponential backoff: ``base * 2**(attempt-1)``, capped.

    Attempt 1 waits ``base``, attempt 2 ``2*base``, … — no jitter, so a
    sweep's pause schedule is a pure function of its failure history.
    ``base <= 0`` (the default policy) disables backoff entirely.
    """
    if base <= 0.0 or attempt <= 0:
        return 0.0
    return min(cap, base * (2.0 ** (attempt - 1)))


# -- warm per-process state ----------------------------------------------------
#
# One entry per (experiment, overrides) this process has executed cells
# for: the rebuilt spec plus the WarmState holding reusable scheduler
# and hook objects.  Lives at module level so a forked pool worker
# accumulates it across the cells it executes; the driver process uses
# the same cache on the inline (n_workers == 1) paths.

_SPEC_CACHE: dict[tuple[str, str], tuple[object, WarmState]] = {}

#: Spec constructions performed by *this* process (cache misses).
_SPEC_BUILDS = 0


def _cache_key(name: str, overrides: dict) -> tuple[str, str]:
    return (name, _dumps(overrides))


def _cell_context(name: str, overrides: dict, point_index: int, rep: int):
    """The (spec, warm state) for a cell, memoized per process."""
    global _SPEC_BUILDS
    key = _cache_key(name, overrides)
    entry = _SPEC_CACHE.get(key)
    if entry is None:
        from repro.experiments.cli import build_spec

        try:
            spec = build_spec(name, **overrides)
        except Exception as exc:
            raise ModelError(
                f"experiment {name!r} cell (point={point_index}, rep={rep}) "
                f"failed: {type(exc).__name__}: {exc}"
            ) from exc
        entry = (spec, WarmState())
        _SPEC_CACHE[key] = entry
        _SPEC_BUILDS += 1
    return entry


def _run_named_cell(args: tuple) -> tuple[int, int, list[ResultRow]]:
    """Worker entry: rebuild the spec by name and run one cell.

    Any exception is re-raised as a :class:`ModelError` naming the cell
    — and, once the spec is known, its x-value and root seed — with the
    original exception chained, so the parent sees *which* (experiment,
    point, rep) failed and why instead of a bare traceback pickled out
    of an anonymous worker.  :class:`CellTimeoutError` passes through
    untouched so the driver can classify timeouts.
    """
    name, overrides, point_index, rep, instrument = args
    spec, warm = _cell_context(name, overrides, point_index, rep)
    try:
        return point_index, rep, run_cell(
            spec, point_index, rep, instrument=instrument, warm=warm
        )
    except CellTimeoutError:
        raise
    except Exception as exc:
        x = (
            f"{spec.points[point_index].x:g}"
            if 0 <= point_index < len(spec.points)
            else "?"
        )
        raise ModelError(
            f"experiment {name!r} cell (point={point_index}, rep={rep}) "
            f"failed: {type(exc).__name__}: {exc} [x={x}, root_seed={spec.seed}]"
        ) from exc


@contextmanager
def _cell_deadline(timeout_s: float | None):
    """Raise :class:`CellTimeoutError` in the calling (main) thread after
    ``timeout_s`` seconds of wall clock.

    Uses ``SIGALRM``/``setitimer``, so it guards only the main thread of
    the process and is a no-op on platforms without it (Windows); pool
    workers execute cells on their main thread, which is exactly where
    the guard is armed.
    """
    if not timeout_s or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeoutError(
            f"cell exceeded its wall-clock timeout of {timeout_s:g}s"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_guarded_cell(args: tuple) -> tuple[int, int, list[ResultRow]]:
    """Worker entry of the resilient path: a cell under a deadline."""
    name, overrides, point_index, rep, instrument, timeout_s = args
    with _cell_deadline(timeout_s):
        return _run_named_cell((name, overrides, point_index, rep, instrument))


def _run_cell_payload(args: tuple) -> tuple:
    """Pool worker entry: one cell, returned as a compact wire payload.

    ``(point, rep, packed_rows, wall_s, spec_builds_delta,
    instance_builds_delta)`` — the rows ride the deflated tuple format
    of :mod:`repro.experiments.wire` (:func:`pack_rows`); the deltas
    let the driver sum exact warm-state counters across workers without
    knowing which worker ran what.
    """
    name, overrides, point_index, rep, instrument, timeout_s = args
    builds_before = _SPEC_BUILDS
    key = _cache_key(name, overrides)
    entry = _SPEC_CACHE.get(key)
    instances_before = entry[1].instance_builds if entry is not None else 0
    t0 = time.perf_counter()
    with _cell_deadline(timeout_s):
        point_index, rep, rows = _run_named_cell(
            (name, overrides, point_index, rep, instrument)
        )
    wall = time.perf_counter() - t0
    warm = _SPEC_CACHE[key][1]
    return (
        point_index,
        rep,
        pack_rows(rows),
        wall,
        _SPEC_BUILDS - builds_before,
        warm.instance_builds - instances_before,
    )


def _payload_bytes(payload: tuple) -> int:
    """Size of a result payload's row blob (what dominates the pipe)."""
    return len(payload[2])


def _validated_workers(n_workers: int | None) -> int:
    if n_workers is None:
        n_workers = max(1, (os.cpu_count() or 2) - 1)
    if n_workers < 1:
        raise ModelError(f"n_workers must be positive, got {n_workers}")
    return n_workers


def _known_experiment(name: str) -> None:
    from repro.experiments.cli import _BUILDERS

    if name not in _BUILDERS:
        raise ModelError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(_BUILDERS))}"
        )


def _sweep_overrides(
    *,
    n_reps: int | None,
    n_jobs: int | None,
    seed: int | None,
    failure_aware: bool,
    correlation: int,
    fault_groups: str | None,
    checkpoint_interval: float | str | None,
    checkpoint_cost: float,
    retry_budget: int | None,
) -> dict:
    """The overrides dict shipped to workers and pinned in checkpoints.

    Non-default fault options only: default runs keep the historical
    overrides shape (checkpoint headers compare overrides verbatim).
    """
    overrides = {"n_reps": n_reps, "n_jobs": n_jobs, "seed": seed}
    if failure_aware:
        overrides["failure_aware"] = True
    if correlation != 1:
        overrides["correlation"] = correlation
    if fault_groups is not None:
        overrides["fault_groups"] = fault_groups
    if checkpoint_interval is not None:
        overrides["checkpoint_interval"] = checkpoint_interval
    if checkpoint_cost != 0.0:
        overrides["checkpoint_cost"] = checkpoint_cost
    if retry_budget is not None:
        overrides["retry_budget"] = retry_budget
    return overrides


def _inline_warm_counters(stats: HarnessStats | None, name: str, overrides: dict):
    """Snapshot the driver-process warm counters for an inline sweep."""
    if stats is None:
        return None
    entry = _SPEC_CACHE.get(_cache_key(name, overrides))
    return (
        _SPEC_BUILDS,
        entry[1].instance_builds if entry is not None else 0,
    )


def _inline_warm_settle(stats: HarnessStats | None, name: str, overrides: dict, before):
    if stats is None or before is None:
        return
    builds_before, instances_before = before
    entry = _SPEC_CACHE.get(_cache_key(name, overrides))
    stats.spec_builds += _SPEC_BUILDS - builds_before
    if entry is not None:
        stats.instance_builds += entry[1].instance_builds - instances_before


def run_named_experiment_parallel(
    name: str,
    *,
    n_workers: int | None = None,
    n_reps: int | None = None,
    n_jobs: int | None = None,
    seed: int | None = None,
    failure_aware: bool = False,
    correlation: int = 1,
    fault_groups: str | None = None,
    checkpoint_interval: float | str | None = None,
    checkpoint_cost: float = 0.0,
    retry_budget: int | None = None,
    instrument: "tuple[str, ...] | None" = None,
    stats: HarnessStats | None = None,
    progress: bool = False,
) -> list[ResultRow]:
    """Run the named experiment with cells fanned out over processes.

    Returns rows in the same order as the serial runner (points outer,
    replications inner, schedulers innermost) regardless of dispatch
    order.  ``instrument`` names registered engine hooks; names (not
    hook objects) cross the process boundary.  ``stats`` (optional)
    collects the ``harness.*`` metrics; ``progress`` prints a live
    cells/sec + ETA line on stderr.  The first failing cell aborts the
    sweep — use :func:`run_named_experiment_resilient` for
    timeout/retry/checkpoint semantics.
    """
    from repro.experiments.cli import build_spec

    _known_experiment(name)
    n_workers = _validated_workers(n_workers)

    overrides = _sweep_overrides(
        n_reps=n_reps,
        n_jobs=n_jobs,
        seed=seed,
        failure_aware=failure_aware,
        correlation=correlation,
        fault_groups=fault_groups,
        checkpoint_interval=checkpoint_interval,
        checkpoint_cost=checkpoint_cost,
        retry_budget=retry_budget,
    )
    spec = build_spec(name, **overrides)
    ordered = dispatch_order(spec)
    total = len(ordered)
    reporter = ProgressReporter(name, total, enabled=progress)
    t_start = time.monotonic()

    completed: dict[tuple[int, int], list[ResultRow]] = {}
    if n_workers == 1:
        if stats is not None:
            stats.n_workers = 1
            stats.window = 1
        before = _inline_warm_counters(stats, name, overrides)
        # Serial cell order on one worker: byte-identical either way,
        # and it keeps the inline path boring and debuggable.
        for point_index in range(len(spec.points)):
            for rep in range(spec.n_reps):
                t0 = time.perf_counter()
                _, _, rows = _run_named_cell(
                    (name, overrides, point_index, rep, instrument)
                )
                completed[(point_index, rep)] = rows
                if stats is not None:
                    stats.record_cell(
                        cost=predict_cell_cost(spec, point_index),
                        wall_s=time.perf_counter() - t0,
                    )
                reporter.cell_done()
        _inline_warm_settle(stats, name, overrides, before)
    else:
        window = effective_window(n_workers)
        pool_size = min(n_workers, window)
        if stats is not None:
            stats.n_workers = pool_size
            stats.window = window
        pending = deque(ordered)
        inflight: dict = {}
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            while pending or inflight:
                while pending and len(inflight) < window:
                    cell = pending.popleft()
                    fut = pool.submit(
                        _run_cell_payload,
                        (name, overrides, cell[0], cell[1], instrument, None),
                    )
                    inflight[fut] = cell
                done, _ = wait(set(inflight), return_when=FIRST_COMPLETED)
                for fut in done:
                    cell = inflight.pop(fut)
                    payload = fut.result()  # first failure aborts the sweep
                    completed[cell] = unpack_rows(payload[2])
                    if stats is not None:
                        stats.record_cell(
                            cost=predict_cell_cost(spec, cell[0]),
                            wall_s=payload[3],
                            payload_bytes=_payload_bytes(payload),
                            spec_builds=payload[4],
                            instance_builds=payload[5],
                        )
                    reporter.cell_done()
    if stats is not None:
        stats.elapsed_s = time.monotonic() - t_start

    rows: list[ResultRow] = []
    for point_index in range(len(spec.points)):
        for rep in range(spec.n_reps):
            rows.extend(completed[(point_index, rep)])
    return rows


@dataclass(frozen=True)
class QuarantinedCell:
    """A cell that never succeeded within the retry budget."""

    point: int
    rep: int
    attempts: int
    error: str


@dataclass
class SweepOutcome:
    """What a resilient sweep produced.

    ``rows`` holds the completed cells' rows in serial order (missing
    cells simply contribute nothing); ``quarantined`` the cells that
    never succeeded; ``n_from_checkpoint`` / ``n_executed`` how many
    cells were restored vs actually run.
    """

    rows: list[ResultRow] = field(default_factory=list)
    quarantined: list[QuarantinedCell] = field(default_factory=list)
    n_from_checkpoint: int = 0
    n_executed: int = 0


def run_named_experiment_resilient(
    name: str,
    *,
    n_workers: int | None = None,
    n_reps: int | None = None,
    n_jobs: int | None = None,
    seed: int | None = None,
    failure_aware: bool = False,
    correlation: int = 1,
    fault_groups: str | None = None,
    checkpoint_interval: float | str | None = None,
    checkpoint_cost: float = 0.0,
    retry_budget: int | None = None,
    instrument: "tuple[str, ...] | None" = None,
    timeout_s: float | None = None,
    on_error: str = "fail",
    max_retries: int = 2,
    retry_backoff: float = 0.0,
    checkpoint_path: str | None = None,
    resume: bool = False,
    checkpoint_group: int = DEFAULT_CHECKPOINT_GROUP,
    stats: HarnessStats | None = None,
    progress: bool = False,
) -> SweepOutcome:
    """Crash-safe sweep: timeouts, retry policy, checkpointing, resume.

    ``on_error`` decides what a failing (or timed-out) cell does to the
    sweep: ``"fail"`` aborts on the first failure (the fast path's
    behavior), ``"skip"`` quarantines it immediately, ``"retry"``
    re-runs it up to ``max_retries`` more times before quarantining.
    ``retry_backoff`` inserts a deterministic exponential pause before
    each re-run (``base * 2**(attempt-1)`` seconds, capped at
    :data:`MAX_BACKOFF_S`) — useful when cells fail on transient
    machine pressure rather than on their own inputs; the default 0
    retries immediately, the historical behavior.  On the pooled path a
    backing-off cell defers only *itself* (its ready time moves into
    the future); other cells keep the workers busy meanwhile.
    ``checkpoint_path`` appends every completed cell to a JSONL file
    with group commits of ``checkpoint_group`` cells per write+flush
    (:data:`DEFAULT_CHECKPOINT_GROUP`; 1 restores per-cell flushing);
    with ``resume=True`` cells already in that file are not re-run.  A
    worker process dying (OOM killer, SIGKILL) does not lose the sweep:
    the pool is rebuilt and unfinished cells are resubmitted (under
    ``"fail"`` it aborts, but committed cells are already on disk for
    ``--resume``).

    Completed cells are byte-identical to the serial runner's — every
    cell derives its RNG stream from the root seed alone, so neither
    execution order, retries, nor a resume change any result.
    """
    _known_experiment(name)
    n_workers = _validated_workers(n_workers)
    if on_error not in ("fail", "skip", "retry"):
        raise ModelError(
            f"on_error must be one of fail/skip/retry, got {on_error!r}"
        )
    if max_retries < 0:
        raise ModelError(f"max_retries must be non-negative, got {max_retries}")
    if retry_backoff < 0:
        raise ModelError(f"retry_backoff must be non-negative, got {retry_backoff}")
    if resume and checkpoint_path is None:
        raise ModelError("resume=True requires a checkpoint_path")
    if checkpoint_group < 1:
        raise ModelError(f"checkpoint_group must be positive, got {checkpoint_group}")

    from repro.experiments.cli import build_spec

    overrides = _sweep_overrides(
        n_reps=n_reps,
        n_jobs=n_jobs,
        seed=seed,
        failure_aware=failure_aware,
        correlation=correlation,
        fault_groups=fault_groups,
        checkpoint_interval=checkpoint_interval,
        checkpoint_cost=checkpoint_cost,
        retry_budget=retry_budget,
    )
    spec = build_spec(name, **overrides)
    all_cells = [
        (point_index, rep)
        for point_index in range(len(spec.points))
        for rep in range(spec.n_reps)
    ]

    completed: dict[tuple[int, int], list[ResultRow]] = {}
    store: CheckpointStore | None = None
    if checkpoint_path is not None:
        store = CheckpointStore(
            checkpoint_path,
            experiment=name,
            overrides=overrides,
            group_size=checkpoint_group,
        )
        if resume:
            completed = store.load_completed()
        store.start(fresh=not resume)

    outcome = SweepOutcome(n_from_checkpoint=len(completed))
    pending = [c for c in dispatch_order(spec) if c not in completed]
    attempts: dict[tuple[int, int], int] = {}
    quarantined: dict[tuple[int, int], str] = {}
    reporter = ProgressReporter(name, len(all_cells), enabled=progress)
    for _ in range(len(completed)):
        reporter.cell_done()
    t_start = time.monotonic()

    def cell_args(cell: tuple[int, int]) -> tuple:
        return (name, overrides, cell[0], cell[1], instrument, timeout_s)

    def record(cell: tuple[int, int], rows: list[ResultRow]) -> None:
        completed[cell] = rows
        outcome.n_executed += 1
        if store is not None:
            store.append(cell[0], cell[1], rows)
        reporter.cell_done()

    def on_failure(cell: tuple[int, int], exc: BaseException) -> bool:
        """Apply the policy; True means the cell should be retried."""
        attempts[cell] = attempts.get(cell, 0) + 1
        if on_error == "fail":
            if isinstance(exc, ModelError):
                raise exc
            raise ModelError(
                f"experiment {name!r} cell (point={cell[0]}, rep={cell[1]}) "
                f"failed: {type(exc).__name__}: {exc}"
            ) from exc
        if on_error == "retry" and attempts[cell] <= max_retries:
            return True
        quarantined[cell] = f"{type(exc).__name__}: {exc}"
        return False

    try:
        if n_workers == 1:
            if stats is not None:
                stats.n_workers = 1
                stats.window = 1
            before = _inline_warm_counters(stats, name, overrides)
            # Serial cell order inline (dispatch order buys nothing on
            # one worker and serial order aids debugging).
            queue = [c for c in all_cells if c not in completed]
            while queue:
                cell = queue.pop(0)
                t0 = time.perf_counter()
                try:
                    _, _, rows = _run_guarded_cell(cell_args(cell))
                except Exception as exc:
                    if on_failure(cell, exc):
                        delay = _backoff_delay(retry_backoff, attempts[cell])
                        if delay:
                            time.sleep(delay)
                        queue.append(cell)
                    continue
                record(cell, rows)
                if stats is not None:
                    stats.record_cell(
                        cost=predict_cell_cost(spec, cell[0]),
                        wall_s=time.perf_counter() - t0,
                    )
            _inline_warm_settle(stats, name, overrides, before)
        else:
            _run_pooled(
                pending, cell_args, record, on_failure, quarantined, attempts,
                n_workers, strict=on_error == "fail", retry_backoff=retry_backoff,
                cost_of=lambda cell: predict_cell_cost(spec, cell[0]), stats=stats,
            )
        if stats is not None:
            stats.elapsed_s = time.monotonic() - t_start
    finally:
        if store is not None:
            store.close()

    for cell in all_cells:
        if cell in completed:
            outcome.rows.extend(completed[cell])
    outcome.quarantined = [
        QuarantinedCell(
            point=cell[0],
            rep=cell[1],
            attempts=attempts.get(cell, 0),
            error=error,
        )
        for cell, error in sorted(quarantined.items())
    ]
    return outcome


def _run_pooled(
    pending: list[tuple[int, int]],
    cell_args,
    record,
    on_failure,
    quarantined: dict,
    attempts: dict,
    n_workers: int,
    *,
    strict: bool,
    retry_backoff: float = 0.0,
    cost_of=None,
    stats: HarnessStats | None = None,
) -> None:
    """Dynamic-dispatch pool loop that survives worker-process deaths.

    One long-lived pool serves the whole sweep (retries included):
    ``pending`` arrives in dispatch order and cells are submitted
    individually over a bounded in-flight window, so a completed
    worker immediately receives the next most expensive cell.  A
    retrying cell under backoff defers only itself — its ready time
    moves into the future while other cells keep the workers busy.

    A ``BrokenProcessPool`` (a worker was killed) fails every in-flight
    future, so the pool is discarded and rebuilt and the cells that had
    not completed are resubmitted — except under the strict (fail)
    policy, where the death aborts the sweep with the committed cells
    already checkpointed.  Pool rebuilds are bounded by
    :data:`MAX_POOL_REBUILDS`; past that the remaining cells are
    quarantined (the machine, not the cells, is the likely problem).
    """
    window = effective_window(n_workers)
    pool_size = min(n_workers, window)
    if stats is not None:
        stats.n_workers = pool_size
        stats.window = window
    ready: deque = deque(pending)
    delayed: list = []  # heap of (ready_time, tiebreak, cell)
    tiebreak = 0
    rebuilds = 0
    pool = ProcessPoolExecutor(max_workers=pool_size)
    inflight: dict = {}
    try:
        while ready or delayed or inflight:
            try:
                now = time.monotonic()
                # An expired retry jumps the queue: its remaining
                # backoff chain bounds the sweep's tail, so the sooner
                # it runs (or fails into its next pause), the more of
                # that chain overlaps the remaining work.
                while delayed and delayed[0][0] <= now:
                    ready.appendleft(heapq.heappop(delayed)[2])
                while ready and len(inflight) < window:
                    cell = ready.popleft()
                    fut = pool.submit(_run_cell_payload, cell_args(cell))
                    inflight[fut] = cell
                if not inflight:
                    # Everything left is backing off; sleep to the
                    # earliest ready time.
                    time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                    continue
                timeout = delayed[0][0] - now if delayed else None
                done, _ = wait(
                    set(inflight),
                    timeout=max(0.0, timeout) if timeout is not None else None,
                    return_when=FIRST_COMPLETED,
                )
                broken: BrokenProcessPool | None = None
                for fut in done:
                    cell = inflight.pop(fut)
                    try:
                        payload = fut.result()
                    except BrokenProcessPool as exc:
                        # The cell never completed; keep it with the
                        # survivors the rebuild handler resubmits.
                        broken = exc
                        ready.appendleft(cell)
                        continue
                    except Exception as exc:
                        if on_failure(cell, exc):
                            delay = _backoff_delay(retry_backoff, attempts[cell])
                            if delay:
                                tiebreak += 1
                                heapq.heappush(
                                    delayed,
                                    (time.monotonic() + delay, tiebreak, cell),
                                )
                            else:
                                ready.append(cell)
                        continue
                    record(cell, unpack_rows(payload[2]))
                    if stats is not None:
                        stats.record_cell(
                            cost=cost_of(cell) if cost_of is not None else 1.0,
                            wall_s=payload[3],
                            payload_bytes=_payload_bytes(payload),
                            spec_builds=payload[4],
                            instance_builds=payload[5],
                        )
                if broken is not None:
                    raise broken
            except BrokenProcessPool as exc:
                if strict:
                    raise ModelError(
                        "a worker process died mid-sweep (killed or crashed hard); "
                        "completed cells are checkpointed — rerun with --on-cell-error "
                        "skip/retry to rebuild the pool and continue instead"
                    ) from exc
                rebuilds += 1
                if stats is not None:
                    stats.pool_rebuilds += 1
                survivors = list(inflight.values())
                inflight.clear()
                pool.shutdown(wait=False)
                if rebuilds > MAX_POOL_REBUILDS:
                    survivors += list(ready) + [item[2] for item in delayed]
                    for cell in survivors:
                        attempts.setdefault(cell, 0)
                        quarantined[cell] = (
                            f"worker pool died {rebuilds} times; last: "
                            f"{type(exc).__name__}: {exc}"
                        )
                    return
                ready.extendleft(reversed(survivors))
                pool = ProcessPoolExecutor(max_workers=pool_size)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
