"""Parallel experiment execution over worker processes.

Specs carry closures (instance factories), which do not pickle; so the
parallel path ships only *names*: each worker rebuilds the named spec
from :mod:`repro.experiments.cli`'s builder registry and runs one
(point, replication) cell.  Cell RNG streams are re-derived from the
root seed inside :func:`repro.experiments.runner.run_cell`, so results
are bit-identical to the serial runner regardless of scheduling order
— parallelism changes wall-clock only.

This is how the paper-scale sweeps (1000 reps of n = 4000) become
tractable: cells are embarrassingly parallel.

Telemetry crosses the process boundary the same way rows do:
instrumented hooks are instantiated inside the worker (from the shipped
names), collected into a :class:`~repro.obs.telemetry.RunTelemetry`
snapshot by :func:`~repro.experiments.runner.run_cell`, and attached to
each :class:`ResultRow` as a plain dict — so the serial and parallel
runners return byte-identical telemetry for the same seed, not just
identical scalar rows.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.core.errors import ModelError
from repro.experiments.runner import ResultRow, run_cell


def _run_named_cell(args: tuple) -> tuple[int, int, list[ResultRow]]:
    """Worker entry: rebuild the spec by name and run one cell.

    Any exception is re-raised as a :class:`ModelError` naming the cell,
    so the parent sees *which* (experiment, point, rep) failed instead
    of a bare traceback pickled out of an anonymous worker.
    """
    name, overrides, point_index, rep, instrument = args
    from repro.experiments.cli import build_spec

    try:
        spec = build_spec(name, **overrides)
        return point_index, rep, run_cell(
            spec, point_index, rep, instrument=instrument
        )
    except Exception as exc:
        raise ModelError(
            f"experiment {name!r} cell (point={point_index}, rep={rep}) "
            f"failed: {type(exc).__name__}: {exc}"
        ) from exc


def run_named_experiment_parallel(
    name: str,
    *,
    n_workers: int | None = None,
    n_reps: int | None = None,
    n_jobs: int | None = None,
    seed: int | None = None,
    instrument: "tuple[str, ...] | None" = None,
) -> list[ResultRow]:
    """Run the named experiment with cells fanned out over processes.

    Returns rows in the same order as the serial runner (points outer,
    replications inner, schedulers innermost).  ``instrument`` names
    registered engine hooks; names (not hook objects) cross the process
    boundary, and each worker instantiates them fresh per run.
    """
    from repro.experiments.cli import _BUILDERS, build_spec

    if name not in _BUILDERS:
        raise ModelError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(_BUILDERS))}"
        )
    if n_workers is None:
        n_workers = max(1, (os.cpu_count() or 2) - 1)
    if n_workers < 1:
        raise ModelError(f"n_workers must be positive, got {n_workers}")

    overrides = {"n_reps": n_reps, "n_jobs": n_jobs, "seed": seed}
    spec = build_spec(name, **overrides)
    cells = [
        (name, overrides, point_index, rep, instrument)
        for point_index in range(len(spec.points))
        for rep in range(spec.n_reps)
    ]

    if n_workers == 1:
        results = [_run_named_cell(cell) for cell in cells]
    else:
        # Explicit chunksize: the default of 1 round-trips one pickle per
        # cell; batching amortizes IPC while keeping enough chunks per
        # worker (~4) for load balancing across uneven cell durations.
        chunksize = max(1, len(cells) // (n_workers * 4))
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            results = list(pool.map(_run_named_cell, cells, chunksize=chunksize))

    results.sort(key=lambda item: (item[0], item[1]))
    rows: list[ResultRow] = []
    for _, _, cell_rows in results:
        rows.extend(cell_rows)
    return rows
