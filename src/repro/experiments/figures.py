"""The paper's figures as experiment specs (Section VI).

Paper-scale parameters (n = 4000 jobs, 1000 replications) are noted on
each builder; the defaults are scaled down for a pure-Python substrate
but keep the platform shapes and sweep ranges, and every size is a
parameter so the paper-scale run is one call away.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.config import ExperimentSpec, SchedulerSpec, SweepPoint
from repro.workloads.kang import KangConfig, generate_kang_instance
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)

#: Sweep ranges mirroring the paper's plots.
FIG2A_CCRS = (0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0)
FIG2B_LOADS = (0.05, 0.1, 0.25, 0.5, 1.0, 1.5, 2.0)
FIG2CD_NJOBS = (50, 100, 200, 400, 800)


def _paper_schedulers(include_edge_only: bool = True) -> tuple[SchedulerSpec, ...]:
    names = ["edge-only"] if include_edge_only else []
    names += ["greedy", "srpt", "ssf-edf"]
    return tuple(SchedulerSpec.named(n) for n in names)


def fig2a(
    *,
    n_jobs: int = 400,
    n_reps: int = 10,
    ccrs: Sequence[float] = FIG2A_CCRS,
    load: float = 0.05,
    seed: int = 20210517,
) -> ExperimentSpec:
    """Figure 2(a): max-stretch vs CCR, random instances.

    Paper: n_jobs=4000, n_reps=1000, platform = 20 cloud + 10 edge at
    0.1 + 10 edge at 0.5, load 0.05.
    """
    points = tuple(
        SweepPoint(
            x=ccr,
            make_instance=(
                lambda rng, ccr=ccr: generate_random_instance(
                    RandomInstanceConfig(n_jobs=n_jobs, ccr=ccr, load=load),
                    platform=paper_random_platform(),
                    seed=rng,
                )
            ),
        )
        for ccr in ccrs
    )
    return ExperimentSpec(
        name="fig2a",
        x_label="CCR",
        points=points,
        schedulers=_paper_schedulers(include_edge_only=True),
        n_reps=n_reps,
        seed=seed,
        description="max-stretch vs communication/computation ratio (random instances)",
    )


def fig2b(
    *,
    n_jobs: int = 400,
    n_reps: int = 10,
    loads: Sequence[float] = FIG2B_LOADS,
    ccr: float = 1.0,
    seed: int = 20210518,
) -> ExperimentSpec:
    """Figure 2(b): max-stretch vs load, random instances, CCR=1.

    Paper: n_jobs=4000, n_reps=1000; Edge-Only excluded ("too costly
    since all jobs compete on the edge").
    """
    points = tuple(
        SweepPoint(
            x=load,
            make_instance=(
                lambda rng, load=load: generate_random_instance(
                    RandomInstanceConfig(n_jobs=n_jobs, ccr=ccr, load=load),
                    platform=paper_random_platform(),
                    seed=rng,
                )
            ),
        )
        for load in loads
    )
    return ExperimentSpec(
        name="fig2b",
        x_label="load",
        points=points,
        schedulers=_paper_schedulers(include_edge_only=False),
        n_reps=n_reps,
        seed=seed,
        description="max-stretch vs load (random instances, CCR=1)",
    )


def _kang_spec(
    name: str,
    n_edge: int,
    *,
    n_jobs_values: Sequence[int],
    n_reps: int,
    n_cloud: int,
    load: float,
    seed: int,
    include_edge_only: bool,
) -> ExperimentSpec:
    points = tuple(
        SweepPoint(
            x=n,
            make_instance=(
                lambda rng, n=n: generate_kang_instance(
                    KangConfig(n_jobs=n, n_edge=n_edge, n_cloud=n_cloud, load=load),
                    seed=rng,
                )
            ),
        )
        for n in n_jobs_values
    )
    return ExperimentSpec(
        name=name,
        x_label="n_jobs",
        points=points,
        schedulers=_paper_schedulers(include_edge_only=include_edge_only),
        n_reps=n_reps,
        seed=seed,
        description=f"max-stretch vs number of jobs (Kang instances, {n_edge} edge units)",
    )


def fig2c(
    *,
    n_jobs_values: Sequence[int] = FIG2CD_NJOBS,
    n_reps: int = 10,
    n_cloud: int = 10,
    load: float = 0.05,
    seed: int = 20210519,
    include_edge_only: bool = True,
) -> ExperimentSpec:
    """Figure 2(c): max-stretch vs n, Kang instances, 20 edge units."""
    return _kang_spec(
        "fig2c",
        20,
        n_jobs_values=n_jobs_values,
        n_reps=n_reps,
        n_cloud=n_cloud,
        load=load,
        seed=seed,
        include_edge_only=include_edge_only,
    )


def fig2d(
    *,
    n_jobs_values: Sequence[int] = FIG2CD_NJOBS,
    n_reps: int = 10,
    n_cloud: int = 10,
    load: float = 0.05,
    seed: int = 20210520,
    include_edge_only: bool = True,
) -> ExperimentSpec:
    """Figure 2(d): max-stretch vs n, Kang instances, 100 edge units."""
    return _kang_spec(
        "fig2d",
        100,
        n_jobs_values=n_jobs_values,
        n_reps=n_reps,
        n_cloud=n_cloud,
        load=load,
        seed=seed,
        include_edge_only=include_edge_only,
    )
