"""Command-line entry point: regenerate any paper figure or ablation.

Examples::

    repro-experiments fig2a                      # scaled-down defaults
    repro-experiments fig2b --n-jobs 800 --reps 30
    repro-experiments fig2c --csv out.csv
    repro-experiments exec_time_vs_n
    repro-experiments ablation_alpha
    repro-experiments all --reps 3 --n-jobs 100  # quick full pass
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import ablations, exec_time, faults_study, figures
from repro.experiments.config import ExperimentSpec
from repro.experiments.runner import aggregate, run_experiment
from repro.experiments.tables import format_series_table, format_timing_table, rows_to_csv
from repro.obs.monitors import DEFAULT_TELEMETRY_HOOKS
from repro.obs.sinks import telemetry_record, write_telemetry_jsonl

_BUILDERS: dict[str, Callable[..., ExperimentSpec]] = {
    "fig2a": figures.fig2a,
    "fig2b": figures.fig2b,
    "fig2c": figures.fig2c,
    "fig2d": figures.fig2d,
    "exec_time_vs_n": exec_time.exec_time_vs_n,
    "exec_time_vs_load": exec_time.exec_time_vs_load,
    "exec_time_vs_ccr": exec_time.exec_time_vs_ccr,
    "ablation_alpha": ablations.ablation_alpha,
    "ablation_eps": ablations.ablation_eps,
    "ablation_greedy_guard": ablations.ablation_greedy_guard,
    "ablation_reexec": ablations.ablation_reexec,
    "ablation_hetero_cloud": ablations.ablation_hetero_cloud,
    "ablation_availability": ablations.ablation_availability,
    "degradation_mtbf": faults_study.degradation_mtbf,
}

#: Builders that accept an n_jobs override.
_TAKES_N_JOBS = {
    "fig2a",
    "fig2b",
    "exec_time_vs_load",
    "exec_time_vs_ccr",
    "ablation_alpha",
    "ablation_eps",
    "ablation_greedy_guard",
    "ablation_reexec",
    "ablation_hetero_cloud",
    "ablation_availability",
    "degradation_mtbf",
}


#: Builders that accept the failure-aware/correlated-fault overrides.
_TAKES_FAULT_OPTS = {"degradation_mtbf"}


def _interval_arg(text: str):
    """``--checkpoint-interval`` value: work units, or ``auto`` (Young/Daly)."""
    if text == "auto":
        return "auto"
    try:
        return float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number of work units or 'auto', got {text!r}"
        ) from None


def build_spec(
    name: str,
    *,
    n_reps: int | None,
    n_jobs: int | None,
    seed: int | None,
    failure_aware: bool = False,
    correlation: int = 1,
    fault_groups: str | None = None,
    checkpoint_interval: float | str | None = None,
    checkpoint_cost: float = 0.0,
    retry_budget: int | None = None,
) -> ExperimentSpec:
    """Instantiate a named experiment with optional overrides."""
    kwargs = {}
    if n_reps is not None:
        kwargs["n_reps"] = n_reps
    if seed is not None:
        kwargs["seed"] = seed
    if n_jobs is not None and name in _TAKES_N_JOBS:
        kwargs["n_jobs"] = n_jobs
    if n_jobs is not None and name in ("fig2c", "fig2d", "exec_time_vs_n"):
        key = "n_jobs_values" if name.startswith("fig") else "n_values"
        kwargs[key] = (n_jobs,)
    fault_opts = (
        failure_aware
        or correlation != 1
        or fault_groups is not None
        or checkpoint_interval is not None
        or checkpoint_cost != 0.0
        or retry_budget is not None
    )
    if name in _TAKES_FAULT_OPTS:
        if failure_aware:
            kwargs["failure_aware"] = True
        if correlation != 1:
            kwargs["correlation"] = correlation
        if fault_groups is not None:
            kwargs["fault_groups"] = fault_groups
        if checkpoint_interval is not None:
            kwargs["checkpoint_interval"] = checkpoint_interval
        if checkpoint_cost != 0.0:
            kwargs["checkpoint_cost"] = checkpoint_cost
        if retry_budget is not None:
            kwargs["retry_budget"] = retry_budget
    elif fault_opts:
        raise ValueError(
            f"experiment {name!r} does not take the fault/checkpoint options "
            "(--failure-aware/--fault-correlation/--fault-groups/"
            "--checkpoint-interval/--checkpoint-cost/--retry-budget)"
        )
    return _BUILDERS[name](**kwargs)


def _write_traces(out_dir: str, rows) -> int:
    """Write one trace JSONL per traced row into ``out_dir``.

    Filenames are deterministic functions of the row's coordinates
    (experiment, x, rep, scheduler), so serial and parallel sweeps — and
    a resumed sweep restoring cells from its checkpoint — produce
    byte-identical files under identical names.
    """
    import os
    import re

    from repro.obs.tracing import write_trace_jsonl

    os.makedirs(out_dir, exist_ok=True)
    n_written = 0
    for row in rows:
        if row.trace is None:
            continue
        sched = re.sub(r"[^A-Za-z0-9._-]+", "-", row.scheduler)
        fname = f"{row.experiment}_x{row.x:g}_rep{row.rep}_{sched}.trace.jsonl"
        write_trace_jsonl(os.path.join(out_dir, fname), row.trace)
        n_written += 1
    return n_written


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of 'Max-Stretch Minimization on an "
        "Edge-Cloud Platform' (IPDPS 2021).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_BUILDERS) + ["all"],
        help="which figure/ablation to run ('all' runs every one)",
    )
    parser.add_argument("--reps", type=int, default=None, help="replications per point")
    parser.add_argument("--n-jobs", type=int, default=None, help="jobs per instance")
    parser.add_argument("--seed", type=int, default=None, help="root seed")
    parser.add_argument(
        "--failure-aware",
        action="store_true",
        help="add the failure-aware ssf-edf-fa, srpt-fa and fcfs-fa "
        "variants to the roster (degradation_mtbf only)",
    )
    parser.add_argument(
        "--fault-correlation",
        type=int,
        default=1,
        metavar="G",
        help="correlated-failure group size: consecutive resources in "
        "groups of G share fault windows (degradation_mtbf only; "
        "default 1 = independent)",
    )
    parser.add_argument(
        "--fault-groups",
        type=str,
        default=None,
        metavar="SPEC",
        help="topology-driven correlated fault groups, e.g. "
        "'edge:0-4;link:0-4;cloud:0,1' — each listed group shares one "
        "failure renewal sequence; memberships may overlap "
        "(degradation_mtbf only; mutually exclusive with "
        "--fault-correlation)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=_interval_arg,
        default=None,
        metavar="WORK|auto",
        help="enable the checkpoint/restart variant: commit progress every "
        "WORK work units, or 'auto' to derive each sweep cell's interval "
        "with the Young/Daly rule sqrt(2*MTBF*cost) from its fault rates "
        "(needs a positive --checkpoint-cost); adds the ssf-edf-fa+ckpt "
        "and ssf-edf-fa-rework+ckpt roster entries (degradation_mtbf only)",
    )
    parser.add_argument(
        "--checkpoint-cost",
        type=float,
        default=0.0,
        metavar="WORK",
        help="extra work burned per checkpoint commit (with "
        "--checkpoint-interval; default 0)",
    )
    parser.add_argument(
        "--retry-budget",
        type=int,
        default=None,
        metavar="K",
        help="graceful degradation: abandon a job after K fault-aborted "
        "attempts instead of retrying forever (checkpoint variant roster "
        "entries; degradation_mtbf only)",
    )
    parser.add_argument("--csv", type=str, default=None, help="also write raw rows to this CSV file")
    parser.add_argument(
        "--svg-dir",
        type=str,
        default=None,
        help="also write one SVG line chart per experiment into this directory",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; >1 fans (point, rep) cells out over a "
        "process pool with bit-identical results",
    )
    parser.add_argument(
        "--instrument",
        action="append",
        default=None,
        metavar="HOOK",
        help="attach a registered engine hook to every run (repeatable); "
        "side-effectful hooks registered via repro.sim.hooks.register_hook",
    )
    parser.add_argument(
        "--telemetry-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write per-(experiment, x, scheduler) merged telemetry as JSONL "
        "(instruments with the default telemetry hooks when no --instrument "
        "is given; summarize with `python -m repro.obs.report PATH`)",
    )
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="DIR",
        help="write one causal trace JSONL per (point, rep, scheduler) run "
        "into this directory (adds the 'tracing' hook; explore with "
        "`repro-trace summary/critical/diff`)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock timeout; a cell over budget counts as a "
        "failed cell under --on-cell-error",
    )
    parser.add_argument(
        "--on-cell-error",
        choices=("fail", "skip", "retry"),
        default="fail",
        help="what a failing cell does to the sweep: abort it (fail, the "
        "default), quarantine the cell (skip), or re-run it up to "
        "--max-retries times before quarantining (retry)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="extra attempts per cell under --on-cell-error retry",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="deterministic exponential pause before each cell re-run under "
        "--on-cell-error retry: SECONDS * 2**(attempt-1), capped at 30s "
        "(default 0 = retry immediately)",
    )
    parser.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        metavar="PATH",
        help="append each completed cell to this JSONL file (group-committed, "
        "see --checkpoint-group) so a killed sweep can pick up with --resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already recorded in --checkpoint (requires it)",
    )
    parser.add_argument(
        "--checkpoint-group",
        type=int,
        default=8,
        metavar="N",
        help="cells buffered per checkpoint group commit (default 8; a kill "
        "can lose at most the last N-1 uncommitted cells — use 1 for the "
        "per-cell durability of older builds)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a live 'cells/sec + ETA' line on stderr as cells "
        "complete (fed by the harness.* counters; no effect on results)",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)
    instrument = tuple(args.instrument) if args.instrument else None
    if args.telemetry_out and instrument is None:
        instrument = DEFAULT_TELEMETRY_HOOKS
    if args.trace_out and (instrument is None or "tracing" not in instrument):
        instrument = (instrument or ()) + ("tracing",)
    resilient = (
        args.timeout is not None
        or args.on_cell_error != "fail"
        or args.checkpoint is not None
        or args.resume
    )
    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint")
    if resilient and args.experiment == "all":
        parser.error(
            "--timeout/--on-cell-error/--checkpoint/--resume need a single "
            "experiment, not 'all'"
        )
    fault_opts = (
        args.failure_aware
        or args.fault_correlation != 1
        or args.fault_groups is not None
        or args.checkpoint_interval is not None
        or args.checkpoint_cost != 0.0
        or args.retry_budget is not None
    )
    if fault_opts and args.experiment not in _TAKES_FAULT_OPTS:
        parser.error(
            "--failure-aware/--fault-correlation/--fault-groups/"
            "--checkpoint-interval/--checkpoint-cost/--retry-budget apply "
            "only to: " + ", ".join(sorted(_TAKES_FAULT_OPTS))
        )
    if args.fault_groups is not None and args.fault_correlation != 1:
        parser.error("--fault-groups and --fault-correlation are mutually exclusive")
    if args.checkpoint_cost != 0.0 and args.checkpoint_interval is None:
        parser.error("--checkpoint-cost requires --checkpoint-interval")
    if args.checkpoint_group < 1:
        parser.error("--checkpoint-group must be positive")

    names = sorted(_BUILDERS) if args.experiment == "all" else [args.experiment]
    any_quarantined = False
    all_csv: list[str] = []
    telemetry_records: list[dict] = []
    for name in names:
        spec = build_spec(
            name,
            n_reps=args.reps,
            n_jobs=args.n_jobs,
            seed=args.seed,
            failure_aware=args.failure_aware,
            correlation=args.fault_correlation,
            fault_groups=args.fault_groups,
            checkpoint_interval=args.checkpoint_interval,
            checkpoint_cost=args.checkpoint_cost,
            retry_budget=args.retry_budget,
        )
        harness_stats = None
        if args.telemetry_out and (resilient or args.workers > 1 or args.progress):
            from repro.obs.harness import HarnessStats

            harness_stats = HarnessStats()
        if resilient:
            from repro.experiments.parallel import run_named_experiment_resilient

            outcome = run_named_experiment_resilient(
                name,
                n_workers=args.workers,
                n_reps=args.reps,
                n_jobs=args.n_jobs,
                seed=args.seed,
                failure_aware=args.failure_aware,
                correlation=args.fault_correlation,
                fault_groups=args.fault_groups,
                checkpoint_interval=args.checkpoint_interval,
                checkpoint_cost=args.checkpoint_cost,
                retry_budget=args.retry_budget,
                instrument=instrument,
                timeout_s=args.timeout,
                on_error=args.on_cell_error,
                max_retries=args.max_retries,
                retry_backoff=args.retry_backoff,
                checkpoint_path=args.checkpoint,
                resume=args.resume,
                checkpoint_group=args.checkpoint_group,
                stats=harness_stats,
                progress=args.progress,
            )
            rows = outcome.rows
            if not args.quiet:
                print(
                    f"[{name}] {outcome.n_executed} cells executed, "
                    f"{outcome.n_from_checkpoint} restored from checkpoint, "
                    f"{len(outcome.quarantined)} quarantined",
                    file=sys.stderr,
                )
            if outcome.quarantined:
                any_quarantined = True
                print(f"[{name}] quarantined cells:", file=sys.stderr)
                for q in outcome.quarantined:
                    print(
                        f"  point={q.point} rep={q.rep} "
                        f"attempts={q.attempts}: {q.error}",
                        file=sys.stderr,
                    )
        elif args.workers > 1 or args.progress:
            from repro.experiments.parallel import run_named_experiment_parallel

            rows = run_named_experiment_parallel(
                name,
                n_workers=args.workers,
                n_reps=args.reps,
                n_jobs=args.n_jobs,
                seed=args.seed,
                failure_aware=args.failure_aware,
                correlation=args.fault_correlation,
                fault_groups=args.fault_groups,
                checkpoint_interval=args.checkpoint_interval,
                checkpoint_cost=args.checkpoint_cost,
                retry_budget=args.retry_budget,
                instrument=instrument,
                stats=harness_stats,
                progress=args.progress,
            )
        else:
            rows = run_experiment(spec, progress=not args.quiet, instrument=instrument)
        agg = aggregate(rows)
        if args.trace_out:
            n_traces = _write_traces(args.trace_out, rows)
            print(
                f"[{name}] {n_traces} trace file(s) written to {args.trace_out}",
                file=sys.stderr,
            )
        if args.telemetry_out:
            telemetry_records.extend(
                telemetry_record(
                    experiment=a.experiment,
                    x=a.x,
                    scheduler=a.scheduler,
                    n=a.n,
                    telemetry=a.telemetry,
                )
                for a in agg
                if a.telemetry is not None
            )
            if harness_stats is not None and harness_stats.cells:
                # The harness observes itself under a reserved
                # scheduler name; same JSONL schema, same report path.
                telemetry_records.append(
                    telemetry_record(
                        experiment=name,
                        x=None,
                        scheduler="harness",
                        n=1,
                        telemetry=harness_stats.to_telemetry().to_dict(),
                    )
                )
        print(f"\n== {spec.name}: {spec.description} ==")
        print(format_series_table(agg, x_label=spec.x_label))
        print("\nscheduling time:")
        print(format_timing_table(agg, x_label=spec.x_label))
        if args.csv:
            all_csv.append(rows_to_csv(rows))
        if args.svg_dir:
            import os

            from repro.experiments.svgplot import save_series_svg

            os.makedirs(args.svg_dir, exist_ok=True)
            target = os.path.join(args.svg_dir, f"{spec.name}.svg")
            save_series_svg(
                agg,
                target,
                title=f"{spec.name}: {spec.description}",
                x_label=spec.x_label,
                log_x=spec.x_label.upper() == "CCR",
            )
            print(f"figure written to {target}", file=sys.stderr)

    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            # Keep a single header when concatenating experiments.
            for i, blob in enumerate(all_csv):
                lines = blob.splitlines(keepends=True)
                fh.writelines(lines if i == 0 else lines[1:])
        print(f"\nraw rows written to {args.csv}", file=sys.stderr)
    if args.telemetry_out:
        n_records = write_telemetry_jsonl(args.telemetry_out, telemetry_records)
        print(
            f"telemetry written to {args.telemetry_out} ({n_records} records)",
            file=sys.stderr,
        )
    # Quarantined cells mean an incomplete (but valid) sweep: distinct
    # exit code so CI and drivers can tell "done" from "done with holes".
    return 3 if any_quarantined else 0


if __name__ == "__main__":
    raise SystemExit(main())
