"""repro — reproduction of *Max-Stretch Minimization on an Edge-Cloud Platform*.

(Benoit, Elghazi, Robert — IPDPS 2021.)

Quickstart::

    from repro import Job, Platform, Instance, simulate, make_scheduler

    platform = Platform.create(edge_speeds=[0.5, 0.1], n_cloud=2)
    jobs = [Job(origin=0, work=4.0, release=0.0, up=1.0, dn=1.0),
            Job(origin=1, work=2.0, release=1.0, up=0.5, dn=0.5)]
    result = simulate(Instance.create(platform, jobs), make_scheduler("ssf-edf"))
    print(result.max_stretch)

Subpackages:

* :mod:`repro.core` — jobs, platforms, instances, schedules, validation, metrics;
* :mod:`repro.sim` — the discrete-event engine (one-port full-duplex model);
* :mod:`repro.schedulers` — Edge-Only, Greedy, SRPT, SSF-EDF + extra baselines;
* :mod:`repro.offline` — offline optima, bounds, NP-hardness reductions;
* :mod:`repro.workloads` — random/CCR and Kang instance generators;
* :mod:`repro.experiments` — the figure-regeneration harness.
"""

from repro.core import (
    Instance,
    Job,
    Platform,
    Schedule,
    assert_valid_schedule,
    average_stretch,
    max_stretch,
    stretches,
    validate_schedule,
)
from repro.core.resources import Resource, ResourceKind, cloud, edge
from repro.schedulers import (
    PAPER_SCHEDULERS,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)
from repro.sim import CloudAvailability, SimulationResult, simulate

__version__ = "1.0.0"

__all__ = [
    "Job",
    "Platform",
    "Instance",
    "Schedule",
    "Resource",
    "ResourceKind",
    "edge",
    "cloud",
    "simulate",
    "SimulationResult",
    "CloudAvailability",
    "make_scheduler",
    "register_scheduler",
    "available_schedulers",
    "PAPER_SCHEDULERS",
    "validate_schedule",
    "assert_valid_schedule",
    "stretches",
    "max_stretch",
    "average_stretch",
    "__version__",
]
