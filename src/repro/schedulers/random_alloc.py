"""Random-placement baseline (ours, for ablations).

Each job is assigned, once and for all at its release, to a uniformly
random resource among its origin edge unit and the cloud processors.
Priority is FCFS.  This isolates how much of the heuristics' value comes
from *where* they place jobs versus *when* they run them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.resources import Resource, cloud, edge
from repro.schedulers.base import BaseScheduler
from repro.sim.decision import Decision
from repro.sim.events import Event, EventKind
from repro.sim.view import SimulationView
from repro.util.rng import SeedLike, as_generator


class RandomScheduler(BaseScheduler):
    """Uniform random sticky placement, FCFS priority."""

    name = "random"

    def __init__(self, seed: SeedLike = None):
        self._rng = as_generator(seed)
        self._placement: dict[int, Resource] = {}

    def start(self, view: SimulationView) -> None:
        self._placement = {}

    def decide(self, view: SimulationView, events: Sequence[Event]) -> Decision:
        live = view.live_jobs()
        decision = Decision()
        if live.size == 0:
            return decision

        instance = view.instance
        n_cloud = view.platform.n_cloud
        for e in events:
            if e.kind is not EventKind.RELEASE or e.job is None:
                continue
            pick = int(self._rng.integers(0, 1 + n_cloud))
            self._placement[e.job] = (
                edge(instance.jobs[e.job].origin) if pick == 0 else cloud(pick - 1)
            )

        order = np.lexsort((live, instance.release[live]))
        for row in order:
            i = int(live[row])
            decision.add(i, self._placement[i])
        return decision
