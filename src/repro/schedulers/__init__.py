"""Online scheduling policies (Section V) plus extra baselines."""

from repro.schedulers.base import BaseScheduler
from repro.schedulers.cloud_only import CloudOnlyScheduler
from repro.schedulers.edge_only import EdgeOnlyScheduler
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.random_alloc import RandomScheduler
from repro.schedulers.registry import (
    PAPER_SCHEDULERS,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)
from repro.schedulers.srpt import SrptScheduler
from repro.schedulers.ssf_edf import SsfEdfScheduler

__all__ = [
    "BaseScheduler",
    "EdgeOnlyScheduler",
    "GreedyScheduler",
    "SrptScheduler",
    "SsfEdfScheduler",
    "FcfsScheduler",
    "CloudOnlyScheduler",
    "RandomScheduler",
    "PAPER_SCHEDULERS",
    "available_schedulers",
    "make_scheduler",
    "register_scheduler",
]
