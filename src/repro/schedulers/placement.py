"""Shared placement kernel for the heuristic schedulers' hot paths.

The constructive EDF placement of SSF-EDF (Section V-D) is the single
most expensive loop of the repository: it runs once per engine event
*and* once per binary-search probe at every release.  This module keeps
the placement rule untouched but re-hosts it in an
:class:`EdfPlacementKernel` built once per run:

* the six per-resource reservation timelines are preallocated and reset
  with :meth:`EdfPlacementKernel.reset` (no ``np.full`` allocations per
  call);
* the per-job cloud evaluation is a plain-Python scan over the cloud
  processors (P is small — ufunc dispatch overhead dominates at that
  size), with the fresh ``work / cloud_speed`` durations precomputed
  once as a matrix;
* the stay-on-current-cloud tie-break scales the current processor's
  *scalar* score inside the scan instead of copying a score vector;
* probes may pass ``short_circuit=True`` to abort at the first missed
  deadline — infeasible probes then cost O(k·P) for the first violating
  prefix instead of O(n·P).

Every arithmetic expression evaluates the exact IEEE-754 operations of
the historical ``_edf_placement`` loop, so placements are bit-identical
(pinned by the golden determinism suite).

The module also hosts the machinery for SSF-EDF's *decision reuse*
(:class:`ReplayCache`): a placement doubles as a reservation schedule,
and as long as the engine demonstrably executes that schedule, replaying
the cached decision is exact.  The cache tracks the schedule
structurally — per-resource FIFO queues of (job, phase) segments with no
floating-point comparisons — and invalidates on any divergence (see
:meth:`ReplayCache.advance`).

Finally, :class:`MatrixScratch` provides the per-run ``(n, 1+P)``
buffers the matrix heuristics (Greedy/SRPT) previously re-allocated at
every event.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from dataclasses import dataclass

import numpy as np

from repro.sim.events import EventKind
from repro.sim.state import ALLOC_CLOUD, ALLOC_EDGE
from repro.sim.view import SimulationView
from repro.util.float_cmp import DEFAULT_ABS_TOL

_TOL = 1e-9
_STAY = 1.0 - _TOL
_INF = float("inf")

#: Phase codes of a placement segment (uplink / compute / downlink).
_P_UP = 0
_P_COMP = 1
_P_DN = 2


@dataclass
class PlacementStats:
    """Hot-path counters of one SSF-EDF run (exported as ``scheduler.*``).

    ``probes`` counts feasibility-predicate calls of the binary search;
    ``probe_short_circuits`` the probes that aborted at the first missed
    deadline; ``rebuilds`` the full placement constructions used as
    decisions; ``probe_reuses`` the release decisions that adopted the
    final feasible probe's placement instead of rebuilding;
    ``pass_reuses`` the constructive passes served from the
    per-decision order cache (two probes of one binary search whose
    deadline vectors sort the jobs identically share one pass — the
    pass reads deadlines only through the order); ``replays`` the
    non-release decisions served from the cache; ``outlook_queries``
    the capacity-outlook queries the run served (rate tables, floors,
    composed down-state — see :mod:`repro.capacity`).

    The fault-path counters: ``outlook_delta_updates`` counts
    down-state answers served from the outlook's constancy-interval
    delta cache instead of a fresh scan; ``partial_rebuilds`` the
    reservation-floor refreshes rebuilt from the kernel's cached
    recipe (no outlook queries at all); ``epoch_invalidations`` the
    cross-event replays abandoned because a fault/availability
    boundary bumped the fault epoch since the cache was established.
    """

    probes: int = 0
    probe_short_circuits: int = 0
    rebuilds: int = 0
    probe_reuses: int = 0
    pass_reuses: int = 0
    replays: int = 0
    outlook_queries: int = 0
    outlook_delta_updates: int = 0
    partial_rebuilds: int = 0
    epoch_invalidations: int = 0

    def as_counters(self) -> dict[str, float]:
        """The stats as ``scheduler.*`` counter name → value."""
        return {
            "scheduler.probes": float(self.probes),
            "scheduler.probe_short_circuits": float(self.probe_short_circuits),
            "scheduler.rebuilds": float(self.rebuilds),
            "scheduler.probe_reuses": float(self.probe_reuses),
            "scheduler.pass_reuses": float(self.pass_reuses),
            "scheduler.replays": float(self.replays),
            "scheduler.outlook_queries": float(self.outlook_queries),
            "scheduler.outlook_delta_updates": float(self.outlook_delta_updates),
            "scheduler.partial_rebuilds": float(self.partial_rebuilds),
            "scheduler.epoch_invalidations": float(self.epoch_invalidations),
        }


@dataclass
class PlacementResult:
    """One constructive EDF placement, in columnar (decision-ready) form.

    ``jobs`` / ``kinds`` / ``indices`` are the decision columns in EDF
    order (the engine's priority order); ``completions`` the per-job
    completion estimates in the same order; ``feasible`` whether every
    deadline was met.  A short-circuited infeasible probe returns
    truncated columns (``complete=False``) — only the flag is
    meaningful then.
    """

    jobs: np.ndarray
    kinds: np.ndarray
    indices: np.ndarray
    completions: np.ndarray
    feasible: bool
    complete: bool = True
    #: Per-job explanation rows (see :meth:`EdfPlacementKernel.place`
    #: with ``explain=True``); None on ordinary runs.
    explain: list[dict] | None = None


@dataclass
class ProbeRecord:
    """One binary-search feasibility probe, with its rejection reason.

    An infeasible probe names the *violator*: the first job (in EDF
    order) whose constructive completion missed its probe deadline
    ``release + stretch * min_time`` — the structured "why was this
    stretch rejected" answer.  ``violator`` is -1 on feasible probes.
    """

    stretch: float
    feasible: bool
    short_circuited: bool
    violator: int = -1
    violator_completion: float = 0.0
    violator_deadline: float = 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (violator details only on infeasible probes)."""
        d: dict = {
            "stretch": self.stretch,
            "feasible": self.feasible,
            "short_circuited": self.short_circuited,
        }
        if not self.feasible:
            d["violator"] = {
                "job": self.violator,
                "completion": self.violator_completion,
                "deadline": self.violator_deadline,
            }
        return d


@dataclass
class DecisionProvenance:
    """Structured explanation of one SSF-EDF decision.

    Attached to :attr:`repro.sim.decision.Decision.provenance` when a
    provenance-collecting hook is registered (see
    ``EngineHooks.wants_decision_provenance``).  ``path`` is how the
    decision was served (``rebuild`` / ``probe_adoption`` / ``replay``);
    ``probes`` the binary-search history of a release decision;
    ``placements`` the kernel's per-job explanation rows (chosen
    resource, completion vs deadline, the losing edge/cloud
    alternative); ``floors`` the failure-aware push-back report
    (resources whose reservation timelines start after ``now`` because
    the :class:`~repro.capacity.outlook.CapacityOutlook` holds them
    down or co-tenanted).
    """

    path: str
    target_stretch: float
    probes: list[ProbeRecord]
    placements: list[dict] | None
    floors: list[dict]

    def to_dict(self) -> dict:
        """JSON-ready form (the trace exporter's decision payload)."""
        return {
            "path": self.path,
            "target_stretch": self.target_stretch,
            "probes": [p.to_dict() for p in self.probes],
            "placements": self.placements if self.placements is not None else [],
            "floors": self.floors,
        }


class EdfPlacementKernel:
    """Preallocated state for the constructive EDF placement of one run.

    All capacity arithmetic is served by the run's
    :class:`~repro.capacity.outlook.CapacityOutlook` (queried in bulk at
    build time, never per job in the hot loop).  With the transparent
    (undiscounted) outlook the rate tables are the platform speeds
    bitwise and every reservation timeline starts at ``now`` — the exact
    historical behavior.  With a discounted outlook
    (``failure_aware``), effective rates are availability-scaled and
    the timelines of currently-down resources start at their
    expected-recovery floor instead of ``now``, so placements route
    around dead or co-tenanted resources.

    With ``rework_pricing`` (requires ``failure_aware``) every candidate
    duration is replaced by its *expected* duration under the fault
    trace's exponential failure model with restart-on-failure: an
    exposure of ``t`` dedicated time units on a domain with mean time
    between failures ``mtbf`` is expected to take
    ``mtbf * (exp(t / mtbf) - 1)`` wall time (the classic
    restart-from-scratch expectation).  Compute exposures are priced
    with the edge/cloud MTBF; transfer segments at their full duration
    with the link MTBF (mid-transfer progress is never committed).
    When the run carries a periodic
    :class:`~repro.sim.checkpoint.CheckpointPolicy` the compute price is
    ``min(unsplit, chunks × per-chunk)`` — the *long-job split rule*: a
    job whose expected rework exceeds its total commit overhead is
    priced as its checkpointed chunks instead of one monolithic
    exposure.  With no fault model (infinite MTBFs) every price is the
    identity and the mode degenerates to plain ``failure_aware``.
    """

    def __init__(
        self,
        view: SimulationView,
        *,
        failure_aware: bool = False,
        rework_pricing: bool = False,
    ):
        instance = view.instance
        platform = view.platform
        self.instance = instance
        self.n_edge = platform.n_edge
        self.n_cloud = platform.n_cloud
        outlook = view.capacity_outlook(discounted=failure_aware)
        self.outlook = outlook
        self.failure_aware = failure_aware and outlook.discounted

        # Rework-pricing scalars.  The MTBFs come off the outlook's
        # ExpectationDiscount *attributes* (model parameters, not
        # capacity queries — ``n_queries`` must stay at the historical
        # count); the commit geometry off the run's checkpoint policy.
        self._rework = rework_pricing and self.failure_aware
        self._rw_edge_mtbf = _INF
        self._rw_cloud_mtbf = _INF
        self._rw_link_mtbf = _INF
        self._rw_interval: float | None = None
        self._rw_cost = 0.0
        if self._rework:
            discount = outlook.discount
            if discount is not None:
                self._rw_edge_mtbf = discount.edge_mtbf
                self._rw_cloud_mtbf = discount.cloud_mtbf
                self._rw_link_mtbf = discount.link_mtbf
            policy = view.checkpoint_policy
            if policy is not None and policy.interval is not None:
                self._rw_interval = policy.interval
                self._rw_cost = policy.commit_cost
        edge_speeds = outlook.edge_rates()
        self.cloud_speeds = outlook.cloud_rates()
        self._link_rate = outlook.link_rate()
        self._cloud_speeds_l = self.cloud_speeds.tolist()

        # Reservation timelines.  All six are scalar-accessed only from
        # the per-job loop and live in plain lists, which are cheaper to
        # index and update than NumPy arrays at these sizes.
        self._cloud_comp: list[float] = [0.0] * self.n_cloud
        self._cloud_recv: list[float] = [0.0] * self.n_cloud
        self._cloud_send: list[float] = [0.0] * self.n_cloud
        self._edge_comp: list[float] = [0.0] * self.n_edge
        self._edge_send: list[float] = [0.0] * self.n_edge
        self._edge_recv: list[float] = [0.0] * self.n_edge

        # Expected-recovery floors of the failure-aware mode, refreshed
        # once per decision instant (every probe of one decision shares
        # the same ``now``).
        self._floor_now = float("nan")
        self._floor_ec: list[float] = []
        self._floor_es: list[float] = []
        self._floor_er: list[float] = []
        self._floor_cc: list[float] = []
        self._floor_cr: list[float] = []
        self._floor_cs: list[float] = []
        #: Blocked-resource lists behind the floors above, kept for
        #: :meth:`floor_report` (no extra outlook queries at report time).
        self._floor_blocked: tuple[list[int], list[int], list[int], list[int]] = (
            [],
            [],
            [],
            [],
        )
        #: Constancy-interval key of the cached floor recipe, plus the
        #: recipe itself: down-cloud membership and the end of the
        #: window containing ``now`` per blocked cloud.  While the key
        #: is unchanged the floors are rebuilt from this recipe with
        #: the outlook queries' exact arithmetic (partial rebuild); a
        #: key change — some resource transitioned — re-derives it.
        self._floor_key: tuple[int, int] | None = None
        self._floor_down_clouds: frozenset[int] = frozenset()
        self._floor_win_end: dict[int, float] = {}
        #: Floor refreshes served from the cached recipe (exported as
        #: ``scheduler.partial_rebuilds``).
        self.partial_rebuilds = 0
        #: Constructive passes served from a per-decision order cache
        #: (exported as ``scheduler.pass_reuses``; see :meth:`place`).
        self.pass_reuses = 0
        #: Last (live, deadlines) byte images and their EDF order — the
        #: sort is skipped entirely when both are unchanged (every
        #: non-release rebuild between live-set changes, repeated
        #: probes).
        self._order_mem: tuple[bytes, bytes, np.ndarray] | None = None

        # Static per-job quantities, precomputed once from the outlook's
        # effective rates.  Undiscounted, the divisions are the exact
        # elementwise operations the historical loop performed per job,
        # so the values are bit-identical.
        self._origin_l = instance.origin.tolist()
        if self._link_rate != 1.0:
            self._up_l = (instance.up / self._link_rate).tolist()
            self._dn_l = (instance.dn / self._link_rate).tolist()
        else:
            self._up_l = instance.up.tolist()
            self._dn_l = instance.dn.tolist()
        if self.n_cloud:
            woc = instance.work[:, None] / self.cloud_speeds[None, :]
            self._woc_l = woc.tolist()
            # Cheapest cloud compute duration per job — the scan's prune
            # bound (see place(): any cloud whose compute slot frees too
            # late to beat the incumbent even at this duration is skipped
            # without evaluating its full reservation chain).
            self._woc_min_l = woc.min(axis=1).tolist()
        else:
            self._woc_l = [[] for _ in range(instance.n_jobs)]
            self._woc_min_l = [_INF] * instance.n_jobs
        self._edge_dur_l = (instance.work / edge_speeds[instance.origin]).tolist()
        self._edge_speeds_l = edge_speeds.tolist()

    @staticmethod
    def _rw_time(t: float, mtbf: float) -> float:
        """Expected wall time of a ``t``-long uninterrupted exposure.

        Exponential failures at rate ``1/mtbf`` with restart from
        scratch: ``E[T] = mtbf * (exp(t / mtbf) - 1)``, which tends to
        ``t`` as ``mtbf → ∞`` and grows exponentially in ``t / mtbf``.
        """
        if t <= 0.0 or mtbf == _INF:
            return t
        return mtbf * math.expm1(t / mtbf)

    def _rw_compute(self, t: float, mtbf: float, speed: float) -> float:
        """Expected compute time for a ``t``-long exposure on ``speed``.

        Without a periodic commit interval this is the unsplit
        expectation of :meth:`_rw_time`.  With one, the exposure can be
        committed every ``interval`` work units at ``commit_cost`` extra
        work, so the job is also priced as ``t / (interval / speed)``
        fractional chunks of ``(interval + cost) / speed`` time each —
        and the cheaper of the two prices wins (the long-job split
        rule: splitting pays exactly when expected rework exceeds the
        total commit overhead).
        """
        full = self._rw_time(t, mtbf)
        interval = self._rw_interval
        if interval is None or t <= 0.0 or mtbf == _INF:
            return full
        chunk = (interval + self._rw_cost) / speed
        chunks = t * speed / interval
        split = chunks * self._rw_time(chunk, mtbf)
        return split if split < full else full

    def _cloud_floor_cached(self, k: int, now: float) -> float:
        """Expected earliest cloud start from the cached recipe.

        Reproduces :meth:`CapacityOutlook.earliest_cloud_start` exactly
        for instants inside the cached constancy interval: same
        ``now + mttr`` expression for a down processor, same
        window-end max — membership and window ends cannot have
        changed while the key is unchanged.
        """
        f = now + self.outlook.discount.cloud_mttr if k in self._floor_down_clouds else now
        end = self._floor_win_end.get(k)
        if end is not None and end > f:
            f = end
        return f

    def _refresh_floors(self, now: float) -> None:
        """Recompute the expected-recovery floors for decision instant ``now``.

        Floors are piecewise *affine* in ``now`` between fault/window
        boundaries, so when the outlook's constancy key is unchanged
        the refresh is a partial rebuild: the cached blocked set and
        per-cloud recipe replay the outlook queries' arithmetic
        bit-identically without touching the outlook.  Only a key
        change — some resource actually transitioned — pays the full
        down-state scan and per-resource queries again.
        """
        if now == self._floor_now:
            return
        self._floor_now = now
        outlook = self.outlook
        ec = [now] * self.n_edge
        es = [now] * self.n_edge
        er = [now] * self.n_edge
        cc = [now] * self.n_cloud
        cr = [now] * self.n_cloud
        cs = [now] * self.n_cloud
        key = outlook.blocked_key(now)
        discounted = outlook.discounted
        partial = key == self._floor_key
        if partial:
            self.partial_rebuilds += 1
            outlook.n_delta_updates += 1
            edges, clouds, links, busy = self._floor_blocked
        else:
            edges, clouds, links, busy = outlook.blocked_at(now)
            self._floor_blocked = (edges, clouds, links, busy)
            self._floor_key = key
            self._floor_down_clouds = frozenset(clouds)
            win_end: dict[int, float] = {}
            if discounted:
                windows = outlook.availability.windows
                for k in clouds if not busy else {*clouds, *busy}:
                    for iv in windows.get(k, ()):
                        if iv.contains_time(now):
                            win_end[k] = iv.end
                            break
            self._floor_win_end = win_end
        if partial and discounted:
            d = self.outlook.discount
            for j in edges:
                f = now + d.edge_mttr
                ec[j] = f
                # The unit's ports die with it.
                es[j] = f
                er[j] = f
            for o in links:
                f = now + d.link_mttr
                if f > es[o]:
                    es[o] = f
                if f > er[o]:
                    er[o] = f
            for k in clouds:
                f = self._cloud_floor_cached(k, now)
                cc[k] = f
                cr[k] = f
                cs[k] = f
            for k in busy:
                f = self._cloud_floor_cached(k, now)
                if f > cc[k]:
                    cc[k] = f
        elif not partial:
            for j in edges:
                f = outlook.earliest_edge_start(j, now)
                ec[j] = f
                # The unit's ports die with it.
                if f > es[j]:
                    es[j] = f
                    er[j] = f
            for o in links:
                f = outlook.earliest_link_start(o, now)
                if f > es[o]:
                    es[o] = f
                if f > er[o]:
                    er[o] = f
            for k in clouds:
                f = outlook.earliest_cloud_start(k, now)
                cc[k] = f
                cr[k] = f
                cs[k] = f
            for k in busy:
                f = outlook.earliest_cloud_start(k, now)
                if f > cc[k]:
                    cc[k] = f
        # partial and not discounted: every floor is exactly ``now``
        # (the outlook queries would all return ``t``), which the
        # fresh lists above already hold.
        self._floor_ec = ec
        self._floor_es = es
        self._floor_er = er
        self._floor_cc = cc
        self._floor_cr = cr
        self._floor_cs = cs

    def reset(self, now: float) -> None:
        """Reset every reservation timeline for a placement starting at ``now``.

        Transparent mode starts every timeline at ``now``; failure-aware
        mode starts each resource at its expected-recovery floor.
        """
        if self.failure_aware:
            self._refresh_floors(now)
            self._cloud_comp[:] = self._floor_cc
            self._cloud_recv[:] = self._floor_cr
            self._cloud_send[:] = self._floor_cs
            self._edge_comp[:] = self._floor_ec
            self._edge_send[:] = self._floor_es
            self._edge_recv[:] = self._floor_er
            return
        self._cloud_comp[:] = [now] * self.n_cloud
        self._cloud_recv[:] = [now] * self.n_cloud
        self._cloud_send[:] = [now] * self.n_cloud
        self._edge_comp[:] = [now] * self.n_edge
        self._edge_send[:] = [now] * self.n_edge
        self._edge_recv[:] = [now] * self.n_edge

    def floor_report(self, now: float) -> list[dict]:
        """The failure-aware push-back report for decision instant ``now``.

        One entry per resource whose reservation timeline was floored
        past ``now``: edge/cloud units held by a fault (``down``), edge
        units whose backhaul link is out (``link_down``), and cloud
        units co-tenanted by availability windows (``co_tenant``).
        Empty in transparent mode.  Served from the floors already
        computed for this instant's placements — no extra outlook
        queries.
        """
        if not self.failure_aware:
            return []
        self._refresh_floors(now)
        edges, clouds, links, busy = self._floor_blocked
        report: list[dict] = []
        for j in edges:
            report.append(
                {"kind": "edge", "index": j, "reason": "down", "floor": self._floor_ec[j]}
            )
        for o in links:
            report.append(
                {"kind": "link", "index": o, "reason": "link_down", "floor": self._floor_es[o]}
            )
        for k in clouds:
            report.append(
                {"kind": "cloud", "index": k, "reason": "down", "floor": self._floor_cc[k]}
            )
        for k in busy:
            report.append(
                {"kind": "cloud", "index": k, "reason": "co_tenant", "floor": self._floor_cc[k]}
            )
        return report

    def place(
        self,
        view: SimulationView,
        live: np.ndarray,
        deadlines: np.ndarray,
        *,
        short_circuit: bool = False,
        explain: bool = False,
        reuse: dict | None = None,
    ) -> PlacementResult:
        """Constructive EDF placement (see :mod:`repro.schedulers.ssf_edf`).

        Jobs are processed by non-decreasing deadline; each reserves the
        resource chain minimizing its completion given the reservations
        of more urgent jobs.  With ``short_circuit`` the construction
        aborts at the first missed deadline (binary-search probes only
        need the feasibility bit).  With ``explain`` the result carries
        one row per placed job recording the chosen resource, its
        completion vs deadline, and the losing alternative's completion
        — same arithmetic, observation only.

        ``reuse`` is a per-decision pass cache (the caller owns its
        scope: one binary search = one dict).  The constructive pass
        reads the deadline vector only through the EDF *order* and the
        per-position miss checks, so two probes whose deadlines sort
        the jobs identically build bitwise the same reservations and
        completions; a cached complete pass with the same order is
        returned directly, with feasibility re-derived against this
        probe's deadlines by the exact per-job comparison, vectorized.
        An infeasible hit under ``short_circuit`` is truncated at the
        first miss — the same shape (and counters) a fresh
        short-circuited pass would produce.  Ignored when ``explain``
        is set (rows are built only by a real pass).
        """
        now = view.now
        lb = live.tobytes()
        db = deadlines.tobytes()
        mem = self._order_mem
        if mem is not None and mem[0] == lb and mem[1] == db:
            order = mem[2]
        else:
            order = np.lexsort((live, deadlines))
            self._order_mem = (lb, db, order)
        # Per-position miss tolerance, precomputed: the same
        # ``dl + _TOL * (dl if dl > 1.0 else 1.0)`` IEEE expression the
        # per-job check evaluated, elementwise.
        dl_tol = deadlines + _TOL * np.where(deadlines > 1.0, deadlines, 1.0)
        dlt_v = dl_tol[order]
        key = None
        if reuse is not None and not explain:
            key = order.tobytes()
            hit = reuse.get(key)
            if hit is not None:
                self.pass_reuses += 1
                ok = hit.completions <= dlt_v
                feas = bool(ok.all())
                if feas or not short_circuit:
                    if feas == hit.feasible:
                        return hit
                    return PlacementResult(
                        jobs=hit.jobs,
                        kinds=hit.kinds,
                        indices=hit.indices,
                        completions=hit.completions,
                        feasible=feas,
                    )
                p = int(np.argmin(ok)) + 1
                return PlacementResult(
                    jobs=hit.jobs[:p],
                    kinds=hit.kinds[:p],
                    indices=hit.indices[:p],
                    completions=hit.completions[:p],
                    feasible=False,
                    complete=False,
                )
        self.reset(now)
        state_kind = view.current_columns(live)

        live_sorted = live[order]
        live_l = live_sorted.tolist()
        cols_l = state_kind[order].tolist()
        dlt_l = dlt_v.tolist()
        dl_l = deadlines[order].tolist() if explain else None

        # Remaining amounts gathered to O(live) lists (position-indexed).
        if self._link_rate != 1.0:
            rem_up_l = (view.rem_up[live_sorted] / self._link_rate).tolist()
            rem_dn_l = (view.rem_dn[live_sorted] / self._link_rate).tolist()
        else:
            rem_up_l = view.rem_up[live_sorted].tolist()
            rem_dn_l = view.rem_dn[live_sorted].tolist()
        rem_work_l = view.rem_work[live_sorted].tolist()

        n_cloud = self.n_cloud
        cloud_range = range(n_cloud)
        origin_l = self._origin_l
        up_l = self._up_l
        dn_l = self._dn_l
        edge_dur_l = self._edge_dur_l
        edge_speeds_l = self._edge_speeds_l
        cloud_speeds_l = self._cloud_speeds_l
        woc_l = self._woc_l
        woc_min_l = self._woc_min_l
        edge_comp = self._edge_comp
        edge_send = self._edge_send
        edge_recv = self._edge_recv
        cloud_comp = self._cloud_comp
        cloud_recv = self._cloud_recv
        cloud_send = self._cloud_send

        n = len(live_l)
        kinds_l: list[int] = []
        indices_l: list[int] = []
        kinds_append = kinds_l.append
        indices_append = indices_l.append
        completions = np.empty(n, dtype=np.float64)
        feasible = True
        explain_rows: list[dict] | None = [] if explain else None
        rework = self._rework
        # Compute-availability order of the cloud processors, maintained
        # under reservations.  The scan's prune bound is monotone in
        # ``cc``, so walking candidates by ascending ``cc`` turns the
        # per-candidate skip into a *break*: the first bound above the
        # threshold proves every later candidate is above it too.
        cc_sorted: list[tuple[float, int]] = (
            sorted(zip(self._cloud_comp, cloud_range)) if n_cloud and not rework else []
        )
        if rework:
            rw_edge = self._rw_edge_mtbf
            rw_cloud = self._rw_cloud_mtbf
            rw_link = self._rw_link_mtbf
            rw_time = self._rw_time
            rw_compute = self._rw_compute

        for pos, (i, col, dlt, r_up, r_wk, r_dn) in enumerate(
            zip(live_l, cols_l, dlt_l, rem_up_l, rem_work_l, rem_dn_l)
        ):
            o = origin_l[i]

            # Edge option (progress kept only if currently on the edge).
            # Rework pricing replaces the dedicated duration with its
            # expected duration under failures; the transparent branch
            # below is the historical arithmetic, bitwise.
            if rework:
                if col == 0:
                    dur = r_wk / edge_speeds_l[o]
                else:
                    dur = edge_dur_l[i]
                comp_edge = edge_comp[o] + rw_compute(dur, rw_edge, edge_speeds_l[o])
                edge_score = comp_edge * _STAY if col == 0 else comp_edge
            elif col == 0:
                comp_edge = edge_comp[o] + r_wk / edge_speeds_l[o]
                edge_score = comp_edge * _STAY
            else:
                comp_edge = edge_comp[o] + edge_dur_l[i]
                edge_score = comp_edge

            cloud_wins = False
            if n_cloud:
                # Scalar scan over the cloud processors with the *fresh*
                # (from-scratch) amounts; the job's current cloud (where
                # progress survives) is evaluated from the remaining
                # amounts with the stay-bonus applied to its score only
                # (the reservation keeps the raw completion).  A strict
                # `<` keeps the lowest-index winner on exact ties,
                # matching argmin's first-minimum rule.
                k_cur = col - 1
                best_score = _INF
                best_k = -1
                best_up = best_cp = best_dn = 0.0
                if rework:
                    es_o = edge_send[o]
                    er_o = edge_recv[o]
                    up_i = up_l[i]
                    dn_i = dn_l[i]
                    woc_i = woc_l[i]
                    # Expected transfer durations (link MTBF, full
                    # exposure — mid-transfer progress is never
                    # committed); compute priced per processor below.
                    up_x = rw_time(up_i, rw_link)
                    dn_x = rw_time(dn_i, rw_link)
                    rup_x = rw_time(r_up, rw_link)
                    rdn_x = rw_time(r_dn, rw_link)
                    for k in cloud_range:
                        cr = cloud_recv[k]
                        cc = cloud_comp[k]
                        cs = cloud_send[k]
                        if k == k_cur:
                            w = rw_compute(
                                r_wk / cloud_speeds_l[k],
                                rw_cloud,
                                cloud_speeds_l[k],
                            )
                            ue = (es_o if es_o > cr else cr) + rup_x
                            ce = (ue if ue > cc else cc) + w
                            m = cs if cs > er_o else er_o
                            de = (ce if ce > m else m) + rdn_x
                            score = de * _STAY
                        else:
                            w = rw_compute(woc_i[k], rw_cloud, cloud_speeds_l[k])
                            ue = (es_o if es_o > cr else cr) + up_x
                            ce = (ue if ue > cc else cc) + w
                            m = cs if cs > er_o else er_o
                            de = (ce if ce > m else m) + dn_x
                            score = de
                        if score < best_score:
                            best_score = score
                            best_k = k
                            best_up = ue
                            best_cp = ce
                            best_dn = de
                    cloud_wins = best_score < edge_score
                else:
                    # ``thr`` is the score a candidate must strictly beat
                    # to change the outcome: the edge incumbent, tightened
                    # by every cloud improvement.  A cloud whose compute
                    # slot frees at ``cc`` cannot complete this job before
                    # ``((cc + wmin) + dn_i)`` — the same left-to-right
                    # IEEE-754 chain as the full evaluation below, and
                    # rounding is monotone per operation, so the bound
                    # never exceeds the true score.  Candidates whose
                    # bound is strictly above ``thr`` can neither win the
                    # argmin (a strictly smaller score exists or will
                    # survive) nor flip ``cloud_wins`` (their score is
                    # above ``edge_score``), so skipping them preserves
                    # the selected index, all reservations, and every tie
                    # — placements stay bit-identical to the full scan.
                    #
                    # Candidates are walked by ascending ``cc`` (the
                    # ``cc_sorted`` order), so the first failing bound
                    # ends the scan: the bound is monotone nondecreasing
                    # in ``cc`` per IEEE op.  Order independence of the
                    # winner is restored by the lexicographic
                    # ``(score, k)`` update rule, which selects the
                    # lowest-index minimum exactly as the index-order
                    # scan's strict ``<`` did.  The job's current cloud
                    # is evaluated up front, unconditionally: its score
                    # uses the remaining amounts and the stay bonus, so
                    # the fresh-amount bound does not apply to it.
                    #
                    # A job not currently on a cloud first checks only
                    # the *cheapest-slot* candidate's bound: if even the
                    # smallest ``cc`` cannot beat the edge incumbent,
                    # the whole scan (and its per-job gathers) is
                    # skipped — identical to the loop breaking on its
                    # first iteration.
                    wmin_i = woc_min_l[i]
                    dn_i = dn_l[i]
                    thr = edge_score
                    if k_cur >= 0:
                        es_o = edge_send[o]
                        er_o = edge_recv[o]
                        up_i = up_l[i]
                        woc_i = woc_l[i]
                        cc = cloud_comp[k_cur]
                        cr = cloud_recv[k_cur]
                        cs = cloud_send[k_cur]
                        ue = (es_o if es_o > cr else cr) + r_up
                        ce = (ue if ue > cc else cc) + r_wk / cloud_speeds_l[k_cur]
                        m = cs if cs > er_o else er_o
                        de = (ce if ce > m else m) + r_dn
                        score = de * _STAY
                        best_score = score
                        best_k = k_cur
                        best_up = ue
                        best_cp = ce
                        best_dn = de
                        if score < thr:
                            thr = score
                        for cc, k in cc_sorted:
                            if (cc + wmin_i) + dn_i > thr:
                                break
                            if k == k_cur:
                                continue
                            cr = cloud_recv[k]
                            cs = cloud_send[k]
                            ue = (es_o if es_o > cr else cr) + up_i
                            ce = (ue if ue > cc else cc) + woc_i[k]
                            m = cs if cs > er_o else er_o
                            de = (ce if ce > m else m) + dn_i
                            score = de
                            if score < best_score or (score == best_score and k < best_k):
                                best_score = score
                                best_k = k
                                best_up = ue
                                best_cp = ce
                                best_dn = de
                                if score < thr:
                                    thr = score
                        cloud_wins = best_score < edge_score
                    elif (cc_sorted[0][0] + wmin_i) + dn_i <= thr:
                        es_o = edge_send[o]
                        er_o = edge_recv[o]
                        up_i = up_l[i]
                        woc_i = woc_l[i]
                        for cc, k in cc_sorted:
                            if (cc + wmin_i) + dn_i > thr:
                                break
                            cr = cloud_recv[k]
                            cs = cloud_send[k]
                            ue = (es_o if es_o > cr else cr) + up_i
                            ce = (ue if ue > cc else cc) + woc_i[k]
                            m = cs if cs > er_o else er_o
                            de = (ce if ce > m else m) + dn_i
                            score = de
                            if score < best_score or (score == best_score and k < best_k):
                                best_score = score
                                best_k = k
                                best_up = ue
                                best_cp = ce
                                best_dn = de
                                if score < thr:
                                    thr = score
                        cloud_wins = best_score < edge_score

            if cloud_wins:
                best_time = best_dn
                # Reserve the communication/computation windows.
                edge_send[o] = best_up
                cloud_recv[best_k] = best_up
                if not rework:
                    # The winner's entry moves later (its completion can
                    # only grow: best_cp >= cloud_comp[best_k]), so the
                    # vacated index lower-bounds the re-insertion.
                    idx = bisect_left(cc_sorted, (cloud_comp[best_k], best_k))
                    del cc_sorted[idx]
                    insort(cc_sorted, (best_cp, best_k), idx)
                cloud_comp[best_k] = best_cp
                cloud_send[best_k] = best_dn
                edge_recv[o] = best_time
                kinds_append(ALLOC_CLOUD)
                indices_append(best_k)
            else:
                best_time = comp_edge
                edge_comp[o] = comp_edge
                kinds_append(ALLOC_EDGE)
                indices_append(o)

            completions[pos] = best_time
            missed = best_time > dlt
            if explain_rows is not None:
                explain_rows.append(
                    {
                        "job": i,
                        "kind": "cloud" if cloud_wins else "edge",
                        "index": best_k if cloud_wins else o,
                        "completion": best_time,
                        "deadline": dl_l[pos],
                        "missed": missed,
                        "edge_completion": comp_edge,
                        "cloud_index": best_k if n_cloud else -1,
                        "cloud_completion": best_dn if n_cloud else None,
                    }
                )
            if missed:
                feasible = False
                if short_circuit:
                    placed = pos + 1
                    return PlacementResult(
                        jobs=live_sorted[:placed],
                        kinds=np.array(kinds_l, dtype=np.int8),
                        indices=np.array(indices_l, dtype=np.int64),
                        completions=completions[:placed],
                        feasible=False,
                        complete=False,
                        explain=explain_rows,
                    )

        result = PlacementResult(
            jobs=live_sorted,
            kinds=np.array(kinds_l, dtype=np.int8),
            indices=np.array(indices_l, dtype=np.int64),
            completions=completions,
            feasible=feasible,
            explain=explain_rows,
        )
        if key is not None:
            # Complete pass: reusable by any same-order probe of this
            # decision (short-circuited passes are partial, not cached).
            reuse[key] = result
        return result


# -- decision reuse ----------------------------------------------------------


class ReplayCache:
    """Structural shadow of one placement's reservation schedule.

    A constructive EDF placement *is* a schedule: per exclusive resource
    (edge unit, edge send/recv port, cloud unit, cloud recv/send port) a
    FIFO queue of (job, phase) segments in reservation order.  Replaying
    the cached decision at a later event is exact when the engine's
    progress since the cache was built matches that schedule — then
    every surviving segment's *absolute* window is unchanged (in exact
    arithmetic), a rebuild would retrace the same argmin comparisons,
    and the decision columns come out identical.

    Crucially, the placement's reservation chain for a cloud job always
    runs through all six resources, even for phases the attempt has
    already completed: a staying job with ``rem_up == 0`` still reserves
    its origin's send port and the cloud's receive port for a
    *zero-length* window ``ue = max(edge_send, cloud_recv)``, which
    delays its modeled compute start behind pending port traffic — while
    the engine, which has no such coupling, computes it immediately.
    Those zero-length reservations are tracked as *phantom* segments:
    they hold their queue slot (later jobs' windows are computed behind
    them) and complete instantly once they reach the head of all their
    queues.  A job whose real segment sits behind an unresolved phantom
    chain is not expected to progress; if the engine advances it anyway,
    the cache is invalidated — this is exactly the situation where a
    rebuild's windows would drift from the cached ones.

    The cache tracks all of this with integers only (queue heads and
    per-job segment pointers — no floating-point window comparisons,
    which could drift relative to the engine's own event arithmetic) and
    checks the engine against it post-hoc:

    * the set of jobs whose remaining amounts changed over the last
      step must equal the set of segments at the head of all their
      queues (:meth:`check_progress`);
    * every ``UplinkDone``/``ComputeDone`` event must complete exactly
      the segment the schedule says is running (:meth:`advance`).

    Any mismatch — a greedily granted job running ahead of its
    reservation, a stalled resource, an unexpected event — marks the
    cache invalid and the caller rebuilds.  Job completions and
    releases change the live set and are handled by the caller's
    live-set hash; aborts reset remaining amounts and are caught by the
    caller's ``rem_epoch`` check before this class is consulted.
    """

    def __init__(
        self,
        view: SimulationView,
        placed: PlacementResult,
        phantoms: tuple[list[bool], list[bool]] | None = None,
    ):
        """Shadow ``placed``'s reservation schedule.

        ``phantoms``, when given, carries the per-entry uplink/compute
        phantom flags *as captured at decision time* (see
        :class:`SsfEdfScheduler`'s lazy cache construction — by the time
        the cache is actually needed the view's remaining amounts have
        moved on, so the flags must be snapshotted up front).  Without
        it the flags are computed from the view's current state.
        """
        instance = view.instance
        n_edge = view.platform.n_edge
        n_cloud = view.platform.n_cloud
        # Queue ids: edge compute, edge send, edge recv, then cloud
        # compute, cloud recv, cloud send.
        q_es = n_edge
        q_er = 2 * n_edge
        q_cc = 3 * n_edge
        q_cr = q_cc + n_cloud
        q_cs = q_cr + n_cloud
        n_queues = 3 * n_edge + 3 * n_cloud
        self._queues: list[list[tuple]] = [[] for _ in range(n_queues)]
        self._heads = [0] * n_queues
        self._job_tokens: dict[int, list[tuple]] = {}
        self._job_ptr: dict[int, int] = {}
        self._expected = np.zeros(instance.n_jobs, dtype=bool)

        if phantoms is None:
            # Segment amounts by the engine's own phase predicate
            # (remaining amount > DEFAULT_ABS_TOL); an exhausted phase
            # still reserves its resources for a zero-length window —
            # a phantom.
            jobs = placed.jobs
            staying = (view.alloc_kind[jobs] == ALLOC_CLOUD) & (
                view.alloc_index[jobs] == placed.indices
            )
            up_amt = np.where(staying, view.rem_up[jobs], instance.up[jobs])
            work_amt = np.where(staying, view.rem_work[jobs], instance.work[jobs])
            up_ph = (up_amt <= DEFAULT_ABS_TOL).tolist()
            work_ph = (work_amt <= DEFAULT_ABS_TOL).tolist()
        else:
            up_ph, work_ph = phantoms

        origin = instance.origin
        jobs_l = placed.jobs.tolist()
        kinds_l = placed.kinds.tolist()
        indices_l = placed.indices.tolist()
        queues = self._queues
        for pos, (i, kind, idx) in enumerate(zip(jobs_l, kinds_l, indices_l)):
            if kind == ALLOC_EDGE:
                t = (i, _P_COMP, (idx,), False)
                tokens = [t]
                queues[idx].append(t)
            else:
                o = origin[i]
                # The trailing downlink is always a real segment: if the
                # engine finishes the job straight from ComputeDone
                # (dn == 0), a JobDone event invalidates the cache
                # before it is ever consulted.
                t_up = (i, _P_UP, (q_es + o, q_cr + idx), up_ph[pos])
                t_comp = (i, _P_COMP, (q_cc + idx,), work_ph[pos])
                t_dn = (i, _P_DN, (q_cs + idx, q_er + o), False)
                tokens = [t_up, t_comp, t_dn]
                queues[q_es + o].append(t_up)
                queues[q_cr + idx].append(t_up)
                queues[q_cc + idx].append(t_comp)
                queues[q_cs + idx].append(t_dn)
                queues[q_er + o].append(t_dn)
            self._job_tokens[i] = tokens
            self._job_ptr[i] = 0

        # A job's first segment runs from the start iff it heads every
        # queue it needs (an empty prefix on each of its resources);
        # phantoms that start at the head complete instantly and may
        # cascade further activations.
        self._activate([tokens[0] for tokens in self._job_tokens.values()])

    def _is_active(self, token: tuple) -> bool:
        """Is ``token`` its job's current segment and at the head of its queues?"""
        i = token[0]
        ptr = self._job_ptr[i]
        tokens = self._job_tokens[i]
        if ptr >= len(tokens) or tokens[ptr] is not token:
            return False
        queues = self._queues
        heads = self._heads
        for q in token[2]:
            queue = queues[q]
            h = heads[q]
            if h >= len(queue) or queue[h] is not token:
                return False
        return True

    def _activate(self, candidates: list[tuple]) -> None:
        """Mark newly startable segments; pop phantom chains instantly."""
        queues = self._queues
        heads = self._heads
        stack = candidates
        while stack:
            token = stack.pop()
            if not self._is_active(token):
                continue
            if not token[3]:
                self._expected[token[0]] = True
                continue
            # Phantom: a zero-length reservation completes the moment
            # it can start; its successors become candidates.
            job = token[0]
            for q in token[2]:
                heads[q] += 1
            ptr = self._job_ptr[job] + 1
            self._job_ptr[job] = ptr
            for q in token[2]:
                queue = queues[q]
                h = heads[q]
                if h < len(queue):
                    stack.append(queue[h])
            tokens = self._job_tokens[job]
            if ptr < len(tokens):
                stack.append(tokens[ptr])

    def check_progress(self, changed_live: np.ndarray, live: np.ndarray) -> bool:
        """Did exactly the scheduled segments progress over the last step?

        ``changed_live`` is the boolean mask (aligned with ``live``) of
        jobs whose remaining amounts changed since the cache's last
        snapshot.  Exactness: a changed job progressed on its cached
        phase at its cached rate (phase and resource are fixed by the
        cached assignment), and all active jobs share the engine's
        ``dt`` — so set equality implies amount equality.
        """
        return bool(np.array_equal(changed_live, self._expected[live]))

    def advance(self, events) -> bool:
        """Consume the step's completion events; False on any divergence."""
        for ev in events:
            kind = ev.kind
            if kind is EventKind.UPLINK_DONE:
                if not self._pop(ev.job, _P_UP):
                    return False
            elif kind is EventKind.COMPUTE_DONE:
                if not self._pop(ev.job, _P_COMP):
                    return False
            # Fault/availability transitions don't touch the schedule:
            # if they stall or abort progress, the next progress check
            # or the caller's epoch check catches it.
        return True

    def _pop(self, job: int, phase: int) -> bool:
        """Complete the running segment of ``job``; promote successors."""
        tokens = self._job_tokens.get(job)
        if tokens is None:
            return False
        ptr = self._job_ptr[job]
        if ptr >= len(tokens):
            return False
        token = tokens[ptr]
        if token[1] != phase or token[3]:
            # Wrong phase, or a completion event for a segment the
            # schedule modeled as zero-length: divergence.
            return False
        queues = self._queues
        heads = self._heads
        qs = token[2]
        for q in qs:
            queue = queues[q]
            h = heads[q]
            if h >= len(queue) or queue[h] is not token:
                return False
        for q in qs:
            heads[q] += 1
        self._job_ptr[job] = ptr + 1
        self._expected[job] = False
        candidates = []
        for q in qs:
            h = heads[q]
            queue = queues[q]
            if h < len(queue):
                candidates.append(queue[h])
        if ptr + 1 < len(tokens):
            candidates.append(tokens[ptr + 1])
        self._activate(candidates)
        return True


# -- shared matrix buffers ---------------------------------------------------


class MatrixScratch:
    """Per-run ``(n_jobs, 1 + n_cloud)`` buffers for the matrix heuristics.

    Greedy/SRPT evaluate a dense duration/stretch matrix over the live
    jobs at every event; these buffers let them reuse one allocation
    for the whole run (rows are sliced to the live count).
    """

    def __init__(self, n_jobs: int, n_cloud: int):
        self.n_jobs = n_jobs
        self.width = 1 + n_cloud
        self._matrix = np.empty((n_jobs, self.width), dtype=np.float64)
        self._masked = np.empty((n_jobs, self.width), dtype=np.float64)
        self._mask = np.empty((n_jobs, self.width), dtype=bool)

    def matrix(self, rows: int) -> np.ndarray:
        """The main estimate buffer, sliced to ``rows`` live jobs."""
        return self._matrix[:rows]

    def masked(self, rows: int) -> np.ndarray:
        """A second float buffer (masked copies in the claim loop)."""
        return self._masked[:rows]

    def mask(self, rows: int) -> np.ndarray:
        """The boolean availability buffer."""
        return self._mask[:rows]


def ensure_scratch(
    scratch: MatrixScratch | None, view: SimulationView
) -> MatrixScratch:
    """Return ``scratch`` if it fits this run's shape, else a fresh one."""
    n_jobs = view.instance.n_jobs
    width = 1 + view.platform.n_cloud
    if scratch is None or scratch.n_jobs < n_jobs or scratch.width != width:
        return MatrixScratch(n_jobs, view.platform.n_cloud)
    return scratch
