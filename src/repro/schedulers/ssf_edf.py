"""The SSF-EDF heuristic (Section V-D).

Stretch-so-Far Earliest-Deadline-First, adapted from Bender et al. to
the edge-cloud platform:

* at every *release* event, find (by binary search, to relative
  precision ``eps``) the smallest target stretch ``S`` such that the
  constructive EDF placement below meets every deadline
  ``d_i = r_i + S * min_time_i`` (``alpha = 1`` by default, the
  Δ-competitive choice of [3]); the stretch-so-far estimate never
  decreases across releases;
* given deadlines, jobs are placed in EDF order, each on the processor
  where it would complete the earliest given the reservations made for
  earlier (more urgent) jobs — a cloud placement reserves, in order,
  the origin's send port + the cloud's receive port, the cloud compute
  unit, then the cloud's send port + the origin's receive port;
* the placement (in deadline order) is the decision used until the next
  event; at non-release events it is rebuilt with unchanged deadlines.

As the paper notes, EDF is not optimal in this setting (communications
break the single-machine argument), so the binary search yields the
best target the *placement rule* can certify, not the true optimum.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.schedulers.base import BaseScheduler, append_leftovers, has_release
from repro.sim.decision import Decision
from repro.sim.events import Event
from repro.sim.state import ALLOC_CLOUD, ALLOC_EDGE
from repro.sim.view import SimulationView
from repro.core.resources import Resource, cloud, edge
from repro.util.search import binary_search_min

_TOL = 1e-9


class SsfEdfScheduler(BaseScheduler):
    """Stretch-so-far EDF for the edge-cloud platform."""

    name = "ssf-edf"

    def __init__(self, *, eps: float = 1e-3, alpha: float = 1.0):
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.eps = eps
        self.alpha = alpha
        self._stretch_so_far = 1.0
        self._deadlines: dict[int, float] = {}

    def start(self, view: SimulationView) -> None:
        self._stretch_so_far = 1.0
        self._deadlines = {}

    def decide(self, view: SimulationView, events: Sequence[Event]) -> Decision:
        live = view.live_jobs()
        decision = Decision()
        if live.size == 0:
            return decision

        if has_release(events) or not self._deadlines:
            self._recompute_deadlines(view, live)

        deadlines = np.array([self._deadlines[int(i)] for i in live])
        placement, _, _ = _edf_placement(view, live, deadlines)
        for job, resource in placement:
            decision.add(job, resource)
        append_leftovers(decision, view)
        return decision

    def _recompute_deadlines(self, view: SimulationView, live: np.ndarray) -> None:
        """Binary-search the stretch target and refresh all live deadlines."""
        instance = view.instance
        release = instance.release[live]
        min_time = instance.min_time[live]

        def feasible(stretch: float) -> bool:
            deadlines = release + stretch * min_time
            _, _, ok = _edf_placement(view, live, deadlines)
            return ok

        lo = max(1.0, self._stretch_so_far)
        hi = max(2.0 * lo, 2.0)
        best = binary_search_min(feasible, lo, hi, eps=self.eps)
        self._stretch_so_far = max(self._stretch_so_far, best)

        target = self.alpha * self._stretch_so_far
        self._deadlines = {
            int(i): float(r + target * m) for i, r, m in zip(live, release, min_time)
        }


def _edf_placement(
    view: SimulationView, live: np.ndarray, deadlines: np.ndarray
) -> tuple[list[tuple[int, Resource]], np.ndarray, bool]:
    """Constructive EDF placement.

    Processes jobs by non-decreasing deadline; each reserves time on the
    resource minimizing its completion given earlier reservations.
    Returns the ordered placement, the per-job completion estimates (in
    placement order), and whether every deadline was met.
    """
    instance = view.instance
    platform = view.platform
    now = view.now
    state_kind = view.current_columns(live)  # 0=edge, 1+k=cloud k, -1=none

    n_edge = platform.n_edge
    n_cloud = platform.n_cloud
    cloud_speeds = np.asarray(platform.cloud_speeds, dtype=np.float64)

    edge_comp = np.full(n_edge, now)
    edge_send = np.full(n_edge, now)
    edge_recv = np.full(n_edge, now)
    cloud_comp = np.full(n_cloud, now)
    cloud_recv = np.full(n_cloud, now)
    cloud_send = np.full(n_cloud, now)

    order = np.lexsort((live, deadlines))
    placement: list[tuple[int, Resource]] = []
    completions = np.empty(live.size, dtype=np.float64)
    feasible = True

    edge_speeds = np.asarray(platform.edge_speeds, dtype=np.float64)
    rem_up = view.rem_up
    rem_work = view.rem_work
    rem_dn = view.rem_dn

    for pos, idx in enumerate(order):
        i = int(live[idx])
        job = instance.jobs[i]
        o = job.origin
        col = state_kind[idx]

        # Edge option (progress kept only if currently on the edge).
        work_e = rem_work[i] if col == 0 else job.work
        comp_edge = edge_comp[o] + work_e / edge_speeds[o]
        # Tiny stay-bonus: prefer the current resource on ties so the
        # placement does not trigger gratuitous re-executions.
        edge_score = comp_edge * (1.0 - _TOL) if col == 0 else comp_edge

        cloud_wins = False
        if n_cloud:
            # Vectorized over the cloud processors with the *fresh*
            # (from-scratch) amounts — scalar broadcasts avoid per-job
            # array allocation in this hot loop; the job's current
            # cloud (where progress survives) is patched separately.
            up_end = np.maximum(edge_send[o], cloud_recv) + job.up
            comp_end = np.maximum(up_end, cloud_comp) + job.work / cloud_speeds
            dn_end = np.maximum(comp_end, np.maximum(cloud_send, edge_recv[o])) + job.dn

            if col >= 1:
                k_cur = col - 1
                ue = max(edge_send[o], cloud_recv[k_cur]) + rem_up[i]
                ce = max(ue, cloud_comp[k_cur]) + rem_work[i] / cloud_speeds[k_cur]
                de = max(ce, cloud_send[k_cur], edge_recv[o]) + rem_dn[i]
                up_end[k_cur] = ue
                comp_end[k_cur] = ce
                dn_end[k_cur] = de

            cloud_score = dn_end.copy()
            if col >= 1:
                cloud_score[col - 1] *= 1.0 - _TOL
            k_best = int(cloud_score.argmin())
            cloud_wins = cloud_score[k_best] < edge_score

        if cloud_wins:
            best_time = float(dn_end[k_best])
            best_res: Resource = cloud(k_best)
            # Reserve the communication/computation windows.
            edge_send[o] = up_end[k_best]
            cloud_recv[k_best] = up_end[k_best]
            cloud_comp[k_best] = comp_end[k_best]
            cloud_send[k_best] = dn_end[k_best]
            edge_recv[o] = dn_end[k_best]
        else:
            best_time = float(comp_edge)
            best_res = edge(o)
            edge_comp[o] = comp_edge

        placement.append((i, best_res))
        completions[pos] = best_time
        if best_time > deadlines[idx] + _TOL * max(1.0, deadlines[idx]):
            feasible = False

    return placement, completions, feasible
