"""The SSF-EDF heuristic (Section V-D).

Stretch-so-Far Earliest-Deadline-First, adapted from Bender et al. to
the edge-cloud platform:

* at every *release* event, find (by binary search, to relative
  precision ``eps``) the smallest target stretch ``S`` such that the
  constructive EDF placement below meets every deadline
  ``d_i = r_i + S * min_time_i`` (``alpha = 1`` by default, the
  Δ-competitive choice of [3]); the stretch-so-far estimate never
  decreases across releases;
* given deadlines, jobs are placed in EDF order, each on the processor
  where it would complete the earliest given the reservations made for
  earlier (more urgent) jobs — a cloud placement reserves, in order,
  the origin's send port + the cloud's receive port, the cloud compute
  unit, then the cloud's send port + the origin's receive port;
* the placement (in deadline order) is the decision used until the next
  event; at non-release events it is rebuilt with unchanged deadlines.

As the paper notes, EDF is not optimal in this setting (communications
break the single-machine argument), so the binary search yields the
best target the *placement rule* can certify, not the true optimum.

The placement itself runs on the :class:`EdfPlacementKernel` of
:mod:`repro.schedulers.placement`, and this scheduler is *incremental*
without changing any schedule (see docs/ALGORITHMS.md, "Complexity and
hot path"):

* binary-search probes short-circuit at the first missed deadline;
* ``alpha == 1`` releases adopt the final feasible probe's placement —
  the search always returns the stretch of its last feasible probe, so
  the decision's deadlines (and hence its placement) are bitwise those
  of that probe;
* non-release events replay the cached placement when an exact
  invalidation check passes: the live-set hash, the remaining-amount
  epoch of :class:`~repro.sim.view.SimulationView` (faults/aborts bump
  it), and the structural progress check of
  :class:`~repro.schedulers.placement.ReplayCache` — which verifies the
  engine actually executed the cached reservation schedule, the
  condition under which a rebuild would reproduce the cached decision.

Hot-path counters are exported via :meth:`telemetry_counters` (the
``scheduler`` telemetry monitor of :mod:`repro.obs.monitors`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.schedulers.base import BaseScheduler, has_release
from repro.schedulers.placement import (
    DecisionProvenance,
    EdfPlacementKernel,
    PlacementResult,
    PlacementStats,
    ProbeRecord,
    ReplayCache,
)
from repro.sim.decision import Decision
from repro.sim.events import Event
from repro.sim.view import SimulationView
from repro.core.resources import Resource, cloud, edge
from repro.sim.state import ALLOC_CLOUD, ALLOC_EDGE
from repro.util.float_cmp import DEFAULT_ABS_TOL
from repro.util.search import binary_search_min

_TOL = 1e-9


class SsfEdfScheduler(BaseScheduler):
    """Stretch-so-far EDF for the edge-cloud platform.

    ``incremental=False`` disables the decision-reuse layer (probe
    adoption and cached replay) and rebuilds the placement at every
    event, as the historical implementation did.  Both modes produce
    bit-identical schedules — the flag exists for A/B verification and
    diagnostics.

    ``failure_aware=True`` registers as ``ssf-edf-fa``: the placement
    kernel is built on the *discounted* capacity outlook — effective
    rates scaled by steady-state availability, and reservation
    timelines floored at the expected recovery of currently-down
    resources (see :mod:`repro.capacity`).  With no fault model on the
    run (no rates attached to the trace) the discounted outlook is
    transparent and the schedule is identical to plain ``ssf-edf``.

    Cross-event replay in failure-aware mode is *fault-epoch scoped*:
    a cache established in one epoch is invalidated outright when a
    fault or availability boundary bumps
    :attr:`~repro.sim.view.SimulationView.fault_epoch` (counted as
    ``scheduler.epoch_invalidations``).  Replay additionally requires
    the kernel's arithmetic to be provably exact — true when the
    discounted outlook degenerates to the transparent one (no fault
    model on the trace), where placements are bitwise those of plain
    mode.  With an actual expectation discount the kernel's modeled
    windows (effective rates) no longer match the engine's execution
    exactly, exactness cannot be proven, and replay stays disabled;
    probe adoption within one decision always remains.

    ``rework_pricing=True`` (requires ``failure_aware``) registers as
    ``ssf-edf-fa-rework``: candidate completion estimates additionally
    price the *expected re-execution time* of each uncheckpointed
    exposure window under the fault trace's exponential failure model,
    including the long-job split rule when the run carries a periodic
    :class:`~repro.sim.checkpoint.CheckpointPolicy` (see
    :meth:`EdfPlacementKernel` and docs/ALGORITHMS.md).  With no fault
    model attached the pricing is the identity and the schedule
    degenerates to ``ssf-edf-fa``.
    """

    name = "ssf-edf"

    def __init__(
        self,
        *,
        eps: float = 1e-3,
        alpha: float = 1.0,
        incremental: bool = True,
        failure_aware: bool = False,
        rework_pricing: bool = False,
    ):
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if rework_pricing and not failure_aware:
            raise ValueError("rework_pricing requires failure_aware=True")
        self.eps = eps
        self.alpha = alpha
        self.incremental = incremental
        self.failure_aware = failure_aware
        self.rework_pricing = rework_pricing
        if failure_aware:
            self.name = "ssf-edf-fa-rework" if rework_pricing else "ssf-edf-fa"
        # Cached replay assumes the kernel's modeled windows match the
        # engine's execution exactly; an actual expectation discount
        # breaks that premise, so discounted failure-aware runs keep
        # probe adoption (no time passes within one decision) but never
        # replay across events.  _bind() refines this per run: a
        # degenerate discount (no fault model) leaves the kernel's
        # arithmetic bitwise plain and re-enables replay, scoped to the
        # fault epoch.
        self._replay_enabled = incremental and not failure_aware
        self._stretch_so_far = 1.0
        self._hint: float | None = None
        self._has_deadlines = False
        self._deadline_arr: np.ndarray | None = None
        self._kernel: EdfPlacementKernel | None = None
        self._stats = PlacementStats()
        self._cache: ReplayCache | None = None
        self._cache_seed: tuple | None = None
        self._cache_placed: PlacementResult | None = None
        self._cache_live_bytes = b""
        self._cache_epoch = -1
        self._cache_fault_epoch = -1
        self._snap_up: np.ndarray | None = None
        self._snap_work: np.ndarray | None = None
        self._snap_dn: np.ndarray | None = None
        # Decision provenance is opt-in (the engine forwards the request
        # of provenance-collecting hooks via set_provenance); off, the
        # hot path does no explanation bookkeeping at all.
        self._provenance = False
        self._pending_prov: DecisionProvenance | None = None

    def start(self, view: SimulationView) -> None:
        """Reset all per-run state (ratchet, kernel, cache, hint, counters)."""
        self._bind(view)

    def set_provenance(self, enabled: bool) -> None:
        """Engine request: attach :class:`DecisionProvenance` to every
        decision (True exactly when a registered hook consumes it)."""
        self._provenance = bool(enabled)
        self._pending_prov = None

    def telemetry_counters(self) -> dict[str, float]:
        """This run's hot-path counters (``scheduler.*`` namespace)."""
        if self._kernel is not None:
            self._stats.outlook_queries = self._kernel.outlook.n_queries
            self._stats.outlook_delta_updates = self._kernel.outlook.n_delta_updates
            self._stats.partial_rebuilds = self._kernel.partial_rebuilds
            self._stats.pass_reuses = self._kernel.pass_reuses
        return self._stats.as_counters()

    def _bind(self, view: SimulationView) -> None:
        """Build the per-run kernel and wipe every piece of cached state."""
        n = view.instance.n_jobs
        self._stretch_so_far = 1.0
        self._hint = None
        self._has_deadlines = False
        self._deadline_arr = np.zeros(n, dtype=np.float64)
        self._kernel = EdfPlacementKernel(
            view,
            failure_aware=self.failure_aware,
            rework_pricing=self.rework_pricing,
        )
        # Checkpoint commits advance the remaining amounts outside the
        # cached reservation schedule (and watermark restores break the
        # from-scratch snapshot of moved jobs), so cross-event replay is
        # off for checkpointed runs; everything else is unchanged.
        policy = view.checkpoint_policy
        if policy is not None and policy.checkpoints_enabled:
            self._replay_enabled = False
        else:
            # Replay is exact when the kernel's arithmetic is bitwise
            # the plain (transparent) placement: always in plain mode,
            # and in failure-aware mode exactly when the discounted
            # outlook degenerated (kernel.failure_aware is False then).
            # A real discount keeps replay off — exactness unprovable.
            self._replay_enabled = self.incremental and not (
                self.failure_aware and self._kernel.failure_aware
            )
        self._stats = PlacementStats()
        self._cache = None
        self._cache_seed = None
        self._cache_placed = None
        self._cache_live_bytes = b""
        self._cache_epoch = -1
        self._cache_fault_epoch = -1
        self._snap_up = np.empty(n, dtype=np.float64)
        self._snap_work = np.empty(n, dtype=np.float64)
        self._snap_dn = np.empty(n, dtype=np.float64)

    def decide(self, view: SimulationView, events: Sequence[Event]) -> Decision:
        decision = Decision()
        live = view.live_jobs()
        if live.size == 0:
            self._cache = None
            self._cache_seed = None
            return decision
        if self._kernel is None or self._kernel.instance is not view.instance:
            # Defensive: the engine always calls start(); direct decide()
            # calls (tests, tools) get a fresh binding.
            self._bind(view)

        if has_release(events) or not self._has_deadlines:
            placed = self._release_placement(view, live)
        else:
            placed = self._replay_or_rebuild(view, live, events)

        # The placement covers every live job, so there is no
        # work-conserving leftover tail to append.
        decision.add_bulk(placed.jobs, placed.kinds, placed.indices)
        if self._pending_prov is not None:
            decision.provenance = self._pending_prov
            self._pending_prov = None
        return decision

    # -- release path ----------------------------------------------------------

    def _release_placement(self, view: SimulationView, live: np.ndarray) -> PlacementResult:
        """Binary-search the stretch target, refresh deadlines, place.

        ``binary_search_min`` returns the stretch of the *last probe
        that came back feasible* (the feasible bracket end only moves on
        feasible probes).  With ``alpha == 1`` the decision's target
        equals that stretch bitwise, its deadlines are the same
        ``release + stretch * min_time`` NumPy expression the probe
        evaluated, and the probe's placement can therefore be adopted as
        the decision without re-running the constructive pass.
        """
        instance = view.instance
        release = instance.release[live]
        min_time = instance.min_time[live]
        kernel = self._kernel
        stats = self._stats
        last_feasible: list = [None]
        prov = self._provenance
        probes_rec: list[ProbeRecord] | None = [] if prov else None
        # Per-decision pass cache: probes whose deadline vectors sort
        # the jobs identically share one constructive pass (the pass
        # reads deadlines only through the order; see place()).
        pass_cache: dict | None = {} if self.incremental else None

        def feasible(stretch: float) -> bool:
            stats.probes += 1
            deadlines = release + stretch * min_time
            # Probes never need explain rows (the probe record reads
            # jobs/completions only), so the pass cache stays usable —
            # and the counters stay identical — with provenance on.
            res = kernel.place(view, live, deadlines, short_circuit=True, reuse=pass_cache)
            if res.feasible:
                last_feasible[0] = (stretch, res)
            elif not res.complete:
                stats.probe_short_circuits += 1
            if probes_rec is not None:
                if res.feasible:
                    probes_rec.append(ProbeRecord(stretch, True, False))
                else:
                    # Short-circuited or not, the last placed job is the
                    # first (most urgent) deadline miss — the violator.
                    vj = int(res.jobs[-1])
                    probes_rec.append(
                        ProbeRecord(
                            stretch,
                            False,
                            not res.complete,
                            violator=vj,
                            violator_completion=float(res.completions[-1]),
                            violator_deadline=float(
                                instance.release[vj] + stretch * instance.min_time[vj]
                            ),
                        )
                    )
            return res.feasible

        lo = max(1.0, self._stretch_so_far)
        hi = max(2.0 * lo, 2.0)
        best = binary_search_min(feasible, lo, hi, eps=self.eps, hint=self._hint)
        self._hint = best
        self._stretch_so_far = max(self._stretch_so_far, best)

        target = self.alpha * self._stretch_so_far
        self._deadline_arr[live] = release + target * min_time
        self._has_deadlines = True

        lf = last_feasible[0]
        if self.incremental and lf is not None and lf[0] == best and target == best:
            stats.probe_reuses += 1
            placed = lf[1]
            path = "probe_adoption"
            if prov:
                # Rows for the adopted placement: an observation-only
                # explain pass over the decision deadlines (bitwise the
                # adopted probe's pass — ``target == best`` makes the
                # deadline vectors equal).  Moves no counters, so traced
                # and untraced runs stay stat-identical.
                placed = kernel.place(view, live, self._deadline_arr[live], explain=True)
        else:
            stats.rebuilds += 1
            placed = kernel.place(
                view, live, self._deadline_arr[live], explain=prov, reuse=pass_cache
            )
            path = "rebuild"
        self._establish_cache(view, live, placed)
        if prov:
            self._pending_prov = DecisionProvenance(
                path=path,
                target_stretch=float(target),
                probes=probes_rec,
                placements=placed.explain,
                floors=kernel.floor_report(view.now),
            )
        return placed

    # -- non-release path ------------------------------------------------------

    def _replay_or_rebuild(
        self, view: SimulationView, live: np.ndarray, events: Sequence[Event]
    ) -> PlacementResult:
        """Replay the cached placement if provably exact, else rebuild.

        Invalidation (any failure → full rebuild with the unchanged
        deadlines): the remaining-amount epoch moved (a fault aborted an
        attempt, or anything else reset progress), the live set changed
        (a completion), the engine's observed progress diverged from the
        cached reservation schedule, or a completion event doesn't match
        the segment the schedule says is running.  Failure-aware runs
        additionally scope the cache to the fault epoch: any boundary
        since the cache was established invalidates outright, even one
        with no aborts, since the kernel's view of resource health may
        have changed (plain mode needs no such guard — its kernel never
        reads fault state, so a rebuild across a quiet boundary is
        bitwise the cached placement).
        """
        stats = self._stats
        if (
            self.failure_aware
            and self._replay_enabled
            and self._cache_seed is not None
            and view.fault_epoch != self._cache_fault_epoch
        ):
            stats.epoch_invalidations += 1
            self._cache_seed = None
        if (
            self._replay_enabled
            and self._cache_seed is not None
            and view.rem_epoch == self._cache_epoch
            and live.tobytes() == self._cache_live_bytes
        ):
            # Cheap guards passed — only now is the structural shadow
            # worth having.  Building it lazily (from the flags captured
            # at decision time) skips construction entirely for caches
            # the next event invalidates outright, the common case under
            # load.
            cache = self._cache
            if cache is None:
                placed_c, up_ph, work_ph = self._cache_seed
                cache = self._cache = ReplayCache(view, placed_c, phantoms=(up_ph, work_ph))
            if cache.check_progress(self._changed_mask(view, live), live) and cache.advance(
                events
            ):
                self._snapshot(view)
                stats.replays += 1
                if self._provenance:
                    self._set_event_prov("replay", self._cache_placed, view.now)
                return self._cache_placed

        placed = self._kernel.place(
            view, live, self._deadline_arr[live], explain=self._provenance
        )
        stats.rebuilds += 1
        self._establish_cache(view, live, placed)
        if self._provenance:
            self._set_event_prov("rebuild", placed, view.now)
        return placed

    def _set_event_prov(self, path: str, placed: PlacementResult, now: float) -> None:
        """Provenance for a non-release decision (no binary search ran)."""
        self._pending_prov = DecisionProvenance(
            path=path,
            target_stretch=float(self.alpha * self._stretch_so_far),
            probes=[],
            placements=placed.explain,
            floors=self._kernel.floor_report(now),
        )

    def _changed_mask(self, view: SimulationView, live: np.ndarray) -> np.ndarray:
        """Which live jobs' remaining amounts changed since the snapshot."""
        changed = (
            (view.rem_up != self._snap_up)
            | (view.rem_work != self._snap_work)
            | (view.rem_dn != self._snap_dn)
        )
        return changed[live]

    def _snapshot(self, view: SimulationView) -> None:
        """Record the remaining amounts the next progress check diffs against."""
        np.copyto(self._snap_up, view.rem_up)
        np.copyto(self._snap_work, view.rem_work)
        np.copyto(self._snap_dn, view.rem_dn)

    def _establish_cache(
        self, view: SimulationView, live: np.ndarray, placed: PlacementResult
    ) -> None:
        """Cache ``placed`` for replay at subsequent non-release events."""
        if not self._replay_enabled:
            return
        moved = (view.alloc_kind[placed.jobs] != placed.kinds) | (
            view.alloc_index[placed.jobs] != placed.indices
        )
        # Defer ReplayCache construction to the first non-release event
        # that passes the cheap guards; only the phantom flags must be
        # captured now, while the remaining amounts still describe this
        # decision (see ReplayCache).  ``staying`` below means "cloud
        # entry whose attempt survives": placed on a cloud and not
        # moved.
        jobs = placed.jobs
        instance = view.instance
        staying = ~moved & (placed.kinds == ALLOC_CLOUD)
        up_amt = np.where(staying, view.rem_up[jobs], instance.up[jobs])
        work_amt = np.where(staying, view.rem_work[jobs], instance.work[jobs])
        self._cache = None
        self._cache_seed = (
            placed,
            (up_amt <= DEFAULT_ABS_TOL).tolist(),
            (work_amt <= DEFAULT_ABS_TOL).tolist(),
        )
        self._cache_placed = placed
        self._cache_live_bytes = live.tobytes()
        # The engine bumps the remaining-amount epoch once per entry
        # whose resource differs from the current allocation; predict
        # the post-application value so our own assignment doesn't
        # invalidate the cache (a fault abort still will).
        self._cache_epoch = view.rem_epoch + int(np.count_nonzero(moved))
        self._cache_fault_epoch = view.fault_epoch
        # Snapshot the post-application amounts: moved jobs restart
        # from scratch the instant the decision is applied.
        self._snapshot(view)
        if moved.any():
            ids = placed.jobs[moved]
            self._snap_up[ids] = instance.up[ids]
            self._snap_work[ids] = instance.work[ids]
            self._snap_dn[ids] = instance.dn[ids]


def _edf_placement(
    view: SimulationView, live: np.ndarray, deadlines: np.ndarray
) -> tuple[list[tuple[int, Resource]], np.ndarray, bool]:
    """Constructive EDF placement (compatibility wrapper over the kernel).

    Processes jobs by non-decreasing deadline; each reserves time on the
    resource minimizing its completion given earlier reservations.
    Returns the ordered placement, the per-job completion estimates (in
    placement order), and whether every deadline was met.
    """
    placed = EdfPlacementKernel(view).place(view, live, np.asarray(deadlines, dtype=np.float64))
    placement = [
        (int(j), edge(int(idx)) if kind == ALLOC_EDGE else cloud(int(idx)))
        for j, kind, idx in zip(placed.jobs, placed.kinds, placed.indices)
    ]
    return placement, placed.completions, placed.feasible
