"""The SRPT heuristic (Section V-C).

Shortest Remaining Processing Time, adapted to the edge-cloud platform:
at each event, repeatedly pick the (job, processor) pair that finishes
the earliest among unclaimed processors, claim both, and iterate.  SRPT
is O(1)-competitive for *average* stretch [28]; the paper evaluates it
against the max-stretch objective.

Re-execution comes for free: a job preempted on one resource may be
picked for another processor where its (fresh, from-scratch) remaining
time is the smallest — the estimates account for the lost progress.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.schedulers.base import (
    BaseScheduler,
    ResourceSlots,
    append_leftovers,
    resource_from_column,
)
from repro.schedulers.placement import MatrixScratch, ensure_scratch
from repro.sim.decision import Decision
from repro.sim.events import Event
from repro.sim.view import SimulationView

_STAY_BONUS = 1e-9


class SrptScheduler(BaseScheduler):
    """Earliest-finisher-first placement.

    ``allow_restart=False`` disables re-execution: once a job has
    started somewhere it may only continue there (preemption stays
    allowed).  This isolates the value of the model's re-execution rule
    (§III) — the paper's SRPT explicitly relies on restarts ("a job
    that has been preempted by another job might start again (from
    scratch) on another processor").
    """

    name = "srpt"

    def __init__(self, *, allow_restart: bool = True, failure_aware: bool = False):
        self.allow_restart = allow_restart
        self.failure_aware = failure_aware
        if not allow_restart:
            self.name = "srpt-norestart"
        if failure_aware:
            # srpt-fa: remaining-time estimates are served from the same
            # discounted CapacityOutlook greedy-fa and ssf-edf-fa share
            # (effective rates scaled by steady-state availability).
            # Degenerates to plain srpt when the trace carries no rates.
            self.name = "srpt-fa" if allow_restart else "srpt-norestart-fa"
        self._scratch: MatrixScratch | None = None

    def decide(self, view: SimulationView, events: Sequence[Event]) -> Decision:
        decision = Decision()
        live = view.live_jobs()
        if live.size == 0:
            return decision

        scratch = self._scratch = ensure_scratch(self._scratch, view)
        durations = view.durations_matrix(
            live, out=scratch.matrix(live.size), discounted=self.failure_aware
        )
        current = view.current_columns(live)
        rows = np.nonzero(current >= 0)[0]
        durations[rows, current[rows]] *= 1.0 - _STAY_BONUS
        if not self.allow_restart:
            # Started jobs may only run on their current resource.
            pinned = np.ones_like(durations, dtype=bool)
            pinned[rows, :] = False
            pinned[rows, current[rows]] = True
            durations = np.where(pinned, durations, np.inf)

        slots = ResourceSlots(view)
        origins = view.instance.origin[live]
        unassigned = np.ones(live.size, dtype=bool)
        n_resources = view.platform.n_edge + view.platform.n_cloud

        available = scratch.mask(live.size)
        masked = scratch.masked(live.size)
        for _ in range(min(live.size, n_resources)):
            available[:, 0] = slots.edge_free[origins]
            if durations.shape[1] > 1:
                available[:, 1:] = slots.cloud_free[None, :]
            available &= unassigned[:, None]

            # Same values as np.where(available, durations, inf), built
            # in the per-run buffer.
            np.copyto(masked, np.inf)
            np.copyto(masked, durations, where=available)
            best = masked.min(axis=1)
            row = int(best.argmin())
            if not np.isfinite(best[row]):
                break
            col = int(masked[row].argmin())
            resource = resource_from_column(view, int(live[row]), col)

            decision.add(int(live[row]), resource)
            slots.claim(resource)
            unassigned[row] = False

        append_leftovers(decision, view)
        return decision
