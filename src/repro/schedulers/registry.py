"""Name → scheduler factory registry.

The experiment harness and CLI refer to schedulers by name; factories
(rather than instances) are registered because schedulers are stateful
and each simulation run needs a fresh one.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.errors import ModelError
from repro.schedulers.base import BaseScheduler
from repro.schedulers.cloud_only import CloudOnlyScheduler
from repro.schedulers.edge_only import EdgeOnlyScheduler
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.random_alloc import RandomScheduler
from repro.schedulers.srpt import SrptScheduler
from repro.schedulers.ssf_edf import SsfEdfScheduler

SchedulerFactory = Callable[[], BaseScheduler]

_REGISTRY: dict[str, SchedulerFactory] = {
    "edge-only": EdgeOnlyScheduler,
    "greedy": GreedyScheduler,
    "greedy-fa": lambda **kw: GreedyScheduler(failure_aware=True, **kw),
    "greedy-unguarded": lambda **kw: GreedyScheduler(guarded=False, **kw),
    "srpt": SrptScheduler,
    "srpt-fa": lambda **kw: SrptScheduler(failure_aware=True, **kw),
    "srpt-norestart": lambda **kw: SrptScheduler(allow_restart=False, **kw),
    "ssf-edf": SsfEdfScheduler,
    "ssf-edf-fa": lambda **kw: SsfEdfScheduler(failure_aware=True, **kw),
    "ssf-edf-fa-rework": lambda **kw: SsfEdfScheduler(
        failure_aware=True, rework_pricing=True, **kw
    ),
    "fcfs": FcfsScheduler,
    "fcfs-fa": lambda **kw: FcfsScheduler(failure_aware=True, **kw),
    "cloud-only": CloudOnlyScheduler,
    "random": RandomScheduler,
}

#: The four policies evaluated in the paper's Section VI.
PAPER_SCHEDULERS = ("edge-only", "greedy", "srpt", "ssf-edf")


def available_schedulers() -> tuple[str, ...]:
    """Registered scheduler names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_scheduler(name: str, **kwargs) -> BaseScheduler:
    """Instantiate a fresh scheduler by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ModelError(
            f"unknown scheduler {name!r}; available: {', '.join(available_schedulers())}"
        ) from None
    return factory(**kwargs)


def register_scheduler(name: str, factory: SchedulerFactory, *, overwrite: bool = False) -> None:
    """Register a custom scheduler factory under ``name``."""
    if name in _REGISTRY and not overwrite:
        raise ModelError(f"scheduler {name!r} already registered")
    _REGISTRY[name] = factory
