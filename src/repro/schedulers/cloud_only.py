"""Cloud-Only baseline (ours): the dual of Edge-Only.

Every job is delegated to the cloud; the edge units only communicate.
Placement is SRPT-style restricted to the cloud processors.  Useful as
the opposite extreme in the CCR sweeps: where Edge-Only wins at high
CCR, Cloud-Only wins at very low CCR, and the paper's heuristics should
dominate both everywhere.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.errors import ModelError
from repro.core.resources import cloud
from repro.schedulers.base import BaseScheduler
from repro.sim.decision import Decision
from repro.sim.state import ALLOC_CLOUD
from repro.sim.events import Event
from repro.sim.view import SimulationView

_STAY_BONUS = 1e-9


class CloudOnlyScheduler(BaseScheduler):
    """SRPT over the cloud processors only."""

    name = "cloud-only"

    def start(self, view: SimulationView) -> None:
        if view.platform.n_cloud == 0:
            raise ModelError("cloud-only scheduling needs at least one cloud processor")

    def decide(self, view: SimulationView, events: Sequence[Event]) -> Decision:
        decision = Decision()
        live = view.live_jobs()
        if live.size == 0:
            return decision

        n_cloud = view.platform.n_cloud
        durations = np.column_stack(
            [view.durations_cloud(live, k) for k in range(n_cloud)]
        )
        current = view.current_columns(live)
        on_cloud = np.nonzero(current >= 1)[0]
        durations[on_cloud, current[on_cloud] - 1] *= 1.0 - _STAY_BONUS

        cloud_free = np.ones(n_cloud, dtype=bool)
        unassigned = np.ones(live.size, dtype=bool)
        assigned: list[int] = []

        for _ in range(min(live.size, n_cloud)):
            masked = np.where(cloud_free[None, :] & unassigned[:, None], durations, np.inf)
            best = masked.min(axis=1)
            row = int(best.argmin())
            if not np.isfinite(best[row]):
                break
            k = int(masked[row].argmin())
            decision.add(int(live[row]), cloud(k))
            assigned.append(int(live[row]))
            cloud_free[k] = False
            unassigned[row] = False

        # Leftovers continue on their current cloud (ports may be free);
        # never fall back to the edge.
        if assigned:
            mask = np.zeros(view.instance.n_jobs, dtype=bool)
            mask[assigned] = True
            rest = live[~mask[live]]
        else:
            rest = live
        rest = rest[view.alloc_kind[rest] == ALLOC_CLOUD]
        if rest.size:
            decision.add_bulk(
                rest,
                np.full(rest.size, ALLOC_CLOUD, dtype=np.int8),
                view.alloc_index[rest],
            )
        return decision
