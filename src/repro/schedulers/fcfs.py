"""FCFS baseline (ours, for ablations).

First-come-first-served priority with earliest-finish placement: jobs
are considered by release date; each claims the still-free processor on
which it would finish soonest.  The contrast with SRPT/Greedy isolates
the value of stretch- and remaining-time-aware priorities.

``fcfs-fa`` (``failure_aware=True``) keeps the release-order priority
but serves the finish-time estimates from the shared discounted
:class:`~repro.capacity.outlook.CapacityOutlook` (effective rates
scaled by steady-state availability), like the other ``-fa`` variants —
isolating what failure-aware *placement* buys when the priority rule
stays failure-blind.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.schedulers.base import (
    BaseScheduler,
    ResourceSlots,
    append_leftovers,
    resource_from_column,
)
from repro.schedulers.placement import MatrixScratch, ensure_scratch
from repro.sim.decision import Decision
from repro.sim.events import Event
from repro.sim.view import SimulationView

_STAY_BONUS = 1e-9


class FcfsScheduler(BaseScheduler):
    """Release-order priority, earliest-finish placement."""

    name = "fcfs"

    def __init__(self, *, failure_aware: bool = False):
        self.failure_aware = failure_aware
        if failure_aware:
            # fcfs-fa: placement estimates discounted by the shared
            # CapacityOutlook; degenerates to plain fcfs when the
            # trace carries no rates.
            self.name = "fcfs-fa"
        self._scratch: MatrixScratch | None = None

    def decide(self, view: SimulationView, events: Sequence[Event]) -> Decision:
        decision = Decision()
        live = view.live_jobs()
        if live.size == 0:
            return decision

        instance = view.instance
        order = np.lexsort((live, instance.release[live]))
        scratch = self._scratch = ensure_scratch(self._scratch, view)
        durations = view.durations_matrix(
            live, out=scratch.matrix(live.size), discounted=self.failure_aware
        )
        current = view.current_columns(live)
        rows = np.nonzero(current >= 0)[0]
        durations[rows, current[rows]] *= 1.0 - _STAY_BONUS

        slots = ResourceSlots(view)
        origins = instance.origin[live]
        n_resources = view.platform.n_edge + view.platform.n_cloud
        claimed = 0

        for row in order:
            if claimed >= n_resources:
                break
            available = np.empty(durations.shape[1], dtype=bool)
            available[0] = slots.edge_free[origins[row]]
            if durations.shape[1] > 1:
                available[1:] = slots.cloud_free
            if not available.any():
                continue
            masked = np.where(available, durations[row], np.inf)
            col = int(masked.argmin())
            resource = resource_from_column(view, int(live[row]), col)
            decision.add(int(live[row]), resource)
            slots.claim(resource)
            claimed += 1

        append_leftovers(decision, view)
        return decision
