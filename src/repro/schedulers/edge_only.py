"""The Edge-Only baseline (Section V-A).

All jobs run locally; the cloud is never used.  Each edge unit runs,
independently, the Stretch-so-Far Earliest-Deadline-First algorithm of
Bender et al. [3], which is Δ-competitive on one processor:

* at every release on unit ``j``, binary-search the smallest stretch
  ``S_j`` such that scheduling the unit's live jobs in EDF order (with
  deadlines ``r_i + S_j * min_time_i``) meets every deadline, given the
  remaining works; the per-unit stretch-so-far estimate never decreases;
* then run the live jobs preemptively by earliest deadline first.

Following the paper's adaptation, the stretch *denominator* still
accounts for a potential cloud execution (``min(t_e, t_c)``), even
though Edge-Only will never use the cloud — jobs that would have been
much faster on the cloud therefore get proportionally tighter deadlines.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.resources import edge
from repro.schedulers.base import BaseScheduler
from repro.sim.decision import Decision
from repro.sim.events import Event, EventKind
from repro.sim.view import SimulationView
from repro.util.search import binary_search_min

_TOL = 1e-9


class EdgeOnlyScheduler(BaseScheduler):
    """Per-edge-unit stretch-so-far EDF; the cloud stays idle."""

    name = "edge-only"

    def __init__(self, *, eps: float = 1e-3, alpha: float = 1.0):
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.eps = eps
        self.alpha = alpha
        self._stretch_so_far: dict[int, float] = {}
        self._deadlines: dict[int, float] = {}
        self._hint: dict[int, float] = {}

    def start(self, view: SimulationView) -> None:
        """Reset the per-unit ratchets, deadlines, and search hints."""
        self._stretch_so_far = {}
        self._deadlines = {}
        self._hint = {}

    def decide(self, view: SimulationView, events: Sequence[Event]) -> Decision:
        live = view.live_jobs()
        decision = Decision()
        if live.size == 0:
            return decision

        instance = view.instance
        released_units = {
            int(instance.origin[e.job])
            for e in events
            if e.kind is EventKind.RELEASE and e.job is not None
        }
        for j in sorted(released_units):
            self._update_unit(view, live, j)

        # EDF across all live jobs; units are independent resources, so a
        # single globally sorted list is equivalent to per-unit EDF.
        order = sorted(
            (int(i) for i in live), key=lambda i: (self._deadlines.get(i, np.inf), i)
        )
        for i in order:
            decision.add(i, edge(instance.jobs[i].origin))
        return decision

    def _update_unit(self, view: SimulationView, live: np.ndarray, j: int) -> None:
        """Refresh the stretch-so-far and deadlines of edge unit ``j``."""
        instance = view.instance
        mask = instance.origin[live] == j
        unit_jobs = live[mask]
        if unit_jobs.size == 0:
            return
        release = instance.release[unit_jobs]
        min_time = instance.min_time[unit_jobs]
        # Remaining edge durations (jobs here only ever run on their edge).
        durations = view.durations_edge(unit_jobs)
        now = view.now

        def feasible(stretch: float) -> bool:
            deadlines = release + stretch * min_time
            order = np.argsort(deadlines, kind="stable")
            t = now
            for idx in order:
                t += durations[idx]
                if t > deadlines[idx] + _TOL * max(1.0, deadlines[idx]):
                    return False
            return True

        # Warm start: seed the bracket with the unit's previous answer
        # (same trick as SsfEdfScheduler's release search).  The hint
        # only shapes probe order inside [lo, hi]; the returned minimum
        # is unchanged, so schedules stay bit-identical.
        lo = max(1.0, self._stretch_so_far.get(j, 1.0))
        hi = max(2.0 * lo, 2.0)
        best = binary_search_min(feasible, lo, hi, eps=self.eps, hint=self._hint.get(j))
        self._hint[j] = best
        self._stretch_so_far[j] = max(self._stretch_so_far.get(j, 1.0), best)

        target = self.alpha * self._stretch_so_far[j]
        for i, r, m in zip(unit_jobs, release, min_time):
            self._deadlines[int(i)] = float(r + target * m)
