"""Scheduler base class and shared placement helpers.

All heuristics of Section V share two ingredients:

* a *slot model* for one decision round — each processor is one slot,
  claimed job by job in the heuristic's priority order
  (:class:`ResourceSlots`);
* a *work-conserving tail* — jobs that did not win a slot are appended
  at lower priority on their current (or origin-edge) resource, so that
  in-flight communications keep flowing whenever their ports are free
  and the engine never deadlocks (:func:`append_leftovers`).
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

import numpy as np

from repro.core.resources import Resource, cloud, edge
from repro.sim.decision import Decision
from repro.sim.events import Event, EventKind
from repro.sim.state import ALLOC_EDGE, ALLOC_NONE
from repro.sim.view import SimulationView


class BaseScheduler(abc.ABC):
    """Common base: naming and a no-op ``start`` hook."""

    #: Human-readable policy name (used in results and experiment tables).
    name: str = "base"

    def start(self, view: SimulationView) -> None:
        """Called once before the first decision; default: nothing."""

    @abc.abstractmethod
    def decide(self, view: SimulationView, events: Sequence[Event]) -> Decision:
        """Return the prioritized assignments for the next period."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class ResourceSlots:
    """Tracks which processors are still unclaimed within one decision round."""

    def __init__(self, view: SimulationView):
        platform = view.platform
        self.edge_free = np.ones(platform.n_edge, dtype=bool)
        self.cloud_free = np.ones(platform.n_cloud, dtype=bool)

    def claim(self, resource: Resource) -> None:
        """Mark ``resource`` as taken for this round."""
        if resource.is_edge:
            self.edge_free[resource.index] = False
        else:
            self.cloud_free[resource.index] = False

    def any_free(self) -> bool:
        """True while at least one processor is unclaimed."""
        return bool(self.edge_free.any() or self.cloud_free.any())

    def free_clouds(self) -> np.ndarray:
        """Indices of unclaimed cloud processors."""
        return np.nonzero(self.cloud_free)[0]


def append_leftovers(
    decision: Decision, view: SimulationView, assigned: Iterable[int] | None = None
) -> None:
    """Append every live job missing from ``decision`` at lowest priority.

    Each leftover keeps its current allocation (so partially transferred
    or computed jobs can keep moving when ports/processors are idle); a
    job never started is parked on its origin edge unit.  ``assigned``
    defaults to the jobs already in ``decision``; the tail is appended
    in one vectorized :meth:`~repro.sim.decision.Decision.add_bulk`
    call, in ascending job order (as the historical scalar loop did).
    """
    live = view.live_jobs()
    if live.size == 0:
        return
    if assigned is None:
        taken = decision.jobs_array()
    else:
        taken = np.fromiter(assigned, dtype=np.int64)
    if taken.size:
        mask = np.zeros(view.instance.n_jobs, dtype=bool)
        mask[taken] = True
        rest = live[~mask[live]]
    else:
        rest = live
    if rest.size == 0:
        return
    kind = view.alloc_kind[rest]
    never = kind == ALLOC_NONE
    kinds = np.where(never, ALLOC_EDGE, kind).astype(np.int8)
    indices = np.where(never, view.instance.origin[rest], view.alloc_index[rest])
    decision.add_bulk(rest, kinds, indices)


def has_release(events: Sequence[Event]) -> bool:
    """True when the event batch contains at least one job release."""
    return any(e.kind is EventKind.RELEASE for e in events)


def resource_from_column(view: SimulationView, i: int, column: int) -> Resource:
    """Map a :meth:`SimulationView.durations_matrix` column to a resource.

    Column 0 is the job's origin edge unit; column ``1 + k`` is cloud
    processor ``k``.
    """
    if column == 0:
        return edge(view.instance.jobs[i].origin)
    return cloud(column - 1)
