"""The Greedy heuristic (Section V-B).

At each event, as long as processors remain unclaimed, Greedy computes
for every live job the minimum stretch it could achieve by starting
immediately on a still-free resource, picks the job *maximizing* that
value (the job most likely to determine the max-stretch), and places it
on the resource where its stretch is minimal.  The chosen jobs form the
high-priority prefix of the decision; remaining jobs are appended at
lower priority so in-flight activities can use idle ports.

Per-event cost is :math:`O(n(1 + P^c))` per claimed slot, matching the
paper's analysis; the estimates are vectorized over the live jobs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.schedulers.base import (
    BaseScheduler,
    ResourceSlots,
    append_leftovers,
    resource_from_column,
)
from repro.schedulers.placement import MatrixScratch, ensure_scratch
from repro.sim.decision import Decision
from repro.sim.events import Event
from repro.sim.view import SimulationView

#: Relative tie-break bonus for staying on the current resource: avoids
#: restarting a job from scratch when an equivalent fresh resource ties.
_STAY_BONUS = 1e-9


class GreedyScheduler(BaseScheduler):
    """Greedy max-stretch-first placement.

    With ``guarded`` (the default) a job may only be *moved away* from
    its current resource when the destination's estimated stretch beats
    the stretch of running on the current resource right now (its
    best case).  Without the guard — the literal reading of the paper's
    description — a job whose resource was claimed by a higher-stretch
    peer takes whatever is free, wiping its progress, and can ping-pong
    between an edge unit and the cloud for hundreds of re-executions on
    communication-heavy (Kang-like) instances — and can even *livelock*
    (two identical cloud-hungry jobs stealing the cloud from each other
    at every event, each theft wiping the other's progress; the
    engine's ``max_steps`` guard raises ``SimulationError``).  The
    ablation bench compares both variants.
    """

    name = "greedy"

    def __init__(self, *, guarded: bool = True, failure_aware: bool = False):
        self.guarded = guarded
        self.failure_aware = failure_aware
        if not guarded:
            self.name = "greedy-unguarded"
        if failure_aware:
            # greedy-fa: stretch estimates are served from the same
            # discounted CapacityOutlook ssf-edf-fa consumes (effective
            # rates scaled by steady-state availability).  Degenerates
            # to plain greedy when the fault trace carries no rates.
            self.name = "greedy-fa" if guarded else "greedy-unguarded-fa"
        self._scratch: MatrixScratch | None = None

    def decide(self, view: SimulationView, events: Sequence[Event]) -> Decision:
        decision = Decision()
        live = view.live_jobs()
        if live.size == 0:
            return decision

        scratch = self._scratch = ensure_scratch(self._scratch, view)
        stretches = view.stretch_matrix(
            live, out=scratch.matrix(live.size), discounted=self.failure_aware
        )
        # Prefer the current resource when stretches tie.
        current = view.current_columns(live)
        rows = np.nonzero(current >= 0)[0]
        stretches[rows, current[rows]] *= 1.0 - _STAY_BONUS
        if self.guarded:
            # Moving must beat even the best case of staying put.
            best_case_stay = stretches[rows, current[rows]]
            worse = stretches[rows, :] >= best_case_stay[:, None]
            worse[np.arange(len(rows)), current[rows]] = False
            stretches[rows, :] = np.where(worse, np.inf, stretches[rows, :])

        slots = ResourceSlots(view)
        origins = view.instance.origin[live]
        unassigned = np.ones(live.size, dtype=bool)
        n_resources = view.platform.n_edge + view.platform.n_cloud

        available = scratch.mask(live.size)
        masked = scratch.masked(live.size)
        for _ in range(min(live.size, n_resources)):
            available[:, 0] = slots.edge_free[origins]
            if stretches.shape[1] > 1:
                available[:, 1:] = slots.cloud_free[None, :]
            available &= unassigned[:, None]

            # Same values as np.where(available, stretches, inf), built
            # in the per-run buffer.
            np.copyto(masked, np.inf)
            np.copyto(masked, stretches, where=available)
            best = masked.min(axis=1)
            candidates = np.isfinite(best)
            if not candidates.any():
                break

            # The job whose best achievable stretch is highest goes first.
            scores = np.where(candidates, best, -np.inf)
            row = int(scores.argmax())
            col = int(masked[row].argmin())
            resource = resource_from_column(view, int(live[row]), col)

            decision.add(int(live[row]), resource)
            slots.claim(resource)
            unassigned[row] = False

        append_leftovers(decision, view)
        return decision
