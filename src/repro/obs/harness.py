"""Sweep-harness telemetry: what the dispatcher itself did.

Every other ``repro.obs`` surface observes *simulations*; this one
observes the machinery that runs them — the cost-aware dispatcher,
the warm worker pool, and the batched result I/O of
:mod:`repro.experiments.parallel`.  A :class:`HarnessStats` is filled
by the driver process as cells complete and snapshots into the same
:class:`~repro.obs.telemetry.RunTelemetry` shape as simulation
telemetry, so harness records ride the existing JSONL sink
(``scheduler="harness"``) and render in ``repro.obs.report`` tables.

Metric namespace (all driver-side, no effect on rows):

==============================  ==============================================
``harness.cells``               completed cells (counter)
``harness.cells_per_sec``       completed cells / sweep elapsed wall (gauge)
``harness.busy_frac``           Σ worker cell walls / (elapsed × pool size)
``harness.straggler_ratio``     max cell wall / median cell wall (gauge)
``harness.dispatch.window``     bounded in-flight window used (gauge)
``harness.dispatch.rank_corr``  Spearman corr of predicted-cost rank vs
                                observed cell-wall rank (gauge; how well the
                                cost model ordered the work)
``harness.pickle.bytes``        result payload bytes through the pool (counter)
``harness.pickle.bytes_per_cell``  the same per completed cell (gauge)
``harness.pool.rebuilds``       pools rebuilt after worker deaths (counter)
``harness.spec.builds``         spec constructions across all workers (counter)
``harness.instance.builds``     instance generations across all workers
                                (counter; == cells when the warm path holds)
``harness.workers``             pool size actually spawned (gauge)
==============================  ==============================================
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field

from repro.obs.telemetry import RunTelemetry


def _rank(values: list[float]) -> list[float]:
    """Fractional ranks (average ties), 1-based."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def _spearman(a: list[float], b: list[float]) -> float | None:
    """Spearman rank correlation; None when degenerate (<2 points or a
    constant side)."""
    if len(a) < 2 or len(a) != len(b):
        return None
    ra, rb = _rank(a), _rank(b)
    ma = sum(ra) / len(ra)
    mb = sum(rb) / len(rb)
    cov = sum((x - ma) * (y - mb) for x, y in zip(ra, rb))
    va = sum((x - ma) ** 2 for x in ra)
    vb = sum((y - mb) ** 2 for y in rb)
    if va == 0.0 or vb == 0.0:
        return None
    return cov / (va * vb) ** 0.5


@dataclass
class HarnessStats:
    """Mutable driver-side accumulator for one sweep's harness metrics."""

    n_workers: int = 1
    window: int = 1
    pool_rebuilds: int = 0
    spec_builds: int = 0
    instance_builds: int = 0
    pickle_bytes: int = 0
    elapsed_s: float = 0.0
    #: Per completed cell: (predicted cost, worker-measured wall seconds).
    cell_costs: list[float] = field(default_factory=list)
    cell_walls: list[float] = field(default_factory=list)

    @property
    def cells(self) -> int:
        return len(self.cell_walls)

    def record_cell(self, *, cost: float, wall_s: float, payload_bytes: int = 0,
                    spec_builds: int = 0, instance_builds: int = 0) -> None:
        """Fold one completed cell's driver-visible measurements in."""
        self.cell_costs.append(float(cost))
        self.cell_walls.append(float(wall_s))
        self.pickle_bytes += int(payload_bytes)
        self.spec_builds += int(spec_builds)
        self.instance_builds += int(instance_builds)

    def straggler_ratio(self) -> float | None:
        """Max over median cell wall (None before any cell)."""
        if not self.cell_walls:
            return None
        ordered = sorted(self.cell_walls)
        median = ordered[len(ordered) // 2]
        return ordered[-1] / median if median > 0 else None

    def to_telemetry(self) -> RunTelemetry:
        """Snapshot into the standard telemetry shape (see module doc)."""
        telemetry = RunTelemetry()
        m = telemetry.metrics
        m.counter("harness.cells").inc(self.cells)
        m.gauge("harness.workers").set(float(self.n_workers))
        m.gauge("harness.dispatch.window").set(float(self.window))
        m.counter("harness.pool.rebuilds").inc(self.pool_rebuilds)
        m.counter("harness.spec.builds").inc(self.spec_builds)
        m.counter("harness.instance.builds").inc(self.instance_builds)
        m.counter("harness.pickle.bytes").inc(self.pickle_bytes)
        if self.cells:
            m.gauge("harness.pickle.bytes_per_cell").set(self.pickle_bytes / self.cells)
        if self.elapsed_s > 0:
            m.gauge("harness.cells_per_sec").set(self.cells / self.elapsed_s)
            m.gauge("harness.busy_frac").set(
                sum(self.cell_walls) / (self.elapsed_s * self.n_workers)
            )
        ratio = self.straggler_ratio()
        if ratio is not None:
            m.gauge("harness.straggler_ratio").set(ratio)
        corr = _spearman(self.cell_costs, self.cell_walls)
        if corr is not None:
            m.gauge("harness.dispatch.rank_corr").set(corr)
        return telemetry


class ProgressReporter:
    """Throttled live ``cells/sec + ETA`` line on stderr.

    Purely observational: fed by the same completions
    :class:`HarnessStats` sees, printed at most once per
    ``min_interval_s`` (plus a final line), and never touches stdout or
    any result row.
    """

    def __init__(self, name: str, total: int, *, enabled: bool = False,
                 min_interval_s: float = 0.5, stream=None) -> None:
        self.name = name
        self.total = total
        self.enabled = enabled
        self.min_interval_s = min_interval_s
        self.stream = stream if stream is not None else sys.stderr
        self._t0 = time.monotonic()
        self._last_print = 0.0
        self._done = 0

    def cell_done(self) -> None:
        """One more cell finished (completed or restored)."""
        self._done += 1
        if not self.enabled:
            return
        now = time.monotonic()
        if self._done < self.total and now - self._last_print < self.min_interval_s:
            return
        self._last_print = now
        elapsed = now - self._t0
        rate = self._done / elapsed if elapsed > 0 else 0.0
        eta = (self.total - self._done) / rate if rate > 0 else float("inf")
        print(
            f"[{self.name}] {self._done}/{self.total} cells "
            f"({rate:.1f} cells/s, ETA {eta:.0f}s)",
            file=self.stream,
        )
