"""The run-telemetry snapshot and its collection/merge operations.

A :class:`RunTelemetry` is the serializable record of everything the
instrumented hooks observed during one (or, after merging, several)
simulation run(s).  It is deliberately a *snapshot*: plain floats and
lists behind :meth:`to_dict`, so it survives ``ProcessPoolExecutor``
pickling bit-for-bit and the serial and parallel experiment runners
return identical telemetry for the same seed.

Flow::

    hooks (TelemetrySource) ──collect_telemetry──▶ RunTelemetry
        ──ResultRow.telemetry (dict)──▶ parent process
        ──merge_telemetry──▶ AggregateRow.telemetry
        ──repro.obs.sinks──▶ JSONL ──repro.obs.report──▶ tables
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.errors import ModelError
from repro.obs.metrics import MetricsRegistry

#: Bump when the serialized shape changes; ``from_dict`` rejects
#: versions it does not know how to read.
TELEMETRY_VERSION = 1


class TelemetrySource:
    """Mixin marking a hook whose metrics belong in :class:`RunTelemetry`.

    A telemetry hook owns a :class:`~repro.obs.metrics.MetricsRegistry`
    and finalizes it in ``on_finish``; :func:`collect_telemetry` unions
    the registries of every source after the run.  Hooks namespace
    their metric names (``util.*``, ``queue.*``, ``reexec.*``, …) so
    the union is disjoint.
    """

    def telemetry_metrics(self) -> MetricsRegistry:
        """The metrics this source contributes (called after the run)."""
        raise NotImplementedError


@dataclass
class RunTelemetry:
    """Serializable telemetry of one run (or a merge of several).

    ``n_runs`` counts how many runs were folded in — 1 for a fresh
    snapshot, the replication count after :func:`merge_telemetry`.
    """

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    n_runs: int = 1
    version: int = TELEMETRY_VERSION

    def to_dict(self) -> dict:
        """Plain-dict snapshot (pickles and JSON-serializes losslessly)."""
        return {
            "version": self.version,
            "n_runs": self.n_runs,
            "metrics": self.metrics.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunTelemetry":
        """Inverse of :meth:`to_dict`; rejects unknown versions."""
        if not isinstance(d, dict):
            raise ModelError(f"telemetry must be a dict, got {type(d).__name__}")
        version = d.get("version")
        if version != TELEMETRY_VERSION:
            raise ModelError(
                f"unsupported telemetry version {version!r} "
                f"(this build reads version {TELEMETRY_VERSION})"
            )
        n_runs = d.get("n_runs", 1)
        if not isinstance(n_runs, int) or n_runs < 1:
            raise ModelError(f"telemetry n_runs must be a positive int, got {n_runs!r}")
        metrics = d.get("metrics")
        if not isinstance(metrics, dict):
            raise ModelError("telemetry is missing its 'metrics' mapping")
        return cls(
            metrics=MetricsRegistry.from_dict(metrics),
            n_runs=n_runs,
            version=TELEMETRY_VERSION,
        )

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) — the byte-stable
        form the determinism tests and the JSONL sink rely on."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def merge(self, other: "RunTelemetry") -> None:
        """Fold another run's telemetry into this one in place."""
        self.metrics.merge(other.metrics)
        self.n_runs += other.n_runs


def collect_telemetry(hooks: Sequence[object]) -> RunTelemetry | None:
    """Union the registries of every :class:`TelemetrySource` in ``hooks``.

    Returns None when no hook is a telemetry source (the uninstrumented
    fast path: one isinstance sweep, no per-step cost anywhere).
    """
    sources = [h for h in hooks if isinstance(h, TelemetrySource)]
    if not sources:
        return None
    telemetry = RunTelemetry()
    for source in sources:
        telemetry.metrics.union(source.telemetry_metrics())
    return telemetry


def merge_telemetry(items: Iterable[RunTelemetry | dict | None]) -> RunTelemetry | None:
    """Merge telemetry snapshots across replications.

    Accepts :class:`RunTelemetry` objects or their ``to_dict`` forms
    (None entries are skipped); returns None when nothing contributes.
    Counters add, gauges and series average, histograms add counts —
    so e.g. merged utilization gauges are per-rep means and merged
    stretch histograms are the pooled distribution over all reps.
    """
    merged: RunTelemetry | None = None
    for item in items:
        if item is None:
            continue
        telemetry = item if isinstance(item, RunTelemetry) else RunTelemetry.from_dict(item)
        if merged is None:
            # Copy through the dict form so merging never mutates inputs.
            merged = RunTelemetry.from_dict(telemetry.to_dict())
        else:
            merged.merge(telemetry)
    return merged
