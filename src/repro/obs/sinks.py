"""Telemetry sinks: the JSONL record format and its reader/writer.

One telemetry *record* describes the (merged) telemetry of one
``(experiment, x, scheduler)`` group.  Records are plain dicts with a
fixed vocabulary, one canonical-JSON record per line:

.. code-block:: json

    {"schema": "repro.telemetry/1", "experiment": "fig2a", "x": 200.0,
     "scheduler": "SSF-EDF", "n": 10, "telemetry": {"version": 1,
     "n_runs": 10, "metrics": {"util.edge.busy_frac": {"type": "gauge",
     "sum": 4.2, "n": 10}, "...": {}}}}

``schema`` tags the record layout (:data:`TELEMETRY_SCHEMA`); the
nested ``telemetry`` object is a versioned
:meth:`~repro.obs.telemetry.RunTelemetry.to_dict` snapshot.  ``x`` is
the experiment's sweep coordinate (``null`` for single runs, e.g. the
simulate CLI).  Canonical JSON (sorted keys, no whitespace) makes the
sink byte-stable: writing, reading and re-writing a file reproduces it
exactly.

:func:`read_telemetry_jsonl` validates every line against the schema
and raises :class:`~repro.core.errors.ModelError` naming the offending
line — the CI smoke test and :mod:`repro.obs.report` both go through
it.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.core.errors import ModelError
from repro.obs.telemetry import RunTelemetry

#: Record-layout tag; bump together with the record vocabulary.
TELEMETRY_SCHEMA = "repro.telemetry/1"


def telemetry_record(
    *,
    experiment: str,
    scheduler: str,
    telemetry: RunTelemetry | dict,
    x: float | None = None,
    n: int = 1,
) -> dict:
    """Build one schema-tagged record from a telemetry snapshot."""
    if isinstance(telemetry, RunTelemetry):
        telemetry = telemetry.to_dict()
    record = {
        "schema": TELEMETRY_SCHEMA,
        "experiment": experiment,
        "x": None if x is None else float(x),
        "scheduler": scheduler,
        "n": int(n),
        "telemetry": telemetry,
    }
    validate_record(record)
    return record


def validate_record(record: object) -> dict:
    """Check one record against the schema; return it (else ``ModelError``).

    Validation is structural and total: the schema tag, every field's
    type, and the nested telemetry snapshot (which re-parses through
    :meth:`RunTelemetry.from_dict`, so every metric entry is checked
    too).
    """
    if not isinstance(record, dict):
        raise ModelError(f"telemetry record must be an object, got {type(record).__name__}")
    schema = record.get("schema")
    if schema != TELEMETRY_SCHEMA:
        raise ModelError(
            f"unknown telemetry schema {schema!r} (this build reads {TELEMETRY_SCHEMA!r})"
        )
    for field in ("experiment", "scheduler"):
        if not isinstance(record.get(field), str) or not record[field]:
            raise ModelError(f"telemetry record field {field!r} must be a non-empty string")
    x = record.get("x")
    if x is not None and not isinstance(x, (int, float)):
        raise ModelError(f"telemetry record field 'x' must be a number or null, got {x!r}")
    n = record.get("n")
    if not isinstance(n, int) or n < 1:
        raise ModelError(f"telemetry record field 'n' must be a positive int, got {n!r}")
    RunTelemetry.from_dict(record.get("telemetry"))
    return record


def record_to_json(record: dict) -> str:
    """One record as canonical JSON (sorted keys, no whitespace)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_telemetry_jsonl(path: str, records: Iterable[dict]) -> int:
    """Write ``records`` to ``path`` as JSONL; returns the record count.

    Every record is validated before anything is written, so a bad
    record never leaves a half-written file behind.
    """
    records = [validate_record(r) for r in records]
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(record_to_json(record) + "\n")
    return len(records)


def read_telemetry_jsonl(path: str) -> list[dict]:
    """Read and validate every record of a telemetry JSONL file.

    Raises :class:`ModelError` naming the first malformed line (1-based)
    — both JSON syntax errors and schema violations.  A *torn tail* —
    a final line missing its trailing newline that doesn't parse, the
    signature of a killed run — is repaired (skipped) rather than
    raised on, mirroring the experiment-checkpoint reader; use
    :func:`read_telemetry_jsonl_report` to learn whether one was
    dropped.
    """
    records, _dropped = read_telemetry_jsonl_report(path)
    return records


def read_telemetry_jsonl_report(path: str) -> tuple[list[dict], int]:
    """Like :func:`read_telemetry_jsonl`, also reporting dropped torn lines.

    Returns ``(records, n_dropped)`` where ``n_dropped`` is 1 when a
    torn final line was repaired and 0 otherwise.  Only the *final*
    line, and only when the file does not end with a newline, is ever
    repaired — a malformed line anywhere else (or a complete final
    line that fails validation) still raises, since that is corruption
    a crash cannot explain.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    complete_tail = text.endswith("\n")
    lines = text.split("\n")
    records: list[dict] = []
    dropped = 0
    last_idx = len(lines) - 1
    for idx, line in enumerate(lines):
        lineno = idx + 1
        line = line.strip()
        if not line:
            continue
        torn_candidate = idx == last_idx and not complete_tail
        try:
            record = json.loads(line)
            records.append(validate_record(record))
        except json.JSONDecodeError as exc:
            if torn_candidate:
                dropped += 1
                continue
            raise ModelError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
        except ModelError as exc:
            if torn_candidate:
                # Valid JSON but schema-invalid at the tail: a cut that
                # happens to end on a complete nested object — same
                # repair (validate_record raised before the append).
                dropped += 1
                continue
            raise ModelError(f"{path}:{lineno}: {exc}") from exc
    return records, dropped


def merge_records(records: Sequence[dict]) -> list[dict]:
    """Merge records that share ``(experiment, scheduler)``, dropping ``x``.

    The per-scheduler roll-up the report renders: telemetry of every
    sweep point is folded together (counters add, gauges/series
    average, histograms pool) in first-seen order.
    """
    order: list[tuple[str, str]] = []
    merged: dict[tuple[str, str], RunTelemetry] = {}
    counts: dict[tuple[str, str], int] = {}
    for record in records:
        key = (record["experiment"], record["scheduler"])
        telemetry = RunTelemetry.from_dict(record["telemetry"])
        if key not in merged:
            order.append(key)
            merged[key] = telemetry
            counts[key] = record["n"]
        else:
            merged[key].merge(telemetry)
            counts[key] += record["n"]
    return [
        telemetry_record(
            experiment=key[0],
            scheduler=key[1],
            telemetry=merged[key],
            x=None,
            n=counts[key],
        )
        for key in order
    ]
