"""``repro-trace``: explain and diff trace files written by ``--trace-out``.

Subcommands (all read the versioned trace JSONL of
:mod:`repro.obs.tracing`):

``summary <trace>``
    Run header, decision-path tallies, fault-event counts and the
    highest-stretch jobs.
``job <trace> <id>``
    One job's human-readable timeline (release, attempts, segments,
    completion, stretch) and its decision history (placements chosen
    for it, probes it made infeasible).
``critical <trace>``
    Walk the max-stretch job's chain of waits: for every gap in its
    timeline, name the fault outages and the jobs occupying its
    resources during the gap, then follow the largest blocker.
``diff <a> <b>``
    First divergent decision between two traces of the same instance
    (e.g. ssf-edf vs ssf-edf-fa on one seed) and the per-job stretch
    deltas that follow from it.

Examples::

    repro-simulate --generate random --n-jobs 30 --policy ssf-edf \\
        --fault-mtbf 50 --trace-out run.trace.jsonl
    repro-trace summary run.trace.jsonl
    repro-trace critical run.trace.jsonl
    repro-trace diff base.trace.jsonl fa.trace.jsonl
"""

from __future__ import annotations

import argparse
import sys

from repro.core.errors import ModelError
from repro.obs.tracing import read_trace_jsonl

#: Blockers reported per wait gap, and chain-walk depth bound.
_MAX_BLOCKERS = 4
_MAX_DEPTH = 4


def _fmt_t(t: float | None) -> str:
    """A time (or None) rendered compactly."""
    return "-" if t is None else f"{t:.4g}"


# -- timeline reconstruction -------------------------------------------------


def _busy_intervals(job: dict) -> list[tuple[float, float]]:
    """The job's running intervals (union of its segments, in order)."""
    spans = [
        (t0, t1)
        for attempt in job["attempts"]
        for _phase, t0, t1 in attempt["segments"]
    ]
    spans.sort()
    merged: list[tuple[float, float]] = []
    for t0, t1 in spans:
        if merged and t0 <= merged[-1][1]:
            if t1 > merged[-1][1]:
                merged[-1] = (merged[-1][0], t1)
        else:
            merged.append((t0, t1))
    return merged


def _wait_gaps(job: dict, eps: float = 1e-12) -> list[tuple[float, float]]:
    """Gaps in ``[release, completion]`` where the job made no progress."""
    end = job["completion"]
    if end is None:
        return []
    gaps: list[tuple[float, float]] = []
    cursor = job["release"]
    for t0, t1 in _busy_intervals(job):
        if t0 > cursor + eps:
            gaps.append((cursor, t0))
        cursor = max(cursor, t1)
    if end > cursor + eps:
        gaps.append((cursor, end))
    return gaps


def _attempt_after(job: dict, t: float) -> dict | None:
    """The attempt whose service follows instant ``t`` (what the job waited for)."""
    best = None
    for attempt in job["attempts"]:
        for _phase, t0, _t1 in attempt["segments"]:
            if t0 >= t:
                return attempt
        best = attempt
    return best


def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    """Length of ``[a0, a1] ∩ [b0, b1]``."""
    return max(0.0, min(a1, b1) - max(a0, b0))


def _down_intervals(payload: dict) -> list[tuple[str, float, float]]:
    """(resource, down, up) per fault outage (open outages end at makespan)."""
    opened: dict[str, float] = {}
    out: list[tuple[str, float, float]] = []
    horizon = payload.get("makespan") or 0.0
    for ev in payload["events"]:
        name, res = ev["event"], ev["resource"]
        if name in ("resource_down", "link_down"):
            opened.setdefault(res, ev["time"])
        elif name in ("resource_up", "link_up"):
            t0 = opened.pop(res, None)
            if t0 is not None:
                out.append((res, t0, ev["time"]))
    for res, t0 in opened.items():
        out.append((res, t0, horizon))
    return out


def _gap_blockers(
    payload: dict, job: dict, gap: tuple[float, float]
) -> tuple[list[str], list[tuple[int, float]]]:
    """Why ``job`` waited over ``gap``: outages + competing jobs.

    Outages are down intervals overlapping the gap on a resource the
    job plausibly needed (its next attempt's resource, or its origin's
    link).  Competitors are other jobs with segments overlapping the
    gap on the next attempt's resource, or sharing the origin edge
    during link phases — returned with their overlap so callers can
    follow the largest one.
    """
    g0, g1 = gap
    nxt = _attempt_after(job, g0)
    needed = {nxt["resource"]} if nxt else set()
    origin_res = f"edge:{job['origin']}"
    needed.add(origin_res)

    outages = [
        f"{res} down [{_fmt_t(d0)}, {_fmt_t(d1)}]"
        for res, d0, d1 in _down_intervals(payload)
        if res in needed and _overlap(g0, g1, d0, d1) > 0.0
    ]

    competitors: dict[int, float] = {}
    for other in payload["jobs"]:
        if other["job"] == job["job"]:
            continue
        for attempt in other["attempts"]:
            on_needed = attempt["resource"] in needed
            shares_origin = other["origin"] == job["origin"]
            if not on_needed and not shares_origin:
                continue
            for phase, t0, t1 in attempt["segments"]:
                if not on_needed and phase == "compute":
                    continue  # origin overlap only matters for link traffic
                ov = _overlap(g0, g1, t0, t1)
                if ov > 0.0:
                    competitors[other["job"]] = competitors.get(other["job"], 0.0) + ov
    ranked = sorted(competitors.items(), key=lambda kv: (-kv[1], kv[0]))
    return outages, ranked


def _argmax_job(payload: dict) -> dict | None:
    """The completed job with the highest stretch (first on ties)."""
    best = None
    for job in payload["jobs"]:
        s = job["stretch"]
        if s is None:
            continue
        if best is None or s > best["stretch"]:
            best = job
    return best


# -- subcommands -------------------------------------------------------------


def _cmd_summary(payload: dict) -> int:
    print(f"scheduler:   {payload['scheduler']}")
    print(f"jobs:        {payload['n_jobs']}")
    print(f"makespan:    {_fmt_t(payload.get('makespan'))}")
    print(f"max stretch: {_fmt_t(payload.get('max_stretch'))}")
    paths: dict[str, int] = {}
    probes = 0
    for d in payload["decisions"]:
        prov = d.get("provenance")
        if prov:
            paths[prov["path"]] = paths.get(prov["path"], 0) + 1
            probes += len(prov.get("probes", ()))
    print(f"decisions:   {len(payload['decisions'])}", end="")
    if paths:
        detail = ", ".join(f"{k}={v}" for k, v in sorted(paths.items()))
        print(f" ({detail}; {probes} probes)", end="")
    print()
    n_aborts = sum(1 for e in payload["events"] if e["event"] == "attempt_aborted")
    n_down = sum(1 for e in payload["events"] if e["event"].endswith("_down"))
    print(f"faults:      {n_down} outages, {n_aborts} aborted attempts")
    n_commits = sum(1 for e in payload["events"] if e["event"] == "checkpoint_committed")
    abandoned = [j["job"] for j in payload["jobs"] if j.get("abandoned")]
    if n_commits or abandoned:
        ids = ", ".join(str(j) for j in abandoned[:8])
        more = "" if len(abandoned) <= 8 else f", +{len(abandoned) - 8} more"
        detail = f" (jobs {ids}{more})" if abandoned else ""
        print(
            f"checkpoint:  {n_commits} commits, "
            f"{len(abandoned)} abandoned job(s){detail}"
        )
    ranked = sorted(
        (j for j in payload["jobs"] if j["stretch"] is not None),
        key=lambda j: -j["stretch"],
    )[:5]
    if ranked:
        print("top stretch:")
        for job in ranked:
            print(
                f"  job {job['job']}: stretch {job['stretch']:.4f} "
                f"({len(job['attempts'])} attempts, "
                f"release {_fmt_t(job['release'])}, "
                f"completion {_fmt_t(job['completion'])})"
            )
    return 0


def _cmd_job(payload: dict, job_id: int) -> int:
    jobs = {j["job"]: j for j in payload["jobs"]}
    job = jobs.get(job_id)
    if job is None:
        print(f"error: job {job_id} not in trace (n_jobs={payload['n_jobs']})", file=sys.stderr)
        return 1
    print(
        f"job {job_id}: release {_fmt_t(job['release'])}, "
        f"min_time {_fmt_t(job['min_time'])}, origin edge:{job['origin']}"
    )
    for a_idx, attempt in enumerate(job["attempts"]):
        blame = f" by {attempt['aborted_by']}" if attempt["aborted_by"] else ""
        print(
            f"  attempt {a_idx} on {attempt['resource']}: "
            f"[{_fmt_t(attempt['start'])}, {_fmt_t(attempt['end'])}] "
            f"{attempt['outcome']}{blame}"
        )
        for phase, t0, t1 in attempt["segments"]:
            print(f"    {phase:8s} [{_fmt_t(t0)}, {_fmt_t(t1)}]")
    if job.get("abandoned"):
        print("  ABANDONED: retry budget exhausted, job left uncompleted")
    print(
        f"  completion {_fmt_t(job['completion'])}, "
        f"stretch {_fmt_t(job['stretch'])}"
    )
    gaps = _wait_gaps(job)
    if gaps:
        waited = sum(g1 - g0 for g0, g1 in gaps)
        print(f"  waited {_fmt_t(waited)} across {len(gaps)} gap(s)")
    history = []
    for d in payload["decisions"]:
        placed = next((c for c in d["changed"] if c["job"] == job_id), None)
        if placed is not None:
            history.append(
                f"  t={_fmt_t(d['time'])} seq {d['seq']}: "
                f"placed on {placed['kind']}:{placed['index']}"
            )
        prov = d.get("provenance")
        if prov:
            for probe in prov.get("probes", ()):
                violator = probe.get("violator")
                if violator and violator.get("job") == job_id:
                    history.append(
                        f"  t={_fmt_t(d['time'])} seq {d['seq']}: rejected "
                        f"stretch {probe['stretch']:.4f} (completion "
                        f"{_fmt_t(violator['completion'])} > deadline "
                        f"{_fmt_t(violator['deadline'])})"
                    )
    if history:
        print("decision history:")
        for line in history:
            print(line)
    return 0


def _cmd_critical(payload: dict) -> int:
    abandoned = [j["job"] for j in payload["jobs"] if j.get("abandoned")]
    if abandoned:
        ids = ", ".join(str(j) for j in abandoned[:8])
        more = "" if len(abandoned) <= 8 else f", +{len(abandoned) - 8} more"
        print(
            f"note: {len(abandoned)} job(s) abandoned after exhausting their "
            f"retry budget ({ids}{more}) — excluded from the stretch walk"
        )
    job = _argmax_job(payload)
    if job is None:
        print("(no completed jobs in trace)")
        return 0
    print(
        f"max-stretch job: {job['job']} (stretch {job['stretch']:.6f}, "
        f"release {_fmt_t(job['release'])}, completion {_fmt_t(job['completion'])})"
    )
    jobs = {j["job"]: j for j in payload["jobs"]}
    visited = {job["job"]}
    current = job
    for depth in range(_MAX_DEPTH):
        gaps = _wait_gaps(current)
        if not gaps:
            print(f"{'  ' * depth}job {current['job']}: no wait gaps — served immediately")
            break
        g0, g1 = max(gaps, key=lambda g: g[1] - g[0])
        outages, ranked = _gap_blockers(payload, current, (g0, g1))
        indent = "  " * depth
        print(
            f"{indent}job {current['job']} waited [{_fmt_t(g0)}, {_fmt_t(g1)}] "
            f"({_fmt_t(g1 - g0)}):"
        )
        for outage in outages:
            print(f"{indent}  blocked by outage: {outage}")
        for jid, ov in ranked[:_MAX_BLOCKERS]:
            print(
                f"{indent}  behind job {jid} "
                f"(occupied its resources for {_fmt_t(ov)})"
            )
        nxt = next((jid for jid, _ov in ranked if jid not in visited), None)
        if nxt is None:
            if not outages and not ranked:
                print(f"{indent}  (no overlapping outage or competitor found)")
            break
        visited.add(nxt)
        current = jobs[nxt]
    return 0


def _cmd_diff(a: dict, b: dict) -> int:
    print(f"a: {a['scheduler']} (max stretch {_fmt_t(a.get('max_stretch'))})")
    print(f"b: {b['scheduler']} (max stretch {_fmt_t(b.get('max_stretch'))})")
    divergent = None
    for da, db in zip(a["decisions"], b["decisions"]):
        if da["time"] != db["time"] or da["changed"] != db["changed"]:
            divergent = (da, db)
            break
    if divergent is None:
        if len(a["decisions"]) != len(b["decisions"]):
            print(
                f"decisions agree pairwise; counts differ "
                f"({len(a['decisions'])} vs {len(b['decisions'])})"
            )
        else:
            print("no divergent decision (identical decision streams)")
    else:
        da, db = divergent
        print(f"first divergent decision: seq {da['seq']}")
        for tag, d in (("a", da), ("b", db)):
            prov = d.get("provenance") or {}
            path = prov.get("path", "?")
            moved = ", ".join(
                f"{c['job']}->{c['kind']}:{c['index']}" for c in d["changed"][:6]
            )
            more = "" if len(d["changed"]) <= 6 else f" (+{len(d['changed']) - 6} more)"
            print(f"  {tag}: t={_fmt_t(d['time'])} path={path} changed: {moved}{more}")

    sa = {j["job"]: j["stretch"] for j in a["jobs"] if j["stretch"] is not None}
    sb = {j["job"]: j["stretch"] for j in b["jobs"] if j["stretch"] is not None}
    deltas = sorted(
        ((j, sb[j] - sa[j]) for j in sa.keys() & sb.keys() if sb[j] != sa[j]),
        key=lambda kv: (-abs(kv[1]), kv[0]),
    )
    if not deltas:
        print("per-job stretches identical")
    else:
        print(f"per-job stretch deltas (b - a), {len(deltas)} job(s) changed:")
        for j, dv in deltas[:10]:
            print(f"  job {j}: {sa[j]:.4f} -> {sb[j]:.4f} ({dv:+.4f})")
        if len(deltas) > 10:
            print(f"  ... and {len(deltas) - 10} more")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (0 on success, 1 on bad input)."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Explain and diff run traces written by --trace-out.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_summary = sub.add_parser("summary", help="run header + decision/fault tallies")
    p_summary.add_argument("trace", help="trace JSONL file")
    p_job = sub.add_parser("job", help="one job's timeline and decision history")
    p_job.add_argument("trace", help="trace JSONL file")
    p_job.add_argument("id", type=int, help="job id")
    p_crit = sub.add_parser("critical", help="walk the max-stretch job's waits")
    p_crit.add_argument("trace", help="trace JSONL file")
    p_diff = sub.add_parser("diff", help="first divergent decision + stretch deltas")
    p_diff.add_argument("trace_a", help="baseline trace JSONL file")
    p_diff.add_argument("trace_b", help="comparison trace JSONL file")
    args = parser.parse_args(argv)

    try:
        if args.command == "diff":
            return _cmd_diff(read_trace_jsonl(args.trace_a), read_trace_jsonl(args.trace_b))
        payload = read_trace_jsonl(args.trace)
        if args.command == "summary":
            return _cmd_summary(payload)
        if args.command == "job":
            return _cmd_job(payload, args.id)
        return _cmd_critical(payload)
    except (OSError, ModelError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
