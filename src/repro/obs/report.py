"""``python -m repro.obs.report``: summarize a telemetry JSONL file.

Reads a file produced by the ``--telemetry-out`` flag of the
experiments or simulate CLI (see :mod:`repro.obs.sinks` for the
schema), validates every line, and renders one utilization/histogram
table per experiment with one row per scheduler — telemetry of every
sweep point is merged per scheduler first (counters add, gauges and
series average, histograms pool).

Several files may be given at once — including files from different
telemetry eras: the column set is a fixed tuple, so records missing
newer metrics (e.g. ``scheduler.outlook_queries`` from a build before
the capacity layer) render '-' in their cells without crashing or
reordering the output.  ``--format csv`` emits the same table as
machine-readable CSV.

Examples::

    repro-experiments fig2a --reps 3 --telemetry-out tel.jsonl
    python -m repro.obs.report tel.jsonl            # render the tables
    python -m repro.obs.report tel.jsonl --check    # validate only
    python -m repro.obs.report old.jsonl new.jsonl --format csv
"""

from __future__ import annotations

import argparse
import csv
import io
import sys
from typing import Sequence

from repro.core.errors import ModelError
from repro.obs.metrics import Gauge, Histogram
from repro.obs.sinks import merge_records, read_telemetry_jsonl_report
from repro.obs.telemetry import RunTelemetry

#: Table columns: (header, metric name, renderer).
_PERCENT = "percent"
_NUMBER = "number"
_P50 = "p50"
_P99 = "p99"

_COLUMNS = (
    ("edge%", "util.edge.busy_frac", _PERCENT),
    ("cloud%", "util.cloud.busy_frac", _PERCENT),
    ("up%", "util.uplink.busy_frac", _PERCENT),
    ("down%", "util.downlink.busy_frac", _PERCENT),
    ("q-mean", "queue.depth.mean", _NUMBER),
    ("q-max", "queue.depth.max", _NUMBER),
    ("stretch-p50", "jobs.stretch", _P50),
    ("stretch-p99", "jobs.stretch", _P99),
    ("max-stretch", "jobs.max_stretch", _NUMBER),
    ("aborts", "reexec.aborted_attempts", _NUMBER),
    ("wasted-work", "reexec.wasted_work", _NUMBER),
    ("crashes", "faults.crashes", _NUMBER),
    ("outages", "faults.link_outages", _NUMBER),
    ("f-aborts", "faults.aborted_attempts", _NUMBER),
    ("f-wasted", "faults.wasted_work", _NUMBER),
    ("recover-p50", "faults.time_to_recover", _P50),
    ("probes", "scheduler.probes", _NUMBER),
    ("rebuilds", "scheduler.rebuilds", _NUMBER),
    ("replays", "scheduler.replays", _NUMBER),
    ("outlook-q", "scheduler.outlook_queries", _NUMBER),
    ("argmax-job", "stretch.argmax_job", _NUMBER),
    # Harness self-telemetry (scheduler="harness" records; '-' for
    # ordinary simulation rows).
    ("cells/s", "harness.cells_per_sec", _NUMBER),
    ("busy%", "harness.busy_frac", _PERCENT),
    ("straggle", "harness.straggler_ratio", _NUMBER),
    ("pkl/cell", "harness.pickle.bytes_per_cell", _NUMBER),
    ("pool-deaths", "harness.pool.rebuilds", _NUMBER),
)


def _cell(telemetry: RunTelemetry, name: str, mode: str) -> str:
    """Render one metric of one merged snapshot ('-' when absent)."""
    metric = telemetry.metrics.get(name)
    if metric is None:
        return "-"
    if mode == _PERCENT and isinstance(metric, Gauge):
        return f"{metric.value:.1%}"
    if mode in (_P50, _P99) and isinstance(metric, Histogram):
        return f"{metric.percentile(0.5 if mode == _P50 else 0.99):.3g}"
    value = getattr(metric, "value", None)
    if value is None:
        return "-"
    return f"{value:.4g}"


def _align(lines: list[list[str]]) -> str:
    """Right-align columns; a rule under the header."""
    widths = [max(len(line[c]) for line in lines) for c in range(len(lines[0]))]
    rendered = []
    for idx, line in enumerate(lines):
        rendered.append("  ".join(cell.rjust(w) for cell, w in zip(line, widths)))
        if idx == 0:
            rendered.append("  ".join("-" * w for w in widths))
    return "\n".join(rendered)


def format_report(records: Sequence[dict]) -> str:
    """The full report: one per-scheduler table per experiment."""
    if not records:
        return "(no telemetry records)"
    merged = merge_records(records)
    experiments: list[str] = []
    for record in merged:
        if record["experiment"] not in experiments:
            experiments.append(record["experiment"])
    blocks: list[str] = []
    for experiment in experiments:
        rows = [r for r in merged if r["experiment"] == experiment]
        lines = [["scheduler", "runs"] + [c[0] for c in _COLUMNS]]
        for record in rows:
            telemetry = RunTelemetry.from_dict(record["telemetry"])
            lines.append(
                [record["scheduler"], str(record["n"])]
                + [_cell(telemetry, name, mode) for _, name, mode in _COLUMNS]
            )
        blocks.append(f"== {experiment} ==\n{_align(lines)}")
    return "\n\n".join(blocks)


def format_report_csv(records: Sequence[dict]) -> str:
    """The same merged rows as CSV (one flat table, experiment column first).

    The header is the fixed :data:`_COLUMNS` tuple, so files from
    different telemetry eras always produce the same column order;
    absent metrics render '-' exactly as in the table view.
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["experiment", "scheduler", "runs"] + [c[0] for c in _COLUMNS])
    for record in merge_records(records):
        telemetry = RunTelemetry.from_dict(record["telemetry"])
        writer.writerow(
            [record["experiment"], record["scheduler"], str(record["n"])]
            + [_cell(telemetry, name, mode) for _, name, mode in _COLUMNS]
        )
    return buf.getvalue()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (0 on success, 1 on a validation failure)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize telemetry JSONL files written by --telemetry-out.",
    )
    parser.add_argument(
        "paths", nargs="+", metavar="path", help="telemetry JSONL file(s)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the files against the schema and exit (no tables)",
    )
    parser.add_argument(
        "--format",
        choices=("table", "csv"),
        default="table",
        help="output format (default: table)",
    )
    args = parser.parse_args(argv)
    records: list[dict] = []
    repaired = 0
    try:
        for path in args.paths:
            file_records, dropped = read_telemetry_jsonl_report(path)
            records.extend(file_records)
            if dropped:
                repaired += dropped
                print(
                    f"note: {path}: skipped {dropped} torn trailing line "
                    "(interrupted run)",
                    file=sys.stderr,
                )
    except (OSError, ModelError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.check:
        label = args.paths[0] if len(args.paths) == 1 else f"{len(args.paths)} files"
        note = f" ({repaired} torn line(s) skipped)" if repaired else ""
        print(f"{label}: {len(records)} telemetry records OK{note}")
        return 0
    if args.format == "csv":
        sys.stdout.write(format_report_csv(records))
    else:
        print(format_report(records))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
