"""Causal run tracing: job-lifecycle spans + decision provenance.

:class:`RunTracer` is an :class:`~repro.sim.hooks.EngineHooks`
implementation (like :class:`repro.sim.trace.TraceRecorder`: zero
hot-loop cost when not registered) that turns one simulation into an
explainable artifact:

* **job-lifecycle spans** — one timeline per job: release, every
  attempt (resource, start/end, outcome ``completed`` / ``aborted`` /
  ``superseded``) with its coalesced uplink/compute/downlink segments,
  fault aborts and rework, closed with the job's realized stretch;
* **decision provenance** — one record per scheduler decision with the
  *changed* placements (delta vs the pre-decision allocations) and,
  for schedulers that support it (SSF-EDF's ``set_provenance``), the
  structured :class:`~repro.schedulers.placement.DecisionProvenance`:
  binary-search probes with their rejection reasons, per-job placement
  explanations, and the failure-aware capacity push-back report;
* **fault events** — every down/up transition and fault abort, so
  waits can be attributed post hoc.

Everything recorded is *simulation-time* arithmetic — no wall clocks,
no randomness — so two identical runs produce byte-identical traces
regardless of which process executed them (the same guarantee the
telemetry monitors give).

Exporters: :func:`write_trace_jsonl` (versioned canonical-JSON lines,
sharing the :mod:`repro.obs.sinks` conventions) and
:func:`write_chrome_trace` (Chrome trace-event JSON, loadable in
Perfetto / ``chrome://tracing``: jobs as one process, resources as
another).  ``python -m repro.obs.trace_cli`` (installed as
``repro-trace``) summarizes, explains and diffs trace files.

The tracer registers as hook name ``"tracing"`` (``--instrument
tracing`` or the CLIs' ``--trace-out``).
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.core.errors import ModelError
from repro.sim.events import EventKind
from repro.sim.hooks import EngineHooks, register_hook
from repro.sim.state import ALLOC_CLOUD, ALLOC_EDGE, Phase

#: Trace-record layout tag; bump together with the record vocabulary.
TRACE_SCHEMA = "repro.trace/1"

#: Phase enum → segment phase string.
_PHASE_NAME = {
    Phase.UPLINK: "uplink",
    Phase.COMPUTE: "compute",
    Phase.DOWNLINK: "downlink",
}

#: Fault/availability event kinds recorded in the trace's event stream.
#: The checkpoint kinds only ever fire under a
#: :class:`repro.sim.checkpoint.CheckpointPolicy`, so historical
#: (non-checkpointed) traces are unchanged byte for byte.
_FAULT_EVENTS = {
    EventKind.RESOURCE_DOWN: "resource_down",
    EventKind.RESOURCE_UP: "resource_up",
    EventKind.LINK_DOWN: "link_down",
    EventKind.LINK_UP: "link_up",
    EventKind.ATTEMPT_ABORTED: "attempt_aborted",
    EventKind.CHECKPOINT_COMMITTED: "checkpoint_committed",
    EventKind.JOB_ABANDONED: "job_abandoned",
}


def _res_str(resource) -> str:
    """A resource as the trace's stable string form (``edge:3`` / ``cloud:1``)."""
    return f"edge:{resource.index}" if resource.is_edge else f"cloud:{resource.index}"


class RunTracer(EngineHooks):
    """Record one run's job spans, decisions and fault events.

    Registered as hook name ``"tracing"``.  Sets
    :attr:`~repro.sim.hooks.EngineHooks.wants_decision_provenance`, so
    the engine asks provenance-capable schedulers to attach a
    structured explanation to every decision; schedulers without the
    capability still trace fine (the provenance field is just null).

    After ``on_finish``, :meth:`payload` returns the full trace as one
    JSON-ready dict (the form that rides ``ResultRow.trace`` across
    process pools); the module-level exporters serialize it.
    """

    wants_decision_provenance = True

    def __init__(self) -> None:
        self._release = None
        self._min_time = None
        self._origin = None
        self._n_jobs = 0
        #: job -> list of attempt dicts (the last one may be open).
        self._attempts: dict[int, list[dict]] = {}
        #: job -> (alloc code, index) of the current attempt.
        self._alloc: dict[int, tuple[int, int]] = {}
        #: job -> completion time.
        self._completion: dict[int, float] = {}
        self._decisions: list[dict] = []
        self._events: list[dict] = []
        self._abandoned: set[int] = set()
        self._result = None

    # -- engine callbacks --------------------------------------------------

    def on_start(self, view) -> None:
        """Capture the static per-job quantities of the instance."""
        instance = view.instance
        self._release = instance.release
        self._min_time = instance.min_time
        self._origin = instance.origin
        self._n_jobs = instance.n_jobs

    def on_decision(self, now: float, decision) -> None:
        """Record the decision: changed placements + provenance, if any."""
        jobs, kinds, indices = decision.as_arrays()
        alloc = self._alloc
        changed = []
        for j, k, i in zip(jobs.tolist(), kinds.tolist(), indices.tolist()):
            if alloc.get(j) != (k, i):
                changed.append(
                    {
                        "job": j,
                        "kind": "edge" if k == ALLOC_EDGE else "cloud",
                        "index": i,
                    }
                )
        prov = getattr(decision, "provenance", None)
        self._decisions.append(
            {
                "seq": len(self._decisions),
                "time": now,
                "n_assignments": len(decision),
                "changed": changed,
                "provenance": None if prov is None else prov.to_dict(),
            }
        )

    def on_assign(self, job: int, resource, now: float) -> None:
        """Open a new attempt; the superseded one (if open) is closed."""
        attempts = self._attempts.setdefault(job, [])
        if attempts and attempts[-1]["end"] is None:
            attempts[-1]["end"] = now
            attempts[-1]["outcome"] = "superseded"
        attempts.append(
            {
                "resource": _res_str(resource),
                "start": now,
                "end": None,
                "outcome": "open",
                "aborted_by": None,
                "segments": [],
            }
        )
        self._alloc[job] = (
            ALLOC_EDGE if resource.is_edge else ALLOC_CLOUD,
            resource.index,
        )

    def on_step(self, t0: float, t1: float, active: Sequence) -> None:
        """Append/coalesce each active activity into its attempt's segments."""
        if t1 <= t0:
            return
        attempts = self._attempts
        for job, phase, _rate in active:
            spans = attempts[job][-1]["segments"]
            name = _PHASE_NAME[phase]
            if spans and spans[-1][0] == name and spans[-1][2] == t0:
                spans[-1][2] = t1
            else:
                spans.append([name, t0, t1])

    def on_events(self, events: Sequence) -> None:
        """Record fault/availability transitions; blame fault aborts."""
        for ev in events:
            name = _FAULT_EVENTS.get(ev.kind)
            if name is None:
                continue
            res = None if ev.resource is None else _res_str(ev.resource)
            record: dict = {"event": name, "time": ev.time, "resource": res}
            if ev.kind is EventKind.ATTEMPT_ABORTED:
                record["job"] = ev.job
                attempts = self._attempts.get(ev.job)
                if attempts and attempts[-1]["outcome"] == "aborted":
                    attempts[-1]["aborted_by"] = res
            elif ev.kind is EventKind.CHECKPOINT_COMMITTED:
                record["job"] = ev.job
            elif ev.kind is EventKind.JOB_ABANDONED:
                record["job"] = ev.job
                self._abandoned.add(ev.job)
            self._events.append(record)

    def on_abort(self, job: int, time: float) -> None:
        """Close the job's attempt as fault-aborted (progress lost)."""
        attempts = self._attempts.get(job)
        if attempts and attempts[-1]["end"] is None:
            attempts[-1]["end"] = time
            attempts[-1]["outcome"] = "aborted"
        self._alloc.pop(job, None)

    def on_complete(self, job: int, time: float) -> None:
        """Close the job's attempt and its span."""
        attempts = self._attempts.get(job)
        if attempts and attempts[-1]["end"] is None:
            attempts[-1]["end"] = time
            attempts[-1]["outcome"] = "completed"
        self._completion[job] = time

    def on_finish(self, result) -> None:
        """Keep the result for the header/stretch fields of the payload."""
        self._result = result

    # -- payload -----------------------------------------------------------

    def payload(self) -> dict:
        """The full trace as one JSON-ready dict (see :data:`TRACE_SCHEMA`).

        Per-job ``stretch`` is the same ``(completion - release) /
        min_time`` arithmetic as ``SimulationResult.stretches()``, so
        the reconstructed values equal the result's exactly.
        """
        if self._result is None:
            raise ModelError("RunTracer.payload() called before the run finished")
        result = self._result
        jobs = []
        for j in range(self._n_jobs):
            completion = self._completion.get(j)
            release = float(self._release[j])
            min_time = float(self._min_time[j])
            stretch = None if completion is None else (completion - release) / min_time
            record = {
                "job": j,
                "release": release,
                "min_time": min_time,
                "origin": int(self._origin[j]),
                "completion": completion,
                "stretch": stretch,
                "attempts": self._attempts.get(j, []),
            }
            # Conditional key: only abandoned jobs carry it, so traces of
            # runs without a retry budget keep their historical bytes.
            if j in self._abandoned:
                record["abandoned"] = True
            jobs.append(record)
        return {
            "schema": TRACE_SCHEMA,
            "scheduler": result.scheduler_name,
            "n_jobs": self._n_jobs,
            "max_stretch": result.max_stretch,
            "makespan": result.makespan,
            "n_decisions": result.n_decisions,
            "n_events": result.n_events,
            "jobs": jobs,
            "decisions": self._decisions,
            "events": self._events,
        }


def collect_trace(hooks: Iterable[EngineHooks]) -> dict | None:
    """The payload of the first :class:`RunTracer` among ``hooks`` (or None)."""
    for hook in hooks:
        if isinstance(hook, RunTracer):
            return hook.payload()
    return None


# -- JSONL export ------------------------------------------------------------


def _canonical(obj: dict) -> str:
    """Canonical JSON (sorted keys, no whitespace) — byte-stable."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def validate_trace_payload(payload: object) -> dict:
    """Structural check of a trace payload; returns it (else ``ModelError``)."""
    if not isinstance(payload, dict):
        raise ModelError(f"trace payload must be an object, got {type(payload).__name__}")
    if payload.get("schema") != TRACE_SCHEMA:
        raise ModelError(
            f"unknown trace schema {payload.get('schema')!r} "
            f"(this build reads {TRACE_SCHEMA!r})"
        )
    for field, cls in (
        ("scheduler", str),
        ("n_jobs", int),
        ("jobs", list),
        ("decisions", list),
        ("events", list),
    ):
        if not isinstance(payload.get(field), cls):
            raise ModelError(f"trace payload field {field!r} must be a {cls.__name__}")
    if len(payload["jobs"]) != payload["n_jobs"]:
        raise ModelError(
            f"trace payload lists {len(payload['jobs'])} jobs but n_jobs="
            f"{payload['n_jobs']}"
        )
    return payload


def write_trace_jsonl(path: str, payload: dict) -> int:
    """Write one trace payload as versioned JSONL; returns the line count.

    Line order is deterministic (header, jobs ascending, decisions by
    sequence, events in emission order) and every line is canonical
    JSON, so serial and parallel runs of the same cell produce
    byte-identical files.
    """
    validate_trace_payload(payload)
    header = {k: v for k, v in payload.items() if k not in ("jobs", "decisions", "events")}
    header["kind"] = "header"
    lines = [header]
    lines += [{"kind": "job", **job} for job in payload["jobs"]]
    lines += [{"kind": "decision", **d} for d in payload["decisions"]]
    lines += [{"kind": "event", **e} for e in payload["events"]]
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(_canonical(line) + "\n")
    return len(lines)


def read_trace_jsonl(path: str) -> dict:
    """Read a trace JSONL file back into one payload dict.

    Raises :class:`ModelError` naming the first malformed line.
    """
    header: dict | None = None
    jobs: list[dict] = []
    decisions: list[dict] = []
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ModelError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise ModelError(f"{path}:{lineno}: trace record must be an object")
            kind = record.pop("kind", None)
            if kind == "header":
                if record.get("schema") != TRACE_SCHEMA:
                    raise ModelError(
                        f"{path}:{lineno}: unknown trace schema "
                        f"{record.get('schema')!r} (this build reads {TRACE_SCHEMA!r})"
                    )
                header = record
            elif kind == "job":
                jobs.append(record)
            elif kind == "decision":
                decisions.append(record)
            elif kind == "event":
                events.append(record)
            else:
                raise ModelError(f"{path}:{lineno}: unknown trace record kind {kind!r}")
    if header is None:
        raise ModelError(f"{path}: no trace header line")
    payload = dict(header)
    payload["jobs"] = sorted(jobs, key=lambda j: j["job"])
    payload["decisions"] = sorted(decisions, key=lambda d: d["seq"])
    payload["events"] = events
    return validate_trace_payload(payload)


# -- Chrome trace-event export -----------------------------------------------

#: Simulation time unit → trace microseconds (Perfetto renders us/ms).
_TS_SCALE = 1e6


def chrome_trace_events(payload: dict) -> list[dict]:
    """The payload as Chrome trace-event records (Perfetto-loadable).

    Process 1 holds one thread per job (duration events per segment,
    instants for release/abort/completion); process 2 one thread per
    compute resource (who occupied it when) with fault transitions as
    instants.
    """
    validate_trace_payload(payload)
    events: list[dict] = [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name", "args": {"name": "jobs"}},
        {
            "ph": "M",
            "pid": 2,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "resources"},
        },
    ]
    res_tids: dict[str, int] = {}

    def res_tid(res: str) -> int:
        tid = res_tids.get(res)
        if tid is None:
            tid = res_tids[res] = len(res_tids)
            events.append(
                {
                    "ph": "M",
                    "pid": 2,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": res},
                }
            )
        return tid

    for job in payload["jobs"]:
        j = job["job"]
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": j,
                "name": "thread_name",
                "args": {"name": f"job {j}"},
            }
        )
        events.append(
            {
                "ph": "i",
                "pid": 1,
                "tid": j,
                "name": "release",
                "ts": job["release"] * _TS_SCALE,
                "s": "t",
            }
        )
        for a_idx, attempt in enumerate(job["attempts"]):
            for phase, t0, t1 in attempt["segments"]:
                events.append(
                    {
                        "ph": "X",
                        "pid": 1,
                        "tid": j,
                        "name": phase,
                        "cat": "attempt",
                        "ts": t0 * _TS_SCALE,
                        "dur": (t1 - t0) * _TS_SCALE,
                        "args": {"resource": attempt["resource"], "attempt": a_idx},
                    }
                )
                if phase == "compute":
                    events.append(
                        {
                            "ph": "X",
                            "pid": 2,
                            "tid": res_tid(attempt["resource"]),
                            "name": f"job {j}",
                            "cat": "compute",
                            "ts": t0 * _TS_SCALE,
                            "dur": (t1 - t0) * _TS_SCALE,
                            "args": {"job": j},
                        }
                    )
            if attempt["outcome"] == "aborted" and attempt["end"] is not None:
                events.append(
                    {
                        "ph": "i",
                        "pid": 1,
                        "tid": j,
                        "name": "abort",
                        "ts": attempt["end"] * _TS_SCALE,
                        "s": "t",
                    }
                )
        if job["completion"] is not None:
            events.append(
                {
                    "ph": "i",
                    "pid": 1,
                    "tid": j,
                    "name": "complete",
                    "ts": job["completion"] * _TS_SCALE,
                    "s": "t",
                }
            )
    for ev in payload["events"]:
        if ev["event"] == "attempt_aborted" or ev["resource"] is None:
            continue
        events.append(
            {
                "ph": "i",
                "pid": 2,
                "tid": res_tid(ev["resource"]),
                "name": ev["event"],
                "ts": ev["time"] * _TS_SCALE,
                "s": "t",
            }
        )
    return events


def write_chrome_trace(path: str, payload: dict) -> int:
    """Write the payload as Chrome trace-event JSON; returns the event count."""
    events = chrome_trace_events(payload)
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return len(events)


register_hook("tracing", RunTracer)
