"""Metric primitives and the registry telemetry hooks write into.

Four metric kinds cover everything the observability layer records:

``Counter``
    A monotone accumulator (events seen, work wasted).  Merging across
    runs *adds*.
``Gauge``
    A point-in-time scalar (a busy fraction, a per-run maximum).
    Internally a ``(sum, n)`` pair so that merging across runs yields
    the exact *mean* of the per-run values.
``Histogram``
    A fixed-bucket distribution (stretches, wait times, queue depths).
    Bucket edges are declared at creation and never change, so merging
    across runs is an elementwise addition of counts.  Weights are
    floats, which lets monitors record *time-weighted* distributions.
``Series``
    A fixed-length vector (a normalized utilization timeline).  Like
    gauges, merging averages elementwise.

A :class:`MetricsRegistry` is a name → metric mapping with get-or-create
accessors; hooks own one registry each, and the telemetry layer
(:mod:`repro.obs.telemetry`) unions and merges registries.  Everything
round-trips through plain dicts (:meth:`MetricsRegistry.to_dict` /
:meth:`MetricsRegistry.from_dict`), so registries survive process-pool
pickling and JSONL sinks byte-identically.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.core.errors import ModelError


class Counter:
    """A monotone accumulator; merge = sum."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ModelError(f"counter increment must be non-negative, got {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another run's counter into this one."""
        self.value += other.value

    def to_dict(self) -> dict:
        """Serializable form."""
        return {"type": self.kind, "value": self.value}

    @classmethod
    def from_dict(cls, d: dict) -> "Counter":
        """Inverse of :meth:`to_dict`."""
        return cls(value=d["value"])


class Gauge:
    """A point-in-time scalar; merge = mean of the per-run values.

    Within one run :meth:`set` overwrites (last write wins).  Across
    runs the ``(sum, n)`` form makes the merged :attr:`value` the exact
    mean of every run's final value.
    """

    kind = "gauge"
    __slots__ = ("sum", "n")

    def __init__(self, sum: float = 0.0, n: int = 0):
        self.sum = float(sum)
        self.n = int(n)

    def set(self, value: float) -> None:
        """Record this run's value (overwrites any earlier set)."""
        self.sum = float(value)
        self.n = 1

    @property
    def value(self) -> float:
        """The (merged) value: mean of the contributing runs, 0 if unset."""
        return self.sum / self.n if self.n else 0.0

    def merge(self, other: "Gauge") -> None:
        """Fold another run's gauge into this one."""
        self.sum += other.sum
        self.n += other.n

    def to_dict(self) -> dict:
        """Serializable form."""
        return {"type": self.kind, "sum": self.sum, "n": self.n}

    @classmethod
    def from_dict(cls, d: dict) -> "Gauge":
        """Inverse of :meth:`to_dict`."""
        return cls(sum=d["sum"], n=d["n"])


class Histogram:
    """A fixed-bucket distribution; merge = elementwise count addition.

    ``edges`` are the strictly increasing *upper* bounds of the first
    ``len(edges)`` buckets; one overflow bucket catches everything
    above ``edges[-1]``, so ``counts`` has ``len(edges) + 1`` entries.
    Counts are floats so monitors can weight observations by time.
    """

    kind = "histogram"
    __slots__ = ("edges", "counts", "total", "sum")

    def __init__(
        self,
        edges: Sequence[float],
        counts: Sequence[float] | None = None,
        total: float = 0.0,
        sum: float = 0.0,
    ):
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ModelError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ModelError(f"histogram edges must be strictly increasing: {edges}")
        self.edges = edges
        if counts is None:
            counts = [0.0] * (len(edges) + 1)
        else:
            counts = [float(c) for c in counts]
            if len(counts) != len(edges) + 1:
                raise ModelError(
                    f"histogram needs {len(edges) + 1} counts for {len(edges)} "
                    f"edges, got {len(counts)}"
                )
        self.counts = counts
        #: Total observation weight and weighted sum of observed values.
        self.total = float(total)
        self.sum = float(sum)

    def observe(self, value: float, weight: float = 1.0) -> None:
        """Record ``value`` with the given ``weight``."""
        self.counts[bisect_left(self.edges, value)] += weight
        self.total += weight
        self.sum += value * weight

    @property
    def mean(self) -> float:
        """Weighted mean of the observed values (0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the bucket that crosses the target
        mass, with the first bucket anchored at 0; values landing in
        the overflow bucket report the last finite edge (a lower
        bound).  Empty histograms report 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ModelError(f"percentile must be in [0, 1], got {q}")
        if self.total <= 0.0:
            return 0.0
        target = q * self.total
        cum = 0.0
        for b, count in enumerate(self.counts):
            if count <= 0.0:
                continue
            if cum + count >= target:
                if b == len(self.edges):  # overflow bucket
                    return self.edges[-1]
                lo = 0.0 if b == 0 else self.edges[b - 1]
                hi = self.edges[b]
                frac = (target - cum) / count
                return lo + frac * (hi - lo)
            cum += count
        return self.edges[-1]

    def merge(self, other: "Histogram") -> None:
        """Fold another run's histogram into this one (same edges only)."""
        if other.edges != self.edges:
            raise ModelError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        for b, count in enumerate(other.counts):
            self.counts[b] += count
        self.total += other.total
        self.sum += other.sum

    def to_dict(self) -> dict:
        """Serializable form."""
        return {
            "type": self.kind,
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Histogram":
        """Inverse of :meth:`to_dict`."""
        return cls(edges=d["edges"], counts=d["counts"], total=d["total"], sum=d["sum"])


class Series:
    """A fixed-length float vector; merge = elementwise mean across runs.

    Used for normalized timelines (utilization per time bin): every run
    contributes one vector of the same length, and the merged
    :attr:`values` are the binwise means.
    """

    kind = "series"
    __slots__ = ("sums", "n")

    def __init__(self, sums: Sequence[float], n: int = 0):
        self.sums = [float(v) for v in sums]
        self.n = int(n)

    @classmethod
    def of_length(cls, length: int) -> "Series":
        """An unset series of ``length`` zeros."""
        if length <= 0:
            raise ModelError(f"series length must be positive, got {length}")
        return cls([0.0] * length, n=0)

    def set_values(self, values: Sequence[float]) -> None:
        """Record this run's vector (overwrites any earlier set)."""
        if len(values) != len(self.sums):
            raise ModelError(
                f"series expects {len(self.sums)} values, got {len(values)}"
            )
        self.sums = [float(v) for v in values]
        self.n = 1

    @property
    def values(self) -> list[float]:
        """The (merged) vector: elementwise mean of the contributing runs."""
        if not self.n:
            return [0.0] * len(self.sums)
        return [s / self.n for s in self.sums]

    def merge(self, other: "Series") -> None:
        """Fold another run's series into this one (same length only)."""
        if len(other.sums) != len(self.sums):
            raise ModelError(
                f"cannot merge series of different lengths: "
                f"{len(self.sums)} vs {len(other.sums)}"
            )
        for b, v in enumerate(other.sums):
            self.sums[b] += v
        self.n += other.n

    def to_dict(self) -> dict:
        """Serializable form."""
        return {"type": self.kind, "sums": list(self.sums), "n": self.n}

    @classmethod
    def from_dict(cls, d: dict) -> "Series":
        """Inverse of :meth:`to_dict`."""
        return cls(sums=d["sums"], n=d["n"])


#: type tag → metric class (the JSONL schema's metric vocabulary).
METRIC_TYPES = {cls.kind: cls for cls in (Counter, Gauge, Histogram, Series)}


class MetricsRegistry:
    """A name → metric mapping with get-or-create accessors.

    Accessors return the existing metric when the name is already
    registered (checking the kind matches) and create it otherwise, so
    hook code reads naturally::

        registry.counter("reexec.aborted").inc()
        registry.histogram("stretch", edges=STRETCH_EDGES).observe(s)
    """

    def __init__(self):
        self._metrics: dict[str, object] = {}

    # -- get-or-create accessors -------------------------------------------

    def _get_or_create(self, name: str, cls, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ModelError(
                f"metric {name!r} is a {type(metric).kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(self, name: str, edges: Sequence[float] | None = None) -> Histogram:
        """The histogram named ``name``; ``edges`` are required at creation
        and must match on every later access that passes them."""
        metric = self._metrics.get(name)
        if metric is None:
            if edges is None:
                raise ModelError(f"histogram {name!r} needs edges at creation")
            metric = Histogram(edges)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, Histogram):
            raise ModelError(f"metric {name!r} is a {type(metric).kind}, not a histogram")
        if edges is not None and tuple(float(e) for e in edges) != metric.edges:
            raise ModelError(f"histogram {name!r} already exists with different edges")
        return metric

    def series(self, name: str, length: int | None = None) -> Series:
        """The series named ``name``; ``length`` is required at creation."""
        metric = self._metrics.get(name)
        if metric is None:
            if length is None:
                raise ModelError(f"series {name!r} needs a length at creation")
            metric = Series.of_length(length)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, Series):
            raise ModelError(f"metric {name!r} is a {type(metric).kind}, not a series")
        if length is not None and length != len(metric.sums):
            raise ModelError(f"series {name!r} already exists with a different length")
        return metric

    # -- mapping protocol ---------------------------------------------------

    def get(self, name: str):
        """The metric named ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """Sorted metric names."""
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(sorted(self._metrics.items()))

    # -- merging ------------------------------------------------------------

    def union(self, other: "MetricsRegistry") -> None:
        """Adopt ``other``'s metrics; duplicate names are an error.

        This is how one run's hooks combine into a single registry:
        each hook namespaces its metrics (``util.*``, ``queue.*``, …),
        so a clash means two hooks claimed the same name.
        """
        for name, metric in other._metrics.items():
            if name in self._metrics:
                raise ModelError(f"duplicate metric {name!r} while combining registries")
            self._metrics[name] = metric

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another *run's* registry into this one, metric by metric.

        Metrics present in only one registry are adopted as-is; metrics
        present in both must have the same kind and merge per their
        semantics (counters add, gauges/series average, histograms add
        counts).
        """
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                self._metrics[name] = metric.from_dict(metric.to_dict())  # copy
            elif type(mine) is not type(metric):
                raise ModelError(
                    f"cannot merge metric {name!r}: {type(mine).kind} vs "
                    f"{type(metric).kind}"
                )
            else:
                mine.merge(metric)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form, keys sorted for canonical serialization."""
        return {name: self._metrics[name].to_dict() for name in sorted(self._metrics)}

    @classmethod
    def from_dict(cls, d: dict) -> "MetricsRegistry":
        """Inverse of :meth:`to_dict` (validates every metric's type tag)."""
        registry = cls()
        for name, entry in d.items():
            if not isinstance(entry, dict) or "type" not in entry:
                raise ModelError(f"metric {name!r} entry is not a typed dict")
            metric_cls = METRIC_TYPES.get(entry["type"])
            if metric_cls is None:
                known = ", ".join(sorted(METRIC_TYPES))
                raise ModelError(
                    f"metric {name!r} has unknown type {entry['type']!r}; "
                    f"known: {known}"
                )
            try:
                registry._metrics[name] = metric_cls.from_dict(entry)
            except (KeyError, TypeError, ValueError) as exc:
                raise ModelError(f"metric {name!r} is malformed: {exc}") from exc
        return registry
