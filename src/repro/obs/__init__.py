"""Observability: metrics, run telemetry, monitors and sinks.

The telemetry pipeline layered on the engine's hook protocol
(:mod:`repro.sim.hooks`):

1. **Metrics** (:mod:`repro.obs.metrics`) — counters, gauges,
   fixed-bucket histograms and fixed-length series in a
   :class:`MetricsRegistry`, each with well-defined cross-run merge
   semantics and a lossless dict form.
2. **Monitors** (:mod:`repro.obs.monitors`) — ship-with hooks
   (``util``, ``queue``, ``jobstats``, ``reexec``) that observe one
   run and populate a namespaced registry.
3. **Telemetry** (:mod:`repro.obs.telemetry`) — the versioned
   :class:`RunTelemetry` snapshot collected from the monitors after a
   run; it pickles across process pools and merges across
   replications.
4. **Sinks** (:mod:`repro.obs.sinks`) — the JSONL record format behind
   the CLIs' ``--telemetry-out`` flag, and
   :mod:`repro.obs.report` to render it.
5. **Tracing** (:mod:`repro.obs.tracing`) — the causal run tracer
   behind the CLIs' ``--trace-out`` flag: job-lifecycle spans,
   decision provenance, JSONL + Chrome trace-event exporters, and the
   ``repro-trace`` explain/diff CLI (:mod:`repro.obs.trace_cli`).

Importing this package registers the monitor and tracer hook names, so
``--instrument util`` (and friends) work anywhere the experiments
stack is imported — including process-pool workers.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, Series
from repro.obs.monitors import (
    DEFAULT_TELEMETRY_HOOKS,
    JobStatsMonitor,
    QueueDepthMonitor,
    ReexecutionAccountant,
    StretchArgmaxMonitor,
    UtilizationMonitor,
)
from repro.obs.sinks import (
    TELEMETRY_SCHEMA,
    read_telemetry_jsonl,
    read_telemetry_jsonl_report,
    telemetry_record,
    validate_record,
    write_telemetry_jsonl,
)
from repro.obs.telemetry import (
    RunTelemetry,
    TelemetrySource,
    collect_telemetry,
    merge_telemetry,
)
from repro.obs.tracing import (
    TRACE_SCHEMA,
    RunTracer,
    collect_trace,
    read_trace_jsonl,
    write_chrome_trace,
    write_trace_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Series",
    "DEFAULT_TELEMETRY_HOOKS",
    "JobStatsMonitor",
    "QueueDepthMonitor",
    "ReexecutionAccountant",
    "StretchArgmaxMonitor",
    "UtilizationMonitor",
    "TELEMETRY_SCHEMA",
    "read_telemetry_jsonl",
    "read_telemetry_jsonl_report",
    "telemetry_record",
    "validate_record",
    "write_telemetry_jsonl",
    "RunTelemetry",
    "TelemetrySource",
    "collect_telemetry",
    "merge_telemetry",
    "TRACE_SCHEMA",
    "RunTracer",
    "collect_trace",
    "read_trace_jsonl",
    "write_chrome_trace",
    "write_trace_jsonl",
]
