"""Telemetry monitors: ship-with hooks that populate a metrics registry.

Each monitor is an :class:`~repro.sim.hooks.EngineHooks` subclass that
is also a :class:`~repro.obs.telemetry.TelemetrySource`: it observes one
run through the hook callbacks, accumulates into plain Python floats,
and finalizes a namespaced :class:`~repro.obs.metrics.MetricsRegistry`
in ``on_finish``.  All accumulation is *simulation-time* arithmetic —
no wall clocks, no randomness — so two identical runs produce
byte-identical telemetry regardless of which process executed them.

Ship-with monitors (registered hook names in parentheses):

``UtilizationMonitor`` (``"util"``)
    Busy fractions and normalized busy timelines for the four exclusive
    resource classes of the platform: edge compute units, cloud compute
    slots, uplinks and downlinks.
``QueueDepthMonitor`` (``"queue"``)
    Ready-but-not-running jobs over time: a time-weighted depth
    histogram, mean/max gauges and a normalized depth timeline.
``JobStatsMonitor`` (``"jobstats"``)
    Per-job outcome distributions: stretch and wait-ratio histograms
    and the run's max stretch.
``ReexecutionAccountant`` (``"reexec"``)
    Work thrown away by the no-migration rule: every re-assignment
    aborts the previous attempt, and whatever uplink/compute/downlink
    progress that attempt had made is wasted.
``FaultMonitor`` (``"faults"``)
    Fault accounting when a :class:`repro.faults.FaultTrace` is
    injected: crash/outage counts, attempts aborted by faults, the
    progress those aborts threw away, and time-to-recover per failure.
``SchedulerStatsMonitor`` (``"scheduler"``)
    Scheduler hot-path counters, republished from the scheduler's own
    ``telemetry_counters()`` (SSF-EDF: binary-search probes,
    short-circuited probes, placement rebuilds, probe adoptions, cache
    replays).

:data:`DEFAULT_TELEMETRY_HOOKS` names all six — it is what the CLIs
instrument with when ``--telemetry-out`` is given without explicit
``--instrument`` flags.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetrySource
from repro.sim.events import EventKind
from repro.sim.hooks import EngineHooks, StretchWatermarkMonitor, register_hook
from repro.sim.state import ALLOC_EDGE, Phase

#: Bins of every normalized utilization/queue timeline (the run's time
#: horizon ``[0, makespan]`` is split into this many equal bins).
TIMELINE_BINS = 50

#: Histogram bucket upper bounds for per-job stretch (dimensionless, >= 1).
STRETCH_EDGES = (
    1.0, 1.1, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.5, 8.0, 10.0,
    13.0, 16.0, 20.0, 25.0, 32.0, 40.0, 50.0, 65.0, 80.0, 100.0, 150.0,
    200.0, 300.0, 500.0, 1000.0,
)

#: Bucket upper bounds for the wait ratio ``stretch - 1`` (time spent
#: waiting/lost, normalized by the job's dedicated-system time).
WAIT_RATIO_EDGES = (
    0.0, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6, 51.2,
    102.4, 204.8, 409.6, 819.2,
)

#: Bucket upper bounds for the ready-queue depth (jobs).
QUEUE_DEPTH_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)

#: Bucket upper bounds for wasted amount per aborted attempt (model units).
WASTED_EDGES = (
    0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0,
    3000.0, 10000.0,
)

#: Bucket upper bounds for per-failure downtime (model time units).
DOWNTIME_EDGES = (
    0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0, 10000.0,
)

#: The hook names the CLIs instrument with for full telemetry.
DEFAULT_TELEMETRY_HOOKS = ("util", "queue", "jobstats", "reexec", "faults", "scheduler")


def _bin_time_weighted(
    segments: Iterable[tuple[float, float, float]], horizon: float, n_bins: int
) -> list[float]:
    """Time-weighted average of a piecewise-constant signal per bin.

    ``segments`` are ``(t0, t1, value)`` pieces; the horizon ``[0,
    horizon]`` is split into ``n_bins`` equal bins and each bin reports
    the average of the signal over the bin (pieces are apportioned by
    exact overlap, values outside every piece count as 0).
    """
    bins = [0.0] * n_bins
    if horizon <= 0.0:
        return bins
    width = horizon / n_bins
    for t0, t1, value in segments:
        if value == 0.0 or t1 <= t0:
            continue
        b0 = min(int(t0 / width), n_bins - 1)
        b1 = min(int(t1 / width), n_bins - 1)
        for b in range(b0, b1 + 1):
            overlap = min(t1, (b + 1) * width) - max(t0, b * width)
            if overlap > 0.0:
                bins[b] += value * overlap
    return [v / width for v in bins]


class UtilizationMonitor(EngineHooks, TelemetrySource):
    """Per-resource-class busy fractions and normalized busy timelines.

    The model's exclusive resources fall into four classes — edge
    compute units, cloud compute slots, uplinks (edge send + cloud
    receive port pairs) and downlinks (cloud send + edge receive) — and
    every granted activity occupies exactly one class for the duration
    of a step.  This monitor integrates busy resource-time per class
    and reports, per class:

    * ``util.<class>.busy_frac`` — busy resource-time over capacity ×
      makespan (a gauge in ``[0, 1]``; merging reps averages);
    * ``util.<class>.timeline`` — mean utilization per time bin over
      the normalized horizon (:data:`TIMELINE_BINS` bins).

    Link capacity is ``min(n_edge, n_cloud)`` concurrent transfers per
    direction (each edge unit has one send and one receive port, each
    cloud slot one receive and one send port).  ``util.horizon``
    records the makespan the timelines were normalized by.
    """

    _CLASSES = ("edge", "cloud", "uplink", "downlink")

    def __init__(self) -> None:
        self._registry = MetricsRegistry()
        self._view = None
        #: (t0, t1, busy count per class) per engine step.
        self._segments: list[tuple[float, float, int, int, int, int]] = []
        self._busy = [0.0, 0.0, 0.0, 0.0]

    def on_start(self, view) -> None:
        """Keep the view: allocation arrays locate compute activities."""
        self._view = view

    def on_step(self, t0: float, t1: float, active: Sequence) -> None:
        """Tally how many resources of each class ran during ``[t0, t1)``."""
        dt = t1 - t0
        kind = self._view.alloc_kind
        n_edge = n_cloud = n_up = n_dn = 0
        for job, phase, _rate in active:
            if phase is Phase.COMPUTE:
                if kind[job] == ALLOC_EDGE:
                    n_edge += 1
                else:
                    n_cloud += 1
            elif phase is Phase.UPLINK:
                n_up += 1
            else:
                n_dn += 1
        self._segments.append((t0, t1, n_edge, n_cloud, n_up, n_dn))
        busy = self._busy
        busy[0] += n_edge * dt
        busy[1] += n_cloud * dt
        busy[2] += n_up * dt
        busy[3] += n_dn * dt

    def on_finish(self, result) -> None:
        """Normalize the integrals into fractions and timelines."""
        registry = self._registry
        horizon = result.makespan
        platform = self._view.platform
        link_cap = min(platform.n_edge, platform.n_cloud)
        capacity = (platform.n_edge, platform.n_cloud, link_cap, link_cap)
        registry.gauge("util.horizon").set(horizon)
        for c, name in enumerate(self._CLASSES):
            cap = capacity[c]
            frac = (
                self._busy[c] / (cap * horizon) if cap and horizon > 0.0 else 0.0
            )
            registry.gauge(f"util.{name}.busy_frac").set(frac)
            timeline = _bin_time_weighted(
                ((s[0], s[1], float(s[2 + c])) for s in self._segments),
                horizon,
                TIMELINE_BINS,
            )
            if cap:
                timeline = [v / cap for v in timeline]
            registry.series(f"util.{name}.timeline", TIMELINE_BINS).set_values(timeline)

    def telemetry_metrics(self) -> MetricsRegistry:
        """The ``util.*`` metrics of this run."""
        return self._registry


class QueueDepthMonitor(EngineHooks, TelemetrySource):
    """Ready-but-not-running jobs over time.

    At every engine step the *depth* is the number of live (released,
    uncompleted) jobs minus the jobs actually granted an activity —
    i.e. jobs that want service but got none this step.  Reports:

    * ``queue.depth`` — time-weighted depth histogram
      (:data:`QUEUE_DEPTH_EDGES` buckets);
    * ``queue.depth.mean`` / ``queue.depth.max`` — gauges;
    * ``queue.timeline`` — mean depth per normalized time bin.
    """

    def __init__(self) -> None:
        self._registry = MetricsRegistry()
        self._hist = self._registry.histogram("queue.depth", edges=QUEUE_DEPTH_EDGES)
        self._view = None
        self._segments: list[tuple[float, float, float]] = []
        self._weighted = 0.0
        self._elapsed = 0.0
        self._max = 0

    def on_start(self, view) -> None:
        """Keep the view: live-job sweeps define the ready set."""
        self._view = view

    def on_step(self, t0: float, t1: float, active: Sequence) -> None:
        """Record the depth that held during ``[t0, t1)``, weighted by its span."""
        dt = t1 - t0
        running = {entry[0] for entry in active}
        depth = int(self._view.live_jobs().size) - len(running)
        if depth < 0:
            depth = 0
        self._hist.observe(depth, weight=dt)
        self._segments.append((t0, t1, float(depth)))
        self._weighted += depth * dt
        self._elapsed += dt
        if depth > self._max:
            self._max = depth

    def on_finish(self, result) -> None:
        """Finalize mean/max gauges and the normalized depth timeline."""
        registry = self._registry
        mean = self._weighted / self._elapsed if self._elapsed > 0.0 else 0.0
        registry.gauge("queue.depth.mean").set(mean)
        registry.gauge("queue.depth.max").set(float(self._max))
        registry.series("queue.timeline", TIMELINE_BINS).set_values(
            _bin_time_weighted(self._segments, result.makespan, TIMELINE_BINS)
        )

    def telemetry_metrics(self) -> MetricsRegistry:
        """The ``queue.*`` metrics of this run."""
        return self._registry


class JobStatsMonitor(EngineHooks, TelemetrySource):
    """Per-job outcome distributions (stretch and normalized wait).

    Reports, under the ``jobs.*`` namespace:

    * ``jobs.stretch`` — histogram of realized per-job stretches
      (:data:`STRETCH_EDGES` buckets; merging reps pools the
      distribution, the paper's Fig. 2 quantity);
    * ``jobs.wait_ratio`` — histogram of ``stretch - 1``, the fraction
      of each job's dedicated-system time lost to waiting, contention
      and re-execution;
    * ``jobs.max_stretch`` — gauge (per-run maximum; merging averages);
    * ``jobs.completed`` — counter (merging totals across reps).
    """

    def __init__(self) -> None:
        self._registry = MetricsRegistry()
        self._stretch = self._registry.histogram("jobs.stretch", edges=STRETCH_EDGES)
        self._wait = self._registry.histogram("jobs.wait_ratio", edges=WAIT_RATIO_EDGES)
        self._completed = self._registry.counter("jobs.completed")
        self._release = None
        self._min_time = None
        self._max_stretch = 0.0

    def on_start(self, view) -> None:
        """Capture the static per-job quantities of the instance."""
        self._release = view.instance.release
        self._min_time = view.instance.min_time

    def on_complete(self, job: int, time: float) -> None:
        """Observe the completed job's stretch and wait ratio."""
        stretch = (time - self._release[job]) / self._min_time[job]
        self._stretch.observe(stretch)
        wait_ratio = stretch - 1.0
        self._wait.observe(wait_ratio if wait_ratio > 0.0 else 0.0)
        self._completed.inc()
        if stretch > self._max_stretch:
            self._max_stretch = float(stretch)

    def on_finish(self, result) -> None:
        """Finalize the per-run maximum stretch gauge."""
        self._registry.gauge("jobs.max_stretch").set(self._max_stretch)

    def telemetry_metrics(self) -> MetricsRegistry:
        """The ``jobs.*`` metrics of this run."""
        return self._registry


class ReexecutionAccountant(EngineHooks, TelemetrySource):
    """Work thrown away per aborted attempt.

    The model forbids migration: re-assigning a job to a different
    resource restarts it from scratch, so every ``on_assign`` after a
    job's first one aborts an attempt and discards whatever progress it
    had made.  The accountant integrates per-attempt progress from the
    step callback (uplink/downlink time at rate 1, compute at the
    granted rate) and, on each abort, moves it to the wasted tallies:

    * ``reexec.aborted_attempts`` — counter;
    * ``reexec.wasted_uplink`` / ``reexec.wasted_work`` /
      ``reexec.wasted_downlink`` — counters (model units: time for the
      communications, work units for compute);
    * ``reexec.wasted_per_attempt`` — histogram of the total amount
      discarded by each abort (:data:`WASTED_EDGES` buckets).

    Attempts aborted by *faults* are not booked here — they are the
    :class:`FaultMonitor`'s (``faults.*``) to account, and the split
    keeps ``reexec.*`` a pure measure of scheduler-chosen migration
    waste with or without fault injection.
    """

    def __init__(self) -> None:
        self._registry = MetricsRegistry()
        self._aborted = self._registry.counter("reexec.aborted_attempts")
        self._wasted_up = self._registry.counter("reexec.wasted_uplink")
        self._wasted_work = self._registry.counter("reexec.wasted_work")
        self._wasted_dn = self._registry.counter("reexec.wasted_downlink")
        self._per_attempt = self._registry.histogram(
            "reexec.wasted_per_attempt", edges=WASTED_EDGES
        )
        #: job -> [uplink, work, downlink] progress of the current attempt.
        self._progress: dict[int, list[float]] = {}

    def on_assign(self, job: int, resource, now: float) -> None:
        """A new attempt opened; book the aborted one's progress as waste."""
        acc = self._progress.get(job)
        if acc is not None:
            self._aborted.inc()
            self._wasted_up.inc(acc[0])
            self._wasted_work.inc(acc[1])
            self._wasted_dn.inc(acc[2])
            self._per_attempt.observe(acc[0] + acc[1] + acc[2])
        self._progress[job] = [0.0, 0.0, 0.0]

    def on_step(self, t0: float, t1: float, active: Sequence) -> None:
        """Integrate each active job's progress into its current attempt."""
        dt = t1 - t0
        progress = self._progress
        for job, phase, rate in active:
            acc = progress.get(job)
            if acc is None:  # defensive: a grant implies an assignment
                acc = progress[job] = [0.0, 0.0, 0.0]
            if phase is Phase.COMPUTE:
                acc[1] += rate * dt
            elif phase is Phase.UPLINK:
                acc[0] += dt
            else:
                acc[2] += dt

    def on_abort(self, job: int, time: float) -> None:
        """A fault killed the attempt: drop its progress without booking
        (fault waste belongs to the ``faults.*`` namespace)."""
        self._progress.pop(job, None)

    def telemetry_metrics(self) -> MetricsRegistry:
        """The ``reexec.*`` metrics of this run."""
        return self._registry


class FaultMonitor(EngineHooks, TelemetrySource):
    """Fault accounting (crashes, outages, aborted work, recovery times).

    Mirrors the :class:`ReexecutionAccountant`'s progress integration,
    but books the attempts that *faults* abort (the engine's
    ``on_abort`` callback) rather than scheduler-chosen migrations.
    Reports, under the ``faults.*`` namespace:

    * ``faults.crashes`` — counter of edge/cloud ``ResourceDown`` events
      (``faults.edge_crashes`` / ``faults.cloud_crashes`` split it);
    * ``faults.link_outages`` — counter of ``LinkDown`` events;
    * ``faults.aborted_attempts`` — counter of fault-killed attempts;
    * ``faults.wasted_uplink`` / ``faults.wasted_work`` /
      ``faults.wasted_downlink`` — counters of the progress those
      aborts discarded (model units);
    * ``faults.wasted_per_abort`` — histogram (:data:`WASTED_EDGES`);
    * ``faults.time_to_recover`` — histogram of per-failure downtime
      (:data:`DOWNTIME_EDGES`), one observation per down/up pair seen
      during the run (failures the run ends inside are not observed).

    When the run executes under a checkpoint/restart policy
    (:class:`repro.sim.checkpoint.CheckpointPolicy`) two more counters
    appear: ``faults.checkpoint_commits`` (durable commits taken) and
    ``faults.abandoned_jobs`` (jobs dropped after exhausting their
    retry budget).  They are created lazily on the first matching
    event, so runs without checkpointing publish the exact historical
    metric set byte for byte.

    With no fault trace injected every metric stays zero, so the hook
    is safe to instrument unconditionally (it is part of
    :data:`DEFAULT_TELEMETRY_HOOKS`).
    """

    def __init__(self) -> None:
        self._registry = MetricsRegistry()
        self._crashes = self._registry.counter("faults.crashes")
        self._edge_crashes = self._registry.counter("faults.edge_crashes")
        self._cloud_crashes = self._registry.counter("faults.cloud_crashes")
        self._outages = self._registry.counter("faults.link_outages")
        self._aborted = self._registry.counter("faults.aborted_attempts")
        self._wasted_up = self._registry.counter("faults.wasted_uplink")
        self._wasted_work = self._registry.counter("faults.wasted_work")
        self._wasted_dn = self._registry.counter("faults.wasted_downlink")
        self._per_abort = self._registry.histogram(
            "faults.wasted_per_abort", edges=WASTED_EDGES
        )
        self._recover = self._registry.histogram(
            "faults.time_to_recover", edges=DOWNTIME_EDGES
        )
        #: job -> [uplink, work, downlink] progress of the current attempt.
        self._progress: dict[int, list[float]] = {}
        #: (event kind domain, resource) -> time it went down.
        self._down_since: dict[tuple[str, object], float] = {}

    def on_assign(self, job: int, resource, now: float) -> None:
        """A new attempt opened: start a fresh progress accumulator."""
        self._progress[job] = [0.0, 0.0, 0.0]

    def on_step(self, t0: float, t1: float, active: Sequence) -> None:
        """Integrate each active job's progress into its current attempt."""
        dt = t1 - t0
        progress = self._progress
        for job, phase, rate in active:
            acc = progress.get(job)
            if acc is None:
                acc = progress[job] = [0.0, 0.0, 0.0]
            if phase is Phase.COMPUTE:
                acc[1] += rate * dt
            elif phase is Phase.UPLINK:
                acc[0] += dt
            else:
                acc[2] += dt

    def on_events(self, events: Sequence) -> None:
        """Count fault transitions and pair downs with ups for recovery times."""
        for ev in events:
            kind = ev.kind
            if kind is EventKind.RESOURCE_DOWN:
                self._crashes.inc()
                if ev.resource.is_edge:
                    self._edge_crashes.inc()
                else:
                    self._cloud_crashes.inc()
                self._down_since[("res", ev.resource)] = ev.time
            elif kind is EventKind.LINK_DOWN:
                self._outages.inc()
                self._down_since[("link", ev.resource)] = ev.time
            elif kind is EventKind.RESOURCE_UP:
                t0 = self._down_since.pop(("res", ev.resource), None)
                if t0 is not None:
                    self._recover.observe(ev.time - t0)
            elif kind is EventKind.LINK_UP:
                t0 = self._down_since.pop(("link", ev.resource), None)
                if t0 is not None:
                    self._recover.observe(ev.time - t0)
            elif kind is EventKind.CHECKPOINT_COMMITTED:
                # Lazy: materialize only under a checkpoint policy so
                # non-checkpointed telemetry stays byte-identical.
                self._registry.counter("faults.checkpoint_commits").inc()
            elif kind is EventKind.JOB_ABANDONED:
                self._registry.counter("faults.abandoned_jobs").inc()
                self._progress.pop(ev.job, None)

    def on_abort(self, job: int, time: float) -> None:
        """Book the killed attempt's progress as fault waste."""
        acc = self._progress.pop(job, None)
        self._aborted.inc()
        if acc is None:
            acc = [0.0, 0.0, 0.0]
        self._wasted_up.inc(acc[0])
        self._wasted_work.inc(acc[1])
        self._wasted_dn.inc(acc[2])
        self._per_abort.observe(acc[0] + acc[1] + acc[2])

    def telemetry_metrics(self) -> MetricsRegistry:
        """The ``faults.*`` metrics of this run."""
        return self._registry


class SchedulerStatsMonitor(EngineHooks, TelemetrySource):
    """Scheduler hot-path counters, under the ``scheduler.*`` namespace.

    Schedulers may expose per-run counters through a
    ``telemetry_counters()`` method; the engine snapshots them into
    ``SimulationResult.scheduler_stats`` at the end of the run.  This
    monitor republishes that snapshot as counters (merging reps adds),
    keeping the export inside the telemetry pipeline's schema.

    SSF-EDF reports its placement-kernel work: ``scheduler.probes``
    (binary-search feasibility probes), ``scheduler.probe_short_circuits``
    (probes aborted at the first missed deadline),
    ``scheduler.rebuilds`` (full placement constructions used as
    decisions), ``scheduler.probe_reuses`` (release decisions adopting
    the final feasible probe's placement) and ``scheduler.replays``
    (non-release decisions served from the reuse cache).  Schedulers
    without counters contribute no metrics (report cells render '-').
    """

    def __init__(self) -> None:
        self._registry = MetricsRegistry()

    def on_finish(self, result) -> None:
        """Republish the result's scheduler counter snapshot, if any."""
        stats = getattr(result, "scheduler_stats", None)
        if not stats:
            return
        for name, value in stats.items():
            self._registry.counter(name).inc(value)

    def telemetry_metrics(self) -> MetricsRegistry:
        """The ``scheduler.*`` metrics of this run."""
        return self._registry


class StretchArgmaxMonitor(StretchWatermarkMonitor, TelemetrySource):
    """The watermark monitor as a telemetry source (hook name ``"stretch"``).

    Publishes the run's final max-stretch watermark and, crucially, the
    *argmax job id* — which job attained it — so the report (and
    ``repro-trace critical``) can name the max-stretch job without a
    trace file:

    * ``stretch.watermark`` — gauge (merging reps averages);
    * ``stretch.argmax_job`` — gauge holding the job id (-1 when no
      job completed; only meaningful for single runs — merged reps
      average to a non-id).

    Opt-in (not part of :data:`DEFAULT_TELEMETRY_HOOKS`): adding a
    metric to the defaults would change the byte-identical telemetry
    files existing runs pin.
    """

    def __init__(self) -> None:
        super().__init__()
        self._registry = MetricsRegistry()

    def on_finish(self, result) -> None:
        """Finalize the watermark/argmax gauges."""
        self._registry.gauge("stretch.watermark").set(self.watermark)
        self._registry.gauge("stretch.argmax_job").set(float(self.argmax_job))

    def telemetry_metrics(self) -> MetricsRegistry:
        """The ``stretch.*`` metrics of this run."""
        return self._registry


register_hook("util", UtilizationMonitor)
register_hook("queue", QueueDepthMonitor)
register_hook("jobstats", JobStatsMonitor)
register_hook("reexec", ReexecutionAccountant)
register_hook("faults", FaultMonitor)
register_hook("scheduler", SchedulerStatsMonitor)
register_hook("stretch", StretchArgmaxMonitor)
