"""Per-job time breakdowns and system-level timelines.

Where does a job's response time go?  :func:`job_breakdown` splits
``C_i - r_i`` into communication, execution, *lost* work (abandoned
attempts), and waiting.  :func:`system_timeline` samples how many jobs
are in the system over time — the operational meaning of the "load"
knob of §VI-A.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ScheduleError
from repro.core.schedule import Schedule


@dataclass(frozen=True)
class JobBreakdown:
    """Decomposition of one job's response time (all in time units)."""

    job: int
    response: float
    communication: float  # uplink + downlink of the final attempt
    execution: float  # execution of the final attempt
    lost: float  # all activity of abandoned attempts
    waiting: float  # response - everything above

    @property
    def waiting_fraction(self) -> float:
        """Share of the response time spent waiting for resources."""
        return self.waiting / self.response if self.response > 0 else 0.0


def job_breakdown(schedule: Schedule, i: int) -> JobBreakdown:
    """Split job ``i``'s response time into its components."""
    js = schedule.job_schedules[i]
    if js.completion is None:
        raise ScheduleError(f"job {i} not completed; no breakdown", job=i)
    job = schedule.instance.jobs[i]
    response = js.completion - job.release

    final = js.final_attempt
    comm = final.uplink.total_length() + final.downlink.total_length()
    execution = final.execution.total_length()
    lost = sum(
        a.uplink.total_length() + a.execution.total_length() + a.downlink.total_length()
        for a in js.attempts[:-1]
    )
    waiting = response - comm - execution - lost
    return JobBreakdown(
        job=i,
        response=response,
        communication=comm,
        execution=execution,
        lost=lost,
        waiting=max(0.0, waiting),
    )


def all_breakdowns(schedule: Schedule) -> list[JobBreakdown]:
    """Breakdowns for every job, in job-id order."""
    return [job_breakdown(schedule, i) for i in range(schedule.instance.n_jobs)]


@dataclass(frozen=True)
class SystemTimeline:
    """Sampled counts of jobs in the system and running activities."""

    times: np.ndarray
    in_system: np.ndarray  # released, not yet completed
    executing: np.ndarray  # an execution interval covers the sample
    communicating: np.ndarray  # an uplink/downlink covers the sample

    @property
    def peak_in_system(self) -> int:
        """Largest sampled number of concurrent jobs."""
        return int(self.in_system.max()) if self.in_system.size else 0


def system_timeline(schedule: Schedule, *, n_samples: int = 200) -> SystemTimeline:
    """Sample the system state at ``n_samples`` uniform times."""
    instance = schedule.instance
    span = schedule.makespan()
    times = np.linspace(0.0, span, n_samples) if span > 0 else np.zeros(1)

    release = instance.release
    completion = np.array(
        [schedule.job_schedules[i].completion or np.inf for i in range(instance.n_jobs)]
    )
    in_system = (
        (release[None, :] <= times[:, None]) & (times[:, None] < completion[None, :])
    ).sum(axis=1)

    executing = np.zeros(len(times), dtype=np.int64)
    communicating = np.zeros(len(times), dtype=np.int64)
    for js in schedule.iter_job_schedules():
        for attempt in js.attempts:
            for iv in attempt.execution:
                executing += (times >= iv.start) & (times < iv.end)
            for phase in (attempt.uplink, attempt.downlink):
                for iv in phase:
                    communicating += (times >= iv.start) & (times < iv.end)

    return SystemTimeline(
        times=times,
        in_system=in_system.astype(np.int64),
        executing=executing,
        communicating=communicating,
    )
