"""Schedule analysis: Gantt rendering, time breakdowns, competitiveness."""

from repro.analysis.competitive import (
    CompetitiveSummary,
    empirical_competitive_ratios,
)
from repro.analysis.fairness import (
    FairnessReport,
    fairness_report,
    gini_coefficient,
    jain_index,
)
from repro.analysis.gantt import job_symbol, render_gantt
from repro.analysis.svg_gantt import job_color, render_gantt_svg, save_gantt_svg
from repro.analysis.timeline import (
    JobBreakdown,
    SystemTimeline,
    all_breakdowns,
    job_breakdown,
    system_timeline,
)

__all__ = [
    "FairnessReport",
    "fairness_report",
    "jain_index",
    "gini_coefficient",
    "render_gantt_svg",
    "save_gantt_svg",
    "job_color",
    "render_gantt",
    "job_symbol",
    "JobBreakdown",
    "job_breakdown",
    "all_breakdowns",
    "SystemTimeline",
    "system_timeline",
    "CompetitiveSummary",
    "empirical_competitive_ratios",
]
